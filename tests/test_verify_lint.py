"""Tests for the project AST lint rules (:mod:`repro.verify.lint`).

The repository's own sources must lint clean; each rule is proven live on
synthetic modules placed (by relative path) inside and outside its scope.
"""

from pathlib import Path

import repro
from repro.verify.lint import lint_path, lint_source


def codes(findings):
    return {f.code for f in findings}


def test_repository_sources_lint_clean():
    assert lint_path(Path(repro.__file__).parent) == []


# ------------------------------------------------------------ L001 wall clock


def test_wall_clock_call_in_sim_detected():
    src = "import time\n\ndef now():\n    return time.time()\n"
    assert codes(lint_source(src, Path("sim/engine.py"))) == {"L001"}


def test_wall_clock_variants_detected():
    for call in ("time.monotonic()", "time.perf_counter_ns()",
                 "datetime.datetime.now()"):
        src = f"import time, datetime\n\ndef f():\n    return {call}\n"
        assert codes(lint_source(src, Path("runtime/executor.py"))) == {"L001"}


def test_from_import_wall_clock_detected():
    src = "from time import perf_counter as pc\n\ndef f():\n    return pc()\n"
    assert codes(lint_source(src, Path("sim/stream.py"))) == {"L001"}


def test_wall_clock_outside_virtual_time_scope_is_fine():
    src = "import time\n\ndef now():\n    return time.time()\n"
    assert lint_source(src, Path("bench/harness.py")) == []


# ------------------------------------------------------------ L002 salted hash


def test_builtin_hash_in_memory_detected():
    src = "def bucket(key):\n    return hash(key) % 7\n"
    assert codes(lint_source(src, Path("memory/cache.py"))) == {"L002"}


def test_builtin_hash_outside_scope_is_fine():
    src = "def bucket(key):\n    return hash(key) % 7\n"
    assert lint_source(src, Path("blas/tiled.py")) == []


# ---------------------------------------------------------------- L003 slots


def test_dataclass_without_slots_detected():
    src = (
        "import dataclasses\n\n"
        "@dataclasses.dataclass\n"
        "class Hot:\n"
        "    x: int = 0\n"
    )
    assert codes(lint_source(src, Path("runtime/task.py"))) == {"L003"}


def test_bare_dataclass_decorator_detected():
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class Hot:\n"
        "    x: int = 0\n"
    )
    assert codes(lint_source(src, Path("sim/event.py"))) == {"L003"}


def test_dataclass_with_slots_is_fine():
    src = (
        "import dataclasses\n\n"
        "@dataclasses.dataclass(frozen=True, slots=True)\n"
        "class Hot:\n"
        "    x: int = 0\n"
    )
    assert lint_source(src, Path("memory/tile.py")) == []


def test_dataclass_outside_hot_scopes_is_fine():
    src = "import dataclasses\n\n@dataclasses.dataclass\nclass Cfg:\n    x: int = 0\n"
    assert lint_source(src, Path("bench/experiments/fig2.py")) == []


# ------------------------------------------------------- L004 state ownership


def test_state_mutation_outside_owners_detected():
    src = "def hack(task):\n    task.state = 'done'\n"
    assert codes(lint_source(src, Path("runtime/scheduler/base.py"))) == {"L004"}


def test_state_mutation_in_owner_modules_is_fine():
    src = "def advance(task):\n    task.state = 'done'\n"
    assert lint_source(src, Path("runtime/executor.py")) == []
    assert lint_source(src, Path("runtime/dataflow.py")) == []


# ------------------------------------------------- L005 unused private method


def _seed(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")


def test_unused_private_method_detected(tmp_path):
    _seed(tmp_path, "runtime/exec.py",
          "class Exec:\n"
          "    def run(self):\n"
          "        return self._used()\n"
          "    def _used(self):\n"
          "        return 1\n"
          "    def _dead(self):\n"
          "        return 2\n")
    findings = [f for f in lint_path(tmp_path) if f.code == "L005"]
    assert len(findings) == 1
    assert "Exec._dead" in findings[0].message


def test_private_hook_used_from_another_module_is_fine(tmp_path):
    # Subclass hooks are defined in one module and invoked from another
    # (Scheduler subclasses override methods base.py calls); the tree-wide
    # usage scan must keep them alive.
    _seed(tmp_path, "runtime/policy.py",
          "class Policy:\n"
          "    def _owner_hint(self):\n"
          "        return None\n")
    _seed(tmp_path, "libraries/driver.py",
          "def drive(policy):\n"
          "    return policy._owner_hint()\n")
    assert [f for f in lint_path(tmp_path) if f.code == "L005"] == []


def test_private_method_kept_alive_by_getattr_string(tmp_path):
    _seed(tmp_path, "sim/hooks.py",
          "class Hooks:\n"
          "    def _on_tick(self):\n"
          "        return 0\n"
          "def fire(obj):\n"
          "    return getattr(obj, '_on_tick')()\n")
    assert [f for f in lint_path(tmp_path) if f.code == "L005"] == []


def test_dunder_public_and_out_of_scope_methods_ignored(tmp_path):
    _seed(tmp_path, "memory/thing.py",
          "class Thing:\n"
          "    def __hash__(self):\n"
          "        return 0\n"
          "    def public_but_unused(self):\n"
          "        return 0\n")
    _seed(tmp_path, "bench/tool.py",
          "class Tool:\n"
          "    def _dead_but_out_of_scope(self):\n"
          "        return 0\n")
    assert [f for f in lint_path(tmp_path) if f.code == "L005"] == []


# ------------------------------------------------------------------- plumbing


def test_syntax_error_reported_not_raised():
    assert codes(lint_source("def broken(:\n", Path("sim/x.py"))) == {"L000"}


def test_lint_path_walks_a_seeded_tree(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "clock.py").write_text(
        "import time\nNOW = time.time()\n", encoding="utf-8"
    )
    (tmp_path / "analysis").mkdir()
    (tmp_path / "analysis" / "ok.py").write_text(
        "import time\nNOW = time.time()\n", encoding="utf-8"
    )
    findings = lint_path(tmp_path)
    assert codes(findings) == {"L001"}
    assert all("sim" in f.subject for f in findings)
