"""Tests for the project AST lint rules (:mod:`repro.verify.lint`).

The repository's own sources must lint clean; each rule is proven live on
synthetic modules placed (by relative path) inside and outside its scope.
"""

from pathlib import Path

import repro
from repro.verify.lint import lint_path, lint_source


def codes(findings):
    return {f.code for f in findings}


def test_repository_sources_lint_clean():
    assert lint_path(Path(repro.__file__).parent) == []


# ------------------------------------------------------------ L001 wall clock


def test_wall_clock_call_in_sim_detected():
    src = "import time\n\ndef now():\n    return time.time()\n"
    assert codes(lint_source(src, Path("sim/engine.py"))) == {"L001"}


def test_wall_clock_variants_detected():
    for call in ("time.monotonic()", "time.perf_counter_ns()",
                 "datetime.datetime.now()"):
        src = f"import time, datetime\n\ndef f():\n    return {call}\n"
        assert codes(lint_source(src, Path("runtime/executor.py"))) == {"L001"}


def test_from_import_wall_clock_detected():
    src = "from time import perf_counter as pc\n\ndef f():\n    return pc()\n"
    assert codes(lint_source(src, Path("sim/stream.py"))) == {"L001"}


def test_wall_clock_outside_virtual_time_scope_is_fine():
    src = "import time\n\ndef now():\n    return time.time()\n"
    assert lint_source(src, Path("bench/harness.py")) == []


# ------------------------------------------------------------ L002 salted hash


def test_builtin_hash_in_memory_detected():
    src = "def bucket(key):\n    return hash(key) % 7\n"
    assert codes(lint_source(src, Path("memory/cache.py"))) == {"L002"}


def test_builtin_hash_outside_scope_is_fine():
    src = "def bucket(key):\n    return hash(key) % 7\n"
    assert lint_source(src, Path("blas/tiled.py")) == []


# ---------------------------------------------------------------- L003 slots


def test_dataclass_without_slots_detected():
    src = (
        "import dataclasses\n\n"
        "@dataclasses.dataclass\n"
        "class Hot:\n"
        "    x: int = 0\n"
    )
    assert codes(lint_source(src, Path("runtime/task.py"))) == {"L003"}


def test_bare_dataclass_decorator_detected():
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class Hot:\n"
        "    x: int = 0\n"
    )
    assert codes(lint_source(src, Path("sim/event.py"))) == {"L003"}


def test_dataclass_with_slots_is_fine():
    src = (
        "import dataclasses\n\n"
        "@dataclasses.dataclass(frozen=True, slots=True)\n"
        "class Hot:\n"
        "    x: int = 0\n"
    )
    assert lint_source(src, Path("memory/tile.py")) == []


def test_dataclass_outside_hot_scopes_is_fine():
    src = "import dataclasses\n\n@dataclasses.dataclass\nclass Cfg:\n    x: int = 0\n"
    assert lint_source(src, Path("bench/experiments/fig2.py")) == []


# ------------------------------------------------------- L004 state ownership


def test_state_mutation_outside_owners_detected():
    src = "def hack(task):\n    task.state = 'done'\n"
    assert codes(lint_source(src, Path("runtime/scheduler/base.py"))) == {"L004"}


def test_state_mutation_in_owner_modules_is_fine():
    src = "def advance(task):\n    task.state = 'done'\n"
    assert lint_source(src, Path("runtime/executor.py")) == []
    assert lint_source(src, Path("runtime/dataflow.py")) == []


# ------------------------------------------------------------------- plumbing


def test_syntax_error_reported_not_raised():
    assert codes(lint_source("def broken(:\n", Path("sim/x.py"))) == {"L000"}


def test_lint_path_walks_a_seeded_tree(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "clock.py").write_text(
        "import time\nNOW = time.time()\n", encoding="utf-8"
    )
    (tmp_path / "analysis").mkdir()
    (tmp_path / "analysis" / "ok.py").write_text(
        "import time\nNOW = time.time()\n", encoding="utf-8"
    )
    findings = lint_path(tmp_path)
    assert codes(findings) == {"L001"}
    assert all("sim" in f.subject for f in findings)
