"""Tests for the pluggable point-store backends under concurrency.

The store contract the tuning service depends on: concurrent writer
*processes* lose no records and corrupt no lines (JSONL appends are one
O_APPEND write; SQLite runs WAL with upsert-on-key), duplicate records
collapse, and a legacy JSON-lines store migrates into SQLite losslessly.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.bench.cache import (
    JsonlStore,
    PointCache,
    SqliteStore,
    open_store,
)
from repro.bench.cellspec import CellOutcome, CellSpec

SPEC = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
OUTCOME = CellOutcome(ok=True, tflops=40.0, seconds=0.1, flops=4e12)


# ------------------------------------------------------------------ dispatch


def test_open_store_dispatches_on_suffix(tmp_path):
    assert isinstance(open_store(tmp_path / "points.jsonl"), JsonlStore)
    assert isinstance(open_store(tmp_path / "points.txt"), JsonlStore)
    for suffix in (".sqlite", ".sqlite3", ".db"):
        store = open_store(tmp_path / f"points{suffix}")
        assert isinstance(store, SqliteStore)
        store.close()


def test_point_cache_accepts_explicit_store(tmp_path):
    store = SqliteStore(tmp_path / "points.sqlite")
    cache = PointCache(store=store)
    assert cache.persistent
    assert cache.path == store.path
    cache.put(SPEC, "fp", OUTCOME)
    assert PointCache(tmp_path / "points.sqlite").get(SPEC, "fp") == OUTCOME
    cache.close()


# --------------------------------------------------------------- JSONL store


def test_jsonl_append_writes_one_complete_line(tmp_path):
    path = tmp_path / "points.jsonl"
    store = JsonlStore(path)
    store.append(SPEC.cache_key(), "fp", OUTCOME.to_json())
    (line,) = path.read_text().splitlines()
    record = json.loads(line)
    assert record["key"] == SPEC.cache_key()
    assert record["outcome"]["tflops"] == 40.0


def test_jsonl_duplicate_records_collapse_on_load(tmp_path):
    path = tmp_path / "points.jsonl"
    store = JsonlStore(path)
    for _ in range(3):  # racing writers append the same cold cell
        store.append(SPEC.cache_key(), "fp", OUTCOME.to_json())
    assert len(path.read_text().splitlines()) == 3
    assert len(list(store.load())) == 1
    assert len(PointCache(path)) == 1


# -------------------------------------------------------------- SQLite store


def test_sqlite_round_trip_and_upsert(tmp_path):
    store = SqliteStore(tmp_path / "points.sqlite")
    store.append(SPEC.cache_key(), "fp", OUTCOME.to_json())
    store.append(SPEC.cache_key(), "fp", OUTCOME.to_json())  # upsert, no dup
    assert len(store) == 1
    assert store.lookup(SPEC.cache_key(), "fp") == OUTCOME.to_json()
    assert store.lookup(SPEC.cache_key(), "other-fp") is None
    records = list(store.load())
    assert records == [(SPEC.cache_key(), "fp", OUTCOME.to_json())]
    store.close()


def test_sqlite_cache_round_trip_with_hit_attribution(tmp_path):
    path = tmp_path / "points.db"
    writer = PointCache(path)
    writer.put(SPEC, "fp", OUTCOME)
    writer.close()
    reader = PointCache(path)
    assert reader.get(SPEC, "fp") == OUTCOME
    assert reader.stats()["store_hits"] == 1
    # A different fingerprint must never serve the stale record.
    assert reader.get(SPEC, "fp-new") is None
    reader.close()


def test_sqlite_live_lookup_shares_writes_across_cache_instances(tmp_path):
    # Two caches over one database, as two server processes would hold:
    # a miss in B's memo re-checks the store and sees A's fresh write.
    path = tmp_path / "points.sqlite"
    cache_a = PointCache(path)
    cache_b = PointCache(path)  # loaded while the store was empty
    cache_a.put(SPEC, "fp", OUTCOME)
    assert cache_b.get(SPEC, "fp") == OUTCOME
    assert cache_b.stats()["store_hits"] == 1
    assert cache_b.stats()["misses"] == 0
    cache_a.close()
    cache_b.close()


def test_contains_is_a_non_counting_peek(tmp_path):
    cache = PointCache(tmp_path / "points.sqlite")
    assert not cache.contains(SPEC, "fp")
    cache.put(SPEC, "fp", OUTCOME)
    assert cache.contains(SPEC, "fp")
    assert cache.stats()["memo_hits"] == 0
    assert cache.stats()["misses"] == 0
    cache.close()


# ------------------------------------------------------- multi-process writes

WRITERS = 4
RECORDS_PER_WRITER = 25


def _fork_context():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return multiprocessing.get_context("fork")


def _write_records(path: str, writer_idx: int) -> None:
    store = open_store(path)
    for i in range(RECORDS_PER_WRITER):
        spec = CellSpec(
            library="xkblas", routine="gemm",
            n=1024 * (writer_idx + 1), nb=64 + i,
        )
        outcome = {"ok": True, "tflops": float(writer_idx * 1000 + i)}
        store.append(spec.cache_key(), "fp", outcome)
    store.close()


@pytest.mark.parametrize("filename", ["points.jsonl", "points.sqlite"])
def test_concurrent_writer_processes_lose_nothing(tmp_path, filename):
    path = tmp_path / filename
    ctx = _fork_context()
    procs = [
        ctx.Process(target=_write_records, args=(str(path), idx))
        for idx in range(WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    store = open_store(path)
    records = {(key, fp): payload for key, fp, payload in store.load()}
    store.close()
    assert len(records) == WRITERS * RECORDS_PER_WRITER
    expected = {
        float(idx * 1000 + i)
        for idx in range(WRITERS)
        for i in range(RECORDS_PER_WRITER)
    }
    assert {payload["tflops"] for payload in records.values()} == expected


def test_concurrent_jsonl_appends_never_interleave_partial_lines(tmp_path):
    path = tmp_path / "points.jsonl"
    ctx = _fork_context()
    procs = [
        ctx.Process(target=_write_records, args=(str(path), idx))
        for idx in range(WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == WRITERS * RECORDS_PER_WRITER
    for line in lines:  # every line parses: no torn interleavings
        record = json.loads(line)
        assert set(record) == {"key", "fingerprint", "outcome"}


# ------------------------------------------------------------------ migration


def test_jsonl_to_sqlite_migration_round_trip(tmp_path):
    jsonl_path = tmp_path / "legacy.jsonl"
    legacy = PointCache(jsonl_path)
    specs = [
        CellSpec(library="xkblas", routine="gemm", n=4096 * i, nb=1024)
        for i in range(1, 5)
    ]
    for i, spec in enumerate(specs):
        legacy.put(spec, "fp", CellOutcome(ok=True, tflops=float(i), seconds=0.1))
    legacy.put(specs[0], "other-fp", CellOutcome(ok=False, error="boom"))
    legacy.close()
    # Simulate pre-upgrade duplicate growth: re-append existing records.
    store = JsonlStore(jsonl_path)
    store.append(specs[0].cache_key(), "fp", {"ok": True, "tflops": 0.0, "seconds": 0.1})
    assert len(jsonl_path.read_text().splitlines()) == 6

    sqlite_path = tmp_path / "migrated.sqlite"
    dst = SqliteStore(sqlite_path)
    imported = dst.import_jsonl(jsonl_path)
    assert imported == 5  # duplicates compacted to unique (key, fingerprint)
    assert len(dst) == 5
    dst.close()

    migrated = PointCache(sqlite_path)
    for i, spec in enumerate(specs):
        assert migrated.get(spec, "fp").tflops == float(i)
    assert migrated.get(specs[0], "other-fp").ok is False
    migrated.close()
