"""Property tests on the tiled task-graph builders.

Two invariants over random shapes and tile sizes:

* **flop conservation** — the task flops of a builder sum exactly to the
  routine's closed-form flop count (so perf-mode timing and the GFlop/s
  denominators agree for every shape, ragged tiles included);
* **single-writer coverage** — the set of written tiles is exactly the
  routine's output region (full C, or the stored triangle).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blas import flops as fl
from repro.blas import tiled
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.lapack import build_getrf_nopiv, build_lauum, build_potrf, build_trtri
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix


def part(m, n, nb):
    return TilePartition(Matrix.meta(m, n), nb)


dims = st.integers(1, 7)
nbs = st.sampled_from([5, 8, 13])


@settings(max_examples=40, deadline=None)
@given(mi=dims, ni=dims, ki=dims, nb=nbs)
def test_gemm_flops_conserved(mi, ni, ki, nb):
    m, n, k = mi * nb + 3, ni * nb + 1, ki * nb + 2
    tasks = list(
        tiled.build_gemm(1.0, part(m, k, nb), part(k, n, nb), 0.5, part(m, n, nb))
    )
    total = sum(t.flops for t in tasks)
    assert total == pytest.approx(fl.gemm_flops(m, n, k))
    written = {t.output_tile.key for t in tasks}
    assert len(written) == -(-m // nb) * -(-n // nb)


@settings(max_examples=30, deadline=None)
@given(ni=dims, ki=dims, nb=nbs, uplo=st.sampled_from(list(Uplo)))
def test_syrk_flops_close_and_triangle_covered(ni, ki, nb, uplo):
    n, k = ni * nb + 2, ki * nb + 1
    tasks = list(
        tiled.build_syrk(uplo, Trans.NOTRANS, 1.0, part(n, k, nb), 0.0, part(n, n, nb))
    )
    total = sum(t.flops for t in tasks)
    # Diagonal tiles use the exact syrk count, off-diagonal tiles full gemm:
    # the sum matches the routine count to within the diagonal's linear term.
    assert total == pytest.approx(fl.syrk_flops(n, k), rel=0.02)
    written = {(t.output_tile.i, t.output_tile.j) for t in tasks}
    nt = -(-n // nb)
    expect = {
        (i, j)
        for i in range(nt)
        for j in range(nt)
        if (j <= i if uplo is Uplo.LOWER else j >= i)
    }
    assert written == expect


@settings(max_examples=30, deadline=None)
@given(mi=dims, ni=dims, nb=nbs, side=st.sampled_from(list(Side)),
       uplo=st.sampled_from(list(Uplo)))
def test_trsm_flops_conserved(mi, ni, nb, side, uplo):
    m, n = mi * nb + 1, ni * nb + 2
    order = m if side is Side.LEFT else n
    tasks = list(
        tiled.build_trsm(
            side, uplo, Trans.NOTRANS, Diag.NONUNIT, 1.0,
            part(order, order, nb), part(m, n, nb),
        )
    )
    total = sum(t.flops for t in tasks)
    assert total == pytest.approx(fl.trsm_flops(side is Side.LEFT, m, n), rel=0.02)


@settings(max_examples=30, deadline=None)
@given(mi=dims, ni=dims, nb=nbs, side=st.sampled_from(list(Side)),
       uplo=st.sampled_from(list(Uplo)))
def test_trmm_flops_conserved(mi, ni, nb, side, uplo):
    m, n = mi * nb + 2, ni * nb + 1
    order = m if side is Side.LEFT else n
    tasks = list(
        tiled.build_trmm(
            side, uplo, Trans.NOTRANS, Diag.NONUNIT, 1.0,
            part(order, order, nb), part(m, n, nb),
        )
    )
    total = sum(t.flops for t in tasks)
    assert total == pytest.approx(fl.trmm_flops(side is Side.LEFT, m, n), rel=0.02)


@settings(max_examples=20, deadline=None)
@given(ni=dims, nb=nbs, uplo=st.sampled_from(list(Uplo)))
def test_potrf_flops_conserved(ni, nb, uplo):
    n = ni * nb + 3
    tasks = list(build_potrf(uplo, part(n, n, nb)))
    total = sum(t.flops for t in tasks)
    # The tile decomposition over-counts by O(n²) terms (diagonal-tile
    # formulas); the relative error shrinks as nb/n.
    assert total == pytest.approx(n**3 / 3.0, rel=max(0.02, 1.5 * nb / n))
    # Written tiles lie in the stored triangle only.
    for t in tasks:
        i, j = t.output_tile.i, t.output_tile.j
        assert j <= i if uplo is Uplo.LOWER else j >= i


@settings(max_examples=20, deadline=None)
@given(ni=dims, nb=nbs, uplo=st.sampled_from(list(Uplo)))
def test_trtri_and_lauum_flops_conserved(ni, nb, uplo):
    n = ni * nb + 1
    tol = max(0.02, 1.5 * nb / n)
    trtri_total = sum(
        t.flops for t in build_trtri(uplo, Diag.NONUNIT, part(n, n, nb))
    )
    assert trtri_total == pytest.approx(n**3 / 3.0, rel=tol)
    lauum_total = sum(t.flops for t in build_lauum(uplo, part(n, n, nb)))
    assert lauum_total == pytest.approx(n**3 / 3.0, rel=tol)


@settings(max_examples=20, deadline=None)
@given(ni=dims, nb=nbs)
def test_getrf_flops_conserved(ni, nb):
    n = ni * nb + 2
    total = sum(t.flops for t in build_getrf_nopiv(part(n, n, nb)))
    assert total == pytest.approx(2.0 * n**3 / 3.0, rel=max(0.02, 1.5 * nb / n))


@settings(max_examples=25, deadline=None)
@given(ni=dims, ki=dims, nb=nbs, uplo=st.sampled_from(list(Uplo)))
def test_syr2k_is_twice_syrk(ni, ki, nb, uplo):
    n, k = ni * nb, ki * nb
    syrk_total = sum(
        t.flops
        for t in tiled.build_syrk(uplo, Trans.NOTRANS, 1.0, part(n, k, nb), 0.0, part(n, n, nb))
    )
    syr2k_total = sum(
        t.flops
        for t in tiled.build_syr2k(
            uplo, Trans.NOTRANS, 1.0, part(n, k, nb), part(n, k, nb), 0.0, part(n, n, nb)
        )
    )
    assert syr2k_total == pytest.approx(2 * syrk_total)
