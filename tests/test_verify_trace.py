"""Tests for the post-mortem trace linter (:mod:`repro.verify.trace_lint`).

Real runs lint clean; synthetic traces seed each violation class — an
overlapping duplicate H2D, a forward without provenance, a rank-order
contradiction — and the linter must convict exactly those.
"""

from repro import Runtime
from repro.blas.tiled import build_gemm
from repro.memory.layout import BlockCyclicDistribution
from repro.memory.matrix import Matrix
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.dgx1 import make_dgx1
from repro.verify.trace_lint import lint_trace

KEY = "T(0:0,0)"


def codes(findings):
    return {f.code for f in findings}


def h2d(tr, dev, start, end, key=KEY):
    tr.record(TraceCategory.MEMCPY_HTOD, dev, start, end, f"h2d {key}")


def d2h(tr, dev, start, end, key=KEY):
    tr.record(TraceCategory.MEMCPY_DTOH, dev, start, end, f"d2h {key}")


def p2p(tr, src, dst, start, end, key=KEY):
    tr.record(TraceCategory.MEMCPY_PTOP, dst, start, end, f"p2p {src}->{dst} {key}")


def kernel(tr, dev, start, end):
    tr.record(TraceCategory.KERNEL, dev, start, end, "dgemm")


# ------------------------------------------------------------------ real runs


def test_executed_gemm_trace_lints_clean():
    platform = make_dgx1(2)
    rt = Runtime(platform)
    mats = [Matrix.meta(128, 128, name=x) for x in "ABC"]
    parts = [rt.partition(m, 32) for m in mats]
    for t in build_gemm(1.0, parts[0], parts[1], 0.5, parts[2]):
        rt.submit(t)
    rt.memory_coherent_async(mats[2], 32)
    rt.sync()
    evictions = sum(int(c.stats()["evictions"]) for c in rt.caches.values())
    assert lint_trace(rt.trace, platform, evictions=evictions) == []


def test_distribution_phase_lints_clean_under_topology_rules():
    platform = make_dgx1(4)
    rt = Runtime(platform)
    dist = BlockCyclicDistribution(grid_p=2, grid_q=2)
    rt.distribute_2d_block_cyclic_async(
        Matrix.meta(128, 128, name="D"), 32, dist, upload=True
    )
    rt.sync()
    assert lint_trace(rt.trace, platform, topology_aware=True) == []


# ----------------------------------------------------- seeded violations


def test_malformed_label_detected():
    tr = TraceRecorder()
    tr.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, "memcpy of something")
    assert codes(lint_trace(tr)) == {"T001"}


def test_self_transfer_detected():
    tr = TraceRecorder()
    h2d(tr, 1, 0.0, 1.0)
    p2p(tr, 1, 1, 2.0, 3.0)
    assert "T002" in codes(lint_trace(tr))


def test_unknown_endpoint_detected():
    tr = TraceRecorder()
    h2d(tr, 5, 0.0, 1.0)  # no device 5 on a 2-GPU platform
    assert codes(lint_trace(tr, make_dgx1(2))) == {"T003"}
    assert lint_trace(tr) == []  # without a platform the rule is off


def test_overlapping_duplicate_h2d_detected():
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 2.0)
    h2d(tr, 0, 1.0, 3.0)  # same tile, same device, overlapping: not deduped
    assert codes(lint_trace(tr)) == {"T004"}


def test_sequential_refetch_is_not_a_duplicate():
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 1.0)
    h2d(tr, 0, 2.0, 3.0)  # after the first landed (e.g. an eviction between)
    assert lint_trace(tr) == []


def test_interleaved_h2d_to_distinct_devices_is_legal():
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 2.0)
    h2d(tr, 1, 1.0, 3.0)  # overlaps, but lands elsewhere
    assert lint_trace(tr) == []


def test_p2p_without_provenance_detected():
    tr = TraceRecorder()
    p2p(tr, 0, 1, 0.0, 1.0)  # nothing ever put the tile on device 0
    assert codes(lint_trace(tr)) == {"T005"}
    assert lint_trace(tr, allow_seeded=True) == []  # data-on-device scenario


def test_p2p_after_delivery_or_kernel_is_legal():
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 1.0)
    p2p(tr, 0, 1, 1.0, 2.0)  # delivered by the h2d
    kernel(tr, 2, 0.0, 3.0)
    p2p(tr, 2, 3, 4.0, 5.0, key="T(0:1,1)")  # produced by the kernel
    assert lint_trace(tr) == []


def ranked_pair(platform, dst):
    """Two sources with strictly different link ranks toward ``dst``."""
    sources = [d for d in platform.device_ids() if d != dst]
    sources.sort(key=lambda s: platform.p2p_performance_rank(s, dst))
    best, worst = sources[0], sources[-1]
    if platform.p2p_performance_rank(best, dst) == platform.p2p_performance_rank(
        worst, dst
    ):
        return None
    return best, worst


def test_rank_order_contradiction_detected():
    platform = make_dgx1(8)
    for dst in platform.device_ids():
        pair = ranked_pair(platform, dst)
        if pair is not None:
            break
    assert pair is not None, "DGX-1 must expose unequal link ranks"
    best, worst = pair
    tr = TraceRecorder()
    h2d(tr, best, 0.0, 1.0)
    h2d(tr, worst, 0.0, 1.0)
    p2p(tr, worst, dst, 2.0, 3.0)  # best-ranked holder was ignored
    assert "T006" in codes(lint_trace(tr, platform, topology_aware=True))
    # The same trace sourcing from the best-ranked holder is clean.
    tr2 = TraceRecorder()
    h2d(tr2, best, 0.0, 1.0)
    h2d(tr2, worst, 0.0, 1.0)
    p2p(tr2, best, dst, 2.0, 3.0)
    assert lint_trace(tr2, platform, topology_aware=True) == []


def test_redundant_h2d_fanout_detected():
    platform = make_dgx1(4)
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 1.0)
    h2d(tr, 1, 2.0, 3.0)  # device 0 held the tile: should forward d2d
    assert codes(lint_trace(tr, platform, topology_aware=True)) == {"T007"}
    assert lint_trace(tr, platform) == []  # advisory rule: opt-in only


def test_topology_rules_stay_quiet_after_evictions_or_kernels():
    platform = make_dgx1(4)
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 1.0)
    h2d(tr, 1, 2.0, 3.0)
    # An eviction may have dropped device 0's replica: no certainty, no T007.
    assert lint_trace(tr, platform, topology_aware=True, evictions=1) == []
    # A completed kernel may have invalidated it just the same.
    tr2 = TraceRecorder()
    kernel(tr2, 2, 0.0, 1.5)
    h2d(tr2, 0, 0.0, 1.0)
    h2d(tr2, 1, 2.0, 3.0)
    assert lint_trace(tr2, platform, topology_aware=True) == []


def test_d2h_writeback_is_legal():
    tr = TraceRecorder()
    h2d(tr, 0, 0.0, 1.0)
    kernel(tr, 0, 1.0, 2.0)
    d2h(tr, 0, 2.0, 3.0)
    assert lint_trace(tr) == []
