"""Tests for the post-mortem analysis module."""

import pytest

from repro import Runtime
from repro.bench.harness import run_point
from repro.memory.matrix import Matrix
from repro.runtime.task import Task, make_access_list
from repro.sim.analysis import analyze, critical_path, load_imbalance, overlap_efficiency
from repro.sim.trace import TraceCategory, TraceRecorder


def chain_runtime(dgx1_small, length=5):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(1024, 1024), 1024)
    tile = part[(0, 0)]
    for i in range(length):
        rt.submit(
            Task(
                name=f"t{i}",
                accesses=make_access_list(readwrites=[tile]),
                flops=1e9,
                dim=1024,
            )
        )
    rt.sync()
    return rt


def test_critical_path_of_pure_chain(dgx1_small):
    rt = chain_runtime(dgx1_small, length=5)
    cp, chain = critical_path(rt.executor.graph)
    assert len(chain) == 5
    kernel_sum = sum(t.duration for t in rt.executor.graph.tasks)
    assert cp == pytest.approx(kernel_sum)
    report = analyze(rt)
    assert report["dependency_limited"] is True
    assert report["critical_path_tasks"] == 5


def test_critical_path_of_parallel_tasks(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(4096, 4096), 1024)
    for i in range(4):
        for j in range(4):
            rt.submit(
                Task(
                    name="p",
                    accesses=make_access_list(readwrites=[part[(i, j)]]),
                    flops=1e9,
                    dim=1024,
                )
            )
    rt.sync()
    cp, chain = critical_path(rt.executor.graph)
    assert len(chain) == 1  # no dependencies: the path is one task
    assert cp < sum(t.duration for t in rt.executor.graph.tasks)


def test_critical_path_empty_graph(dgx1_small):
    rt = Runtime(dgx1_small)
    assert critical_path(rt.executor.graph) == (0.0, [])


def test_overlap_efficiency_bounds():
    tr = TraceRecorder()
    # transfer fully under a kernel -> hidden
    tr.record(TraceCategory.KERNEL, 0, 0.0, 10.0)
    tr.record(TraceCategory.MEMCPY_HTOD, 0, 2.0, 4.0)
    assert overlap_efficiency(tr, 0) == pytest.approx(1.0)
    # second transfer fully exposed
    tr.record(TraceCategory.MEMCPY_HTOD, 0, 20.0, 24.0)
    assert overlap_efficiency(tr, 0) == pytest.approx(2.0 / 6.0)
    # device with no transfers: perfectly overlapped by definition
    assert overlap_efficiency(tr, 3) == 1.0


def test_load_imbalance_metric():
    tr = TraceRecorder()
    tr.record(TraceCategory.KERNEL, 0, 0.0, 4.0)
    tr.record(TraceCategory.KERNEL, 1, 0.0, 2.0)
    assert load_imbalance(tr, [0, 1]) == pytest.approx((4 - 2) / 3)
    assert load_imbalance(TraceRecorder(), [0, 1]) == 0.0


def test_analyze_real_gemm_run(dgx1_small):
    res = run_point("xkblas", "gemm", 8192, 1024, dgx1_small, keep_runtime=True)
    report = analyze(res.runtime)
    assert 0 < report["critical_path_s"] <= report["makespan_s"] * 1.001
    assert 0 <= report["transfer_share"] < 1
    assert set(report["overlap_efficiency"]) == set(range(4))
    assert all(0 <= v <= 1 for v in report["overlap_efficiency"].values())
    # A 8x8-tile GEMM on 4 GPUs is resource-limited, not dependency-limited.
    assert not report["dependency_limited"]
