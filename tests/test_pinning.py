"""Tests for the host page-locking cost model (§IV-A methodology knob)."""

import pytest

from repro import Runtime, RuntimeOptions
from repro.blas.tiled import build_gemm
from repro.memory.matrix import Matrix
from repro.sim.trace import TraceCategory


def gemm_runtime(dgx1_small, pinning=None):
    rt = Runtime(dgx1_small, RuntimeOptions(pinning_bandwidth=pinning))
    mats = [Matrix.meta(4096, 4096, name=x) for x in "ABC"]
    parts = [rt.partition(m, 1024) for m in mats]
    for t in build_gemm(1.0, parts[0], parts[1], 1.0, parts[2]):
        rt.submit(t)
    rt.memory_coherent_async(mats[2], 1024)
    rt.sync()
    return rt, mats


def test_default_ignores_pinning(dgx1_small):
    """The paper's methodology: page-lock time excluded by default."""
    rt, _ = gemm_runtime(dgx1_small, pinning=None)
    assert not rt.trace.filter(category=TraceCategory.HOST)


def test_pinning_charged_once_per_matrix(dgx1_small):
    rt, mats = gemm_runtime(dgx1_small, pinning=5e9)
    pins = rt.trace.filter(category=TraceCategory.HOST)
    assert len(pins) == 3  # A, B and C each registered exactly once
    for iv in pins:
        assert iv.duration == pytest.approx(mats[0].nbytes / 5e9)


def test_pinning_is_serial_host_work(dgx1_small):
    rt, _ = gemm_runtime(dgx1_small, pinning=5e9)
    pins = sorted(rt.trace.filter(category=TraceCategory.HOST), key=lambda iv: iv.start)
    for a, b in zip(pins, pins[1:]):
        assert b.start >= a.end - 1e-12


def test_pinning_slows_first_run(dgx1_small):
    baseline, _ = gemm_runtime(dgx1_small, pinning=None)
    pinned, _ = gemm_runtime(dgx1_small, pinning=5e9)
    assert pinned.sim.now > baseline.sim.now


def test_pinning_amortized_across_calls(dgx1_small):
    """A second call on the same matrices pays nothing — the amortization
    assumption the paper states."""
    rt = Runtime(dgx1_small, RuntimeOptions(pinning_bandwidth=5e9))
    mats = [Matrix.meta(4096, 4096, name=x) for x in "ABC"]
    parts = [rt.partition(m, 1024) for m in mats]
    for t in build_gemm(1.0, parts[0], parts[1], 0.0, parts[2]):
        rt.submit(t)
    first = rt.sync()
    pins_after_first = len(rt.trace.filter(category=TraceCategory.HOST))
    for t in build_gemm(1.0, parts[0], parts[1], 1.0, parts[2]):
        rt.submit(t)
    rt.sync()
    assert len(rt.trace.filter(category=TraceCategory.HOST)) == pins_after_first
