"""Tests for the executor and the Runtime facade."""

import numpy as np
import pytest

from repro import Runtime, RuntimeOptions
from repro.errors import SchedulingError
from repro.memory.layout import BlockCyclicDistribution
from repro.memory.matrix import Matrix
from repro.runtime.access import Access, AccessMode
from repro.runtime.task import Task, make_access_list
from repro.sim.trace import TraceCategory


def make_runtime(platform, **opts) -> Runtime:
    return Runtime(platform, RuntimeOptions(**opts))


def simple_task(part, i, j, reads=(), flops=1e9, kernel=None):
    return Task(
        name="k",
        accesses=make_access_list(reads=reads, readwrites=[part[(i, j)]]),
        flops=flops,
        dim=1024,
        kernel=kernel,
    )


def test_single_task_executes(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(2048, 2048), 1024)
    t = rt.submit(simple_task(part, 0, 0))
    makespan = rt.sync()
    assert t.state == "done"
    assert t.device is not None
    assert makespan >= t.end_time - 1e-12
    assert rt.executor.completed_tasks == 1


def test_dependent_tasks_serialize_in_time(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(2048, 2048), 1024)
    t1 = rt.submit(simple_task(part, 0, 0))
    t2 = rt.submit(simple_task(part, 0, 0))  # RW same tile
    rt.sync()
    assert t2.start_time >= t1.end_time


def test_independent_tasks_overlap_across_devices(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(4096, 4096), 1024)
    tasks = [rt.submit(simple_task(part, i, j, flops=5e10)) for i in range(4) for j in range(4)]
    rt.sync()
    devices = {t.device for t in tasks}
    assert len(devices) == 4  # all GPUs participated
    # At least two kernels overlap in virtual time.
    spans = sorted((t.start_time, t.end_time) for t in tasks)
    assert any(b_start < a_end for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]))


def test_kernel_waits_for_inputs(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(4096, 4096), 2048)
    t = rt.submit(simple_task(part, 0, 0, reads=[part[(1, 0)], part[(0, 1)]]))
    rt.sync()
    h2d = [iv for iv in rt.trace if iv.category is TraceCategory.MEMCPY_HTOD]
    assert h2d and t.start_time >= max(iv.end for iv in h2d) - 1e-12


def test_numeric_kernel_runs_on_device_arrays(dgx1_small):
    rt = Runtime(dgx1_small)
    mat = Matrix.zeros(64, 64)
    part = rt.partition(mat, 32)

    def kern(c):
        c += 7.0

    t = Task(
        name="incr",
        accesses=[Access(part[(0, 0)], AccessMode.READWRITE)],
        flops=1.0,
        dim=32,
        kernel=kern,
    )
    rt.submit(t)
    rt.memory_coherent_async(mat)
    rt.sync()
    arr = mat.to_array()
    assert np.all(arr[:32, :32] == 7.0)
    assert np.all(arr[32:, :] == 0.0)


def test_flush_waits_for_writer(dgx1_small):
    rt = Runtime(dgx1_small)
    mat = Matrix.meta(2048, 2048)
    part = rt.partition(mat, 1024)
    w = rt.submit(simple_task(part, 0, 0, flops=1e11))
    rt.memory_coherent_async(mat)
    rt.sync()
    d2h = [iv for iv in rt.trace if iv.category is TraceCategory.MEMCPY_DTOH]
    assert len(d2h) == 1  # only the written tile needs a write-back
    assert d2h[0].start >= w.end_time - 1e-12
    assert rt.directory.host_valid(part[(0, 0)].key)


def test_task_submission_overhead_spaces_submissions(dgx1_small):
    overhead = 1e-3
    rt = make_runtime(dgx1_small, task_overhead=overhead)
    part = rt.partition(Matrix.meta(4096, 4096), 1024)
    tasks = [rt.submit(simple_task(part, i, 0, flops=1.0)) for i in range(4)]
    rt.sync()
    # Task i cannot start before its submission instant (i+1) * overhead.
    for i, t in enumerate(tasks):
        assert t.start_time >= (i + 1) * overhead - 1e-12


def test_write_only_task_skips_input_transfer(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(2048, 2048), 1024)
    t = Task(
        name="w",
        accesses=[Access(part[(0, 0)], AccessMode.WRITE)],
        flops=1e9,
        dim=1024,
    )
    rt.submit(t)
    rt.sync()
    assert rt.transfer.stats()["h2d"] == 0
    assert rt.directory.modified_location(part[(0, 0)].key) == t.device


def test_no_overlap_mode_serializes_transfer_and_kernel(dgx1_small):
    rt_overlap = make_runtime(dgx1_small, overlap=True)
    rt_serial = make_runtime(dgx1_small, overlap=False)
    for rt in (rt_overlap, rt_serial):
        part = rt.partition(Matrix.meta(8192, 8192), 2048)
        for i in range(4):
            for j in range(4):
                rt.submit(
                    simple_task(part, i, j, reads=[part[(j, i)]] if i != j else (), flops=1e10)
                )
        rt.sync()
    assert rt_serial.sim.now > rt_overlap.sim.now


def test_retain_inputs_false_drops_clean_replicas(dgx1_small):
    rt = make_runtime(dgx1_small, retain_inputs=False)
    part = rt.partition(Matrix.meta(4096, 4096), 1024)
    t = rt.submit(simple_task(part, 0, 0, reads=[part[(1, 1)]]))
    rt.sync()
    # The read tile was dropped after the task; the written one stays.
    assert not rt.directory.valid_devices(part[(1, 1)].key)
    assert rt.directory.valid_devices(part[(0, 0)].key) == [t.device]


def test_distribute_seed_places_tiles(dgx1_small):
    rt = Runtime(dgx1_small)
    mat = Matrix.meta(4096, 4096)
    dist = BlockCyclicDistribution(2, 2)
    part = rt.distribute_2d_block_cyclic_async(mat, 1024, dist, upload=False)
    for tile in part:
        assert rt.directory.modified_location(tile.key) == dist.owner(tile.i, tile.j)
        assert not rt.directory.host_valid(tile.key)


def test_distribute_upload_transfers(dgx1_small):
    rt = Runtime(dgx1_small)
    mat = Matrix.meta(4096, 4096)
    dist = BlockCyclicDistribution(2, 2)
    rt.distribute_2d_block_cyclic_async(mat, 1024, dist, upload=True)
    rt.sim.run()
    assert rt.transfer.stats()["h2d"] == 16
    assert rt.fabric.host_bytes_total() == mat.nbytes


def test_stats_shape(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(2048, 2048), 1024)
    rt.submit(simple_task(part, 0, 0))
    rt.sync()
    stats = rt.stats()
    assert set(stats) >= {"makespan", "tasks", "transfers", "caches", "steals"}


def test_unknown_scheduler_rejected(dgx1_small):
    with pytest.raises(SchedulingError):
        make_runtime(dgx1_small, scheduler="nope")
    with pytest.raises(SchedulingError):
        make_runtime(dgx1_small, eviction="nope")


def test_sync_idempotent_and_composable(dgx1_small):
    rt = Runtime(dgx1_small)
    part = rt.partition(Matrix.meta(2048, 2048), 1024)
    rt.submit(simple_task(part, 0, 0))
    first = rt.sync()
    assert rt.sync() == first  # nothing new
    rt.submit(simple_task(part, 0, 0))
    assert rt.sync() > first
