"""Tests for FIFO bandwidth channels."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.channel import Channel
from repro.sim.engine import Simulator


def make_channel(bw=1e9, lat=0.0):
    return Channel(Simulator(), bandwidth=bw, latency=lat, name="test")


def test_transfer_time_is_latency_plus_bytes_over_bw():
    chan = make_channel(bw=2e9, lat=1e-6)
    assert chan.transfer_time(2_000_000_000) == pytest.approx(1.0 + 1e-6)


def test_zero_bytes_costs_only_latency():
    chan = make_channel(bw=1e9, lat=5e-6)
    assert chan.transfer_time(0) == pytest.approx(5e-6)


def test_negative_bytes_rejected():
    with pytest.raises(SimulationError):
        make_channel().transfer_time(-1)


def test_invalid_bandwidth_rejected():
    with pytest.raises(SimulationError):
        Channel(Simulator(), bandwidth=0.0)
    with pytest.raises(SimulationError):
        Channel(Simulator(), bandwidth=1e9, latency=-1.0)


def test_reservations_serialize_fifo():
    chan = make_channel(bw=1e9)
    s1, e1 = chan.reserve(1_000_000_000)  # 1 second
    s2, e2 = chan.reserve(1_000_000_000)
    assert (s1, e1) == (0.0, pytest.approx(1.0))
    assert s2 == pytest.approx(1.0)
    assert e2 == pytest.approx(2.0)
    assert chan.busy_until == pytest.approx(2.0)


def test_earliest_lower_bounds_the_start():
    chan = make_channel(bw=1e9)
    start, end = chan.reserve(1_000, earliest=5.0)
    assert start == 5.0
    assert end > 5.0


def test_earliest_before_backlog_waits_for_backlog():
    chan = make_channel(bw=1e9)
    chan.reserve(1_000_000_000)  # busy until 1.0
    start, _ = chan.reserve(1_000, earliest=0.5)
    assert start == pytest.approx(1.0)


def test_accounting():
    chan = make_channel()
    chan.reserve(100)
    chan.reserve(200)
    assert chan.bytes_moved == 300
    assert chan.transfer_count == 2


def test_occupy_blocks_interval_and_accounts():
    # The public API for externally-timed occupancy (PCIe-peer routes charge
    # both host pipes for an interval the fabric computed itself).
    chan = make_channel(bw=1e9)
    chan.occupy(2.0, 5.0, nbytes=300)
    assert chan.busy_until == 5.0
    assert chan.bytes_moved == 300
    assert chan.transfer_count == 1
    start, _ = chan.reserve(1_000)  # FIFO: queued behind the occupancy
    assert start == pytest.approx(5.0)


def test_occupy_never_rewinds_busy_until():
    chan = make_channel(bw=1e9)
    chan.reserve(1_000_000_000)  # busy until 1.0
    chan.occupy(0.1, 0.2, nbytes=10)
    assert chan.busy_until == pytest.approx(1.0)


def test_occupy_rejects_invalid_intervals():
    chan = make_channel()
    with pytest.raises(SimulationError):
        chan.occupy(2.0, 1.0, nbytes=10)
    with pytest.raises(SimulationError):
        chan.occupy(0.0, 1.0, nbytes=-1)


def test_utilization_bounds():
    chan = make_channel(bw=1e9)
    chan.reserve(500_000_000)
    assert chan.utilization(horizon=1.0) == pytest.approx(0.5)
    assert chan.utilization(horizon=0.0) == 0.0
    assert chan.utilization(horizon=0.1) == 1.0  # clamped


def test_utilization_negative_horizon_is_zero():
    """Regression: a negative horizon (e.g. a caller probing ``now - t0``
    before the epoch) must report idle, not raise or return garbage."""
    chan = make_channel(bw=1e9)
    chan.reserve(500_000_000)
    assert chan.utilization(horizon=-1.0) == 0.0
    assert chan.utilization(horizon=-1e-12) == 0.0


def test_reserve_batch_bit_identical_to_sequential():
    """The contract: a batch reservation must be bit-for-bit the same as the
    equivalent sequence of single ``reserve`` calls — starts, ends,
    ``busy_until`` and traffic counters, compared with ``==``."""
    requests = [
        (1_000_000_000, 0.0),
        (3, 0.5),
        (0, 7.25),
        (123_456_789, 0.0),
        (1, 1e-9),
    ]
    seq = make_channel(bw=3e9, lat=1.7e-6)
    batch = make_channel(bw=3e9, lat=1.7e-6)
    expected = [seq.reserve(nbytes, earliest=e) for nbytes, e in requests]
    got = batch.reserve_batch(requests)
    assert got == expected
    assert batch.busy_until == seq.busy_until
    assert batch.bytes_moved == seq.bytes_moved
    assert batch.transfer_count == seq.transfer_count


def test_reserve_batch_rejects_negative_size_atomically():
    """State mutations land after the loop, so a bad request leaves the
    channel untouched — no half-applied backlog or counters."""
    chan = make_channel(bw=1e9)
    with pytest.raises(SimulationError):
        chan.reserve_batch([(100, 0.0), (-1, 0.0)])
    assert chan.busy_until == 0.0
    assert chan.bytes_moved == 0
    assert chan.transfer_count == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**9),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=20,
    ),
    st.floats(min_value=1e6, max_value=1e11),
)
def test_property_reserve_batch_matches_sequential(requests, bw):
    seq = Channel(Simulator(), bandwidth=bw, latency=1e-7)
    batch = Channel(Simulator(), bandwidth=bw, latency=1e-7)
    expected = [seq.reserve(nbytes, earliest=e) for nbytes, e in requests]
    assert batch.reserve_batch(requests) == expected
    assert batch.busy_until == seq.busy_until
    assert batch.bytes_moved == seq.bytes_moved


@given(
    st.lists(st.integers(min_value=1, max_value=10**9), min_size=1, max_size=30),
    st.floats(min_value=1e6, max_value=1e11),
)
def test_property_fifo_intervals_never_overlap(sizes, bw):
    chan = Channel(Simulator(), bandwidth=bw, latency=1e-7)
    intervals = [chan.reserve(nbytes) for nbytes in sizes]
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2  # FIFO: next starts after previous ends
        assert s2 < e2
    total_bytes = sum(sizes)
    assert chan.busy_until >= total_bytes / bw
