"""Tests for the transfer manager — the paper's two heuristics."""

from repro import Runtime, RuntimeOptions
from repro.memory.matrix import Matrix
from repro.runtime.policies import SourcePolicy
from repro.topology.dgx1 import make_dgx1
from repro.topology.link import HOST


def setup(policy=SourcePolicy.TOPOLOGY_OPTIMISTIC, num_gpus=8):
    rt = Runtime(make_dgx1(num_gpus), RuntimeOptions(source_policy=policy))
    mat = Matrix.meta(4096, 4096, name="A")
    part = rt.partition(mat, 1024)
    return rt, part


def test_first_fetch_comes_from_host():
    rt, part = setup()
    tile = part[(0, 0)]
    ready = rt.transfer.ensure_resident(tile, dst=0)
    assert ready > 0
    rt.sim.run()
    assert rt.directory.is_valid(tile.key, 0)
    assert rt.transfer.stats()["h2d"] == 1


def test_second_fetch_same_device_is_free():
    rt, part = setup()
    tile = part[(0, 0)]
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    again = rt.transfer.ensure_resident(tile, dst=0)
    assert again == rt.sim.now  # already valid, no new transfer
    assert rt.transfer.stats()["h2d"] == 1


def test_inflight_request_deduplicated():
    """A second request to the same destination while in flight does not
    issue another copy — the §III-C duplicate-transfer avoidance."""
    rt, part = setup()
    tile = part[(0, 0)]
    first = rt.transfer.ensure_resident(tile, dst=0)
    second = rt.transfer.ensure_resident(tile, dst=0)
    assert second == first
    assert rt.transfer.stats()["h2d"] == 1


def test_topology_policy_picks_best_ranked_source():
    """With replicas on a 2xNVLink peer and a PCIe peer, the topology-aware
    policy sources from the NVLink one (§III-B)."""
    rt, part = setup(SourcePolicy.TOPOLOGY)
    tile = part[(0, 0)]
    # GPU 3 is 2xNVLink from 0; GPU 5 is PCIe from 0 (DGX-1 wiring).
    rt.directory.seed_device(tile.key, 3, exclusive=False)
    rt.caches[3].insert(tile.key, tile.nbytes)
    rt.directory.seed_device(tile.key, 5, exclusive=False)
    rt.caches[5].insert(tile.key, tile.nbytes)
    src, _ = rt.transfer.preview_source(tile.key, 0)
    assert src == 3
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    assert rt.transfer.stats()["p2p"] == 1
    ptop = [iv for iv in rt.trace if "p2p 3->0" in iv.label]
    assert len(ptop) == 1


def test_host_only_policy_ignores_device_replicas():
    rt, part = setup(SourcePolicy.HOST_ONLY)
    tile = part[(0, 0)]
    rt.directory.seed_device(tile.key, 3, exclusive=False)
    rt.caches[3].insert(tile.key, tile.nbytes)
    src, bw = rt.transfer.preview_source(tile.key, 0)
    assert src == HOST
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    assert rt.transfer.stats()["p2p"] == 0
    assert rt.transfer.stats()["h2d"] == 1


def test_optimistic_chains_on_inflight_replica():
    """§III-C: with a copy in flight to GPU 1 and the host pipe congested,
    a request on GPU 0 waits for the flight and forwards device-to-device."""
    rt, part = setup(SourcePolicy.TOPOLOGY_OPTIMISTIC, num_gpus=2)
    tile = part[(0, 0)]
    # Congest the switch the two GPUs share, then start the flight to GPU 1.
    other = part[(1, 0)]
    for _ in range(6):
        pass
    rt.transfer.ensure_resident(tile, dst=1)
    # Now GPU 0 wants the same tile: host route shares the congested switch,
    # so the optimistic policy chains on the in-flight replica.
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    stats = rt.transfer.stats()
    assert stats["optimistic_forwards"] == 1
    assert stats["h2d"] == 1  # a single PCIe crossing
    assert stats["p2p"] == 1
    assert rt.directory.is_valid(tile.key, 0)
    assert rt.directory.is_valid(tile.key, 1)


def test_non_optimistic_duplicates_host_transfer():
    rt, part = setup(SourcePolicy.TOPOLOGY, num_gpus=2)
    tile = part[(0, 0)]
    rt.transfer.ensure_resident(tile, dst=1)
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    stats = rt.transfer.stats()
    assert stats["h2d"] == 2  # two PCIe crossings of the same tile
    assert stats["optimistic_forwards"] == 0


def test_optimistic_prefers_direct_host_when_faster():
    """A forward behind a long backlog would be pessimism: with idle host
    pipes on the destination's own switch, fetch directly."""
    rt, part = setup(SourcePolicy.TOPOLOGY_OPTIMISTIC, num_gpus=8)
    tile = part[(0, 0)]
    # Flight toward GPU 6 (other switch); GPU 0's own switch is idle, and the
    # P2P route 6->0 is PCIe (slow), so host wins.
    rt.transfer.ensure_resident(tile, dst=6)
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    assert rt.transfer.stats()["h2d"] == 2


def test_write_invalidates_other_replicas():
    rt, part = setup()
    tile = part[(0, 0)]
    rt.transfer.ensure_resident(tile, dst=0)
    rt.transfer.ensure_resident(tile, dst=1)
    rt.sim.run()
    rt.transfer.register_write(tile, device=0, when=rt.sim.now)
    assert rt.directory.valid_devices(tile.key) == [0]
    assert not rt.directory.host_valid(tile.key)
    assert tile.key not in rt.caches[1]
    assert rt.caches[0].is_dirty(tile.key)


def test_ensure_host_valid_writes_back_dirty_replica():
    rt, part = setup()
    tile = part[(0, 0)]
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    rt.transfer.register_write(tile, device=0, when=rt.sim.now)
    end = rt.transfer.ensure_host_valid(tile)
    assert end > rt.sim.now
    rt.sim.run()
    assert rt.directory.host_valid(tile.key)
    # Source replica downgraded to SHARED and no longer dirty.
    assert not rt.caches[0].is_dirty(tile.key)
    assert rt.transfer.stats()["d2h"] == 1


def test_ensure_host_valid_idempotent():
    rt, part = setup()
    tile = part[(0, 0)]
    assert rt.transfer.ensure_host_valid(tile) == rt.sim.now
    assert rt.transfer.stats()["d2h"] == 0


def test_host_only_with_dirty_device_does_writeback_then_h2d():
    rt, part = setup(SourcePolicy.HOST_ONLY)
    tile = part[(0, 0)]
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    rt.transfer.register_write(tile, device=0, when=rt.sim.now)
    rt.transfer.ensure_resident(tile, dst=1)
    rt.sim.run()
    stats = rt.transfer.stats()
    assert stats["d2h"] == 1 and stats["h2d"] == 2
    assert rt.directory.is_valid(tile.key, 1)
