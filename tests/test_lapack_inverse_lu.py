"""Numeric tests for TRTRI, LAUUM, POTRI, GETRF-nopiv and GESV."""

import numpy as np
import pytest

from repro import Runtime
from repro.blas.params import Diag, Uplo
from repro.lapack import (
    build_lauum,
    build_trtri,
    gesv_async,
    getrf_async,
    potri_async,
    trtri_async,
)
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix

N = 130
NB = 32


def tri_matrix(n, uplo, seed=0, unit=False):
    rng = np.random.default_rng(seed)
    full = rng.random((n, n)) + n * np.eye(n)
    tri = np.tril(full) if uplo is Uplo.LOWER else np.triu(full)
    if unit:
        np.fill_diagonal(tri, 1.0)
    return Matrix(n, n, data=np.asfortranarray(full.copy()), name="A"), tri


def run_inplace(dgx1_small, builder_tasks, mat):
    rt = Runtime(dgx1_small)
    for t in builder_tasks(rt):
        rt.submit(t)
    rt.memory_coherent_async(mat, NB)
    rt.sync()


@pytest.mark.parametrize("uplo", list(Uplo))
@pytest.mark.parametrize("diag", list(Diag))
def test_trtri_inverts_triangle(dgx1_small, uplo, diag):
    mat, tri = tri_matrix(N, uplo, seed=1, unit=diag is Diag.UNIT)
    run_inplace(
        dgx1_small,
        lambda rt: build_trtri(uplo, diag, rt.partition(mat, NB)),
        mat,
    )
    got = mat.to_array()
    got_tri = np.tril(got) if uplo is Uplo.LOWER else np.triu(got)
    if diag is Diag.UNIT:
        np.fill_diagonal(got_tri, 1.0)
    product = got_tri @ tri
    np.testing.assert_allclose(product, np.eye(N), atol=1e-8)


@pytest.mark.parametrize("uplo", list(Uplo))
def test_trtri_untouched_triangle_preserved(dgx1_small, uplo):
    mat, _ = tri_matrix(N, uplo, seed=2)
    before = mat.to_array().copy()
    run_inplace(
        dgx1_small,
        lambda rt: build_trtri(uplo, Diag.NONUNIT, rt.partition(mat, NB)),
        mat,
    )
    after = mat.to_array()
    if uplo is Uplo.LOWER:
        np.testing.assert_array_equal(np.triu(after, 1), np.triu(before, 1))
    else:
        np.testing.assert_array_equal(np.tril(after, -1), np.tril(before, -1))


@pytest.mark.parametrize("uplo", list(Uplo))
def test_lauum_triangular_product(dgx1_small, uplo):
    mat, tri = tri_matrix(N, uplo, seed=3)
    run_inplace(
        dgx1_small,
        lambda rt: build_lauum(uplo, rt.partition(mat, NB)),
        mat,
    )
    got = mat.to_array()
    if uplo is Uplo.LOWER:
        expect = tri.T @ tri  # LᴴL
        np.testing.assert_allclose(np.tril(got), np.tril(expect), atol=1e-8)
    else:
        expect = tri @ tri.T  # UUᴴ
        np.testing.assert_allclose(np.triu(got), np.triu(expect), atol=1e-8)


@pytest.mark.parametrize("uplo", list(Uplo))
def test_potri_inverts_spd_matrix(dgx1_small, uplo):
    rng = np.random.default_rng(4)
    m = rng.random((N, N))
    spd = m @ m.T + N * np.eye(N)
    chol_l = np.linalg.cholesky(spd)
    factor = chol_l if uplo is Uplo.LOWER else chol_l.T
    mat = Matrix(N, N, data=np.asfortranarray(factor.copy()), name="L")
    rt = Runtime(dgx1_small)
    potri_async(rt, uplo, mat, NB)
    rt.memory_coherent_async(mat, NB)
    rt.sync()
    got = mat.to_array()
    inv = np.tril(got) if uplo is Uplo.LOWER else np.triu(got)
    inv_full = inv + inv.T - np.diag(np.diag(inv))
    np.testing.assert_allclose(spd @ inv_full, np.eye(N), atol=1e-6)


def test_getrf_nopiv_factors(dgx1_small):
    rng = np.random.default_rng(5)
    a_full = rng.random((N, N)) + N * np.eye(N)  # diagonally dominant
    mat = Matrix(N, N, data=np.asfortranarray(a_full.copy()), name="A")
    rt = Runtime(dgx1_small)
    getrf_async(rt, mat, NB)
    rt.memory_coherent_async(mat, NB)
    rt.sync()
    lu = mat.to_array()
    lower = np.tril(lu, -1) + np.eye(N)
    upper = np.triu(lu)
    np.testing.assert_allclose(lower @ upper, a_full, atol=1e-7)


def test_gesv_solves_system(dgx1_small):
    rng = np.random.default_rng(6)
    a_full = rng.random((N, N)) + N * np.eye(N)
    a = Matrix(N, N, data=np.asfortranarray(a_full.copy()), name="A")
    b = Matrix.random(N, 40, seed=7, name="B")
    b0 = b.to_array().copy()
    rt = Runtime(dgx1_small)
    gesv_async(rt, a, b, NB)
    rt.memory_coherent_async(b, NB)
    rt.sync()
    np.testing.assert_allclose(a_full @ b.to_array(), b0, atol=1e-6)


def test_trtri_async_driver(dgx1_small):
    mat, tri = tri_matrix(97, Uplo.LOWER, seed=8)  # ragged
    rt = Runtime(dgx1_small)
    trtri_async(rt, Uplo.LOWER, mat, NB)
    rt.memory_coherent_async(mat, NB)
    rt.sync()
    np.testing.assert_allclose(
        np.tril(mat.to_array()) @ tri, np.eye(97), atol=1e-8
    )


def test_getrf_zero_pivot_raises():
    from repro.blas.kernels import _lu_nopivot
    from repro.errors import BlasValidationError

    singular = np.zeros((4, 4), order="F")
    with pytest.raises(BlasValidationError, match="pivot"):
        _lu_nopivot(singular)


def test_nonsquare_rejected():
    from repro.errors import BlasValidationError

    part = TilePartition(Matrix.meta(96, 64), 32)
    with pytest.raises(BlasValidationError):
        list(build_trtri(Uplo.LOWER, Diag.NONUNIT, part))
    with pytest.raises(BlasValidationError):
        list(build_lauum(Uplo.LOWER, part))


def test_potri_overlaps_trtri_and_lauum(dgx1_small):
    """Composition: the first LAUUM task starts before the last TRTRI-phase
    task finishes."""
    mat = Matrix.meta(16384, 16384, name="A")
    rt = Runtime(dgx1_small)
    potri_async(rt, Uplo.LOWER, mat, 1024)
    rt.sync()
    tasks = rt.executor.graph.tasks
    trtri_end = max(t.end_time for t in tasks if t.name == "trtri")
    lauum_like = [t for t in tasks if t.name in ("lauum", "syrk")]
    first_lauum = min(t.start_time for t in lauum_like)
    assert first_lauum < trtri_end
