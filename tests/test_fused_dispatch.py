"""Fused-event dispatch contract tests.

The fused runtime (``RuntimeOptions(fused_events=True)``, the default) folds
submission bookkeeping into batched engine events and skips provably-redundant
wake scans.  Its contract, pinned here:

* **bit-identity** — every virtual-time observable (makespan, per-task
  schedule, transfer stats, completed-task count) is identical to the unfused
  dispatch path, for every scheduler, eager and streamed submission, retained
  and reclaiming graphs;
* **fewer events** — the fused path must fire strictly fewer engine events on
  any non-trivial graph (that is its entire point);
* **trace fallback** — attaching a TraceRecorder forces unfused dispatch, so
  per-event tracing never observes a fused (partially-invisible) run;
* **vectorized times** — ``GpuSpec.kernel_time_batch`` is bit-identical to
  the scalar ``kernel_time`` it replaces on the prefill path;
* **same-instant robustness** — random graphs engineered to complete many
  tasks at identical instants (the case the redundant-wake skip collapses)
  stay bit-identical under fusion (hypothesis-driven).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.tiled import build_gemm
from repro.memory.layout import BlockCyclicDistribution
from repro.memory.matrix import Matrix
from repro.runtime.api import Runtime, RuntimeOptions
from repro.runtime.task import Task, make_access_list
from repro.topology.dgx1 import make_dgx1

SCHEDULERS = ("xkaapi-locality-ws", "starpu-dmdas", "owner-computes", "round-robin")


def _run_gemm(scheduler: str, *, fused: bool, streaming: bool = False,
              retain: bool = True, n: int = 4096, nb: int = 512) -> dict:
    """One GEMM point with tracing off (so ``fused`` is actually honoured)."""
    opts: dict = {"scheduler": scheduler, "retain_tasks": retain,
                  "trace": False, "fused_events": fused}
    if scheduler == "owner-computes":
        opts["distribution"] = BlockCyclicDistribution(2, 4)
    rt = Runtime(make_dgx1(8), RuntimeOptions(**opts))
    a, b, c = (Matrix.meta(n, n) for _ in range(3))
    pa, pb, pc = rt.partition(a, nb), rt.partition(b, nb), rt.partition(c, nb)
    tasks = build_gemm(1.0, pa, pb, 0.5, pc)
    if streaming:
        rt.submit_stream(tasks)
    else:
        for task in tasks:
            rt.submit(task)
    rt.memory_coherent_async(c, nb)
    if rt.executor.graph.retain_tasks:
        rt.executor.graph.critical_path_priorities()
    makespan = rt.sync()
    return {
        "makespan_hex": makespan.hex(),
        "events": rt.sim.events_fired,
        "transfers": rt.transfer.stats(),
        "tasks": rt.executor.completed_tasks,
    }


# ------------------------------------------------------------- bit-identity


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("streaming", (False, True), ids=("eager", "streamed"))
def test_fused_equals_unfused_retained(scheduler, streaming):
    fused = _run_gemm(scheduler, fused=True, streaming=streaming)
    unfused = _run_gemm(scheduler, fused=False, streaming=streaming)
    assert fused["makespan_hex"] == unfused["makespan_hex"]
    assert fused["transfers"] == unfused["transfers"]
    assert fused["tasks"] == unfused["tasks"]
    # The entire point of fusion: strictly fewer engine events.
    assert fused["events"] < unfused["events"]


@pytest.mark.parametrize(
    "scheduler", [s for s in SCHEDULERS if s != "starpu-dmdas"]
)
def test_fused_equals_unfused_reclaiming(scheduler):
    # DMDAS needs the retained DAG for critical-path priorities.
    fused = _run_gemm(scheduler, fused=True, streaming=True, retain=False)
    unfused = _run_gemm(scheduler, fused=False, streaming=True, retain=False)
    assert fused["makespan_hex"] == unfused["makespan_hex"]
    assert fused["transfers"] == unfused["transfers"]
    assert fused["tasks"] == unfused["tasks"]
    assert fused["events"] < unfused["events"]


# ------------------------------------------------------------ trace fallback


def test_trace_recorder_forces_unfused_dispatch():
    rt = Runtime(make_dgx1(8), RuntimeOptions(trace=True, fused_events=True))
    assert rt.executor._fused is False
    rt2 = Runtime(make_dgx1(8), RuntimeOptions(trace=False, fused_events=True))
    assert rt2.executor._fused is True


def test_traced_run_matches_untraced_fused_run():
    """Tracing (which disables fusion) must not change virtual time."""
    traced = {}
    for trace in (True, False):
        rt = Runtime(
            make_dgx1(8),
            RuntimeOptions(trace=trace, fused_events=True),
        )
        a, b, c = (Matrix.meta(2048, 2048) for _ in range(3))
        pa, pb, pc = (rt.partition(m, 512) for m in (a, b, c))
        for task in build_gemm(1.0, pa, pb, 0.5, pc):
            rt.submit(task)
        rt.memory_coherent_async(c, 512)
        traced[trace] = (rt.sync().hex(), rt.transfer.stats())
    assert traced[True] == traced[False]


# --------------------------------------------------------- vectorized times


def test_kernel_time_batch_bit_identical_to_scalar():
    gpu = make_dgx1(8).gpus[0]
    shapes = [
        (2.0 * 2048**3, 2048, 8, 1.0),
        (2.0 * 512**3, 512, 8, 1.0),
        (1e9, 1024, 4, 0.7),
        (3.3e7, 96, 8, 0.85),
        (0.0, 256, 8, 1.0),   # degenerate: zero flops
        (1e6, 0, 8, 1.0),     # degenerate: zero dim
    ]
    batch = gpu.kernel_time_batch(
        [s[0] for s in shapes],
        [s[1] for s in shapes],
        [s[2] for s in shapes],
        [s[3] for s in shapes],
    ).tolist()
    for (flops, dim, ws, reg), vec in zip(shapes, batch):
        scalar = gpu.kernel_time(flops, dim, wordsize=ws, regularity=reg)
        assert vec.hex() == scalar.hex(), (flops, dim, ws, reg)


# --------------------------------------- same-instant completion batches


PLATFORM4 = make_dgx1(4)
TILES = 6


@st.composite
def batched_specs(draw):
    """Random graphs biased toward simultaneous completions.

    All tasks share one flop count (equal kernel durations), and reads are
    drawn from a small tile pool, so independent tasks started at the same
    wake finish at exactly the same instant — the completion cascades the
    redundant-wake skip collapses.
    """
    n = draw(st.integers(2, 18))
    scale = draw(st.integers(1, 4))
    specs = []
    for _ in range(n):
        w = draw(st.integers(0, TILES - 1))
        reads = draw(
            st.lists(st.integers(0, TILES - 1), max_size=2, unique=True)
        )
        specs.append(([r for r in reads if r != w], w, scale))
    return specs


def _run_specs(specs, scheduler, fused):
    rt = Runtime(
        PLATFORM4,
        RuntimeOptions(scheduler=scheduler, trace=False, fused_events=fused),
    )
    mat = Matrix.meta(TILES * 16, 16)
    part = rt.partition(mat, 16)
    tiles = part.col(0)
    tasks = []
    for reads, w, scale in specs:
        tasks.append(
            rt.submit(
                Task(
                    name="k",
                    accesses=make_access_list(
                        reads=[tiles[r] for r in reads],
                        readwrites=[tiles[w]],
                        writes=[],
                    ),
                    flops=1e8 * scale,
                    dim=256,
                )
            )
        )
    rt.memory_coherent_async(mat, 16)
    makespan = rt.sync(max_events=200_000)
    schedule = sorted(
        (t.device, t.start_time.hex(), t.end_time.hex()) for t in tasks
    )
    return makespan.hex(), schedule, rt.transfer.stats(), rt.sim.events_fired


@settings(max_examples=30, deadline=None)
@given(batched_specs(),
       st.sampled_from(["xkaapi-locality-ws", "round-robin"]))
def test_property_same_instant_batches_fused_bit_identical(specs, scheduler):
    fused = _run_specs(specs, scheduler, fused=True)
    unfused = _run_specs(specs, scheduler, fused=False)
    # makespan, per-task placement/schedule and transfers all bit-identical…
    assert fused[:3] == unfused[:3]
    # …with no more events than the unfused path fired.
    assert fused[3] <= unfused[3]
