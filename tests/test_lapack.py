"""Tests for the LAPACK-level composition layer (POTRF/POTRS/POSV)."""

import numpy as np
import pytest

from repro import Runtime
from repro.blas.params import Uplo
from repro.lapack import build_potrf, posv_async, potrf_async, potrs_async
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    a = m @ m.T + n * np.eye(n)
    return Matrix(n, n, data=np.asfortranarray(a), name="A")


N = 130
NB = 32


@pytest.mark.parametrize("uplo", list(Uplo))
def test_potrf_matches_numpy_cholesky(dgx1_small, uplo):
    a = spd_matrix(N, seed=1)
    a0 = a.to_array().copy()
    rt = Runtime(dgx1_small)
    potrf_async(rt, uplo, a, NB)
    rt.memory_coherent_async(a, NB)
    rt.sync()
    expect_l = np.linalg.cholesky(a0)
    got = a.to_array()
    if uplo is Uplo.LOWER:
        np.testing.assert_allclose(np.tril(got), expect_l, atol=1e-8)
        # Unstored triangle untouched.
        np.testing.assert_array_equal(
            np.triu(got, 1), np.triu(a0, 1)
        )
    else:
        np.testing.assert_allclose(np.triu(got), expect_l.T, atol=1e-8)
        np.testing.assert_array_equal(np.tril(got, -1), np.tril(a0, -1))


@pytest.mark.parametrize("uplo", list(Uplo))
def test_posv_solves_system(dgx1_small, uplo):
    a = spd_matrix(N, seed=2)
    a0 = a.to_array().copy()
    b = Matrix.random(N, 40, seed=3, name="B")
    b0 = b.to_array().copy()
    rt = Runtime(dgx1_small)
    posv_async(rt, uplo, a, b, NB)
    rt.memory_coherent_async(b, NB)
    rt.sync()
    residual = a0 @ b.to_array() - b0
    assert np.max(np.abs(residual)) < 1e-6


def test_potrs_against_prefactored(dgx1_small):
    a = spd_matrix(N, seed=4)
    a0 = a.to_array().copy()
    chol = np.linalg.cholesky(a0)
    factor = Matrix(N, N, data=np.asfortranarray(np.tril(chol)), name="L")
    b = Matrix.random(N, 16, seed=5, name="B")
    b0 = b.to_array().copy()
    rt = Runtime(dgx1_small)
    potrs_async(rt, Uplo.LOWER, factor, b, NB)
    rt.memory_coherent_async(b, NB)
    rt.sync()
    np.testing.assert_allclose(a0 @ b.to_array(), b0, atol=1e-6)


def test_potrf_task_graph_shape():
    a = Matrix.meta(4 * 64, 4 * 64)
    part = TilePartition(a, 64)
    tasks = list(build_potrf(Uplo.LOWER, part))
    names = [t.name for t in tasks]
    nt = 4
    assert names.count("potrf") == nt
    assert names.count("trsm") == nt * (nt - 1) // 2
    assert names.count("syrk") == nt * (nt - 1) // 2
    assert names.count("gemm") == sum(
        max(0, i - k - 1) for k in range(nt) for i in range(k + 1, nt)
    )
    # Written tiles all live in the stored (lower) triangle.
    assert all(t.output_tile.i >= t.output_tile.j for t in tasks)


def test_potrf_rejects_nonsquare():
    from repro.errors import BlasValidationError

    part = TilePartition(Matrix.meta(128, 64), 64)
    with pytest.raises(BlasValidationError):
        list(build_potrf(Uplo.LOWER, part))


def test_posv_pipeline_overlaps_factor_and_solve(dgx1_small):
    """Composition evidence: the first solve task starts before the last
    factorization task finishes."""
    n, nb = 16384, 1024
    a = Matrix.meta(n, n, name="A")
    b = Matrix.meta(n, n // 4, name="B")
    rt = Runtime(dgx1_small)
    posv_async(rt, Uplo.LOWER, a, b, nb)
    rt.sync()
    tasks = rt.executor.graph.tasks
    factor_tasks = [t for t in tasks if t.name in ("potrf", "syrk")]
    solve_tasks = [
        t
        for t in tasks
        if t.output_tile.key.matrix_id == b.id
    ]
    last_factor_end = max(t.end_time for t in factor_tasks)
    first_solve_start = min(t.start_time for t in solve_tasks)
    assert first_solve_start < last_factor_end


def test_potrf_ragged_tiles(dgx1_small):
    a = spd_matrix(97, seed=6)  # 97 not divisible by 32
    a0 = a.to_array().copy()
    rt = Runtime(dgx1_small)
    potrf_async(rt, Uplo.LOWER, a, 32)
    rt.memory_coherent_async(a, 32)
    rt.sync()
    np.testing.assert_allclose(
        np.tril(a.to_array()), np.linalg.cholesky(a0), atol=1e-8
    )
