"""Tests for device caches and eviction policies."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CoherenceError, DeviceOutOfMemoryError
from repro.memory.cache import (
    Blasx2LevelPolicy,
    DeviceCache,
    LruPolicy,
    POLICIES,
    ReadOnlyFirstPolicy,
)
from repro.memory.tile import TileKey


def key(i, j=0):
    return TileKey(0, i, j)


def make_cache(capacity=1000):
    return DeviceCache(device=0, capacity=capacity)


# ----------------------------------------------------------------- cache


def test_insert_remove_accounting():
    c = make_cache(100)
    c.insert(key(0), 40)
    c.insert(key(1), 30)
    assert (c.used, c.free, len(c)) == (70, 30, 2)
    assert c.remove(key(0)) == 40
    assert c.used == 30


def test_double_insert_rejected():
    c = make_cache()
    c.insert(key(0), 10)
    with pytest.raises(CoherenceError):
        c.insert(key(0), 10)


def test_insert_beyond_capacity_rejected():
    c = make_cache(100)
    with pytest.raises(DeviceOutOfMemoryError):
        c.insert(key(0), 101)


def test_remove_missing_or_pinned_rejected():
    c = make_cache()
    with pytest.raises(CoherenceError):
        c.remove(key(9))
    c.insert(key(0), 10)
    c.pin(key(0))
    with pytest.raises(CoherenceError):
        c.remove(key(0))
    c.unpin(key(0))
    c.remove(key(0))


def test_pin_count_reflects_pins_and_tolerates_missing_keys():
    c = make_cache()
    assert c.pin_count(key(7)) == 0  # non-resident: zero, not an error
    c.insert(key(0), 10)
    assert c.pin_count(key(0)) == 0
    c.pin(key(0))
    c.pin(key(0))
    assert c.pin_count(key(0)) == 2
    c.unpin(key(0))
    assert c.pin_count(key(0)) == 1


def test_unbalanced_unpin_rejected():
    c = make_cache()
    c.insert(key(0), 10)
    with pytest.raises(CoherenceError):
        c.unpin(key(0))


def test_touch_updates_recency_monotonically():
    c = make_cache()
    c.insert(key(0), 10, now=1.0)
    c.touch(key(0), 5.0)
    c.touch(key(0), 3.0)  # never goes backwards
    assert c._resident[key(0)].last_use == 5.0


def test_hit_miss_stats():
    c = make_cache()
    c.insert(key(0), 10)
    assert c.record_access(key(0)) is True
    assert c.record_access(key(1)) is False
    stats = c.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_invalid_capacity_rejected():
    with pytest.raises(CoherenceError):
        DeviceCache(0, capacity=0)


# --------------------------------------------------------------- policies


def setup_residents(c):
    c.insert(key(0), 30, now=1.0)  # oldest, clean
    c.insert(key(1), 30, now=2.0)  # dirty
    c.insert(key(2), 30, now=3.0)  # newest, clean, shared elsewhere
    c.mark_dirty(key(1))
    c.mark_shared_elsewhere(key(2))


def test_lru_evicts_oldest_first():
    c = make_cache(100)
    setup_residents(c)  # free = 10
    victims = LruPolicy().choose_victims(c, needed=70)  # deficit 60
    assert victims == [key(0), key(1)]


def test_read_only_first_prefers_clean():
    c = make_cache(100)
    setup_residents(c)
    # deficit 90: clean tiles (0 then 2 by recency) go before the dirty 1
    victims = ReadOnlyFirstPolicy().choose_victims(c, needed=100)
    assert victims == [key(0), key(2), key(1)]


def test_blasx_policy_keeps_shared_replicas_longer():
    c = make_cache(100)
    setup_residents(c)
    # deficit 30: clean non-shared (key0) suffices; shared key2 survives
    victims = Blasx2LevelPolicy().choose_victims(c, needed=40)
    assert victims == [key(0)]
    # deficit 90: shared-elsewhere goes before dirty
    victims = Blasx2LevelPolicy().choose_victims(c, needed=100)
    assert victims == [key(0), key(2), key(1)]


def test_pinned_tiles_never_chosen():
    c = make_cache(100)
    setup_residents(c)
    c.pin(key(0))
    victims = LruPolicy().choose_victims(c, needed=40)
    assert key(0) not in victims


def test_protected_tiles_never_chosen():
    c = make_cache(100)
    setup_residents(c)
    victims = LruPolicy().choose_victims(c, needed=40, protect=[key(0)])
    assert key(0) not in victims


def test_no_eviction_needed_returns_empty():
    c = make_cache(100)
    c.insert(key(0), 10)
    assert LruPolicy().choose_victims(c, needed=50) == []


def test_oom_when_everything_pinned():
    c = make_cache(100)
    c.insert(key(0), 90)
    c.pin(key(0))
    with pytest.raises(DeviceOutOfMemoryError):
        LruPolicy().choose_victims(c, needed=50)


def test_policy_registry():
    assert set(POLICIES) == {"lru", "read-only-first", "blasx-2level"}
    for factory in POLICIES.values():
        assert factory().victim_order([]) == []


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 50), st.booleans()),
        min_size=1,
        max_size=25,
        unique_by=lambda t: t[0],
    ),
    st.sampled_from(sorted(POLICIES)),
)
def test_property_victims_free_enough_and_are_resident(entries, policy_name):
    c = make_cache(5000)
    for i, size, dirty in entries:
        c.insert(key(i), size, now=float(i))
        if dirty:
            c.mark_dirty(key(i))
    needed = c.used // 2 + c.free
    policy = POLICIES[policy_name]()
    victims = policy.choose_victims(c, needed=needed)
    assert len(set(victims)) == len(victims)
    freed = sum(c._resident[k].nbytes for k in victims)
    assert c.free + freed >= needed
    for k in victims:
        assert k in c


# ------------------------------------------------------- incremental index


def test_indexed_writeback_restamps_clean_entry_first():
    # dirty -> clean is a rank *decrease* for dirty-aware policies: the entry
    # must move to the front of the victim order immediately (the write-back
    # completion path calls mark_dirty(key, False)).
    policy = ReadOnlyFirstPolicy()
    c = make_cache(100)
    c.set_eviction_policy(policy)
    c.insert(key(0), 40, now=1.0)
    c.insert(key(1), 40, now=2.0)
    c.mark_dirty(key(0))
    assert policy.choose_victims(c, needed=c.free + 1) == [key(1)]
    c.mark_dirty(key(0), False)
    assert policy.choose_victims(c, needed=c.free + 1) == [key(0)]


def test_indexed_shared_hint_clearing_restamps():
    policy = Blasx2LevelPolicy()
    c = make_cache(100)
    c.set_eviction_policy(policy)
    c.insert(key(0), 40, now=1.0)
    c.insert(key(1), 40, now=2.0)
    c.mark_shared_elsewhere(key(0), True)
    assert policy.choose_victims(c, needed=c.free + 1) == [key(1)]
    c.mark_shared_elsewhere(key(0), False)
    assert policy.choose_victims(c, needed=c.free + 1) == [key(0)]


def test_index_compaction_preserves_order():
    # Dead stamps (evictions, eager re-stamps) accumulate until a make-room
    # call compacts the heap; compaction must not change the victim order.
    policy = ReadOnlyFirstPolicy()
    c = make_cache(10_000)
    c.set_eviction_policy(policy)
    for i in range(8):
        c.insert(key(i), 10, now=float(i))
    # Churn enough dirty flips to outgrow 2 * resident + 64 dead stamps.
    for _ in range(50):
        c.mark_dirty(key(0), True)
        c.mark_dirty(key(0), False)
    assert len(c._vheap) > 2 * len(c._resident) + 64
    victims = policy.choose_victims(c, needed=c.free + 75)
    assert victims == [key(i) for i in range(8)]
    assert len(c._vheap) <= 2 * len(c._resident) + 64


def test_uninstalled_policy_uses_scan_path():
    # A policy instance that was never installed on the cache must keep the
    # scan-and-sort reference behaviour even when another index is present.
    c = make_cache(100)
    c.set_eviction_policy(ReadOnlyFirstPolicy())
    c.insert(key(0), 40, now=1.0)
    c.insert(key(1), 40, now=2.0)
    assert LruPolicy().choose_victims(c, needed=c.free + 1) == [key(0)]
