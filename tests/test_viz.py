"""Tests for the ASCII chart renderers."""

from repro.viz import bar_chart, line_chart, sparkline


def test_line_chart_basic():
    chart = line_chart(
        {"a": {1000: 10.0, 2000: 20.0}, "b": {1000: 5.0, 2000: None}},
        width=40,
        height=8,
        title="demo",
    )
    assert "demo" in chart
    assert "o=a" in chart and "x=b" in chart
    assert chart.count("o") >= 2  # both points of series a plotted
    assert chart.count("x") >= 1  # the None point skipped


def test_line_chart_empty():
    assert line_chart({}) == "(no data)"
    assert line_chart({"a": {1: None}}) == "(no data)"


def test_line_chart_overplot_marker():
    chart = line_chart({"a": {1: 5.0}, "b": {1: 5.0}}, width=10, height=4)
    assert "?" in chart


def test_line_chart_x_scaling_proportional():
    chart = line_chart({"a": {0: 1.0, 100: 1.0, 1000: 1.0}}, width=50, height=4)
    rows = [l for l in chart.splitlines() if "o" in l]
    row = rows[0]
    first, last = row.index("o"), row.rindex("o")
    # Point at x=100 must sit near the left (10% of span), not the middle.
    mid = row.replace("o", " ", 1).index("o") if row.count("o") > 2 else None
    assert last - first > 30  # full span used


def test_bar_chart():
    chart = bar_chart({"xkblas": 50.0, "slate": 10.0}, width=20, unit=" TF")
    lines = chart.splitlines()
    assert lines[0].count("#") == 20
    assert 0 < lines[1].count("#") <= 5
    assert "50.00 TF" in lines[0]


def test_bar_chart_empty_and_zero():
    assert bar_chart({}) == "(no data)"
    chart = bar_chart({"z": 0.0})
    assert "z" in chart


def test_sparkline():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert sparkline([]) == ""
    assert len(sparkline([5.0, None, 6.0])) == 3
