"""Tests for matrices, tile partitions and block-cyclic distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryViewError
from repro.memory.layout import (
    BlockCyclicDistribution,
    TilePartition,
    default_grid,
    layout_conversion_time,
)
from repro.memory.matrix import Matrix


# ------------------------------------------------------------------ matrix


def test_matrix_numeric_and_meta_modes():
    meta = Matrix.meta(100, 50)
    assert not meta.numeric and meta.nbytes == 100 * 50 * 8
    with pytest.raises(MemoryViewError):
        meta.to_array()
    num = Matrix.zeros(10, 10)
    assert num.numeric and num.to_array().flags.f_contiguous


def test_matrix_random_reproducible():
    a = Matrix.random(8, 8, seed=7)
    b = Matrix.random(8, 8, seed=7)
    assert np.array_equal(a.to_array(), b.to_array())


def test_matrix_data_shape_checked():
    with pytest.raises(MemoryViewError):
        Matrix(4, 4, data=np.zeros((3, 4)))
    with pytest.raises(MemoryViewError):
        Matrix(0, 4)


def test_matrix_converts_c_order_to_fortran():
    data = np.arange(12, dtype=float).reshape(3, 4)  # C order
    m = Matrix(3, 4, data=data)
    assert m.to_array().flags.f_contiguous
    assert np.array_equal(m.to_array(), data)


def test_matrix_copy_independent():
    m = Matrix.random(4, 4, seed=1)
    c = m.copy()
    c.to_array()[0, 0] = 99
    assert m.to_array()[0, 0] != 99


def test_matrix_ids_unique():
    assert Matrix.meta(2, 2).id != Matrix.meta(2, 2).id


# --------------------------------------------------------------- partition


def test_partition_even_tiles():
    part = TilePartition(Matrix.meta(128, 64), nb=32)
    assert part.shape == (4, 2)
    assert len(part) == 8
    assert all(t.m == t.n == 32 for t in part)


def test_partition_ragged_border_tiles():
    part = TilePartition(Matrix.meta(100, 70), nb=32)
    assert part.shape == (4, 3)
    assert part[(3, 2)].m == 100 - 3 * 32
    assert part[(3, 2)].n == 70 - 2 * 32


def test_partition_tiles_cover_matrix_without_overlap():
    part = TilePartition(Matrix.meta(100, 70), nb=32)
    total = sum(t.m * t.n for t in part)
    assert total == 100 * 70
    tiles = part.tiles()
    for i, a in enumerate(tiles):
        for b in tiles[i + 1 :]:
            assert not a.view.overlaps(b.view), (a, b)


def test_partition_invalid_nb():
    with pytest.raises(MemoryViewError):
        TilePartition(Matrix.meta(10, 10), nb=0)


def test_partition_index_errors():
    part = TilePartition(Matrix.meta(64, 64), nb=32)
    with pytest.raises(MemoryViewError):
        part[(2, 0)]


def test_partition_row_col_lower():
    part = TilePartition(Matrix.meta(96, 96), nb=32)
    assert [t.j for t in part.row(1)] == [0, 1, 2]
    assert [t.i for t in part.col(2)] == [0, 1, 2]
    lower = part.lower()
    assert len(lower) == 6  # 3x3 lower triangle incl. diagonal
    assert len(part.lower(include_diagonal=False)) == 3


def test_tile_host_slice_matches_view():
    mat = Matrix.random(64, 64, seed=3)
    part = TilePartition(mat, nb=32)
    tile = part[(1, 1)]
    rows, cols = tile.host_slice()
    assert (rows.start, cols.start) == (32, 32)
    region = mat.to_array()[rows, cols]
    assert region.shape == (32, 32)


# ------------------------------------------------------------ distribution


def test_block_cyclic_owner_paper_grid():
    dist = BlockCyclicDistribution(4, 2)  # the paper's (4,2) grid
    assert dist.num_devices == 8
    assert dist.owner(0, 0) == 0
    assert dist.owner(0, 1) == 1
    assert dist.owner(1, 0) == 2
    assert dist.owner(4, 2) == 0  # wraps around


def test_block_cyclic_adjacent_tiles_different_gpus():
    """Paper §IV-C: block sizes (1,1) => adjacent blocks on different GPUs."""
    dist = BlockCyclicDistribution(4, 2)
    for i in range(8):
        for j in range(8):
            assert dist.owner(i, j) != dist.owner(i, j + 1)
            assert dist.owner(i, j) != dist.owner(i + 1, j)


def test_block_cyclic_balanced_load_square():
    dist = BlockCyclicDistribution(4, 2)
    part = TilePartition(Matrix.meta(8 * 32, 8 * 32), nb=32)
    load = dist.load_per_device(part)
    assert set(load.values()) == {8}  # 64 tiles over 8 devices


def test_block_cyclic_validation():
    with pytest.raises(MemoryViewError):
        BlockCyclicDistribution(0, 2)
    with pytest.raises(MemoryViewError):
        BlockCyclicDistribution(2, 2, block_i=0)


def test_default_grid():
    assert default_grid(8) == (4, 2)
    assert default_grid(4) == (2, 2)
    assert default_grid(6) == (3, 2)
    assert default_grid(1) == (1, 1)
    assert default_grid(7) == (7, 1)


def test_layout_conversion_time():
    assert layout_conversion_time(12e9, host_bandwidth=12e9) == pytest.approx(1.0)
    assert layout_conversion_time(0) == 0.0
    with pytest.raises(MemoryViewError):
        layout_conversion_time(-1)


@settings(deadline=None)
@given(
    st.integers(1, 200),
    st.integers(1, 200),
    st.integers(1, 64),
)
def test_property_partition_covers_exactly(m, n, nb):
    part = TilePartition(Matrix.meta(m, n), nb=nb)
    assert sum(t.m * t.n for t in part) == m * n
    assert part.mt == -(-m // nb) and part.nt == -(-n // nb)


@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 3), st.integers(1, 3))
def test_property_block_cyclic_owner_in_range(p, q, bi, bj):
    dist = BlockCyclicDistribution(p, q, bi, bj)
    for i in range(12):
        for j in range(12):
            assert 0 <= dist.owner(i, j) < p * q
