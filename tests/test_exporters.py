"""Tests for trace exporters and report writers."""

import csv
import io
import json

from repro.bench.harness import ExperimentResult
from repro.bench.report import combined_markdown, to_csv as result_csv, to_markdown
from repro.sim.export import summary_dict, to_chrome_trace, to_csv, write_chrome_trace
from repro.sim.trace import TraceCategory, TraceRecorder


def sample_trace():
    tr = TraceRecorder()
    tr.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1e-3, label="h2d T(0:0,0)", nbytes=1024)
    tr.record(TraceCategory.KERNEL, 0, 1e-3, 3e-3, label="gemm")
    tr.record(TraceCategory.MEMCPY_DTOH, 1, 2e-3, 2.5e-3, nbytes=512)
    return tr


def test_chrome_trace_roundtrips_as_json():
    doc = json.loads(to_chrome_trace(sample_trace()))
    events = doc["traceEvents"]
    assert len(events) == 3
    kernel = next(e for e in events if e["cat"] == "GPU Kernel")
    assert kernel["ph"] == "X"
    assert kernel["ts"] == 1e-3 * 1e6
    assert kernel["dur"] == 2e-3 * 1e6
    assert kernel["tid"] == "gpu0/compute"
    h2d = next(e for e in events if e["cat"] == "CUDA memcpy HtoD")
    assert h2d["args"]["bytes"] == 1024


def test_chrome_trace_file_writer(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(sample_trace(), str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_csv_export_parses():
    rows = list(csv.DictReader(io.StringIO(to_csv(sample_trace()))))
    assert len(rows) == 3
    assert rows[0]["category"] == "CUDA memcpy HtoD"
    assert float(rows[1]["duration_s"]) == 2e-3
    assert int(rows[2]["bytes"]) == 512


def test_summary_dict_consistent_with_trace():
    tr = sample_trace()
    summary = summary_dict(tr)
    assert summary["makespan_s"] == tr.makespan()
    assert summary["transfer_share"] == tr.transfer_share()
    assert set(summary["per_device_s"]) == {0, 1}


def sample_result():
    return ExperimentResult(
        experiment="Fig. X",
        title="demo",
        columns=["N", "a", "b"],
        rows=[[1024, 1.5, "-"], [2048, 2.25, 3.0]],
        notes=["a note"],
        checks={"looks right": True, "broken": False},
    )


def test_markdown_report_structure():
    md = to_markdown(sample_result())
    assert "### Fig. X — demo" in md
    assert "| N | a | b |" in md
    assert "| 2048 | 2.25 | 3.00 |" in md
    assert "> a note" in md
    assert "✅ looks right" in md and "❌ broken" in md


def test_result_csv():
    rows = list(csv.reader(io.StringIO(result_csv(sample_result()))))
    assert rows[0] == ["N", "a", "b"]
    assert rows[1] == ["1024", "1.50", "-"]


def test_combined_markdown():
    doc = combined_markdown([sample_result(), sample_result()], header="# All")
    assert doc.startswith("# All")
    assert doc.count("### Fig. X") == 2


def test_runtime_trace_exports_end_to_end(dgx1_small):
    """A real run's trace exports without loss."""
    from repro.bench.harness import run_point

    res = run_point("xkblas", "gemm", 4096, 1024, dgx1_small, keep_runtime=True)
    tr = res.runtime.trace
    doc = json.loads(to_chrome_trace(tr))
    assert len(doc["traceEvents"]) == len(tr)
    rows = list(csv.DictReader(io.StringIO(to_csv(tr))))
    assert len(rows) == len(tr)
