"""Tests for the fabric (channels instantiated from a platform)."""

import pytest

from repro.errors import TopologyError
from repro.runtime.fabric import Fabric
from repro.sim.engine import Simulator
from repro.topology.dgx1 import make_dgx1
from repro.topology.link import HOST


@pytest.fixture()
def fabric(dgx1):
    return Fabric(Simulator(), dgx1)


MB32 = 32 * 1024 * 1024


def test_shared_switch_serializes_host_transfers(fabric):
    """GPUs 0 and 1 share one DGX-1 switch: their H2D transfers queue."""
    s0, e0 = fabric.reserve_h2d(0, MB32, 0.0)
    s1, e1 = fabric.reserve_h2d(1, MB32, 0.0)
    assert s1 >= e0  # same pipe


def test_different_switches_run_in_parallel(fabric):
    s0, e0 = fabric.reserve_h2d(0, MB32, 0.0)
    s2, e2 = fabric.reserve_h2d(2, MB32, 0.0)
    assert s0 == s2 == 0.0  # distinct switches


def test_h2d_and_d2h_directions_independent(fabric):
    _, e0 = fabric.reserve_h2d(0, MB32, 0.0)
    s1, _ = fabric.reserve_d2h(0, MB32, 0.0)
    assert s1 == 0.0  # full duplex


def test_nvlink_pairs_have_dedicated_channels(fabric):
    s0, e0 = fabric.reserve_p2p(0, 3, MB32, 0.0)  # 2x NVLink
    s1, e1 = fabric.reserve_p2p(1, 2, MB32, 0.0)  # other pair
    assert s0 == s1 == 0.0


def test_nvlink_faster_than_pcie_peer(fabric):
    _, e_nvl = fabric.reserve_p2p(0, 3, MB32, 0.0)  # 96 GB/s
    fabric2 = Fabric(Simulator(), make_dgx1(8))
    _, e_pcie = fabric2.reserve_p2p(0, 5, MB32, 0.0)  # PCIe route
    assert e_nvl < e_pcie


def test_pcie_peer_transfers_occupy_host_fabric(fabric):
    """P2P over the PCIe fabric contends with host traffic on both ends."""
    _, e = fabric.reserve_p2p(0, 5, MB32, 0.0)  # PCIe peer: switches 0 and 2
    s_host, _ = fabric.reserve_d2h(0, MB32, 0.0)
    assert s_host >= e  # source's D2H pipe was occupied
    s_host2, _ = fabric.reserve_h2d(5, MB32, 0.0)
    assert s_host2 >= e  # destination's H2D pipe was occupied


def test_nvlink_egress_engine_serializes_fanout(fabric):
    """Many peers pulling from one GPU saturate its NVLink engines
    (the §IV-B communication imbalance mechanism)."""
    big = 512 * 1024 * 1024
    ends = []
    for dst in (3, 4, 1, 2):  # all NVLink peers of GPU 0
        _, e = fabric.reserve_p2p(0, dst, big, 0.0)
        ends.append(e)
    # With dedicated pair channels only, all four would end near-together;
    # the shared egress engine forces a spread.
    assert max(ends) > min(ends) * 1.5


def test_reserve_dispatch(fabric):
    assert fabric.reserve(HOST, 0, 1024, 0.0)[1] > 0
    assert fabric.reserve(0, HOST, 1024, 0.0)[1] > 0
    assert fabric.reserve(0, 1, 1024, 0.0)[1] > 0
    with pytest.raises(TopologyError):
        fabric.reserve(HOST, HOST, 1024, 0.0)
    with pytest.raises(TopologyError):
        fabric.reserve_p2p(2, 2, 1024, 0.0)


def test_estimate_matches_reserve_on_idle_fabric(dgx1):
    fabric = Fabric(Simulator(), dgx1)
    est = fabric.estimate(HOST, 0, MB32, 0.0)
    _, end = fabric.reserve_h2d(0, MB32, 0.0)
    assert est == pytest.approx(end)
    fabric = Fabric(Simulator(), dgx1)
    est = fabric.estimate(0, 3, MB32, 0.0)
    _, end = fabric.reserve_p2p(0, 3, MB32, 0.0)
    assert est == pytest.approx(end)


def test_estimate_sees_backlog(fabric):
    fabric.reserve_h2d(0, 10 * MB32, 0.0)
    est = fabric.estimate(HOST, 0, MB32, 0.0)
    idle = Fabric(Simulator(), make_dgx1(8)).estimate(HOST, 0, MB32, 0.0)
    assert est > idle


def test_traffic_accounting(fabric):
    fabric.reserve_h2d(0, 100, 0.0)
    fabric.reserve_d2h(2, 50, 0.0)
    fabric.reserve_p2p(0, 3, 25, 0.0)
    assert fabric.host_bytes_total() == 150
    assert fabric.p2p_bytes_total() == 25
    stats = fabric.host_channel_stats()
    assert sum(v["bytes"] for v in stats.values()) == 150


def test_local_copy_channel(fabric):
    s, e = fabric.reserve_local(0, MB32, 0.0)
    assert e - s < 1e-3  # ~750 GB/s
