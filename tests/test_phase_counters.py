"""Per-phase wall-time counters (``repro.bench.phases``)."""

from repro import config
from repro.bench.harness import run_point
from repro.bench.phases import PhaseCounters, _Group
from repro.topology.dgx1 import make_dgx1


def run(n=4096, nb=1024, **kwargs):
    return run_point(
        routine="gemm", library="xkblas", n=n, nb=nb,
        platform=make_dgx1(8), keep_runtime=True, **kwargs,
    )


def test_counters_off_by_default():
    res = run()
    assert res.runtime.phases is None


def test_counters_populate_and_nest(monkeypatch):
    monkeypatch.setattr(config, "PHASE_COUNTERS", True)
    res = run()
    phases = res.runtime.phases
    assert phases is not None
    # Inclusive groups: everything runs inside the engine drain; dispatch
    # contains the transfer path it triggers.
    assert phases.engine_s > 0.0
    assert phases.engine_s >= phases.dispatch_s > 0.0
    assert phases.dispatch_s >= phases.transfer_path_s > 0.0
    js = phases.to_json()
    assert set(js) == {"engine_s", "dispatch_s", "transfer_path_s"}
    assert js["transfer_path_s"] == phases.transfer_path_s


def test_virtual_time_identical_with_counters_on(monkeypatch):
    base = run()
    base_stats = base.runtime.transfer.stats()
    monkeypatch.setattr(config, "PHASE_COUNTERS", True)
    timed = run()
    assert timed.seconds == base.seconds  # bit-identical makespan
    assert timed.runtime.transfer.stats() == base_stats


def test_group_depth_guard_bills_outermost_only():
    group = _Group()

    def inner():
        return 1

    timed_inner = group.wrap(inner)

    def outer():
        return timed_inner() + 1

    timed_outer = group.wrap(outer)
    assert timed_outer() == 2
    first = group.total
    assert first > 0.0
    # The nested call must not have billed a second interval on top of the
    # outer one; one more outer call roughly doubles, never quadruples.
    timed_outer()
    assert group.total < 4 * first or group.total < 1e-5


def test_install_is_per_runtime():
    monkey = config.PHASE_COUNTERS
    assert monkey is False  # the module default ships off
    a = run()
    assert a.runtime.phases is None
    counters = PhaseCounters().install(a.runtime)
    assert counters.engine_s == 0.0  # nothing re-run yet
