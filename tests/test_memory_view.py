"""Tests for LAPACK memory views, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryViewError
from repro.memory.view import MemoryView


def test_basic_geometry():
    v = MemoryView(m=100, n=50, ld=200, wordsize=8)
    assert v.shape == (100, 50)
    assert v.nelems == 5000
    assert v.payload_bytes == 40000
    assert v.span_bytes == (49 * 200 + 100) * 8
    assert not v.is_compact


def test_compact_detection_and_compaction():
    v = MemoryView(m=64, n=32, ld=64)
    assert v.is_compact
    sub = MemoryView(m=64, n=32, ld=128)
    compact = sub.compacted()
    assert compact.ld == compact.m == 64
    assert compact.offset == 0


def test_invalid_views_rejected():
    with pytest.raises(MemoryViewError):
        MemoryView(m=10, n=10, ld=5)
    with pytest.raises(MemoryViewError):
        MemoryView(m=-1, n=10, ld=10)
    with pytest.raises(MemoryViewError):
        MemoryView(m=10, n=10, ld=10, wordsize=0)
    with pytest.raises(MemoryViewError):
        MemoryView(m=10, n=10, ld=10, offset=-1)


def test_subview_offsets_column_major():
    v = MemoryView(m=100, n=100, ld=100)
    sub = v.subview(10, 20, 30, 40)
    assert sub.shape == (30, 40)
    assert sub.ld == 100
    assert sub.offset == 20 * 100 + 10


def test_subview_of_subview_composes():
    v = MemoryView(m=100, n=100, ld=100)
    sub = v.subview(10, 10, 50, 50).subview(5, 5, 10, 10)
    assert sub.offset == 15 * 100 + 15


def test_subview_bounds_checked():
    v = MemoryView(m=10, n=10, ld=10)
    with pytest.raises(MemoryViewError):
        v.subview(5, 5, 6, 5)
    with pytest.raises(MemoryViewError):
        v.subview(-1, 0, 2, 2)


def test_element_offset():
    v = MemoryView(m=10, n=10, ld=20, offset=5)
    assert v.element_offset(2, 3) == 5 + 3 * 20 + 2
    with pytest.raises(MemoryViewError):
        v.element_offset(10, 0)


def test_overlap_detection_same_allocation():
    base = MemoryView(m=100, n=100, ld=100)
    a = base.subview(0, 0, 50, 50)
    b = base.subview(50, 50, 50, 50)
    c = base.subview(25, 25, 50, 50)
    assert not a.overlaps(b)
    assert a.overlaps(c) and c.overlaps(b)
    assert a.overlaps(a)


def test_empty_view_never_overlaps():
    base = MemoryView(m=10, n=10, ld=10)
    empty = MemoryView(m=0, n=0, ld=1)
    assert not base.overlaps(empty)


@st.composite
def views_and_subviews(draw):
    m = draw(st.integers(1, 64))
    n = draw(st.integers(1, 64))
    ld = draw(st.integers(m, 2 * m))
    row = draw(st.integers(0, m - 1))
    col = draw(st.integers(0, n - 1))
    sm = draw(st.integers(1, m - row))
    sn = draw(st.integers(1, n - col))
    return MemoryView(m=m, n=n, ld=ld), (row, col, sm, sn)


@given(views_and_subviews())
def test_property_subview_stays_inside_span(data):
    view, (row, col, sm, sn) = data
    sub = view.subview(row, col, sm, sn)
    assert sub.offset >= view.offset
    sub_end = sub.offset + (sub.n - 1) * sub.ld + sub.m
    view_end = view.offset + (view.n - 1) * view.ld + view.m
    assert sub_end <= view_end
    assert sub.payload_bytes <= view.payload_bytes


@given(views_and_subviews())
def test_property_disjoint_sibling_subviews_do_not_overlap(data):
    view, (row, col, sm, sn) = data
    sub = view.subview(row, col, sm, sn)
    # A sibling strictly to the right of sub, if it fits.
    if col + sn < view.n:
        sibling = view.subview(row, col + sn, sm, view.n - col - sn)
        assert not sub.overlaps(sibling)
        assert not sibling.overlaps(sub)
