"""Tests for the load-aware work-stealing behaviours added for TRMM-shaped
graphs (MODIFIED-only owner binding + load-adaptive push)."""

import pytest

from repro import Runtime
from repro.memory.matrix import Matrix
from repro.runtime.scheduler import LocalityWorkStealing
from repro.runtime.scheduler.base import SchedulerContext
from repro.runtime.task import Task, make_access_list
from repro.topology.dgx1 import make_dgx1


@pytest.fixture()
def ctx4():
    rt = Runtime(make_dgx1(4))
    part = rt.partition(Matrix.meta(4096, 4096), 1024)
    return rt, part, SchedulerContext(rt.platform, rt.directory, rt.transfer)


def mk(part, i, j, hint=None):
    return Task(
        name="t",
        accesses=make_access_list(readwrites=[part[(i, j)]]),
        flops=1e9,
        dim=1024,
        owner_hint=hint,
    )


def test_shared_replica_does_not_bind(ctx4):
    """Only MODIFIED replicas bind; SHARED ones leave the task stealable."""
    rt, part, c = ctx4
    tile = part[(0, 0)]
    rt.directory.seed_device(tile.key, 2, exclusive=False)  # SHARED
    rt.caches[2].insert(tile.key, tile.nbytes)
    ws = LocalityWorkStealing(4)
    ws.push(mk(part, 0, 0), c)
    assert ws.queue_sizes() == [0, 0, 0, 0]  # went to the host queue
    assert ws.pending() == 1


def test_modified_replica_binds(ctx4):
    rt, part, c = ctx4
    tile = part[(1, 1)]
    rt.directory.seed_device(tile.key, 3, exclusive=True)  # MODIFIED
    rt.caches[3].insert(tile.key, tile.nbytes)
    ws = LocalityWorkStealing(4)
    ws.push(mk(part, 1, 1), c)
    assert ws.queue_sizes()[3] == 1


def test_loaded_owner_releases_to_shared_queue(ctx4):
    """When the owner's compute backlog dwarfs a starving peer, the chain
    successor goes to the shared queue instead of the owner's deque."""
    rt, part, c = ctx4
    tile = part[(0, 0)]
    rt.directory.seed_device(tile.key, 0, exclusive=True)
    rt.caches[0].insert(tile.key, tile.nbytes)
    loads = {0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0}  # owner 1s ahead; others idle
    c.device_load = lambda dev: loads[dev]
    ws = LocalityWorkStealing(4)
    ws.push(mk(part, 0, 0), c)
    assert ws.queue_sizes() == [0, 0, 0, 0]
    assert ws.pending() == 1  # stealable by the idle peers


def test_balanced_load_keeps_owner_binding(ctx4):
    rt, part, c = ctx4
    tile = part[(0, 0)]
    rt.directory.seed_device(tile.key, 0, exclusive=True)
    rt.caches[0].insert(tile.key, tile.nbytes)
    c.device_load = lambda dev: 1.0  # everyone equally busy
    ws = LocalityWorkStealing(4)
    ws.push(mk(part, 0, 0), c)
    assert ws.queue_sizes()[0] == 1


def test_trmm_no_longer_starves_devices(dgx1):
    """End-to-end: every GPU participates in a coarse-tiled TRMM (the
    pathology that motivated these changes left 3 of 8 GPUs idle)."""
    from repro.bench.harness import run_point

    res = run_point("xkblas", "trmm", 40960, 4096, dgx1, keep_runtime=True)
    busy = [res.runtime.trace.device_busy_time(d) for d in range(8)]
    assert min(busy) > 0.25 * max(busy)


def test_executor_wires_device_load(dgx1_small):
    rt = Runtime(dgx1_small)
    ctx = rt.executor.ctx
    assert all(ctx.device_load(d) == 0.0 for d in range(4))
    part = rt.partition(Matrix.meta(2048, 2048), 1024)
    rt.submit(mk(part, 0, 0))
    rt.sync()
    assert all(ctx.device_load(d) >= 0.0 for d in range(4))
