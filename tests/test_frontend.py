"""Tests for the Fortran-flavoured drop-in frontend."""

import numpy as np
import pytest

from repro.errors import BlasValidationError
from repro.frontend import BlasFrontend


@pytest.fixture()
def front(dgx1_small):
    return BlasFrontend(dgx1_small, library="xkblas", nb=48)


def farray(m, n, seed, complex_=False):
    rng = np.random.default_rng(seed)
    data = rng.random((m, n))
    if complex_:
        data = data + 1j * rng.random((m, n))
    return np.asfortranarray(data)


def test_dgemm_all_char_combos(front):
    for ta in "NT":
        for tb in "NT":
            a = farray(40, 30, 1) if ta == "N" else farray(30, 40, 1)
            b = farray(30, 20, 2) if tb == "N" else farray(20, 30, 2)
            c = farray(40, 20, 3)
            c0 = c.copy()
            front.dgemm(ta, tb, 2.0, a, b, -1.0, c)
            oa = a if ta == "N" else a.T
            ob = b if tb == "N" else b.T
            np.testing.assert_allclose(c, 2.0 * oa @ ob - c0, atol=1e-10)


def test_dsymm_and_dsyrk(front):
    a = farray(30, 30, 4)
    b = farray(30, 20, 5)
    c = farray(30, 20, 6)
    c0 = c.copy()
    front.dsymm("L", "L", 1.0, a, b, 0.0, c)
    sym = np.tril(a) + np.tril(a, -1).T
    np.testing.assert_allclose(c, sym @ b, atol=1e-10)

    g = farray(30, 10, 7)
    s = np.asfortranarray(np.zeros((30, 30)))
    front.dsyrk("U", "N", 1.0, g, 0.0, s)
    np.testing.assert_allclose(np.triu(s), np.triu(g @ g.T), atol=1e-10)


def test_dtrsm_then_dtrmm_roundtrip(front):
    n = 36
    a = farray(n, n, 8) + n * np.eye(n)
    b = farray(n, 12, 9)
    b0 = b.copy()
    front.dtrsm("L", "L", "N", "N", 1.0, a, b)
    front.dtrmm("L", "L", "N", "N", 1.0, a, b)
    np.testing.assert_allclose(b, b0, atol=1e-8)


def test_dsyr2k(front):
    a, b = farray(24, 12, 10), farray(24, 12, 11)
    c = np.asfortranarray(np.zeros((24, 24)))
    front.dsyr2k("L", "N", 1.0, a, b, 0.0, c)
    np.testing.assert_allclose(np.tril(c), np.tril(a @ b.T + b @ a.T), atol=1e-10)


def test_complex_hermitian_entry_points(front):
    a = farray(20, 20, 12, complex_=True)
    b = farray(20, 10, 13, complex_=True)
    c = np.asfortranarray(np.zeros((20, 10), dtype=complex))
    front.zhemm("L", "U", 1.0, a, b, 0.0, c)
    herm = np.triu(a) + np.triu(a, 1).conj().T
    # BLAS assumes the Hermitian diagonal has zero imaginary part.
    np.fill_diagonal(herm, herm.diagonal().real)
    np.testing.assert_allclose(c, herm @ b, atol=1e-10)

    g = farray(20, 8, 14, complex_=True)
    s = np.asfortranarray(np.zeros((20, 20), dtype=complex))
    front.zherk("L", "N", 1.0, g, 0.0, s)
    np.testing.assert_allclose(np.tril(s), np.tril(g @ g.conj().T), atol=1e-10)
    s2 = np.asfortranarray(np.zeros((20, 20), dtype=complex))
    front.zher2k("L", "N", 1.0, g, g, 0.0, s2)
    # With a == b and real alpha, her2k reduces to 2 * g gᴴ (Hermitian).
    np.testing.assert_allclose(np.tril(s2), np.tril(2 * (g @ g.conj().T)), atol=1e-10)


def test_time_accounting_accumulates(front):
    a, b, c = farray(40, 40, 15), farray(40, 40, 16), farray(40, 40, 17)
    t1 = front.dgemm("N", "N", 1.0, a, b, 0.0, c)
    assert t1 > 0
    t2 = front.dgemm("N", "N", 1.0, a, b, 0.0, c)
    assert front.simulated_seconds == pytest.approx(t1 + t2)
    assert front.calls == 2


def test_invalid_characters_rejected(front):
    a, b, c = farray(8, 8, 18), farray(8, 8, 19), farray(8, 8, 20)
    with pytest.raises(BlasValidationError, match="trans"):
        front.dgemm("X", "N", 1.0, a, b, 0.0, c)
    with pytest.raises(BlasValidationError, match="side"):
        front.dsymm("Q", "L", 1.0, a, b, 0.0, c)
    with pytest.raises(BlasValidationError, match="2-D"):
        front.dgemm("N", "N", 1.0, np.zeros(4), b, 0.0, c)


def test_lowercase_characters_accepted(front):
    a, b, c = farray(16, 16, 21), farray(16, 16, 22), farray(16, 16, 23)
    c0 = c.copy()
    front.dgemm("n", "t", 1.0, a, b, 0.0, c)
    np.testing.assert_allclose(c, a @ b.T, atol=1e-10)


def test_frontend_backend_choice(dgx1_small):
    """The same legacy calls run against any simulated backend."""
    results = {}
    for backend in ("xkblas", "cublas-xt"):
        front = BlasFrontend(dgx1_small, library=backend, nb=48)
        a, b, c = farray(96, 96, 24), farray(96, 96, 25), farray(96, 96, 26)
        expect = a @ b
        front.dgemm("N", "N", 1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, expect, atol=1e-10)
        results[backend] = front.simulated_seconds
    assert all(v > 0 for v in results.values())
