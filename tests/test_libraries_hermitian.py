"""Tests for the Hermitian routine entry points (the 9-routine claim, §IV-D)."""

import numpy as np
import pytest

from repro.blas import reference as ref
from repro.blas.params import Side, Trans, Uplo
from repro.errors import LibraryError
from repro.libraries import make_library
from repro.libraries.base import ALL_ROUTINES
from repro.memory.matrix import Matrix


def cmat(m, n, seed, name=""):
    rng = np.random.default_rng(seed)
    data = np.asfortranarray(rng.random((m, n)) + 1j * rng.random((m, n)))
    return Matrix(m, n, data=data, name=name)


def test_nine_standard_routines_declared():
    assert len(ALL_ROUTINES) == 9
    assert set(ALL_ROUTINES) == {
        "gemm", "symm", "syr2k", "syrk", "trmm", "trsm", "hemm", "her2k", "herk",
    }


@pytest.mark.parametrize("key", ["xkblas", "cublas-xt", "chameleon-lapack"])
def test_drop_in_libraries_expose_all_nine(dgx1_small, key):
    """The paper names cuBLAS-XT, Chameleon-LAPACK and XKBLAS as the three
    libraries offering the 9 standard routines on LAPACK layout."""
    lib = make_library(key, dgx1_small)
    assert set(lib.routines) == set(ALL_ROUTINES)


def test_gemm_only_libraries_reject_hermitian(dgx1_small):
    lib = make_library("blasx", dgx1_small)
    a, c = cmat(64, 64, 1), cmat(64, 64, 2)
    with pytest.raises(LibraryError):
        lib.herk(Uplo.LOWER, Trans.NOTRANS, 1.0, a, 0.0, c, nb=32)


def test_hemm_numeric(dgx1_small):
    n = 96
    a, b, c = cmat(n, n, 1, "A"), cmat(n, n, 2, "B"), cmat(n, n, 3, "C")
    c0 = c.to_array().copy()
    lib = make_library("xkblas", dgx1_small)
    res = lib.hemm(Side.LEFT, Uplo.LOWER, 1.0 + 1.0j, a, b, 0.5, c, nb=32)
    expect = ref.ref_hemm(Side.LEFT, Uplo.LOWER, 1.0 + 1.0j, a.to_array(), b.to_array(), 0.5, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)
    assert res.routine == "hemm" and res.flops > 0


def test_herk_numeric(dgx1_small):
    n, k = 96, 64
    a = cmat(n, k, 4, "A")
    c = cmat(n, n, 5, "C")
    arr = c.to_array()
    arr[np.diag_indices(n)] = arr[np.diag_indices(n)].real
    c0 = arr.copy()
    lib = make_library("xkblas", dgx1_small)
    lib.herk(Uplo.UPPER, Trans.NOTRANS, 2.0, a, 0.0, c, nb=32)
    expect = ref.ref_herk(Uplo.UPPER, Trans.NOTRANS, 2.0, a.to_array(), 0.0, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_her2k_numeric(dgx1_small):
    n, k = 96, 48
    a, b = cmat(n, k, 6, "A"), cmat(n, k, 7, "B")
    c = cmat(n, n, 8, "C")
    arr = c.to_array()
    arr[np.diag_indices(n)] = arr[np.diag_indices(n)].real
    c0 = arr.copy()
    lib = make_library("cublas-xt", dgx1_small)
    lib.her2k(Uplo.LOWER, Trans.NOTRANS, 0.5 - 0.5j, a, b, 1.0, c, nb=32)
    expect = ref.ref_her2k(
        Uplo.LOWER, Trans.NOTRANS, 0.5 - 0.5j, a.to_array(), b.to_array(), 1.0, c0
    )
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_hermitian_perf_mode_via_harness(dgx1):
    from repro.bench.harness import run_point

    for routine in ("hemm", "herk", "her2k"):
        res = run_point("xkblas", routine, 8192, 2048, dgx1)
        assert res.tflops > 0
        assert res.routine == routine
