"""Streaming submission + retired-task reclamation tests.

Three guarantees pin the streaming tentpole down:

* **bit-identity below the admission window** — ``submit_stream`` over a
  generator produces the same makespan (compared as float hex), transfer
  stats and event counts as eager list submission, for every scheduling
  policy, and matches the recorded goldens;
* **reclamation really reclaims** — with ``retain_tasks=False`` a completed
  task is dropped by every runtime structure (observed with a weakref), and
  the graph keeps working counters instead of a task list;
* **the admission window throttles without wedging** — a stream larger than
  the window pauses and resumes on completions, finishing every task.
"""

import dataclasses
import gc
import json
import weakref
from pathlib import Path

import pytest

from repro.blas.tiled import build_gemm, materialize_tasks
from repro.errors import TaskGraphError
from repro.libraries import make_library
from repro.memory.layout import BlockCyclicDistribution
from repro.memory.matrix import Matrix
from repro.runtime.api import Runtime, RuntimeOptions
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.dgx1 import make_dgx1

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_makespans.json"

SCHEDULERS = ("xkaapi-locality-ws", "starpu-dmdas", "owner-computes", "round-robin")


def _run_gemm(scheduler: str, *, streaming: bool, retain: bool = True,
              n: int = 4096, nb: int = 512, stream_window: int | None = 8192,
              keep_runtime: bool = False):
    """One GEMM point, mirroring the golden ``scheduler_points`` recipe."""
    opts: dict = {"scheduler": scheduler, "retain_tasks": retain,
                  "stream_window": stream_window}
    if scheduler == "owner-computes":
        opts["distribution"] = BlockCyclicDistribution(2, 4)
    rt = Runtime(make_dgx1(8), RuntimeOptions(**opts))
    a, b, c = (Matrix.meta(n, n) for _ in range(3))
    pa, pb, pc = rt.partition(a, nb), rt.partition(b, nb), rt.partition(c, nb)
    tasks = build_gemm(1.0, pa, pb, 0.5, pc)
    if streaming:
        rt.submit_stream(tasks)
    else:
        for task in tasks:
            rt.submit(task)
    rt.memory_coherent_async(c, nb)
    if rt.executor.graph.retain_tasks:
        rt.executor.graph.critical_path_priorities()
    makespan = rt.sync()
    observed = {
        "makespan": makespan,
        "makespan_hex": makespan.hex(),
        "events_fired": rt.sim.events_fired,
        "transfers": rt.transfer.stats(),
        "tasks": rt.executor.completed_tasks,
    }
    return (observed, rt) if keep_runtime else observed


# ------------------------------------------------------------- bit-identity


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_stream_equals_list_submission(scheduler):
    eager = _run_gemm(scheduler, streaming=False)
    streamed = _run_gemm(scheduler, streaming=True)
    assert streamed == eager


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_stream_with_reclamation_equals_list_submission(scheduler):
    if scheduler == "starpu-dmdas":
        pytest.skip("DMDAS needs the retained DAG for critical-path priorities")
    eager = _run_gemm(scheduler, streaming=False)
    reclaiming = _run_gemm(scheduler, streaming=True, retain=False)
    assert reclaiming == eager


def test_stream_matches_recorded_goldens():
    """Streamed runs must reproduce the *recorded* pre-streaming goldens."""
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))[
        "scheduler_points"
    ]
    for scheduler in SCHEDULERS:
        want = golden[f"gemm-n4096-nb512-{scheduler}"]
        got = _run_gemm(scheduler, streaming=True)
        assert got["makespan_hex"] == want["makespan_hex"], scheduler
        assert got["events_fired"] == want["events_fired"], scheduler
        assert got["transfers"] == want["transfers"], scheduler
        assert got["tasks"] == want["tasks"], scheduler


def test_session_streaming_equals_eager():
    """The Session layer's streaming intake is virtual-time invisible."""
    n, nb = 4096, 512
    results = {}
    for streaming in (False, True):
        lib = make_library("xkblas", make_dgx1(8))
        base_opts = lib.runtime_options()
        lib.runtime_options = lambda o=base_opts, s=streaming: (
            dataclasses.replace(o, streaming=s)
        )
        a, b, c = (Matrix.meta(n, n) for _ in range(3))
        res = lib.gemm(1.0, a, b, 0.0, c, nb=nb)
        results[streaming] = res.seconds.hex()
    assert results[True] == results[False]


def test_materialize_tasks_wraps_the_generator():
    rt = Runtime(make_dgx1(8))
    a, b, c = (Matrix.meta(1024, 1024) for _ in range(3))
    pa, pb, pc = (rt.partition(m, 512) for m in (a, b, c))
    tasks = materialize_tasks(build_gemm(1.0, pa, pb, 0.5, pc))
    assert isinstance(tasks, list)
    assert len(tasks) == 8  # 2x2 output tiles x 2 k-steps


# -------------------------------------------------------------- reclamation


def test_reclamation_drops_task_references():
    observed, rt = _run_gemm(
        "xkaapi-locality-ws", streaming=True, retain=False,
        n=2048, nb=512, keep_runtime=True,
    )
    graph = rt.executor.graph
    assert graph.num_tasks == observed["tasks"]
    assert graph.num_done == graph.num_tasks
    assert graph.all_done()
    with pytest.raises(TaskGraphError):
        graph.tasks
    with pytest.raises(TaskGraphError):
        graph.ready_tasks()
    # The executor's uid bookkeeping drained along with the graph (the
    # submitted flag lives on the tasks themselves and is reclaimed with
    # them; only the flush set is executor-side state).
    assert rt.executor._flush_tasks == set()
    assert not rt.executor._fused_pending


def test_reclaimed_task_is_garbage_collected():
    rt = Runtime(
        make_dgx1(8),
        RuntimeOptions(retain_tasks=False, trace=False),
    )
    a, b, c = (Matrix.meta(1024, 1024) for _ in range(3))
    pa, pb, pc = (rt.partition(m, 512) for m in (a, b, c))
    tasks = build_gemm(1.0, pa, pb, 0.5, pc)
    refs = []

    def spy():
        for task in tasks:
            refs.append(weakref.ref(task))
            yield task

    rt.submit_stream(spy())
    rt.memory_coherent_async(c, 512)
    rt.sync()
    gc.collect()
    dead = sum(1 for r in refs if r() is None)
    assert len(refs) == 8
    assert dead == len(refs), f"only {dead}/{len(refs)} tasks were reclaimed"


def test_retained_mode_keeps_the_task_list():
    observed, rt = _run_gemm(
        "xkaapi-locality-ws", streaming=True, retain=True,
        n=2048, nb=512, keep_runtime=True,
    )
    graph = rt.executor.graph
    assert len(graph.tasks) == graph.num_tasks == observed["tasks"]
    assert all(t.state == "done" for t in graph.tasks)


def test_ready_tasks_returns_single_pruned_list():
    from repro.runtime.task import Task
    from repro.runtime.access import Access, AccessMode
    from repro.memory.tile import Tile

    graph_rt = Runtime(make_dgx1(8))
    graph = graph_rt.executor.graph
    m = Matrix.meta(512, 512)
    part = graph_rt.partition(m, 512)
    tile = part[0, 0]
    t1 = Task(name="w1", accesses=[Access(tile, AccessMode.READWRITE)], flops=1.0, dim=512)
    t2 = Task(name="w2", accesses=[Access(tile, AccessMode.READWRITE)], flops=1.0, dim=512)
    graph.add(t1)
    graph.add(t2)
    first = graph.ready_tasks()
    assert first == [t1]  # t2 waits on t1
    # The pruned buffer is returned directly — no second defensive copy.
    assert graph.ready_tasks() is graph._ready_buffer


# --------------------------------------------------------- admission window


def test_admission_window_throttles_and_completes():
    eager = _run_gemm("xkaapi-locality-ws", streaming=False, n=2048, nb=256)
    throttled = _run_gemm(
        "xkaapi-locality-ws", streaming=True, retain=False,
        n=2048, nb=256, stream_window=64,
    )
    # Every task completes even though the stream paused many times…
    assert throttled["tasks"] == eager["tasks"]
    # …and the makespan stays in the same regime (bounded lookahead may
    # shift schedules, but not wreck them).
    assert throttled["makespan"] <= eager["makespan"] * 1.5


def test_unbounded_window_still_bit_identical():
    eager = _run_gemm("xkaapi-locality-ws", streaming=False, n=2048, nb=256)
    unbounded = _run_gemm(
        "xkaapi-locality-ws", streaming=True, n=2048, nb=256,
        stream_window=None,
    )
    assert unbounded == eager


def test_dmdas_streaming_falls_back_to_eager_materialization():
    rt = Runtime(make_dgx1(8), RuntimeOptions(scheduler="starpu-dmdas"))
    a, b, c = (Matrix.meta(2048, 2048) for _ in range(3))
    pa, pb, pc = (rt.partition(m, 512) for m in (a, b, c))
    rt.submit_stream(build_gemm(1.0, pa, pb, 0.5, pc))
    # The whole graph is resident before the run: priorities can be computed.
    assert rt.executor.graph.num_tasks == 64
    rt.executor.graph.critical_path_priorities()
    rt.memory_coherent_async(c, 512)
    assert rt.sync() > 0.0


# -------------------------------------------------------------- trace bound


def test_trace_recorder_bounded_mode():
    rec = TraceRecorder(enabled=True, max_intervals=3)
    for i in range(7):
        rec.record(TraceCategory.KERNEL, 0, float(i), float(i + 1), "k")
    assert len(rec) == 3
    assert rec.dropped == 4
    assert [iv.start for iv in rec.intervals] == [0.0, 1.0, 2.0]
    rec.clear()
    assert rec.dropped == 0 and len(rec) == 0


def test_trace_limit_option_wires_through_runtime():
    rt = Runtime(make_dgx1(8), RuntimeOptions(trace_limit=2))
    a, b, c = (Matrix.meta(1024, 1024) for _ in range(3))
    pa, pb, pc = (rt.partition(m, 512) for m in (a, b, c))
    for task in build_gemm(1.0, pa, pb, 0.5, pc):
        rt.submit(task)
    rt.memory_coherent_async(c, 512)
    rt.sync()
    assert len(rt.trace) == 2
    assert rt.trace.dropped > 0
