"""Tests for the benchmark harness, workloads and experiment plumbing."""

import pytest

from repro.bench.cellspec import PlatformHandle
from repro.bench.harness import (
    BestTileResult,
    ExperimentResult,
    best_over_tiles,
    dod_tile_size,
    run_point,
    safe_point,
    series_to_rows,
    tile_candidates,
    tile_specs,
)
from repro.bench.workloads import default_args, matrices_for, paper_sizes
from repro.errors import BenchmarkError
from repro.topology.dgx1 import make_dgx1


@pytest.fixture(scope="module")
def plat():
    return make_dgx1(4)


# -------------------------------------------------------------- workloads


def test_paper_sizes():
    assert max(paper_sizes()) >= 49152
    assert set(paper_sizes(fast=True)) <= set(range(1, 10**6))
    assert len(paper_sizes(fast=True)) < len(paper_sizes())


@pytest.mark.parametrize(
    "routine", ["gemm", "symm", "syrk", "syr2k", "trmm", "trsm", "hemm", "herk", "her2k"]
)
def test_matrices_for_all_routines(routine):
    mats = matrices_for(routine, 256, k=128)
    assert all(not m.numeric for m in mats.values())
    args = default_args(routine)
    assert "alpha" in args
    numeric = matrices_for(routine, 64, numeric=True)
    assert all(m.numeric for m in numeric.values())


def test_matrices_for_unknown_routine():
    with pytest.raises(BenchmarkError):
        matrices_for("getrf", 64)
    with pytest.raises(BenchmarkError):
        default_args("getrf")


def test_dod_tile_size_rule():
    assert dod_tile_size(16384, 8) == 2048  # the paper's ceil(N/#GPUs)
    assert dod_tile_size(10240, 8) == 1280
    assert dod_tile_size(100, 8) == 256  # floor


# ---------------------------------------------------------------- harness


def test_run_point_returns_result(plat):
    res = run_point("xkblas", "gemm", 4096, 1024, plat)
    assert res.tflops > 0
    assert res.nb == 1024 and res.m == res.n == 4096


def test_run_point_unknown_routine(plat):
    with pytest.raises(BenchmarkError):
        run_point("xkblas", "potrf", 4096, 1024, plat)


def test_tile_candidates_extended_for_streaming_libraries():
    assert 16384 in tile_candidates("cublas-xt")
    assert 16384 in tile_candidates("slate")
    assert tile_candidates("xkblas") == (1024, 2048, 4096)
    assert len(tile_candidates("xkblas", fast=True)) < 3


def test_best_over_tiles_picks_the_fastest(plat):
    best = best_over_tiles("xkblas", "gemm", 8192, plat, tiles=(1024, 2048))
    assert isinstance(best, BestTileResult)
    assert set(best.tried) == {1024, 2048}
    assert best.tflops == max(best.tried.values())
    assert best.nb in best.tried


def test_best_over_tiles_prunes_oversized_and_overfine(plat):
    # nb >= n pruned entirely -> error when nothing remains
    with pytest.raises(BenchmarkError):
        best_over_tiles("xkblas", "gemm", 512, plat, tiles=(1024,))
    # n/nb > 32 pruned for tractability
    best = best_over_tiles("xkblas", "gemm", 40960, plat, tiles=(1024, 2048))
    assert 1024 not in best.tried


def test_safe_point_returns_none_for_unsupported(plat):
    assert safe_point("blasx", "syrk", 4096, plat, tiles=(1024,)) is None
    assert safe_point("xkblas", "gemm", 4096, plat, tiles=(1024,)) is not None


def test_safe_point_records_benchmark_skip():
    # No valid tile size (nb >= n prunes everything): the point is skipped,
    # not fatal, and the skip lands in the caller's notes.
    notes: list[str] = []
    assert safe_point("xkblas", "gemm", 512, tiles=(1024,), notes=notes) is None
    assert notes and notes[0].startswith("skipped xkblas/gemm N=512")


def test_tile_specs_enumeration():
    specs = tile_specs("xkblas", "gemm", 8192, tiles=(1024, 2048, 16384))
    assert [s.nb for s in specs] == [1024, 2048]  # nb >= n pruned
    assert all(s.library == "xkblas" and s.n == 8192 for s in specs)
    assert tile_specs("xkblas", "gemm", 512, tiles=(1024,)) == ()


def test_best_over_tiles_handle_path_matches_raw_platform(plat):
    # The executor-routed path must reproduce the legacy direct path exactly.
    direct = best_over_tiles("xkblas", "gemm", 8192, plat, tiles=(1024, 2048))
    routed = best_over_tiles(
        "xkblas", "gemm", 8192, PlatformHandle("dgx1", 4), tiles=(1024, 2048)
    )
    assert routed.tried == direct.tried
    assert routed.nb == direct.nb
    assert routed.tflops == direct.tflops


def test_series_to_rows_layout():
    rows = series_to_rows([1, 2], {"a": {1: 1.0, 2: 2.0}, "b": {1: None, 2: 3.0}})
    assert rows == [[1, 1.0, "-"], [2, 2.0, 3.0]]


def test_experiment_result_render_and_checks():
    res = ExperimentResult(
        experiment="X",
        title="t",
        columns=["n", "v"],
        rows=[[1, 2.0]],
        checks={"ok": True, "bad": False},
    )
    text = res.render()
    assert "check [PASS] ok" in text and "check [FAIL] bad" in text
    assert not res.all_checks_pass


def test_scenario_device_uses_dod_tiles(plat):
    best = best_over_tiles("xkblas", "gemm", 8192, plat, scenario="device")
    assert best.nb in (2048, 1024, 512)  # dod rule candidates for 4 GPUs
