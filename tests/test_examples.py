"""Smoke tests for the runnable examples (small arguments, real execution)."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_small():
    out = run_example("quickstart.py", "512", "128")
    assert "simulated GFlop/s" in out or "throughput" in out
    assert "max |error|" in out


def test_cholesky_solver_small():
    out = run_example("cholesky_solver.py", "256", "64", "64")
    assert "max |A X - B|" in out
    assert "overlapped the factorization" in out


def test_solver_analysis_small(tmp_path):
    trace = tmp_path / "trace.json"
    out = run_example("solver_analysis.py", "384", "64", str(trace))
    assert "post-mortem" in out
    assert trace.exists()
    import json

    assert json.loads(trace.read_text())["traceEvents"]


def test_data_on_device_small():
    out = run_example("data_on_device.py", "4096")
    assert "tile ownership" in out
    assert "g0 g1" in out


def test_composition_pipeline_small():
    out = run_example("composition_pipeline.py", "8192", "1024")
    assert "numeric check" in out
    assert "TFlop/s" in out


def test_drop_in_replacement_small():
    out = run_example("drop_in_replacement.py", "4096", "512")
    assert "xkblas" in out
    assert "vs cuBLAS-XT" in out
