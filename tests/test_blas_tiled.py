"""Numeric validation of every tiled algorithm against the references.

Each case builds the task graph, executes it on the simulated 4-GPU DGX-1
slice (numeric mode), flushes the result to the host, and compares with the
whole-matrix reference implementation.  Dimensions are chosen ragged (not
multiples of nb) to exercise border tiles.
"""

import numpy as np
import pytest

from repro import Runtime
from repro.blas import reference as ref
from repro.blas import tiled
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.memory.matrix import Matrix

NB = 24
M, N, K = 70, 55, 41  # deliberately ragged vs NB


@pytest.fixture()
def run(dgx1_small):
    def _run(builder, matrices, out):
        rt = Runtime(dgx1_small)
        parts = {name: rt.partition(m, NB) for name, m in matrices.items()}
        for task in builder(parts):
            rt.submit(task)
        rt.memory_coherent_async(out, NB)
        rt.sync()

    return _run


def rnd(m, n, seed, spd=False):
    mat = Matrix.random(m, n, seed=seed)
    if spd:
        arr = mat.to_array()
        arr[: min(m, n), : min(m, n)] += np.eye(min(m, n)) * m
    return mat


# ------------------------------------------------------------------- GEMM


@pytest.mark.parametrize("transa", [Trans.NOTRANS, Trans.TRANS])
@pytest.mark.parametrize("transb", [Trans.NOTRANS, Trans.TRANS])
def test_gemm_all_transposes(run, transa, transb):
    ashape = (M, K) if transa is Trans.NOTRANS else (K, M)
    bshape = (K, N) if transb is Trans.NOTRANS else (N, K)
    a, b = rnd(*ashape, seed=1), rnd(*bshape, seed=2)
    c = rnd(M, N, seed=3)
    c0 = c.to_array().copy()
    run(
        lambda p: tiled.build_gemm(1.7, p["a"], p["b"], -0.3, p["c"], transa, transb),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = ref.ref_gemm(1.7, a.to_array(), b.to_array(), -0.3, c0, transa, transb)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_gemm_beta_zero_overwrites_garbage(run):
    a, b = rnd(M, K, seed=1), rnd(K, N, seed=2)
    c = Matrix(M, N, data=np.full((M, N), np.inf, order="F"))
    run(
        lambda p: tiled.build_gemm(1.0, p["a"], p["b"], 0.0, p["c"]),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = a.to_array() @ b.to_array()
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_gemm_rectangular_extreme(run):
    a, b = rnd(8, 100, seed=4), rnd(100, 150, seed=5)
    c = rnd(8, 150, seed=6)
    c0 = c.to_array().copy()
    run(
        lambda p: tiled.build_gemm(1.0, p["a"], p["b"], 1.0, p["c"]),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = a.to_array() @ b.to_array() + c0
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


# ------------------------------------------------------------- SYRK/SYR2K


@pytest.mark.parametrize("uplo", list(Uplo))
@pytest.mark.parametrize("trans", [Trans.NOTRANS, Trans.TRANS])
def test_syrk(run, uplo, trans):
    shape = (N, K) if trans is Trans.NOTRANS else (K, N)
    a = rnd(*shape, seed=10)
    c = rnd(N, N, seed=11)
    c0 = c.to_array().copy()
    run(
        lambda p: tiled.build_syrk(uplo, trans, 0.9, p["a"], 0.4, p["c"]),
        {"a": a, "c": c},
        c,
    )
    expect = ref.ref_syrk(uplo, trans, 0.9, a.to_array(), 0.4, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


@pytest.mark.parametrize("uplo", list(Uplo))
@pytest.mark.parametrize("trans", [Trans.NOTRANS, Trans.TRANS])
def test_syr2k(run, uplo, trans):
    shape = (N, K) if trans is Trans.NOTRANS else (K, N)
    a, b = rnd(*shape, seed=12), rnd(*shape, seed=13)
    c = rnd(N, N, seed=14)
    c0 = c.to_array().copy()
    run(
        lambda p: tiled.build_syr2k(uplo, trans, 1.1, p["a"], p["b"], -0.6, p["c"]),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = ref.ref_syr2k(uplo, trans, 1.1, a.to_array(), b.to_array(), -0.6, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_syrk_untouched_triangle_preserved(run):
    a = rnd(N, K, seed=15)
    c = Matrix(N, N, data=np.full((N, N), 5.0, order="F"))
    run(
        lambda p: tiled.build_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, p["a"], 0.0, p["c"]),
        {"a": a, "c": c},
        c,
    )
    upper = c.to_array()[np.triu_indices(N, 1)]
    assert np.all(upper == 5.0)


# ------------------------------------------------------------------- SYMM


@pytest.mark.parametrize("side", list(Side))
@pytest.mark.parametrize("uplo", list(Uplo))
def test_symm(run, side, uplo):
    order = M if side is Side.LEFT else N
    a = rnd(order, order, seed=20)
    b = rnd(M, N, seed=21)
    c = rnd(M, N, seed=22)
    c0 = c.to_array().copy()
    run(
        lambda p: tiled.build_symm(side, uplo, 0.8, p["a"], p["b"], 0.2, p["c"]),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = ref.ref_symm(side, uplo, 0.8, a.to_array(), b.to_array(), 0.2, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


# ------------------------------------------------------------- TRMM/TRSM


@pytest.mark.parametrize("side", list(Side))
@pytest.mark.parametrize("uplo", list(Uplo))
@pytest.mark.parametrize("trans", [Trans.NOTRANS, Trans.TRANS])
@pytest.mark.parametrize("diag", list(Diag))
def test_trmm(run, side, uplo, trans, diag):
    order = M if side is Side.LEFT else N
    a = rnd(order, order, seed=30, spd=True)
    b = rnd(M, N, seed=31)
    b0 = b.to_array().copy()
    run(
        lambda p: tiled.build_trmm(side, uplo, trans, diag, 1.3, p["a"], p["b"]),
        {"a": a, "b": b},
        b,
    )
    expect = ref.ref_trmm(side, uplo, trans, diag, 1.3, a.to_array(), b0)
    np.testing.assert_allclose(b.to_array(), expect, atol=1e-9)


@pytest.mark.parametrize("side", list(Side))
@pytest.mark.parametrize("uplo", list(Uplo))
@pytest.mark.parametrize("trans", [Trans.NOTRANS, Trans.TRANS])
@pytest.mark.parametrize("diag", list(Diag))
def test_trsm(run, side, uplo, trans, diag):
    order = M if side is Side.LEFT else N
    a = rnd(order, order, seed=40, spd=True)
    b = rnd(M, N, seed=41)
    b0 = b.to_array().copy()
    run(
        lambda p: tiled.build_trsm(side, uplo, trans, diag, 0.7, p["a"], p["b"]),
        {"a": a, "b": b},
        b,
    )
    expect = ref.ref_trsm(side, uplo, trans, diag, 0.7, a.to_array(), b0)
    np.testing.assert_allclose(b.to_array(), expect, atol=1e-8)


def test_trsm_solution_satisfies_system(run):
    """Independent check: op(A) X == alpha B up to conditioning."""
    a = rnd(M, M, seed=42, spd=True)
    b = rnd(M, N, seed=43)
    b0 = b.to_array().copy()
    run(
        lambda p: tiled.build_trsm(
            Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, p["a"], p["b"]
        ),
        {"a": a, "b": b},
        b,
    )
    residual = np.tril(a.to_array()) @ b.to_array() - b0
    assert np.max(np.abs(residual)) < 1e-8


# --------------------------------------------------------------- Hermitian


def crnd(m, n, seed):
    rng = np.random.default_rng(seed)
    data = np.asfortranarray(rng.random((m, n)) + 1j * rng.random((m, n)))
    return Matrix(m, n, data=data)


def test_hemm_complex(run):
    a, b, c = crnd(M, M, 50), crnd(M, N, 51), crnd(M, N, 52)
    c0 = c.to_array().copy()
    run(
        lambda p: tiled.build_hemm(Side.LEFT, Uplo.LOWER, 1.2, p["a"], p["b"], 0.3, p["c"]),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = ref.ref_hemm(Side.LEFT, Uplo.LOWER, 1.2, a.to_array(), b.to_array(), 0.3, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_herk_complex(run):
    a, c = crnd(N, K, 53), crnd(N, N, 54)
    arr = c.to_array()
    arr[np.diag_indices(N)] = arr[np.diag_indices(N)].real  # BLAS precondition
    c0 = arr.copy()
    run(
        lambda p: tiled.build_herk(Uplo.LOWER, Trans.NOTRANS, 0.9, p["a"], 0.1, p["c"]),
        {"a": a, "c": c},
        c,
    )
    expect = ref.ref_herk(Uplo.LOWER, Trans.NOTRANS, 0.9, a.to_array(), 0.1, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)
    diag = np.diag(c.to_array())
    np.testing.assert_allclose(diag.imag, 0.0, atol=1e-12)


def test_her2k_complex(run):
    a, b, c = crnd(N, K, 55), crnd(N, K, 56), crnd(N, N, 57)
    arr = c.to_array()
    arr[np.diag_indices(N)] = arr[np.diag_indices(N)].real
    c0 = arr.copy()
    run(
        lambda p: tiled.build_her2k(
            Uplo.LOWER, Trans.NOTRANS, 0.5 + 0.5j, p["a"], p["b"], 0.2, p["c"]
        ),
        {"a": a, "b": b, "c": c},
        c,
    )
    expect = ref.ref_her2k(
        Uplo.LOWER, Trans.NOTRANS, 0.5 + 0.5j, a.to_array(), b.to_array(), 0.2, c0
    )
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


# ----------------------------------------------------------- graph shapes


def test_gemm_task_count():
    rt_parts = {}
    a, b, c = Matrix.meta(96, 96), Matrix.meta(96, 96), Matrix.meta(96, 96)
    from repro.memory.layout import TilePartition

    pa, pb, pc = (TilePartition(m, 32) for m in (a, b, c))
    tasks = list(tiled.build_gemm(1.0, pa, pb, 0.0, pc))
    assert len(tasks) == 3 * 3 * 3


def test_syrk_task_count_lower_triangle_only():
    from repro.memory.layout import TilePartition

    a, c = Matrix.meta(96, 64), Matrix.meta(96, 96)
    pa, pc = TilePartition(a, 32), TilePartition(c, 32)
    tasks = list(tiled.build_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, pa, 0.0, pc))
    # 3 diagonal tiles * 2 panels + 3 sub-diagonal tiles * 2 panels
    assert len(tasks) == 3 * 2 + 3 * 2
    written = {t.output_tile.key for t in tasks}
    assert all(k.i >= k.j for k in written)


def test_shape_validation_errors():
    from repro.errors import BlasValidationError
    from repro.memory.layout import TilePartition

    pa = TilePartition(Matrix.meta(64, 64), 32)
    pb = TilePartition(Matrix.meta(32, 64), 32)
    pc = TilePartition(Matrix.meta(64, 64), 32)
    with pytest.raises(BlasValidationError):
        list(tiled.build_gemm(1.0, pa, pb, 0.0, pc))
    pbad = TilePartition(Matrix.meta(64, 64), 16)
    with pytest.raises(BlasValidationError):
        list(tiled.build_gemm(1.0, pa, pa, 0.0, pbad))
