"""Tests for the coherence directory, including the under-transfer metadata
that implements the paper's optimistic heuristic (§III-C)."""

import pytest

from repro.errors import CoherenceError
from repro.memory.coherence import CoherenceDirectory, ReplicaState
from repro.memory.tile import TileKey
from repro.topology.link import HOST

K = TileKey(0, 0, 0)


def test_tiles_start_host_valid():
    d = CoherenceDirectory()
    assert d.host_valid(K)
    assert d.valid_devices(K) == []
    assert d.state(K, HOST) is ReplicaState.SHARED


def test_transfer_lifecycle():
    d = CoherenceDirectory()
    d.begin_transfer(K, dst=1, completes_at=2.0, source=HOST)
    assert not d.is_valid(K, 1)
    flight = d.in_flight_to(K, 1)
    assert flight is not None and flight.completes_at == 2.0
    assert d.complete_transfer(K, 1) is True
    assert d.state(K, 1) is ReplicaState.SHARED
    assert d.in_flight_to(K, 1) is None


def test_duplicate_flight_to_same_destination_rejected():
    d = CoherenceDirectory()
    d.begin_transfer(K, 1, 2.0, HOST)
    with pytest.raises(CoherenceError):
        d.begin_transfer(K, 1, 3.0, HOST)


def test_transfer_to_already_valid_destination_rejected():
    d = CoherenceDirectory()
    with pytest.raises(CoherenceError):
        d.begin_transfer(K, HOST, 1.0, 0)


def test_complete_without_flight_rejected():
    with pytest.raises(CoherenceError):
        CoherenceDirectory().complete_transfer(K, 1)


def test_earliest_flight_picks_soonest():
    d = CoherenceDirectory()
    d.begin_transfer(K, 1, 5.0, HOST)
    d.begin_transfer(K, 2, 3.0, HOST)
    d.begin_transfer(K, 3, 7.0, HOST)
    assert d.earliest_flight(K).dst == 2
    assert len(d.flights(K)) == 3


def test_write_invalidates_everything_and_bumps_generation():
    d = CoherenceDirectory()
    d.begin_transfer(K, 1, 1.0, HOST)
    d.complete_transfer(K, 1)
    d.begin_transfer(K, 2, 2.0, 1)
    gen = d.generation(K)
    d.write(K, 3)
    assert d.generation(K) == gen + 1
    assert d.valid_devices(K) == [3]
    assert d.modified_location(K) == 3
    assert not d.host_valid(K)
    assert d.in_flight_to(K, 2) is None  # flight record dropped


def test_stale_flight_completion_is_dropped():
    d = CoherenceDirectory()
    d.begin_transfer(K, 1, 1.0, HOST)
    d.write(K, 2)
    # The flight record is gone after the write; a late completion of a
    # *re-issued* transfer under the old generation must be dropped.
    d.begin_transfer(K, 1, 2.0, 2)
    d._entries[K].in_flight[1].generation -= 1  # simulate stale generation
    assert d.complete_transfer(K, 1) is False
    assert not d.is_valid(K, 1)


def test_downgrade_modified_to_shared():
    d = CoherenceDirectory()
    d.write(K, 0)
    d.downgrade(K, 0)
    assert d.state(K, 0) is ReplicaState.SHARED
    with pytest.raises(CoherenceError):
        d.downgrade(K, 0)  # already shared


def test_modified_source_can_serve_readers():
    """MODIFIED behaves like MOSI's Owned: SHARED copies may coexist."""
    d = CoherenceDirectory()
    d.write(K, 0)
    d.begin_transfer(K, 1, 1.0, 0)
    assert d.complete_transfer(K, 1)
    assert d.state(K, 0) is ReplicaState.MODIFIED
    assert d.state(K, 1) is ReplicaState.SHARED
    assert sorted(d.valid_devices(K)) == [0, 1]


def test_evict_shared_ok_modified_rejected():
    d = CoherenceDirectory()
    d.begin_transfer(K, 1, 1.0, HOST)
    d.complete_transfer(K, 1)
    d.evict(K, 1)
    assert d.valid_devices(K) == []
    d.write(K, 2)
    with pytest.raises(CoherenceError):
        d.evict(K, 2)


def test_evict_missing_replica_rejected():
    with pytest.raises(CoherenceError):
        CoherenceDirectory().evict(K, 4)


def test_evict_last_replica_rejected():
    d = CoherenceDirectory()
    d.seed_device(K, 0, exclusive=True)
    d.downgrade(K, 0)
    with pytest.raises(CoherenceError, match="last replica"):
        d.evict(K, 0)


def test_seed_device_exclusive_drops_host():
    d = CoherenceDirectory()
    d.seed_device(K, 2, exclusive=True)
    assert not d.host_valid(K)
    assert d.modified_location(K) == 2


def test_seed_device_shared_keeps_host():
    d = CoherenceDirectory()
    d.seed_device(K, 2, exclusive=False)
    assert d.host_valid(K)
    assert d.state(K, 2) is ReplicaState.SHARED


def test_invalidate_device_replicas_restores_host():
    d = CoherenceDirectory()
    d.write(K, 1)
    d.invalidate_device_replicas(K)
    assert d.host_valid(K)
    assert d.valid_devices(K) == []


def test_add_shared_conflicts_with_modified():
    d = CoherenceDirectory()
    d.write(K, 0)
    with pytest.raises(CoherenceError):
        d.add_shared(K, 0)
    d.add_shared(K, 1)
    assert d.state(K, 1) is ReplicaState.SHARED


def test_replica_count():
    d = CoherenceDirectory()
    assert d.replica_count(K) == 1  # host
    d.seed_device(K, 0, exclusive=False)
    assert d.replica_count(K) == 2
