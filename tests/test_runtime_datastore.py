"""Tests for the numeric-mode data store."""

import numpy as np
import pytest

from repro.errors import CoherenceError
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix
from repro.runtime.datastore import DataStore
from repro.topology.link import HOST


@pytest.fixture()
def store_and_tiles():
    mat = Matrix.random(64, 64, seed=1)
    part = TilePartition(mat, 32)
    store = DataStore()
    for t in part:
        store.register(t)
    return store, part, mat


def test_host_view_is_a_view(store_and_tiles):
    store, part, mat = store_and_tiles
    view = store.host_view(part[(0, 0)])
    view[0, 0] = 123.0
    assert mat.to_array()[0, 0] == 123.0


def test_h2d_copy_compacts_and_detaches(store_and_tiles):
    store, part, mat = store_and_tiles
    tile = part[(1, 0)]
    store.copy_tile(tile, HOST, 0)
    arr = store.device_array(0, tile.key)
    assert arr.shape == (32, 32)
    assert arr.flags.f_contiguous
    np.testing.assert_array_equal(arr, store.host_view(tile))
    arr[0, 0] = -1.0
    assert mat.to_array()[32, 0] != -1.0  # device copy is detached


def test_d2h_scatters_back(store_and_tiles):
    store, part, mat = store_and_tiles
    tile = part[(0, 1)]
    store.copy_tile(tile, HOST, 2)
    store.device_array(2, tile.key)[...] = 9.0
    store.copy_tile(tile, 2, HOST)
    assert np.all(mat.to_array()[:32, 32:] == 9.0)
    assert np.all(mat.to_array()[:32, :32] != 9.0)


def test_p2p_copy(store_and_tiles):
    store, part, _ = store_and_tiles
    tile = part[(0, 0)]
    store.copy_tile(tile, HOST, 0)
    store.copy_tile(tile, 0, 1)
    np.testing.assert_array_equal(
        store.device_array(0, tile.key), store.device_array(1, tile.key)
    )


def test_missing_array_raises(store_and_tiles):
    store, part, _ = store_and_tiles
    with pytest.raises(CoherenceError):
        store.device_array(5, part[(0, 0)].key)


def test_perf_mode_is_noop():
    mat = Matrix.meta(64, 64)
    part = TilePartition(mat, 32)
    store = DataStore()
    tile = part[(0, 0)]
    store.copy_tile(tile, HOST, 0)
    assert not store.has_device_array(0, tile.key)
    store.allocate_device_tile(tile, 0)
    assert len(store) == 0


def test_allocate_output_zeros(store_and_tiles):
    store, part, _ = store_and_tiles
    tile = part[(1, 1)]
    store.allocate_device_tile(tile, 3)
    arr = store.device_array(3, tile.key)
    assert np.all(arr == 0.0) and arr.shape == (32, 32)
    # Idempotent: does not clobber existing data.
    arr[...] = 4.0
    store.allocate_device_tile(tile, 3)
    assert np.all(store.device_array(3, tile.key) == 4.0)


def test_drop_device_tile(store_and_tiles):
    store, part, _ = store_and_tiles
    tile = part[(0, 0)]
    store.copy_tile(tile, HOST, 0)
    store.drop_device_tile(tile.key, 0)
    assert not store.has_device_array(0, tile.key)
    store.drop_device_tile(tile.key, 0)  # idempotent


def test_device_bytes_accounting(store_and_tiles):
    store, part, _ = store_and_tiles
    store.copy_tile(part[(0, 0)], HOST, 0)
    store.copy_tile(part[(0, 1)], HOST, 0)
    assert store.device_bytes(0) == 2 * 32 * 32 * 8
    assert store.device_bytes(1) == 0


def test_arrays_for_order(store_and_tiles):
    store, part, _ = store_and_tiles
    t1, t2 = part[(0, 0)], part[(1, 1)]
    store.copy_tile(t1, HOST, 0)
    store.copy_tile(t2, HOST, 0)
    arrays = store.arrays_for(0, [t2, t1])
    assert arrays[0] is store.device_array(0, t2.key)
    assert arrays[1] is store.device_array(0, t1.key)
