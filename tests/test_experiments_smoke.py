"""Smoke tests for every experiment module at tiny scale.

The full/fast sweeps live in ``benchmarks/``; here each experiment's ``run``
just has to execute end-to-end on reduced inputs and produce a well-formed
:class:`ExperimentResult`.  Shape checks are *reported*, not asserted — tiny
sizes are outside their calibrated regime.
"""

from repro.bench.experiments import (
    EXPERIMENTS,
    fig2_bandwidth,
    fig3_heuristics,
    fig4_dod,
    fig5_libraries,
    fig6_gemm_trace,
    fig7_syr2k_trace,
    fig8_composition,
    fig9_gantt,
    table1_platform,
    table2_gain,
)
from repro.bench.harness import ExperimentResult

TINY = (4096, 8192)


def check(result):
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.columns
    assert result.render()
    assert isinstance(result.checks, dict)
    return result


def test_registry_covers_every_table_and_figure():
    paper = {
        "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5",
        "fig6", "fig7", "fig8", "fig9",
    }
    assert paper <= set(EXPERIMENTS)
    assert set(EXPERIMENTS) - paper == {"scaling"}  # the extension experiment


def test_table1_smoke():
    result = check(table1_platform.run())
    assert result.all_checks_pass  # platform description is exact, not tuned


def test_fig1_smoke():
    from repro.bench.experiments import fig1_topology

    result = check(fig1_topology.run())
    assert result.all_checks_pass  # wiring is exact


def test_fig2_smoke():
    result = check(fig2_bandwidth.run(fast=True))
    assert result.all_checks_pass  # the bandwidth classes are exact too


def test_fig3_smoke():
    check(fig3_heuristics.run(fast=True, sizes=TINY, routines=("gemm",)))


def test_table2_smoke():
    check(table2_gain.run(fast=True, sizes=(16384,)))


def test_fig4_smoke():
    check(fig4_dod.run(fast=True, sizes=TINY, routines=("gemm",)))


def test_fig5_smoke():
    result = check(
        fig5_libraries.run(
            fast=True,
            sizes=TINY,
            routines=("gemm",),
            libraries=("xkblas", "cublas-xt", "blasx"),
        )
    )
    # Missing-point machinery reachable through the result grid.
    assert all(len(row) == len(result.columns) for row in result.rows)


def test_fig6_smoke():
    check(fig6_gemm_trace.run(n=8192, libraries=("xkblas", "cublas-xt")))


def test_fig7_smoke():
    check(fig7_syr2k_trace.run(n=8192, libraries=("chameleon-tile", "cublas-xt", "xkblas")))


def test_fig8_smoke():
    check(fig8_composition.run(sizes=TINY))


def test_fig9_smoke():
    check(fig9_gantt.run(n=8192))


def test_cli_single_experiment(capsys):
    from repro.bench.__main__ import main

    code = main(["table1"])
    out = capsys.readouterr().out
    assert "Table I" in out
    assert code == 0


def test_cli_writes_artifacts(tmp_path, capsys):
    from repro.bench.__main__ import main

    md = tmp_path / "results.md"
    csv_dir = tmp_path / "csv"
    code = main(["table1", "--markdown", str(md), "--csv-dir", str(csv_dir)])
    assert code == 0
    assert "### Table I" in md.read_text()
    assert (csv_dir / "table1.csv").exists()
