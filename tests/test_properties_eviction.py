"""Property-based equivalence tests for the incremental victim index.

PR 10 replaced ``choose_victims``'s scan-and-sort of the full resident set
with a lazy-deletion heap of ``(rank, gen, key)`` stamps maintained
incrementally by the cache (see ``DeviceCache.set_eviction_policy``).  The
bit-identity goldens demand that the index reproduces the reference order
*exactly* — same victims, same order, under every interleaving of recency
touches, pin churn, dirty transitions, shared-hint flips, evictions and
re-insertions.

These tests drive two caches — one with the index installed, one on the
legacy scan path — through identical random operation sequences and require
identical answers from ``choose_victims`` at every probe, including:

* identical victim lists under random ``protect`` sets,
* identical :class:`DeviceOutOfMemoryError` messages when the request
  cannot be satisfied,
* statelessness — probing twice without evicting must not change the answer
  (the index restores every popped live stamp),
* the full drain order (every evictable tile, best victim first), which is
  the strongest form of "pops candidates in the exact order the sort
  produces".

Hypothesis shrinks any divergence to a minimal op sequence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceOutOfMemoryError
from repro.memory.cache import (
    Blasx2LevelPolicy,
    DeviceCache,
    LruPolicy,
    ReadOnlyFirstPolicy,
)
from repro.memory.tile import TileKey

KEYS = [TileKey(matrix_id=m, i=i, j=j) for m in (3, 7) for i in range(3) for j in range(2)]
CAPACITY = 10_000

# Times are drawn from a small grid so equal ``last_use`` ties (broken by the
# tile key in every policy's rank) actually occur.
_times = st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.5, 3.0])
_keys = st.integers(min_value=0, max_value=len(KEYS) - 1)
_sizes = st.integers(min_value=1, max_value=5)

_op = st.one_of(
    st.tuples(st.just("insert"), _keys, _sizes, _times),
    st.tuples(st.just("insert_pinned"), _keys, _sizes, _times),
    st.tuples(st.just("touch"), _keys, _times),
    st.tuples(st.just("pin"), _keys),
    st.tuples(st.just("unpin"), _keys),
    st.tuples(st.just("dirty"), _keys, st.booleans()),
    st.tuples(st.just("shared"), _keys, st.booleans()),
    st.tuples(st.just("remove"), _keys),
    st.tuples(
        st.just("evict_for"),
        st.integers(min_value=1, max_value=20),
        st.lists(_keys, max_size=4),
        st.booleans(),  # actually evict the chosen victims?
    ),
)

POLICIES = [LruPolicy, ReadOnlyFirstPolicy, Blasx2LevelPolicy]


def _probe(policy, indexed, reference, needed, protect):
    """choose_victims on both caches; identical answer or identical error."""
    try:
        expect = policy.choose_victims(reference, needed, protect=protect)
    except DeviceOutOfMemoryError as err:
        with pytest.raises(DeviceOutOfMemoryError) as caught:
            policy.choose_victims(indexed, needed, protect=protect)
        assert str(caught.value) == str(err)
        return None
    got = policy.choose_victims(indexed, needed, protect=protect)
    assert got == expect
    # Statelessness: a probe must not consume index state.
    assert policy.choose_victims(indexed, needed, protect=protect) == expect
    return expect


def _apply(op, indexed, reference, policy):
    kind = op[0]
    if kind == "insert" or kind == "insert_pinned":
        _, ki, nbytes, now = op
        key = KEYS[ki]
        if key in indexed:
            return
        method = getattr(DeviceCache, kind)
        method(indexed, key, nbytes, now)
        method(reference, key, nbytes, now)
    elif kind == "touch":
        _, ki, now = op
        key = KEYS[ki]
        if key in indexed:
            indexed.touch(key, now)
            reference.touch(key, now)
    elif kind == "pin":
        key = KEYS[op[1]]
        if key in indexed:
            indexed.pin(key)
            reference.pin(key)
    elif kind == "unpin":
        key = KEYS[op[1]]
        if indexed.pin_count(key) > 0:
            indexed.unpin(key)
            reference.unpin(key)
    elif kind == "dirty":
        _, ki, flag = op
        key = KEYS[ki]
        if key in indexed:
            indexed.mark_dirty(key, flag)
            reference.mark_dirty(key, flag)
    elif kind == "shared":
        _, ki, flag = op
        key = KEYS[ki]
        indexed.mark_shared_elsewhere(key, flag)
        reference.mark_shared_elsewhere(key, flag)
    elif kind == "remove":
        key = KEYS[op[1]]
        if key in indexed and indexed.pin_count(key) == 0:
            indexed.remove(key)
            reference.remove(key)
    else:  # evict_for
        _, extra, protect_idx, do_evict = op
        protect = tuple(KEYS[i] for i in protect_idx)
        needed = indexed.free + extra
        victims = _probe(policy, indexed, reference, needed, protect)
        if victims and do_evict:
            for vkey in victims:
                indexed.remove(vkey)
                reference.remove(vkey)


@pytest.mark.parametrize("policy_cls", POLICIES, ids=lambda p: p.name)
@settings(max_examples=120, deadline=None)
@given(ops=st.lists(_op, max_size=60), protect_idx=st.lists(_keys, max_size=3))
def test_indexed_victims_match_scan_reference(policy_cls, ops, protect_idx):
    policy = policy_cls()
    indexed = DeviceCache(device=0, capacity=CAPACITY)
    indexed.set_eviction_policy(policy)
    reference = DeviceCache(device=0, capacity=CAPACITY)

    for op in ops:
        _apply(op, indexed, reference, policy)

    # Full drain: request exactly everything evictable, so the index must
    # enumerate every candidate in the reference victim order.
    protect = tuple(KEYS[i] for i in protect_idx)
    protected = set(protect)
    drainable = sum(
        e.nbytes for e in reference.evictable() if e.key not in protected
    )
    if drainable:
        victims = _probe(
            policy, indexed, reference, reference.free + drainable, protect
        )
        assert victims is not None and len(victims) == sum(
            1 for e in reference.evictable() if e.key not in protected
        )
    # And one past it: both sides must agree on the OOM diagnosis too.
    _probe(policy, indexed, reference, reference.free + drainable + 1, protect)


@pytest.mark.parametrize("policy_cls", POLICIES, ids=lambda p: p.name)
def test_index_survives_reinsertion_of_same_key(policy_cls):
    # Re-inserting an evicted key must supersede its dead heap stamps
    # (generation check), not resurrect the old rank.
    policy = policy_cls()
    cache = DeviceCache(device=0, capacity=100)
    cache.set_eviction_policy(policy)
    ref = DeviceCache(device=0, capacity=100)
    k0, k1 = KEYS[0], KEYS[1]
    for c in (cache, ref):
        c.insert(k0, 10, now=1.0)
        c.insert(k1, 10, now=2.0)
    assert _probe(policy, cache, ref, cache.free + 1, ()) == [k0]
    for c in (cache, ref):
        c.remove(k0)
        c.insert(k0, 10, now=5.0)  # now the *newest* entry
    assert _probe(policy, cache, ref, cache.free + 1, ()) == [k1]
