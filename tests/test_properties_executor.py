"""Property-based end-to-end tests of the executor.

Hypothesis generates random task graphs (random tile reads, random writes,
random policies/schedulers) and runs them through the full simulated stack.
Invariants checked after every run:

* every task completes, no deadlock;
* kernel intervals on one device never overlap (single compute engine);
* dependent tasks never overlap in virtual time;
* the coherence directory stays consistent (at most one MODIFIED replica per
  tile, cache contents match directory contents);
* numeric mode computes exactly what a sequential replay computes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Runtime, RuntimeOptions
from repro.memory.coherence import ReplicaState
from repro.memory.matrix import Matrix
from repro.runtime.policies import SourcePolicy
from repro.runtime.task import Task, make_access_list
from repro.sim.trace import TraceCategory
from repro.topology.dgx1 import make_dgx1
from repro.topology.link import HOST

PLATFORM = make_dgx1(4)
TILES = 6


@st.composite
def task_specs(draw):
    """A list of (reads, write, flops_scale) over a 6-tile pool."""
    n = draw(st.integers(1, 25))
    specs = []
    for _ in range(n):
        w = draw(st.integers(0, TILES - 1))
        reads = draw(
            st.lists(st.integers(0, TILES - 1), max_size=3, unique=True)
        )
        reads = [r for r in reads if r != w]
        rw = draw(st.booleans())
        scale = draw(st.integers(1, 10))
        specs.append((reads, w, rw, scale))
    return specs


def build_and_run(specs, policy, scheduler, numeric=False):
    opts = RuntimeOptions(source_policy=policy, scheduler=scheduler)
    rt = Runtime(PLATFORM, opts)
    mat = (
        Matrix.random(TILES * 16, 16, seed=1)
        if numeric
        else Matrix.meta(TILES * 16, 16)
    )
    part = rt.partition(mat, 16)
    tiles = part.col(0)
    tasks = []
    for reads, w, rw, scale in specs:
        def kern(*arrays, scale=scale, rw=rw):
            *ins, out = arrays
            if rw:
                out *= 0.5
                out += scale
            else:
                out[...] = scale  # WRITE-only: old content is undefined
            for x in ins:
                out += 0.01 * x

        t = Task(
            name="k",
            accesses=make_access_list(
                reads=[tiles[r] for r in reads],
                readwrites=[tiles[w]] if rw else [],
                writes=[] if rw else [tiles[w]],
            ),
            flops=1e8 * scale,
            dim=256,
            kernel=kern if numeric else None,
        )
        tasks.append(rt.submit(t))
    rt.memory_coherent_async(mat, 16)
    rt.sync(max_events=200_000)
    return rt, mat, part, tasks


@settings(max_examples=40, deadline=None)
@given(task_specs(), st.sampled_from(list(SourcePolicy)),
       st.sampled_from(["xkaapi-locality-ws", "starpu-dmdas", "round-robin"]))
def test_property_random_graphs_complete_with_invariants(specs, policy, scheduler):
    rt, mat, part, tasks = build_and_run(specs, policy, scheduler)
    # 1. everything completed
    assert all(t.state == "done" for t in tasks)
    # 2. kernel intervals on one device never overlap
    for dev in PLATFORM.device_ids():
        ivs = sorted(
            (iv.start, iv.end)
            for iv in rt.trace.filter(category=TraceCategory.KERNEL, device=dev)
        )
        for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
            assert s2 >= e1 - 1e-12
    # 3. dependencies respected in virtual time
    for t in tasks:
        for succ in t.successors:
            if succ.name == "flush":
                continue
            assert succ.start_time >= t.end_time - 1e-12
    # 4. coherence: at most one MODIFIED replica; caches mirror the directory
    for tile in part:
        key = tile.key
        modified = [
            loc
            for loc in ([HOST] + list(PLATFORM.device_ids()))
            if rt.directory.state(key, loc) is ReplicaState.MODIFIED
        ]
        assert len(modified) <= 1
        for dev in PLATFORM.device_ids():
            if rt.directory.is_valid(key, dev):
                assert key in rt.caches[dev], (key, dev)
        # flushed at the end: host must be valid again
        assert rt.directory.host_valid(key)
    # 5. every cache byte accounted
    for dev, cache in rt.caches.items():
        assert 0 <= cache.used <= cache.capacity


@settings(max_examples=15, deadline=None)
@given(task_specs(), st.sampled_from([SourcePolicy.TOPOLOGY_OPTIMISTIC,
                                      SourcePolicy.HOST_ONLY]))
def test_property_numeric_matches_sequential_replay(specs, policy):
    """The distributed execution computes exactly what a sequential replay of
    the same task list computes (dataflow order = program order per tile)."""
    rt, mat, part, tasks = build_and_run(specs, policy, "xkaapi-locality-ws",
                                         numeric=True)
    # Sequential replay on a fresh copy.
    ref = Matrix.random(TILES * 16, 16, seed=1).to_array()
    tiles_slices = [
        (slice(i * 16, (i + 1) * 16), slice(0, 16)) for i in range(TILES)
    ]
    for reads, w, rw, scale in specs:
        out = ref[tiles_slices[w]]
        if rw:
            out *= 0.5
            out += scale
        else:
            out[...] = scale
        for r in reads:
            out += 0.01 * ref[tiles_slices[r]]
    np.testing.assert_allclose(mat.to_array(), ref, atol=1e-9)
