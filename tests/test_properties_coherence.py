"""Property-based equivalence tests for the array-backed coherence directory.

The hot-path rework replaced the directory's nested
``dict[TileKey, dict[int, ReplicaState]]`` storage with interned integer ids
and per-tile bitmasks.  These tests pin the refactor to the old semantics: a
straightforward dict-based reference model (written from the pre-rework
implementation) and the production :class:`CoherenceDirectory` are driven
through the same random operation sequences, and must agree on

* which operations raise :class:`CoherenceError` (and which succeed),
* every return value (``complete_transfer``'s landed/dropped bool, the
  recorded flight metadata),
* the full observable state after every step — replica states, host
  validity, valid-device sets, the MODIFIED owner, generations, and the
  in-flight maps including their insertion order (source-selection
  tie-breaks depend on it, so it is part of the contract).

Hypothesis shrinks any divergence to a minimal op sequence, which makes a
directory bug readable instead of buried in a 4096-tile macro run.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.errors import CoherenceError
from repro.memory.coherence import CoherenceDirectory, ReplicaState
from repro.memory.tile import TileKey
from repro.topology.link import HOST

NDEV = 4
KEYS = [TileKey(matrix_id=7, i=i, j=0) for i in range(3)]


# --------------------------------------------------------------------- model


@dataclasses.dataclass
class _RefFlight:
    dst: int
    completes_at: float
    source: int
    generation: int


class RefDirectory:
    """Dict-based reference model of the pre-rework directory semantics."""

    def __init__(self) -> None:
        self.states: dict[TileKey, dict[int, ReplicaState]] = {}
        self.flights: dict[TileKey, dict[int, _RefFlight]] = {}
        self.gen: dict[TileKey, int] = {}

    def _entry(self, key: TileKey) -> dict[int, ReplicaState]:
        if key not in self.states:
            self.states[key] = {HOST: ReplicaState.SHARED}
            self.flights[key] = {}
            self.gen[key] = 0
        return self.states[key]

    def begin_transfer(self, key, dst, completes_at, source) -> _RefFlight:
        states = self._entry(key)
        if dst in states:
            raise CoherenceError("destination already holds a replica")
        if dst in self.flights[key]:
            raise CoherenceError("a transfer is already in flight")
        flight = _RefFlight(dst, completes_at, source, self.gen[key])
        self.flights[key][dst] = flight
        return flight

    def complete_transfer(self, key, dst) -> bool:
        self._entry(key)
        flight = self.flights[key].pop(dst, None)
        if flight is None:
            raise CoherenceError("no in-flight transfer")
        if flight.generation != self.gen[key]:
            return False
        self.states[key][dst] = ReplicaState.SHARED
        return True

    def write(self, key, location) -> None:
        self._entry(key)
        self.gen[key] += 1
        self.states[key] = {location: ReplicaState.MODIFIED}
        self.flights[key].clear()

    def downgrade(self, key, location) -> None:
        states = self._entry(key)
        if states.get(location) is not ReplicaState.MODIFIED:
            raise CoherenceError("not MODIFIED")
        states[location] = ReplicaState.SHARED

    def add_shared(self, key, location) -> None:
        states = self._entry(key)
        if states.get(location) is ReplicaState.MODIFIED:
            raise CoherenceError("already MODIFIED")
        states[location] = ReplicaState.SHARED

    def evict(self, key, device) -> None:
        states = self._entry(key)
        if device not in states:
            raise CoherenceError("no replica to evict")
        if states[device] is ReplicaState.MODIFIED:
            raise CoherenceError("cannot evict MODIFIED")
        # Mirrors the production order: the replica is removed before the
        # last-copy check fires, so a failing evict leaves the same state.
        del states[device]
        if not states and not self.flights[key]:
            raise CoherenceError("eviction would destroy the last replica")

    def discard(self, key, device) -> None:
        states = self._entry(key)
        if device not in states:
            raise CoherenceError("no replica to discard")
        if len(states) == 1 and not self.flights[key]:
            raise CoherenceError("discard would orphan the tile")
        del states[device]

    def seed_device(self, key, device, exclusive) -> None:
        self._entry(key)
        if exclusive:
            self.gen[key] += 1
            self.states[key] = {device: ReplicaState.MODIFIED}
            self.flights[key].clear()
        else:
            self.states[key][device] = ReplicaState.SHARED

    def invalidate_device_replicas(self, key) -> None:
        self._entry(key)
        self.gen[key] += 1
        self.states[key] = {HOST: ReplicaState.SHARED}
        self.flights[key].clear()


# ----------------------------------------------------------------- op driver


def _flight_tuple(f) -> tuple:
    return (f.dst, f.completes_at, f.source, f.generation)


def _apply_both(op, d: CoherenceDirectory, ref: RefDirectory) -> None:
    """Run one op on both models; they must agree on outcome and result."""
    name, key, loc, when, flag = op
    args = {
        "begin_transfer": lambda m: m.begin_transfer(
            key, loc, completes_at=when, source=HOST
        ),
        "complete_transfer": lambda m: m.complete_transfer(key, loc),
        "write": lambda m: m.write(key, loc),
        "downgrade": lambda m: m.downgrade(key, loc),
        "add_shared": lambda m: m.add_shared(key, loc),
        "evict": lambda m: m.evict(key, loc),
        "discard": lambda m: m.discard(key, loc),
        "seed_device": lambda m: m.seed_device(key, loc, exclusive=flag),
        "invalidate": lambda m: m.invalidate_device_replicas(key),
    }[name]
    try:
        got = args(d)
        got_err = None
    except CoherenceError as exc:
        got, got_err = None, exc
    try:
        want = args(ref)
        want_err = None
    except CoherenceError as exc:
        want, want_err = None, exc
    assert (got_err is None) == (want_err is None), (
        f"{name}{(key, loc)}: production "
        f"{'raised ' + repr(got_err) if got_err else 'succeeded'}, reference "
        f"{'raised ' + repr(want_err) if want_err else 'succeeded'}"
    )
    if got_err is None and name == "complete_transfer":
        assert got == want, f"{name}: landed/dropped verdict diverged"
    if got_err is None and name == "begin_transfer":
        assert _flight_tuple(got) == _flight_tuple(want)


def _assert_same_observable_state(d: CoherenceDirectory, ref: RefDirectory):
    for key in KEYS:
        states = ref._entry(key)
        assert d.replicas(key) == states, f"{key}: replica map diverged"
        assert d.host_valid(key) == (HOST in states)
        assert d.valid_devices(key) == sorted(
            loc for loc in states if loc != HOST
        )
        mod = [l for l, s in states.items() if s is ReplicaState.MODIFIED]
        assert d.modified_location(key) == (mod[0] if mod else None)
        assert d.replica_count(key) == len(states)
        assert d.generation(key) == ref.gen[key]
        # In-flight maps must match including insertion order.
        assert [
            _flight_tuple(f) for f in d.flights(key)
        ] == [_flight_tuple(f) for f in ref.flights[key].values()]
        for dst in range(NDEV):
            got = d.in_flight_to(key, dst)
            want = ref.flights[key].get(dst)
            assert (got is None) == (want is None)
            if got is not None:
                assert _flight_tuple(got) == _flight_tuple(want)
        early = d.earliest_flight(key)
        if ref.flights[key]:
            want_early = min(
                ref.flights[key].values(), key=lambda f: (f.completes_at, f.dst)
            )
            assert _flight_tuple(early) == _flight_tuple(want_early)
        else:
            assert early is None


# ----------------------------------------------------------------- strategy

_LOCATIONS = st.integers(HOST, NDEV - 1)

_OPS = st.tuples(
    st.sampled_from(
        [
            "begin_transfer",
            "complete_transfer",
            "write",
            "downgrade",
            "add_shared",
            "evict",
            "discard",
            "seed_device",
            "invalidate",
        ]
    ),
    st.sampled_from(KEYS),
    _LOCATIONS,
    st.integers(0, 50).map(float),  # completes_at (ints: exact comparison)
    st.booleans(),  # seed_device exclusive
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_OPS, max_size=40))
def test_array_directory_matches_dict_reference(ops):
    d = CoherenceDirectory()
    ref = RefDirectory()
    for op in ops:
        _apply_both(op, d, ref)
        _assert_same_observable_state(d, ref)


@settings(max_examples=50, deadline=None)
@given(st.lists(_OPS, max_size=40))
def test_at_most_one_modified_replica(ops):
    """Protocol invariant: the public mutators never create two owners."""
    d = CoherenceDirectory()
    ref = RefDirectory()
    for op in ops:
        _apply_both(op, d, ref)
        for key in KEYS:
            owners = [
                loc
                for loc, s in d.replicas(key).items()
                if s is ReplicaState.MODIFIED
            ]
            assert len(owners) <= 1
