"""Tests for the purity/determinism linter (:mod:`repro.verify.determinism`)
and its call-graph substrate (:mod:`repro.verify.callgraph`)."""

import json
import shutil
from pathlib import Path

import pytest

from repro.verify import callgraph
from repro.verify.determinism import (
    lint_determinism,
    load_baseline,
    new_findings,
    write_baseline,
)

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def codes(findings) -> list[str]:
    return sorted(f.finding.code for f in findings)


# --------------------------------------------------------------- rules D101+


def test_d101_flags_id_calls(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/m.py": "def dedup(xs):\n    return {id(x) for x in xs}\n",
    })
    assert codes(lint_determinism(root)) == ["D101"]


def test_d102_flags_hash_in_bench_scope_only(tmp_path):
    root = make_tree(tmp_path, {
        "bench/h.py": "def key(x):\n    return hash(x)\n",
        # sim/ is L002's scope, not D102's — no double reporting.
        "sim/h.py": "def key(x):\n    return hash(x)\n",
    })
    found = lint_determinism(root)
    assert codes(found) == ["D102"]
    assert found[0].finding.subject.startswith("bench/h.py")


def test_d103_flags_global_rebinding_and_container_writes(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/g.py": (
            "_cache = {}\n"
            "_count = 0\n"
            "def remember(k, v):\n"
            "    _cache[k] = v\n"
            "def bump():\n"
            "    global _count\n"
            "    _count = _count + 1\n"
        ),
    })
    assert codes(lint_determinism(root)) == ["D103", "D103"]


def test_d103_flags_module_counter_draws_including_default_factory(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/c.py": (
            "import itertools\n"
            "import dataclasses\n"
            "_ids = itertools.count()\n"
            "@dataclasses.dataclass\n"
            "class Thing:\n"
            "    uid: int = dataclasses.field(default_factory=lambda: next(_ids))\n"
            "def fresh():\n"
            "    return next(_ids)\n"
        ),
    })
    assert codes(lint_determinism(root)) == ["D103", "D103"]


def test_d104_flags_unseeded_random_but_not_seeded_rng(tmp_path):
    root = make_tree(tmp_path, {
        "bench/r.py": (
            "import random\n"
            "def jitter():\n"
            "    return random.random()\n"
            "def rng(seed):\n"
            "    return random.Random(seed)\n"
        ),
    })
    assert codes(lint_determinism(root)) == ["D104"]


def test_d104_wall_clock_scope_memory_yes_bench_no(tmp_path):
    root = make_tree(tmp_path, {
        "memory/t.py": "import time\ndef now():\n    return time.monotonic()\n",
        # bench legitimately measures wall time (it benchmarks the simulator).
        "bench/t.py": "import time\ndef now():\n    return time.monotonic()\n",
    })
    found = lint_determinism(root)
    assert codes(found) == ["D104"]
    assert found[0].finding.subject.startswith("memory/t.py")


def test_d105_set_iteration_only_on_decision_paths(tmp_path):
    decision = (
        "def pop(q):\n"
        "    return helper(q)\n"
        "def helper(q):\n"
        "    for x in {1, 2, 3}:\n"
        "        q.append(x)\n"
    )
    offline = (
        "def summarize(xs):\n"
        "    out = []\n"
        "    for x in set(xs):\n"
        "        out.append(x)\n"
        "    return out\n"
    )
    root = make_tree(tmp_path, {
        "runtime/sched.py": decision,
        "bench/report.py": offline,
    })
    found = lint_determinism(root)
    assert codes(found) == ["D105"]
    assert "helper" in found[0].finding.message


def test_d105_exempts_order_insensitive_reductions(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/sched.py": (
            "def pop(q):\n"
            "    best = min({3, 1, 2})\n"
            "    total = sum(set(q))\n"
            "    return best + total\n"
        ),
    })
    assert lint_determinism(root) == []


def test_d106_taint_flows_through_constructor_into_mix_call(tmp_path):
    root = make_tree(tmp_path, {
        "memory/mat.py": (
            "import itertools\n"
            "_matrix_ids = itertools.count()\n"
            "class Matrix:\n"
            "    def __init__(self):\n"
            "        self.mid = next(_matrix_ids)  # det: identity only\n"
        ),
        "runtime/key.py": (
            "import dataclasses\n"
            "@dataclasses.dataclass\n"
            "class Key:\n"
            "    matrix_id: int\n"
            "    i: int\n"
            "def make_key(matrix, i):\n"
            "    return Key(matrix.mid, i)\n"
        ),
        "runtime/tm.py": (
            "def _mix(a, b):\n"
            "    return a * 1000003 + b\n"
            "class TransferManager:\n"
            "    def _select_source(self, key):\n"
            "        return _mix(key.matrix_id, key.i)\n"
        ),
    })
    found = lint_determinism(root)
    assert codes(found) == ["D106"]
    assert "matrix_id" in found[0].finding.message


def test_d106_laundered_through_matrix_index_is_clean(tmp_path):
    root = make_tree(tmp_path, {
        "memory/mat.py": (
            "import itertools\n"
            "_ids = itertools.count()\n"
            "class Matrix:\n"
            "    def __init__(self):\n"
            "        self.matrix_id = next(_ids)  # det: identity only\n"
        ),
        "runtime/tm.py": (
            "def _mix(a, b):\n"
            "    return a * 1000003 + b\n"
            "class TransferManager:\n"
            "    def _select_source(self, key):\n"
            "        return _mix(self.datastore.matrix_index(key.matrix_id), key.i)\n"
        ),
    })
    assert lint_determinism(root) == []


# ------------------------------------------------------- waivers & baseline


def test_det_waiver_on_same_or_preceding_line(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/w.py": (
            "def same(xs):\n"
            "    return {id(x) for x in xs}  # det: ephemeral debug map\n"
            "def above(xs):\n"
            "    # det: ephemeral debug map\n"
            "    return {id(x) for x in xs}\n"
            "def naked(xs):\n"
            "    return {id(x) for x in xs}\n"
        ),
    })
    found = lint_determinism(root)
    assert codes(found) == ["D101"]
    assert "naked" in found[0].finding.message


def test_baseline_roundtrip_filters_fingerprints(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/b.py": "def f(xs):\n    return id(xs)\n",
    })
    found = lint_determinism(root)
    assert len(found) == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, found)
    baseline = load_baseline(baseline_file)
    assert new_findings(found, baseline) == []
    # Fingerprints are line-free: moving the finding does not churn them.
    root2 = make_tree(tmp_path / "v2", {
        "runtime/b.py": "# a new comment shifts every line\n\ndef f(xs):\n    return id(xs)\n",
    })
    assert new_findings(lint_determinism(root2), baseline) == []
    # ...but a genuinely new finding is not absorbed.
    root3 = make_tree(tmp_path / "v3", {
        "runtime/b.py": "def f(xs):\n    return id(xs)\ndef g(xs):\n    return id(xs)\n",
    })
    fresh = new_findings(lint_determinism(root3), baseline)
    assert [f.code for f in fresh] == ["D101"] and "g" in fresh[0].message


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


# ----------------------------------------------------------- the repository


def test_repository_tree_is_clean_against_committed_baseline():
    found = lint_determinism(PACKAGE_ROOT)
    baseline = load_baseline(PACKAGE_ROOT / "verify" / "determinism_baseline.json")
    assert new_findings(found, baseline) == []


def test_reseeded_pr3_purity_bug_is_caught(tmp_path):
    """Acceptance: the Matrix.id-into-_mix bug must be caught statically."""
    dst = tmp_path / "repro"
    shutil.copytree(PACKAGE_ROOT, dst)
    transfer = dst / "runtime" / "transfer.py"
    source = transfer.read_text(encoding="utf-8")
    assert "self.datastore.matrix_index(key.matrix_id)" in source
    transfer.write_text(
        source.replace(
            "self.datastore.matrix_index(key.matrix_id)", "key.matrix_id"
        ),
        encoding="utf-8",
    )
    baseline = load_baseline(dst / "verify" / "determinism_baseline.json")
    fresh = new_findings(lint_determinism(dst), baseline)
    assert [f.code for f in fresh] == ["D106"]
    assert "transfer.py" in fresh[0].subject


# -------------------------------------------------------------- call graph


def test_callgraph_reachability_follows_callbacks(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/e.py": (
            "class Executor:\n"
            "    def _launch(self, sim, t):\n"
            "        sim.post(t, self._complete)\n"
            "    def _complete(self):\n"
            "        helper()\n"
            "def helper():\n"
            "    pass\n"
            "def unrelated():\n"
            "    pass\n"
        ),
    })
    graph = callgraph.CallGraph.build(root)
    keys = graph.reachable(["Executor._launch"])
    names = {k.split(":", 1)[1].rsplit(".", 1)[-1] for k in keys}
    assert {"_launch", "_complete", "helper"} <= names
    assert "unrelated" not in names


def test_callgraph_cache_roundtrip_and_invalidation(tmp_path):
    root = make_tree(tmp_path, {"runtime/a.py": "def f():\n    pass\n"})
    cache = tmp_path / "cache.json"
    g1 = callgraph.load_or_build(root, cache)
    assert cache.is_file()
    stamp = cache.read_text(encoding="utf-8")
    # Warm load: cache file untouched, same functions.
    g2 = callgraph.load_or_build(root, cache)
    assert cache.read_text(encoding="utf-8") == stamp
    assert {n.key for n in g1.nodes} == {n.key for n in g2.nodes}
    # Content change invalidates: the new function appears.
    (root / "runtime" / "a.py").write_text(
        "def f():\n    pass\ndef g():\n    f()\n", encoding="utf-8"
    )
    g3 = callgraph.load_or_build(root, cache)
    assert any(n.name == "g" for n in g3.nodes)
    data = json.loads(cache.read_text(encoding="utf-8"))
    assert any(fn["name"] == "g" for fn in data["functions"])


def test_callgraph_corrupt_cache_is_rebuilt(tmp_path):
    root = make_tree(tmp_path, {"runtime/a.py": "def f():\n    pass\n"})
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    graph = callgraph.load_or_build(root, cache)
    assert any(n.name == "f" for n in graph.nodes)
    json.loads(cache.read_text(encoding="utf-8"))  # rewritten valid


def test_syntax_error_files_are_skipped(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/bad.py": "def broken(:\n",
        "runtime/good.py": "def fine():\n    return id(fine)\n",
    })
    found = lint_determinism(root)
    assert codes(found) == ["D101"]  # bad.py skipped, L000 is lint's job


@pytest.mark.parametrize("scope", ["sim", "runtime", "memory", "blas", "bench"])
def test_all_five_scopes_are_scanned(tmp_path, scope):
    root = make_tree(tmp_path / scope, {
        f"{scope}/x.py": "def f(xs):\n    return id(xs)\n",
    })
    assert codes(lint_determinism(root)) == ["D101"]


def test_out_of_scope_trees_are_ignored(tmp_path):
    root = make_tree(tmp_path, {
        "verify/x.py": "def f(xs):\n    return id(xs)\n",
        "topology/y.py": "def f(xs):\n    return id(xs)\n",
    })
    assert lint_determinism(root) == []
