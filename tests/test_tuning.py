"""Tests for the tile-size autotuner."""

import pytest

from repro.bench.harness import run_point
from repro.errors import BenchmarkError
from repro.topology.dgx1 import make_dgx1
from repro.tuning import TileTuner, TuningResult


@pytest.fixture(scope="module")
def tuner():
    return TileTuner(make_dgx1(4), min_nb=512, max_nb=4096)


def test_tune_returns_valid_result(tuner):
    result = tuner.tune("xkblas", "gemm", 8192, refine=False)
    assert isinstance(result, TuningResult)
    assert result.best_nb in result.evaluated
    assert result.best_tflops == max(result.evaluated.values())
    assert result.best_tflops > 0
    assert 512 <= result.best_nb <= 4096


def test_tuned_size_beats_or_matches_extremes(tuner):
    plat = tuner.platform
    result = tuner.tune("xkblas", "gemm", 8192)
    smallest = run_point("xkblas", "gemm", 8192, 512, plat).tflops
    largest = run_point("xkblas", "gemm", 8192, 4096, plat).tflops
    assert result.best_tflops >= max(smallest, largest) * 0.999


def test_cache_returns_identical_object(tuner):
    r1 = tuner.tune("xkblas", "gemm", 8192)
    r2 = tuner.tune("xkblas", "gemm", 8192)
    assert r1 is r2


def test_recommend_and_table(tuner):
    nb = tuner.recommend("xkblas", "gemm", 8192)
    assert nb == tuner.tune("xkblas", "gemm", 8192).best_nb
    table = tuner.table("xkblas", "gemm", [4096, 8192])
    assert len(table) == 2
    assert all(tf > 0 for _, _, tf in table)


def test_refinement_probes_midpoints(tuner):
    coarse = tuner.tune("xkblas", "syr2k", 8192, refine=False)
    fine = TileTuner(tuner.platform, min_nb=512, max_nb=4096).tune(
        "xkblas", "syr2k", 8192, refine=True
    )
    assert fine.evaluations >= coarse.evaluations
    assert fine.best_tflops >= coarse.best_tflops * 0.999


def test_overfine_tiles_never_chosen():
    tuner = TileTuner(make_dgx1(4), min_nb=64, max_nb=4096, max_tiles=8)
    result = tuner.tune("xkblas", "gemm", 4096, refine=False)
    assert 4096 / result.best_nb <= 8


def test_invalid_range_rejected():
    with pytest.raises(BenchmarkError):
        TileTuner(make_dgx1(2), min_nb=0)
    with pytest.raises(BenchmarkError):
        TileTuner(make_dgx1(2), min_nb=2048, max_nb=1024)


def test_scenario_cached_separately(tuner):
    host = tuner.tune("xkblas", "gemm", 8192)
    dod = tuner.tune("xkblas", "gemm", 8192, scenario="device")
    assert host is not dod
