"""Tests for the tile-size autotuner."""

import pytest

from repro.bench.harness import run_point
from repro.errors import BenchmarkError
from repro.topology.dgx1 import make_dgx1
from repro.tuning import TileTuner, TuningResult


@pytest.fixture(scope="module")
def tuner():
    return TileTuner(make_dgx1(4), min_nb=512, max_nb=4096)


def test_tune_returns_valid_result(tuner):
    result = tuner.tune("xkblas", "gemm", 8192, refine=False)
    assert isinstance(result, TuningResult)
    assert result.best_nb in result.evaluated
    assert result.best_tflops == max(result.evaluated.values())
    assert result.best_tflops > 0
    assert 512 <= result.best_nb <= 4096


def test_tuned_size_beats_or_matches_extremes(tuner):
    plat = tuner.platform
    result = tuner.tune("xkblas", "gemm", 8192)
    smallest = run_point("xkblas", "gemm", 8192, 512, plat).tflops
    largest = run_point("xkblas", "gemm", 8192, 4096, plat).tflops
    assert result.best_tflops >= max(smallest, largest) * 0.999


def test_cache_returns_identical_object(tuner):
    r1 = tuner.tune("xkblas", "gemm", 8192)
    r2 = tuner.tune("xkblas", "gemm", 8192)
    assert r1 is r2


def test_recommend_and_table(tuner):
    nb = tuner.recommend("xkblas", "gemm", 8192)
    assert nb == tuner.tune("xkblas", "gemm", 8192).best_nb
    table = tuner.table("xkblas", "gemm", [4096, 8192])
    assert len(table) == 2
    assert all(tf > 0 for _, _, tf in table)


def test_refinement_probes_midpoints(tuner):
    coarse = tuner.tune("xkblas", "syr2k", 8192, refine=False)
    fine = TileTuner(tuner.platform, min_nb=512, max_nb=4096).tune(
        "xkblas", "syr2k", 8192, refine=True
    )
    assert fine.evaluations >= coarse.evaluations
    assert fine.best_tflops >= coarse.best_tflops * 0.999


def test_overfine_tiles_never_chosen():
    tuner = TileTuner(make_dgx1(4), min_nb=64, max_nb=4096, max_tiles=8)
    result = tuner.tune("xkblas", "gemm", 4096, refine=False)
    assert 4096 / result.best_nb <= 8


def test_invalid_range_rejected():
    with pytest.raises(BenchmarkError):
        TileTuner(make_dgx1(2), min_nb=0)
    with pytest.raises(BenchmarkError):
        TileTuner(make_dgx1(2), min_nb=2048, max_nb=1024)


def test_scenario_cached_separately(tuner):
    host = tuner.tune("xkblas", "gemm", 8192)
    dod = tuner.tune("xkblas", "gemm", 8192, scenario="device")
    assert host is not dod


def test_small_n_candidates_do_not_crash():
    # Regression: the ladder floor used to evaluate
    # 1 << ((n // max_tiles).bit_length() - 1), a negative shift whenever
    # n < max_tiles.
    tuner = TileTuner(make_dgx1(2), min_nb=1, max_nb=64, max_tiles=32)
    for n in (2, 4, 16, 31):
        candidates = tuner._candidates(n)
        assert candidates
        assert all(nb >= 1 for nb in candidates)
    result = tuner.tune("xkblas", "gemm", 16, refine=False)
    assert result.best_nb < 16
    assert result.best_tflops > 0


def test_ladder_floor_respects_max_tiles_admission():
    tuner = TileTuner(make_dgx1(2), min_nb=64, max_nb=8192, max_tiles=8)
    # ceil(8200/8) = 1025 -> first rung 2048; floor division would have
    # started at 1024, which the n/nb <= max_tiles guard then rejects.
    assert tuner._candidates(8200)[0] == 2048


def test_all_candidates_rejected_raises_not_zero():
    tuner = TileTuner(make_dgx1(2), min_nb=512, max_nb=4096)
    with pytest.raises(BenchmarkError, match="no admissible tile size"):
        tuner.tune("xkblas", "gemm", 256)  # n <= min_nb: nothing admissible
    # The failure must not poison the memo with a zero recommendation.
    with pytest.raises(BenchmarkError):
        tuner.tune("xkblas", "gemm", 256)


def test_executor_routed_tuner_matches_direct_and_caches():
    from repro.bench.cellspec import PlatformHandle
    from repro.bench.executor import SweepExecutor

    direct = TileTuner(make_dgx1(4), min_nb=512, max_nb=4096).tune(
        "xkblas", "gemm", 8192, refine=False
    )
    with SweepExecutor(jobs=1) as ex:
        handle = PlatformHandle("dgx1", 4)
        served = TileTuner(handle, min_nb=512, max_nb=4096, executor=ex).tune(
            "xkblas", "gemm", 8192, refine=False
        )
        simulated = ex.cells_simulated
        # A fresh tuner over the same executor answers from the point cache.
        again = TileTuner(handle, min_nb=512, max_nb=4096, executor=ex).tune(
            "xkblas", "gemm", 8192, refine=False
        )
        assert ex.cells_simulated == simulated
    assert served.best_nb == direct.best_nb
    assert served.evaluated == direct.evaluated
    assert again.evaluated == served.evaluated
