"""Tests for the simulator perf harness (:mod:`repro.bench.perfbench`)."""

import json

from repro.bench import perfbench
from repro.bench.perfbench import (
    BenchResult,
    bench_engine_events,
    bench_macro,
    compare_to_baseline,
    run_suite,
    suite_to_json,
)


def test_engine_micro_counts_every_event():
    res = bench_engine_events(num_events=2_000)
    # 64 seed events plus the respawned chain; the engine reports them all.
    assert res.events == 2_000 + 63
    assert res.kind == "micro"
    assert res.wall_s > 0.0
    assert res.events_per_s > 0.0


def test_macro_records_virtual_time_fields():
    res = bench_macro("macro-gemm-tiny", "gemm", n=2048, nb=512)
    assert res.kind == "macro"
    assert res.makespan_s is not None and res.makespan_s > 0.0
    assert res.tasks is not None and res.tasks > 0
    assert res.transfers is not None and res.transfers["h2d"] > 0
    assert res.events > 0


def test_full_suite_contains_the_fast_names(monkeypatch):
    """A committed full baseline must contain every name CI's --fast checks."""
    recorded = []

    def fake_micro(num_events=200_000):
        recorded.append(f"micro-{num_events}")
        return BenchResult(name=f"micro-engine-{num_events // 1000}k-events",
                           kind="micro", wall_s=1.0, events=num_events,
                           events_per_s=float(num_events))

    def fake_macro(name, routine, n, nb, phase_breakdown=False):
        recorded.append(name)
        return BenchResult(name=name, kind="macro", wall_s=1.0, events=10,
                           events_per_s=10.0, routine=routine, n=n, nb=nb,
                           makespan_s=0.5, tasks=4, transfers={"h2d": 1})

    def fake_harness(parallel_jobs=perfbench.HARNESS_JOBS):
        names = ["harness-sweep-serial", "harness-sweep-warm"]
        if parallel_jobs is not None and parallel_jobs > 1:
            names.append(f"harness-sweep-jobs{parallel_jobs}")
        return [BenchResult(name=n, kind="harness", wall_s=1.0, events=24,
                            events_per_s=24.0) for n in names]

    def fake_large(name, n, nb, phase_breakdown=True):
        recorded.append(name)
        return [BenchResult(name=f"{name}-{suffix}", kind="large", wall_s=1.0,
                            events=10, events_per_s=10.0, routine="gemm",
                            n=n, nb=nb, makespan_s=0.5, tasks=4,
                            peak_mem_bytes=1000)
                for suffix in ("stream", "retained")]

    def fake_stream(name, n, nb, phase_breakdown=False):
        recorded.append(name)
        return BenchResult(name=name, kind="macro", wall_s=1.0, events=10,
                           events_per_s=10.0, routine="gemm", n=n, nb=nb,
                           makespan_s=0.5, tasks=4, transfers={"h2d": 1})

    monkeypatch.setattr(perfbench, "bench_engine_events", fake_micro)
    monkeypatch.setattr(perfbench, "bench_macro", fake_macro)
    monkeypatch.setattr(perfbench, "bench_harness_sweep", fake_harness)
    monkeypatch.setattr(perfbench, "bench_large_gemm", fake_large)
    monkeypatch.setattr(perfbench, "bench_macro_stream", fake_stream)
    fast_names = {r.name for r in run_suite(fast=True)}
    full_names = {r.name for r in run_suite(fast=False)}
    assert fast_names <= full_names
    # The streamed macro point is part of the CI-gated fast subset: it is the
    # fast gate's coverage of the large-tier (streaming) code path.
    assert perfbench.STREAM_MACRO_POINT[0] in fast_names
    # The large tier belongs to the full suite only (the fast CI smoke has a
    # dedicated --large-smoke job).
    large_name = perfbench.LARGE_POINT[0]
    assert f"{large_name}-stream" in full_names
    assert f"{large_name}-retained" in full_names
    assert not any(n.startswith("large-") for n in fast_names)


def test_compare_flags_events_per_s_regression():
    baseline = {"results": [{"name": "x", "events_per_s": 1000.0}]}
    current = [BenchResult(name="x", kind="micro", wall_s=1.0,
                           events=100, events_per_s=500.0)]
    failures = compare_to_baseline(current, baseline, tolerance=0.30)
    assert len(failures) == 1 and "regressed" in failures[0]
    # Within tolerance: no failure.
    ok = [BenchResult(name="x", kind="micro", wall_s=1.0,
                      events=100, events_per_s=800.0)]
    assert compare_to_baseline(ok, baseline, tolerance=0.30) == []


def test_compare_flags_makespan_drift_as_determinism_break():
    baseline = {"results": [{
        "name": "m", "events_per_s": 10.0, "makespan_s": 0.5,
        "transfers": {"h2d": 3},
    }]}
    drifted = [BenchResult(name="m", kind="macro", wall_s=1.0, events=10,
                           events_per_s=10.0, makespan_s=0.5000001,
                           transfers={"h2d": 3})]
    failures = compare_to_baseline(drifted, baseline, tolerance=0.30)
    assert len(failures) == 1 and "determinism" in failures[0]
    bad_transfers = [BenchResult(name="m", kind="macro", wall_s=1.0, events=10,
                                 events_per_s=10.0, makespan_s=0.5,
                                 transfers={"h2d": 4})]
    failures = compare_to_baseline(bad_transfers, baseline, tolerance=0.30)
    assert len(failures) == 1 and "transfer stats" in failures[0]


def test_harness_sweep_slice_is_fixed_24_cells():
    specs = perfbench.harness_slice_specs()
    assert len(specs) == 24
    assert len(set(specs)) == 24  # all distinct -> nothing dedupes away


def test_harness_sweep_measures_serial_and_warm(monkeypatch):
    from repro.bench.harness import tile_specs

    # Shrink the slice so the measurement itself stays cheap in tests.
    monkeypatch.setattr(
        perfbench, "harness_slice_specs",
        lambda: list(tile_specs("xkblas", "gemm", 4096, tiles=(1024, 2048))),
    )
    results = perfbench.bench_harness_sweep(parallel_jobs=None)
    assert [r.name for r in results] == ["harness-sweep-serial", "harness-sweep-warm"]
    serial, warm = results
    assert serial.events == warm.events == 2
    assert warm.wall_s < serial.wall_s  # memo hits, no simulation
    summary = perfbench.harness_summary(results)
    assert summary["cells"] == 2
    assert summary["cache_warm_speedup"] > 1


def test_compare_does_not_gate_harness_points():
    # Sweep wall times are recorded for trajectory, never gated: a "slower"
    # harness point on different hardware must not fail CI.
    baseline = {"results": [{"name": "harness-sweep-serial",
                             "events_per_s": 1000.0}]}
    current = [BenchResult(name="harness-sweep-serial", kind="harness",
                           wall_s=10.0, events=24, events_per_s=2.4)]
    assert compare_to_baseline(current, baseline, tolerance=0.30) == []


def test_compare_does_not_gate_large_points():
    # One large run is measured under tracemalloc and the other is a
    # multi-minute point: the tier is memory-gated, never speed-gated.
    baseline = {"results": [{"name": "large-gemm-n131072-stream",
                             "events_per_s": 1000.0, "makespan_s": 1.0}]}
    current = [BenchResult(name="large-gemm-n131072-stream", kind="large",
                           wall_s=100.0, events=10, events_per_s=0.1,
                           makespan_s=2.0)]
    assert compare_to_baseline(current, baseline, tolerance=0.30) == []


def test_large_peak_gate_enforces_ratio_and_ceiling():
    def pair(stream_peak, retained_peak):
        return [
            BenchResult(name="large-x-stream", kind="large", wall_s=1.0,
                        events=1, events_per_s=1.0,
                        peak_mem_bytes=stream_peak),
            BenchResult(name="large-x-retained", kind="large", wall_s=1.0,
                        events=1, events_per_s=1.0,
                        peak_mem_bytes=retained_peak),
        ]

    assert perfbench.large_peak_gate(pair(20, 100)) == []
    failures = perfbench.large_peak_gate(pair(30, 100))
    assert len(failures) == 1 and "streamed peak" in failures[0]
    # Absolute ceiling applies to the streamed point only.
    failures = perfbench.large_peak_gate(pair(20, 100), ceiling_mb=1e-5)
    assert len(failures) == 1 and "ceiling" in failures[0]
    assert perfbench.large_peak_gate(pair(20, 100), ceiling_mb=100.0) == []


def test_compare_ignores_unknown_benchmarks():
    baseline = {"results": [{"name": "only-in-baseline", "events_per_s": 1.0}]}
    current = [BenchResult(name="new-benchmark", kind="micro", wall_s=1.0,
                           events=1, events_per_s=0.001)]
    assert compare_to_baseline(current, baseline, tolerance=0.30) == []


def test_suite_json_round_trips():
    results = [BenchResult(name="x", kind="micro", wall_s=1.0,
                           events=5, events_per_s=5.0)]
    payload = suite_to_json(results, fast=True)
    decoded = json.loads(json.dumps(payload))
    assert decoded["schema"] == perfbench.SCHEMA
    assert decoded["fast"] is True
    assert decoded["results"][0]["name"] == "x"
    # None-valued macro fields are omitted from the JSON, not serialized.
    assert "makespan_s" not in decoded["results"][0]


def test_committed_baseline_matches_schema_and_has_headline():
    """BENCH_runtime.json at the repo root is the CI baseline; keep it sane."""
    from pathlib import Path

    path = Path(__file__).parent.parent / "BENCH_runtime.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["schema"] == perfbench.SCHEMA
    names = {r["name"] for r in payload["results"]}
    assert "macro-gemm-n32768" in names
    # Every fast-subset name CI checks must be present in the baseline.
    assert {n for n, *_ in perfbench.FAST_MACRO_POINTS} <= names
    assert perfbench.STREAM_MACRO_POINT[0] in names
    assert "micro-engine-50k-events" in names
    headline = payload["headline"]
    assert headline["before_wall_s"] / headline["after_wall_s"] >= 1.5
    # The large-N streaming tier is recorded with both peaks, and the
    # streamed run must hold the <= 25% acceptance ratio.
    by_name = {r["name"]: r for r in payload["results"]}
    large = perfbench.LARGE_POINT[0]
    streamed = by_name[f"{large}-stream"]
    retained = by_name[f"{large}-retained"]
    assert streamed["tasks"] == retained["tasks"] > 250_000
    ratio = streamed["peak_mem_bytes"] / retained["peak_mem_bytes"]
    assert ratio <= perfbench.LARGE_PEAK_RATIO
    # Large rows carry the per-event and phase columns (PR 10): regressions
    # in the large tier must be diagnosable from the recording alone.
    for row in (streamed, retained):
        assert row.get("events_per_task", 0) > 0
        assert row.get("engine_s", 0) > 0
        assert row.get("dispatch_s", 0) > 0
        assert row.get("transfer_path_s", 0) > 0
    # Every macro point records the peak-memory column.
    for name, *_ in perfbench.FAST_MACRO_POINTS + perfbench.MACRO_POINTS:
        assert by_name[name].get("peak_mem_bytes", 0) > 0, name
