"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append(3))
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2, 3]
    assert sim.now == 3.0


def test_simultaneous_events_fire_in_submission_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))


def test_schedule_after_relative_delay():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule_after(0.5, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.5]


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule_after(-1.0, lambda: None)


def test_cancelled_event_is_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_pending_counts_cancellations_exactly():
    # ``pending`` is O(1): len(heap) minus a cancelled-in-heap counter.  The
    # counter must move on queued cancellations only — double-cancels and
    # cancels after the event already fired are no-ops.
    sim = Simulator()
    kept = sim.schedule(1.0, lambda: None)
    dead = sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    dead.cancel()
    assert sim.pending == 1
    dead.cancel()  # idempotent: no double count
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    kept.cancel()  # already fired: must not go negative
    dead.cancel()
    assert sim.pending == 0


def test_pending_exact_after_cancelled_top_is_reaped():
    # A cancelled entry reaped by the horizon peek (not a dispatch) must also
    # decrement the counter.
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(10.0, lambda: None)
    sim.run(until=5.0)
    assert sim.pending == 1


def test_step_past_cancelled_keeps_pending_exact():
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 1
    assert sim.step()  # skips the dead entry, fires the live one
    assert sim.pending == 0
    assert sim.events_fired == 1


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule_after(1.0, lambda: chain(depth + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_run_until_horizon_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_when_heap_drains_early():
    # Regression (PR 2): ``run(until=T)`` used to leave the clock at the last
    # event's time when the heap drained before the horizon, so a subsequent
    # ``schedule(now + dt)`` could land in the caller's past.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.schedule(5.0, lambda: fired.append(5))  # horizon time is schedulable
    sim.run()
    assert fired == [1, 5]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0
    sim.run(until=2.0)  # an earlier horizon never rewinds the clock
    assert sim.now == 3.0


def test_max_events_fires_exactly_the_budget():
    # Regression (PR 2): the guard used to fire the N+1-th event and only
    # then raise; the budget must be a hard cap on events *fired*.
    sim = Simulator()
    fired = []

    def respawn():
        fired.append(sim.now)
        sim.schedule_after(1.0, respawn)

    sim.schedule(0.0, respawn)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(max_events=7)
    assert len(fired) == 7
    assert sim.events_fired == 7


def test_max_events_sufficient_budget_completes_without_error():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]


def test_max_events_guards_against_livelock():
    sim = Simulator()

    def respawn():
        sim.schedule_after(1.0, respawn)

    sim.schedule(0.0, respawn)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_reset_clears_everything():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(2.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_run_not_reentrant():
    sim = Simulator()
    seen = []

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()
        seen.append(True)

    sim.schedule(0.0, reenter)
    sim.run()
    assert seen == [True]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_events_fire_in_nondecreasing_time(times):
    sim = Simulator()
    observed = []
    for t in times:
        sim.schedule(t, lambda t=t: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(times)
    assert sim.events_fired == len(times)
