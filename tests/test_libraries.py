"""Tests for the simulated library configurations and their semantics."""

import numpy as np
import pytest

from repro.blas.params import Diag, Side, Trans, Uplo
from repro.blas.reference import ref_gemm
from repro.errors import LibraryError
from repro.libraries import LIBRARIES, make_library
from repro.libraries.registry import FIG5_LIBRARIES, XKBLAS_VARIANTS
from repro.memory.matrix import Matrix
from repro.runtime.policies import SourcePolicy


def gemm_operands(n=192, seed=0):
    a = Matrix.random(n, n, seed=seed, name="A")
    b = Matrix.random(n, n, seed=seed + 1, name="B")
    c = Matrix.random(n, n, seed=seed + 2, name="C")
    return a, b, c


# ----------------------------------------------------------------- registry


def test_registry_contains_all_paper_libraries():
    assert set(FIG5_LIBRARIES) <= set(LIBRARIES)
    assert set(XKBLAS_VARIANTS) <= set(LIBRARIES)
    assert len(FIG5_LIBRARIES) == 8  # the paper's 8 curves


def test_unknown_library_rejected(dgx1_small):
    with pytest.raises(LibraryError):
        make_library("mkl", dgx1_small)


def test_xkblas_variant_policies(dgx1_small):
    assert (
        make_library("xkblas", dgx1_small).runtime_options().source_policy
        is SourcePolicy.TOPOLOGY_OPTIMISTIC
    )
    assert (
        make_library("xkblas-no-heuristic", dgx1_small).runtime_options().source_policy
        is SourcePolicy.TOPOLOGY
    )
    assert (
        make_library("xkblas-no-heuristic-no-topo", dgx1_small)
        .runtime_options()
        .source_policy
        is SourcePolicy.ANY_VALID
    )
    assert SourcePolicy.xkblas_variant("xkblas") is SourcePolicy.TOPOLOGY_OPTIMISTIC


# ------------------------------------------------------------- correctness


@pytest.mark.parametrize("key", sorted(LIBRARIES))
def test_every_library_computes_correct_gemm(dgx1_small, key):
    a, b, c = gemm_operands()
    c0 = c.to_array().copy()
    lib = make_library(key, dgx1_small)
    res = lib.gemm(1.5, a, b, -0.5, c, nb=64)
    expect = ref_gemm(1.5, a.to_array(), b.to_array(), -0.5, c0)
    if res.scenario == "device":
        # Result lives on the devices; flush through a session to check.
        return
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)
    assert res.seconds > 0 and res.gflops > 0


def test_gemm_only_libraries_reject_other_routines(dgx1_small):
    for key in ("blasx", "cublas-mg", "dplasma"):
        lib = make_library(key, dgx1_small)
        a = Matrix.meta(256, 256)
        c = Matrix.meta(256, 256)
        with pytest.raises(LibraryError):
            lib.syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, a, 0.0, c, nb=64)


def test_blasx_fails_above_45000(dgx1):
    lib = make_library("blasx", dgx1)
    a = Matrix.meta(46080, 46080)
    b = Matrix.meta(46080, 46080)
    c = Matrix.meta(46080, 46080)
    with pytest.raises(LibraryError, match="allocation"):
        lib.gemm(1.0, a, b, 0.0, c, nb=2048)


def test_library_result_metrics(dgx1_small):
    a, b, c = gemm_operands()
    res = make_library("xkblas", dgx1_small).gemm(1.0, a, b, 0.0, c, nb=64)
    assert res.flops == 2.0 * 192**3
    assert res.tflops == pytest.approx(res.gflops / 1e3)
    assert res.routine == "gemm" and res.library == "XKBlas"
    with pytest.raises(LibraryError):
        res.transfer_share()  # runtime not kept


def test_keep_runtime_enables_trace_analysis(dgx1_small):
    a, b, c = gemm_operands()
    res = make_library("xkblas", dgx1_small).gemm(1.0, a, b, 0.0, c, nb=64, keep_runtime=True)
    assert 0.0 < res.transfer_share() < 1.0


# ---------------------------------------------------------------- semantics


def test_synchronous_library_restores_host_after_each_call(dgx1_small):
    """cuBLAS-XT: after a call, the result is on the host and device replicas
    are dropped (data back and forth, §IV-F)."""
    a, b, c = gemm_operands()
    lib = make_library("cublas-xt", dgx1_small)
    res = lib.gemm(1.0, a, b, 0.0, c, nb=64, keep_runtime=True)
    rt = res.runtime
    part = rt._partitions[c.id]
    for tile in part:
        assert rt.directory.host_valid(tile.key)
        assert rt.directory.valid_devices(tile.key) == []


def test_xkblas_lazy_coherence_leaves_replicas_on_device(dgx1_small):
    a, b, c = gemm_operands()
    lib = make_library("xkblas", dgx1_small)
    res = lib.gemm(1.0, a, b, 0.0, c, nb=64, keep_runtime=True)
    rt = res.runtime
    part = rt._partitions[c.id]
    assert all(rt.directory.host_valid(t.key) for t in part)  # flushed result
    assert any(rt.directory.valid_devices(t.key) for t in part)  # replicas kept


def test_composition_is_numerically_correct(dgx1_small):
    """TRSM then GEMM through one XKBlas session (the Fig. 8 computation)."""
    n = 160
    rng = np.random.default_rng(5)
    a_arr = np.asfortranarray(rng.random((n, n)) + n * np.eye(n))
    a = Matrix(n, n, data=a_arr, name="A")
    b = Matrix.random(n, n, seed=6, name="B")
    c = Matrix.random(n, n, seed=7, name="C")
    d = Matrix.zeros(n, n, name="D")
    b0 = b.to_array().copy()
    lib = make_library("xkblas", dgx1_small)
    s = lib.session()
    s.trsm_async(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b, nb=48)
    s.gemm_async(1.0, b, c, 0.0, d, nb=48)
    s.memory_coherent_async(b, 48)
    s.memory_coherent_async(d, 48)
    s.sync()
    x = np.linalg.solve(np.tril(a_arr), b0)
    np.testing.assert_allclose(b.to_array(), x, atol=1e-8)
    np.testing.assert_allclose(d.to_array(), x @ c.to_array(), atol=1e-7)


def test_composition_faster_than_synchronous_sequence(dgx1_small):
    """Asynchronous composition (XKBlas) beats barrier-separated calls
    (Chameleon-style) on the same workload."""
    n, nb = 8192, 1024

    def compose(key):
        lib = make_library(key, dgx1_small)
        a = Matrix.meta(n, n, name="A")
        b = Matrix.meta(n, n, name="B")
        c = Matrix.meta(n, n, name="C")
        d = Matrix.meta(n, n, name="D")
        s = lib.session()
        s.trsm_async(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b, nb)
        s.gemm_async(1.0, b, c, 0.0, d, nb)
        s.memory_coherent_async(d, nb)
        return s.sync()

    assert compose("xkblas") < compose("chameleon-tile")


def test_chameleon_lapack_charges_conversions(dgx1_small):
    a, b, c = (Matrix.meta(4096, 4096, name=n) for n in "ABC")
    tile = make_library("chameleon-tile", dgx1_small).gemm(1.0, a, b, 0.0, c, nb=1024)
    a, b, c = (Matrix.meta(4096, 4096, name=n) for n in "ABC")
    lapack = make_library("chameleon-lapack", dgx1_small).gemm(1.0, a, b, 0.0, c, nb=1024)
    assert lapack.seconds > tile.seconds
    # conversion of A, B once and C twice at host copy bandwidth
    from repro.memory.layout import layout_conversion_time

    expected_extra = 4 * layout_conversion_time(a.nbytes)
    assert lapack.seconds - tile.seconds == pytest.approx(expected_extra, rel=0.35)


def test_dod_scenario_leaves_result_on_device(dgx1_small):
    a, b, c = gemm_operands()
    res = make_library("xkblas", dgx1_small).gemm(
        1.0, a, b, 0.0, c, nb=64, scenario="device", keep_runtime=True
    )
    rt = res.runtime
    part = rt._partitions[c.id]
    assert all(not rt.directory.host_valid(t.key) for t in part)
    assert rt.transfer.stats()["h2d"] == 0  # nothing crossed PCIe inbound


def test_dod_numeric_correctness_via_explicit_flush(dgx1_small):
    a, b, c = gemm_operands(seed=30)
    c0 = c.to_array().copy()
    lib = make_library("xkblas", dgx1_small)
    s = lib.session()
    s.gemm_async(2.0, a, b, 1.0, c, nb=64, scenario="device")
    s.memory_coherent_async(c, 64)
    s.sync()
    expect = ref_gemm(2.0, a.to_array(), b.to_array(), 1.0, c0)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)
