"""Tests for the NVSwitch platform and errors/config modules."""

import pytest

from repro import config
from repro.errors import (
    BenchmarkError,
    BlasValidationError,
    CoherenceError,
    DeviceOutOfMemoryError,
    LibraryError,
    MemoryViewError,
    ReproError,
    SchedulingError,
    SimulationError,
    TaskGraphError,
    TopologyError,
)
from repro.topology.link import LinkKind
from repro.topology.nvswitch import NVSWITCH_PAIR_BW, make_nvswitch_node


def test_nvswitch_uniform_links():
    plat = make_nvswitch_node(8)
    plat.validate()
    for i in range(8):
        for j in range(8):
            if i == j:
                continue
            link = plat.link(i, j)
            assert link.kind is LinkKind.NVLINK_DOUBLE
            assert link.bandwidth == NVSWITCH_PAIR_BW


def test_nvswitch_ranking_is_flat():
    """All peers share one performance rank: nothing for the topology
    heuristic to prefer."""
    plat = make_nvswitch_node(8)
    ranks = {plat.p2p_performance_rank(i, 0) for i in range(1, 8)}
    assert len(ranks) == 1


def test_nvswitch_sixteen_gpus_default():
    plat = make_nvswitch_node()
    assert plat.num_gpus == 16
    assert len(plat.pcie_switch_groups) == 8


def test_nvswitch_odd_gpu_count_switch_groups():
    plat = make_nvswitch_node(5)
    assert [len(g) for g in plat.pcie_switch_groups] == [2, 2, 1]


def test_nvswitch_invalid_count():
    with pytest.raises(ValueError):
        make_nvswitch_node(0)
    with pytest.raises(ValueError):
        make_nvswitch_node(17)


def test_error_hierarchy():
    for exc in (
        TopologyError,
        SimulationError,
        MemoryViewError,
        CoherenceError,
        DeviceOutOfMemoryError,
        SchedulingError,
        TaskGraphError,
        BlasValidationError,
        LibraryError,
        BenchmarkError,
    ):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


def test_config_sanity():
    """The calibration constants must stay consistent with the paper."""
    assert config.V100_FP64_PEAK == pytest.approx(7.8e12)
    assert config.NVLINK2_DOUBLE_BW > config.NVLINK2_SINGLE_BW > config.PCIE_PEER_BW
    assert config.PCIE_HOST_BW == pytest.approx(16e9)
    assert config.PAPER_TILE_SIZES == (1024, 2048, 4096)
    assert max(config.PAPER_TILE_SIZES_EXTENDED) == 16384
    assert config.XKAAPI_TASK_OVERHEAD < config.STARPU_TASK_OVERHEAD
