"""Tests for in-order streams."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.stream import Stream


def test_operations_serialize():
    stream = Stream(Simulator())
    s1, e1 = stream.reserve(1.0)
    s2, e2 = stream.reserve(2.0)
    assert (s1, e1) == (0.0, 1.0)
    assert (s2, e2) == (1.0, 3.0)
    assert stream.ops == 2


def test_earliest_delays_start():
    stream = Stream(Simulator())
    start, end = stream.reserve(1.0, earliest=10.0)
    assert (start, end) == (10.0, 11.0)


def test_backlog_dominates_earliest():
    stream = Stream(Simulator())
    stream.reserve(5.0)
    start, _ = stream.reserve(1.0, earliest=2.0)
    assert start == 5.0


def test_negative_duration_rejected():
    with pytest.raises(SimulationError):
        Stream(Simulator()).reserve(-1.0)


def test_available_at():
    stream = Stream(Simulator())
    stream.reserve(3.0)
    assert stream.available_at(1.0) == 3.0
    assert stream.available_at(4.0) == 4.0


def test_zero_duration_op_allowed():
    stream = Stream(Simulator())
    s, e = stream.reserve(0.0)
    assert s == e == 0.0
