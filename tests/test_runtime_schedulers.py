"""Tests for the scheduling policies."""

import pytest

from repro import Runtime
from repro.errors import SchedulingError
from repro.memory.layout import BlockCyclicDistribution
from repro.memory.matrix import Matrix
from repro.runtime.scheduler import (
    DmdaScheduler,
    LocalityWorkStealing,
    OwnerComputesScheduler,
    RoundRobinScheduler,
)
from repro.runtime.scheduler.base import SchedulerContext
from repro.runtime.task import Task, make_access_list
from repro.topology.dgx1 import make_dgx1


@pytest.fixture()
def ctx():
    rt = Runtime(make_dgx1(4))
    mat = Matrix.meta(4096, 4096)
    part = rt.partition(mat, 1024)
    return rt, part, SchedulerContext(rt.platform, rt.directory, rt.transfer)


def make_task(part, i, j, reads=(), hint=None):
    t = Task(
        name="t",
        accesses=make_access_list(reads=reads, readwrites=[part[(i, j)]]),
        flops=1e9,
        dim=1024,
        owner_hint=hint,
    )
    return t


# --------------------------------------------------------- work stealing


def test_ws_fresh_tasks_go_to_host_queue(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    ws.push(make_task(part, 0, 0), c)
    assert ws.pending() == 1
    assert ws.queue_sizes() == [0, 0, 0, 0]


def test_ws_owner_computes_placement(ctx):
    rt, part, c = ctx
    tile = part[(0, 0)]
    rt.directory.seed_device(tile.key, 2, exclusive=True)
    ws = LocalityWorkStealing(4)
    ws.push(make_task(part, 0, 0), c)
    assert ws.queue_sizes()[2] == 1


def test_ws_owner_hint_wins(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    ws.push(make_task(part, 0, 0, hint=3), c)
    assert ws.queue_sizes()[3] == 1


def test_ws_own_deque_pops_lifo(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    t1, t2 = make_task(part, 0, 0, hint=0), make_task(part, 0, 1, hint=0)
    ws.push(t1, c)
    ws.push(t2, c)
    assert ws.pop(0, c) is t2  # newest first
    assert ws.pop(0, c) is t1


def test_ws_idle_steals_fifo_from_host_queue(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    t1, t2 = make_task(part, 0, 0), make_task(part, 0, 1)
    ws.push(t1, c)
    ws.push(t2, c)
    assert ws.pop(1, c, idle=True) is t1  # oldest first
    assert ws.steals == 1


def test_ws_busy_worker_does_not_steal(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    ws.push(make_task(part, 0, 0), c)
    assert ws.pop(1, c, idle=False) is None
    assert ws.pending() == 1


def test_ws_steals_from_richest_peer(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    for j in range(3):
        ws.push(make_task(part, 0, j, hint=2), c)
    ws.push(make_task(part, 1, 0, hint=1), c)
    stolen = ws.pop(0, c, idle=True)
    assert stolen.owner_hint == 2  # richest deque (device 2)


def test_ws_empty_pop_returns_none(ctx):
    rt, part, c = ctx
    ws = LocalityWorkStealing(4)
    assert ws.pop(0, c) is None


# ------------------------------------------------------------------ dmda


def test_dmda_prefers_device_with_resident_data(ctx):
    rt, part, c = ctx
    reads = [part[(1, 0)], part[(1, 1)]]
    for tile in reads:
        rt.directory.seed_device(tile.key, 3, exclusive=False)
        rt.caches[3].insert(tile.key, tile.nbytes)
    dmda = DmdaScheduler(4, rt.platform)
    dmda.push(make_task(part, 0, 0, reads=reads), c)
    assert dmda.pop(3, c) is not None
    assert all(dmda.pop(d, c) is None for d in (0, 1, 2))


def test_dmda_balances_queue_lengths(ctx):
    rt, part, c = ctx
    dmda = DmdaScheduler(4, rt.platform)
    for j in range(4):
        dmda.push(make_task(part, 0, j), c)
    served = sum(dmda.pop(d, c) is not None for d in range(4))
    assert served == 4  # one task per device, no pile-up


def test_dmda_pop_respects_priority(ctx):
    rt, part, c = ctx
    dmda = DmdaScheduler(1, rt.platform)
    low = make_task(part, 0, 0)
    high = make_task(part, 0, 1)
    low.priority, high.priority = 1, 10
    dmda.push(low, c)
    dmda.push(high, c)
    assert dmda.pop(0, c) is high


# --------------------------------------------------------- owner-computes


def test_owner_computes_by_distribution(ctx):
    rt, part, c = ctx
    dist = BlockCyclicDistribution(2, 2)
    sched = OwnerComputesScheduler(4, distribution=dist)
    t = make_task(part, 1, 1)
    sched.push(t, c)
    assert sched.pop(dist.owner(1, 1), c) is t


def test_owner_computes_requires_hint_without_distribution(ctx):
    rt, part, c = ctx
    sched = OwnerComputesScheduler(4)
    with pytest.raises(SchedulingError):
        sched.push(make_task(part, 0, 0), c)
    sched.push(make_task(part, 0, 0, hint=2), c)
    assert sched.pop(2, c) is not None


def test_owner_computes_out_of_range_owner(ctx):
    rt, part, c = ctx
    sched = OwnerComputesScheduler(2, owner_of=lambda t: 5)
    with pytest.raises(SchedulingError):
        sched.push(make_task(part, 0, 0), c)


# ------------------------------------------------------------ round-robin


def test_round_robin_cycles(ctx):
    rt, part, c = ctx
    rr = RoundRobinScheduler(3)
    ts = [make_task(part, j % 2, j // 2) for j in range(6)]
    for t in ts:
        rr.push(t, c)
    assert rr.pop(0, c) is ts[0]
    assert rr.pop(1, c) is ts[1]
    assert rr.pop(2, c) is ts[2]
    assert rr.pop(0, c) is ts[3]


def test_round_robin_respects_hint(ctx):
    rt, part, c = ctx
    rr = RoundRobinScheduler(3)
    t = make_task(part, 0, 0, hint=2)
    rr.push(t, c)
    assert rr.pop(2, c) is t


# -------------------------------------------------------------- context


def test_context_locality_and_missing_bytes(ctx):
    rt, part, c = ctx
    reads = [part[(1, 0)], part[(1, 1)]]
    rt.directory.seed_device(reads[0].key, 2, exclusive=False)
    t = make_task(part, 0, 0, reads=reads)
    assert c.locality_bytes(t, 2) == reads[0].nbytes
    # missing = the other read tile + the RW output tile (it is read too)
    assert c.missing_bytes(t, 2) == reads[1].nbytes + part[(0, 0)].nbytes
    assert c.best_locality_device(t) == 2
    assert c.best_locality_device(make_task(part, 2, 2)) is None
