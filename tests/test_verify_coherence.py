"""Tests for the coherence invariant checker (:mod:`repro.verify.coherence`).

Real executions must sweep clean; each protocol invariant is then proven live
by tampering the directory into the state it forbids and asserting the
corresponding finding code.  The sanitizer variants must raise
:class:`~repro.errors.VerificationError` on the same seeds.
"""

import pytest

from repro import Runtime, RuntimeOptions
from repro.blas.tiled import build_gemm
from repro.errors import VerificationError
from repro.memory.coherence import CoherenceDirectory, ReplicaState
from repro.memory.matrix import Matrix
from repro.memory.tile import TileKey
from repro.topology.dgx1 import make_dgx1
from repro.topology.link import HOST
from repro.verify.coherence import CoherenceSanitizer, check_directory, check_tile

KEY = TileKey(0, 0, 0)


def codes(findings):
    return {f.code for f in findings}


def entry_of(directory, key=KEY):
    directory.is_valid(key, HOST)  # materialize the entry
    return directory._entries[key]  # noqa: SLF001 — tests tamper on purpose


# ----------------------------------------------------------------- clean runs


def test_fresh_directory_is_clean():
    d = CoherenceDirectory()
    assert check_tile(d, KEY) == []
    assert check_directory(d) == []


def test_legal_protocol_sequence_is_clean():
    d = CoherenceDirectory()
    d.begin_transfer(KEY, 0, completes_at=1.0, source=HOST)
    assert check_tile(d, KEY) == []
    d.complete_transfer(KEY, 0)
    d.write(KEY, 0)  # unique MODIFIED owner
    assert check_tile(d, KEY) == []
    d.begin_transfer(KEY, 1, completes_at=2.0, source=0)  # d2d forward
    assert check_tile(d, KEY) == []


def test_executed_run_directory_sweeps_clean():
    platform = make_dgx1(2)
    rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
    mats = [Matrix.meta(64, 64, name=x) for x in "ABC"]
    parts = [rt.partition(m, 32) for m in mats]
    for t in build_gemm(1.0, parts[0], parts[1], 0.5, parts[2]):
        rt.submit(t)
    rt.memory_coherent_async(mats[2], 32)
    rt.sync()
    assert rt.sanitizer is not None and rt.sanitizer.checks > 0
    assert check_directory(rt.directory, platform) == []


def test_sanitizer_disabled_by_default():
    rt = Runtime(make_dgx1(2))
    assert rt.sanitizer is None and rt.transfer.sanitizer is None


# ----------------------------------------------------- seeded violations


def test_double_modified_detected():
    d = CoherenceDirectory()
    d.write(KEY, 0)
    entry_of(d).states[1] = ReplicaState.MODIFIED  # second owner: impossible
    assert codes(check_tile(d, KEY)) == {"C001"}


def test_host_valid_while_device_modified_detected():
    d = CoherenceDirectory()
    d.write(KEY, 0)
    entry_of(d).states[HOST] = ReplicaState.SHARED  # stale host marked valid
    assert codes(check_tile(d, KEY)) == {"C002"}


def test_flight_generation_drift_detected():
    d = CoherenceDirectory()
    d.begin_transfer(KEY, 0, completes_at=1.0, source=HOST)
    entry_of(d).in_flight[0].generation += 1  # flight from the future
    assert codes(check_tile(d, KEY)) == {"C003"}
    entry_of(d).in_flight[0].generation -= 1
    entry_of(d).generation += 1  # write that forgot to clear the flight
    assert codes(check_tile(d, KEY)) == {"C003"}


def test_flight_source_without_replica_detected():
    d = CoherenceDirectory()
    d.begin_transfer(KEY, 1, completes_at=1.0, source=3)  # 3 holds nothing
    assert codes(check_tile(d, KEY)) == {"C004"}


def test_flight_source_chained_on_inbound_flight_is_legal():
    d = CoherenceDirectory()
    d.begin_transfer(KEY, 0, completes_at=1.0, source=HOST)
    d.begin_transfer(KEY, 1, completes_at=2.0, source=0)  # optimistic chain
    assert check_tile(d, KEY) == []


def test_writeback_of_discarded_replica_is_legal():
    d = CoherenceDirectory()
    d.write(KEY, 0)
    d.begin_transfer(KEY, HOST, completes_at=1.0, source=0)  # write-back
    d.discard(KEY, 0)  # dirty victim evicted; bytes live in the wire
    assert check_tile(d, KEY) == []


def test_flight_to_already_valid_destination_detected():
    d = CoherenceDirectory()
    d.begin_transfer(KEY, 0, completes_at=1.0, source=HOST)
    entry_of(d).states[0] = ReplicaState.SHARED  # validated without landing
    assert codes(check_tile(d, KEY)) == {"C005"}


def test_unknown_locations_detected_with_platform():
    platform = make_dgx1(2)
    d = CoherenceDirectory()
    d.write(KEY, 7)  # no such device on a 2-GPU platform
    assert codes(check_tile(d, KEY, platform)) == {"C006"}
    assert check_tile(d, KEY) == []  # without a platform the rule is off


def test_non_finite_completion_time_detected():
    d = CoherenceDirectory()
    d.begin_transfer(KEY, 0, completes_at=float("nan"), source=HOST)
    assert "C007" in codes(check_tile(d, KEY))


# ------------------------------------------------------------------ sanitizer


def test_sanitizer_raises_on_seeded_double_modified():
    d = CoherenceDirectory()
    d.write(KEY, 0)
    entry_of(d).states[1] = ReplicaState.MODIFIED
    sanitizer = CoherenceSanitizer(d)
    with pytest.raises(VerificationError) as exc:
        sanitizer.check_tile(KEY)
    assert any(f.code == "C001" for f in exc.value.findings)
    with pytest.raises(VerificationError):
        sanitizer.check_all()
    assert sanitizer.checks == 2


def test_sanitized_run_catches_post_hoc_tampering():
    platform = make_dgx1(2)
    rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
    part = rt.partition(Matrix.meta(64, 64, name="A"), 32)
    rt.transfer.ensure_resident(part[(0, 0)], 0)
    rt.sync()
    rt.sanitizer.check_all()  # clean
    entry_of(rt.directory, part[(0, 0)].key).states[1] = ReplicaState.MODIFIED
    with pytest.raises(VerificationError):
        rt.sanitizer.check_all()
