"""Tests for the vector-clock happens-before race detector
(:mod:`repro.verify.races`).

A detector is validated by seeded violations: traces with known races must be
convicted, and legal chained variants of the same shape must stay clean.
"""

from repro import Runtime, RuntimeOptions
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix
from repro.runtime.access import Access, AccessMode
from repro.runtime.dataflow import TaskGraph
from repro.runtime.task import Task
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.dgx1 import make_dgx1
from repro.verify import cli
from repro.verify.races import detect_races
from repro.verify.trace_lint import lint_trace

RW = AccessMode.READ | AccessMode.WRITE


def make_tile():
    part = TilePartition(Matrix.meta(64, 64, name="A"), 32)
    return part.tiles()[0]


def make_done_task(tile, device, start, end, mode=RW):
    task = Task("dgemm", [Access(tile, mode)], flops=1.0, dim=32)
    task.device, task.start_time, task.end_time = device, start, end
    task.state = "done"
    return task


def graph_of(*tasks):
    graph = TaskGraph()
    for task in tasks:
        # Appended directly: these tests seed *illegal* histories the
        # dependency builder would refuse to construct.
        graph.tasks.append(task)
    return graph


def codes(findings):
    return sorted(f.code for f in findings)


# ------------------------------------------------------------ seeded races


def test_seeded_write_write_kernel_conflict_missed_by_trace_lint():
    """Acceptance: the VC detector flags a WW conflict trace_lint passes."""
    tile = make_tile()
    t1 = make_done_task(tile, 0, 1.5, 3.0)
    t2 = make_done_task(tile, 1, 1.6, 3.1)
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_HTOD, 1, 0.1, 1.1, f"h2d {tile.key!r}")
    trace.record(TraceCategory.KERNEL, 0, 1.5, 3.0, "dgemm")
    trace.record(TraceCategory.KERNEL, 1, 1.6, 3.1, "dgemm")
    # Every rule of the PR-1 linter is satisfied...
    assert lint_trace(trace) == []
    # ...yet two unordered kernels write the same tile.
    found = detect_races(trace, graph_of(t1, t2))
    assert "R001" in codes(found)


def test_graph_edge_orders_the_same_shape():
    """Identical access pattern, but dependence-edge ordered: clean."""
    tile = make_tile()
    t1 = make_done_task(tile, 0, 1.5, 3.0)
    t2 = make_done_task(tile, 1, 4.5, 5.0)
    t1.successors.append(t2)
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.KERNEL, 0, 1.5, 3.0, "dgemm")
    trace.record(TraceCategory.MEMCPY_PTOP, 1, 3.2, 4.0, f"p2p 0->1 {tile.key!r}")
    trace.record(TraceCategory.KERNEL, 1, 4.5, 5.0, "dgemm")
    assert detect_races(trace, graph_of(t1, t2)) == []


def test_transfer_chain_alone_orders_cross_device_kernels():
    """writer -> d2h -> h2d chains order kernels with no graph edge at all."""
    tile = make_tile()
    t1 = make_done_task(tile, 0, 1.0, 2.0)
    t2 = make_done_task(tile, 1, 5.0, 6.0)
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 0.5, f"h2d {tile.key!r}")
    trace.record(TraceCategory.KERNEL, 0, 1.0, 2.0, "dgemm")
    trace.record(TraceCategory.MEMCPY_DTOH, 0, 2.5, 3.0, f"d2h {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_HTOD, 1, 3.5, 4.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.KERNEL, 1, 5.0, 6.0, "dgemm")
    assert detect_races(trace, graph_of(t1, t2)) == []


def test_war_without_graph_edge_is_a_race():
    """A reader overlapping a later writer with no ordering: R002."""
    tile = make_tile()
    reader = make_done_task(tile, 1, 1.5, 3.0, mode=AccessMode.READ)
    writer = make_done_task(tile, 0, 1.6, 3.1)
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_HTOD, 1, 0.1, 1.1, f"h2d {tile.key!r}")
    trace.record(TraceCategory.KERNEL, 1, 1.5, 3.0, "read-kernel")
    trace.record(TraceCategory.KERNEL, 0, 1.6, 3.1, "write-kernel")
    found = detect_races(trace, graph_of(reader, writer))
    assert "R002" in codes(found)


def test_r003_duplicate_h2d_storm_on_one_replica():
    """Two overlapping H2Ds into the same device replica, no graph needed."""
    tile = make_tile()
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.5, 1.5, f"h2d {tile.key!r}")
    found = detect_races(trace)
    assert codes(found) == ["R003"]


def test_sequential_h2d_reload_is_not_a_race():
    tile = make_tile()
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 2.0, 3.0, f"h2d {tile.key!r}")
    assert detect_races(trace) == []


def test_p2p_read_during_overwrite_of_source_replica():
    """An H2D overwriting a replica while a P2P reads from it: R003."""
    tile = make_tile()
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, f"h2d {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_PTOP, 1, 2.0, 3.0, f"p2p 0->1 {tile.key!r}")
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 2.5, 3.5, f"h2d {tile.key!r}")
    found = detect_races(trace)
    assert "R003" in codes(found)


def test_overlapping_same_device_streams_are_concurrent_not_ordered():
    """Same-device overlap must NOT create happens-before (streams).

    A kernel on device 0 overlaps a transfer on device 0; a later event
    joining only the transfer's past must not be considered ordered after
    the kernel.  Seed a conflict that is only a race if that inference is
    (correctly) absent.
    """
    tile = make_tile()
    writer = make_done_task(tile, 0, 0.0, 10.0)
    other = make_done_task(tile, 1, 3.0, 4.0)
    trace = TraceRecorder()
    # The unrelated transfer on device 0 ends early; its completion chains
    # to device 1 — but the kernel [0, 10) is still running.
    part2 = TilePartition(Matrix.meta(64, 64, name="B"), 32)
    other_tile = part2.tiles()[0]
    trace.record(TraceCategory.KERNEL, 0, 0.0, 10.0, "dgemm")
    trace.record(TraceCategory.MEMCPY_PTOP, 1, 1.0, 2.0, f"p2p 0->1 {other_tile.key!r}")
    trace.record(TraceCategory.KERNEL, 1, 3.0, 4.0, "dgemm")
    found = detect_races(trace, graph_of(writer, other))
    assert "R001" in codes(found)


# ------------------------------------------------------------- legal runs


def test_every_executed_routine_is_race_free():
    for routine in cli.ROUTINES:
        platform = make_dgx1(4)
        rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
        for task in cli.build_tasks(routine, 128, 32):
            rt.submit(task)
        rt.sync()
        assert detect_races(rt.trace, rt.executor.graph) == [], routine


def test_streaming_reclaiming_run_is_race_free():
    platform = make_dgx1(4)
    rt = Runtime(
        platform,
        RuntimeOptions(verify_coherence=True, streaming=True, retain_tasks=False),
    )
    rt.submit_stream(iter(cli.build_tasks("gemm", 128, 32)))
    rt.sync()
    # Reclaiming graphs keep no kernel accesses: transfer-level check only.
    assert detect_races(rt.trace) == []


def test_reclaiming_graph_contributes_no_kernel_accesses():
    tile = make_tile()
    trace = TraceRecorder()
    trace.record(TraceCategory.KERNEL, 0, 1.0, 2.0, "dgemm")
    trace.record(TraceCategory.KERNEL, 1, 1.0, 2.0, "dgemm")
    graph = TaskGraph(retain_tasks=False)
    # No crash, no findings: kernel accesses are unavailable by design.
    assert detect_races(trace, graph) == []


def test_malformed_labels_are_left_to_trace_lint():
    trace = TraceRecorder()
    trace.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, "garbage")
    assert detect_races(trace) == []
    assert any(f.code == "T001" for f in lint_trace(trace))
