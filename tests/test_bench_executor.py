"""Tests for the sweep executor: dedup, caching, serial/parallel identity."""

import pytest

from repro.bench.cellspec import CellSpec, PlatformHandle
from repro.bench.executor import (
    SweepExecutor,
    default_executor,
    default_jobs,
    evaluate_cell,
    set_default_executor,
)
from repro.bench.experiments import fig3_heuristics
from repro.bench.harness import run_point, tile_specs
from repro.topology.dgx1 import make_dgx1

HANDLE = PlatformHandle("dgx1", 4)


def _specs():
    return list(
        tile_specs("xkblas", "gemm", 4096, HANDLE, tiles=(1024, 2048))
    )


def test_default_jobs_at_least_one():
    assert default_jobs() >= 1


def test_evaluate_dedupes_and_memoizes():
    with SweepExecutor(jobs=1) as ex:
        specs = _specs()
        outcomes = ex.evaluate(specs + specs)  # duplicates collapse
        assert ex.cells_simulated == len(specs)
        assert set(outcomes) == set(specs)
        again = ex.evaluate(specs)
        assert ex.cells_simulated == len(specs)  # all memo hits
        assert again == outcomes


def test_results_keyed_in_submission_order():
    with SweepExecutor(jobs=1) as ex:
        specs = _specs()
        assert list(ex.evaluate(reversed(specs))) == list(reversed(specs))
        assert list(ex.evaluate(specs)) == specs


def test_deterministic_failures_become_outcomes():
    # BLASX does not implement SYRK: a deterministic library failure must
    # cross the executor as data (ok=False), not as an exception.
    spec = CellSpec(library="blasx", routine="syrk", n=4096, nb=1024,
                    platform=HANDLE)
    with SweepExecutor(jobs=1) as ex:
        outcome = ex.evaluate_one(spec)
    assert outcome.ok is False
    assert outcome.error


def test_unknown_mode_raises():
    from repro.errors import BenchmarkError

    with pytest.raises(BenchmarkError, match="unknown cell mode"):
        evaluate_cell(
            CellSpec(library="xkblas", routine="gemm", n=4096, nb=1024,
                     platform=HANDLE, mode="trace")
        )


def test_executor_matches_direct_run_point():
    plat = make_dgx1(4)
    direct = run_point("xkblas", "gemm", 4096, 1024, plat)
    with SweepExecutor(jobs=1) as ex:
        spec = CellSpec(library="xkblas", routine="gemm", n=4096, nb=1024,
                        platform=HANDLE)
        cached = ex.evaluate_one(spec)
    assert cached.seconds == direct.seconds
    assert cached.tflops == direct.tflops


def test_raw_platform_bypasses_executor():
    with SweepExecutor(jobs=1) as ex:
        res = run_point("xkblas", "gemm", 4096, 1024, make_dgx1(4), executor=ex)
        assert res.tflops > 0
        assert ex.cells_simulated == 0  # direct path, nothing cached


def test_set_default_executor_restores():
    original = default_executor()
    mine = SweepExecutor(jobs=1)
    previous = set_default_executor(mine)
    try:
        assert default_executor() is mine
    finally:
        set_default_executor(previous)
    assert default_executor() is original


def test_start_method_explicit_choice_validated():
    from repro.errors import BenchmarkError

    with SweepExecutor(jobs=2, start_method="spawn") as ex:
        assert ex._pick_start_method() == "spawn"
    with SweepExecutor(jobs=2, start_method="not-a-method") as ex:
        with pytest.raises(BenchmarkError, match="unavailable"):
            ex._pick_start_method()


def test_start_method_avoids_fork_with_live_threads(monkeypatch):
    # Forking with live threads (the asyncio server's dispatch threads)
    # clones locks mid-flight; the auto choice must fall back.
    import threading

    import repro.bench.executor as executor_mod

    with SweepExecutor(jobs=2) as ex:
        monkeypatch.setattr(executor_mod.threading, "active_count", lambda: 1)
        if "fork" in __import__("multiprocessing").get_all_start_methods():
            assert ex._pick_start_method() == "fork"
        monkeypatch.setattr(executor_mod.threading, "active_count", lambda: 3)
        assert ex._pick_start_method() in ("forkserver", "spawn")
    assert threading.active_count() >= 1  # the real function is untouched


def test_ensure_pool_single_instance_under_racing_threads(monkeypatch):
    # Concurrent evaluate_async batches can hit _ensure_pool simultaneously;
    # a check-then-create race would leak a pool of live worker processes.
    import threading

    import repro.bench.executor as executor_mod

    created = []

    class FakePool:
        def __init__(self, max_workers=None, mp_context=None):
            created.append(self)

        def shutdown(self):
            pass

    monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", FakePool)
    with SweepExecutor(jobs=2) as ex:
        barrier = threading.Barrier(8)
        pools = []

        def grab():
            barrier.wait()
            pools.append(ex._ensure_pool())

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(created) == 1
        assert all(pool is created[0] for pool in pools)


def test_evaluate_async_matches_sync():
    import asyncio

    with SweepExecutor(jobs=1) as ex:
        specs = _specs()
        sync_outcomes = ex.evaluate(specs)
        async_outcomes = asyncio.run(ex.evaluate_async(specs))
        assert async_outcomes == sync_outcomes
        assert ex.cells_simulated == len(specs)  # second pass was all memo hits


def test_parallel_results_bit_identical_to_serial():
    # The tentpole contract: --jobs N changes wall time, never numbers.
    # A reduced Fig. 3 slice (one routine, one size, all four curves) runs
    # through a 2-worker pool and must match the serial rows exactly.
    kwargs = dict(fast=True, sizes=(8192,), routines=("gemm",))
    with SweepExecutor(jobs=1) as serial_ex:
        serial = fig3_heuristics.run(executor=serial_ex, **kwargs)
    with SweepExecutor(jobs=2) as parallel_ex:
        parallel = fig3_heuristics.run(executor=parallel_ex, **kwargs)
    assert parallel.rows == serial.rows
    assert parallel.columns == serial.columns
    assert parallel_ex.cells_simulated == serial_ex.cells_simulated
