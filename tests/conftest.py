"""Shared fixtures: platforms, runtimes, deterministic RNG."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Runtime, RuntimeOptions
from repro.topology.dgx1 import make_dgx1
from repro.topology.device import GpuSpec
from repro.topology.link import Link, LinkKind
from repro.topology.platform import Platform


@pytest.fixture(scope="session")
def dgx1():
    """The full 8-GPU DGX-1 of Table I."""
    return make_dgx1(8)


@pytest.fixture(scope="session")
def dgx1_small():
    """A 4-GPU slice of the DGX-1 (cheaper numeric runs)."""
    return make_dgx1(4)


@pytest.fixture()
def duo():
    """A tiny 2-GPU platform with one NVLink pair and small memories.

    Small device memory (64 MiB) lets eviction paths trigger with small
    matrices.
    """
    gpu = GpuSpec(name="mini", memory_bytes=64 * 1024 * 1024)
    links = [
        Link(0, 1, LinkKind.NVLINK_DOUBLE),
        Link(1, 0, LinkKind.NVLINK_DOUBLE),
    ]
    return Platform(
        name="duo",
        gpus=[gpu, gpu],
        links=links,
        pcie_switch_groups=[(0, 1)],
    )


@pytest.fixture()
def runtime(dgx1_small):
    return Runtime(dgx1_small)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def make_runtime(platform, **opts) -> Runtime:
    """Helper for tests needing custom options."""
    return Runtime(platform, RuntimeOptions(**opts))
