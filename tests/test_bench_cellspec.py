"""Tests for the frozen cell descriptions (CellSpec / PlatformHandle)."""

import pytest

from repro.bench.cellspec import (
    DEFAULT_PLATFORM,
    CellOutcome,
    CellSpec,
    PlatformHandle,
    as_handle,
)
from repro.topology.dgx1 import make_dgx1


# ------------------------------------------------------------ cache keys


def test_cache_key_golden():
    # The key format is a persistence contract: changing it silently orphans
    # every record in users' .bench_cache stores, so pin it exactly.
    spec = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
    assert spec.cache_key() == "perf|dgx1x8|xkblas|gemm|n=8192|nb=1024|k=8192|host"


def test_cache_key_covers_every_field():
    base = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
    variants = [
        CellSpec(library="slate", routine="gemm", n=8192, nb=1024),
        CellSpec(library="xkblas", routine="trsm", n=8192, nb=1024),
        CellSpec(library="xkblas", routine="gemm", n=4096, nb=1024),
        CellSpec(library="xkblas", routine="gemm", n=8192, nb=2048),
        CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024, k=512),
        CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024, scenario="device"),
        CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024,
                 platform=PlatformHandle("dgx1", 4)),
        CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024,
                 mode="composition"),
    ]
    keys = {spec.cache_key() for spec in variants}
    assert len(keys) == len(variants)
    assert base.cache_key() not in keys


def test_explicit_k_equal_to_n_matches_default():
    # k=None means k=n; the key must not distinguish the two spellings.
    implicit = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
    explicit = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024, k=8192)
    assert implicit.cache_key() == explicit.cache_key()


def test_specs_are_hashable_dict_keys():
    a = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
    b = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
    assert a == b and hash(a) == hash(b)
    assert len({a: 1, b: 2}) == 1


# ------------------------------------------------------------- platforms


def test_platform_handle_build_is_memoized():
    handle = PlatformHandle("dgx1", 4)
    assert handle.build() is PlatformHandle("dgx1", 4).build()
    assert handle.build().num_gpus == 4
    assert handle.key == "dgx1x4"


def test_platform_handle_unknown_factory():
    with pytest.raises(ValueError, match="unknown platform factory"):
        PlatformHandle("bgq", 8).build()


def test_as_handle_coercions():
    assert as_handle(None) == DEFAULT_PLATFORM
    handle = PlatformHandle("nvswitch", 8)
    assert as_handle(handle) is handle
    # A hand-built Platform cannot be described by a handle -> direct path.
    assert as_handle(make_dgx1(2)) is None


# -------------------------------------------------------------- outcomes


def test_cell_outcome_json_round_trip():
    ok = CellOutcome(ok=True, tflops=12.5, seconds=0.25, flops=3.1e12)
    assert CellOutcome.from_json(ok.to_json()) == ok
    err = CellOutcome(ok=False, error="blasx: allocation failed")
    assert CellOutcome.from_json(err.to_json()) == err
    # None fields are omitted from the payload, not serialized as null.
    assert "tflops" not in err.to_json()
