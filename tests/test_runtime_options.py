"""Tests for RuntimeOptions knobs not covered elsewhere."""

from repro import Runtime, RuntimeOptions
from repro.blas.tiled import build_gemm
from repro.memory.matrix import Matrix


def run_gemm(dgx1_small, **opts):
    rt = Runtime(dgx1_small, RuntimeOptions(**opts))
    mats = [Matrix.meta(4096, 4096, name=x) for x in "ABC"]
    parts = [rt.partition(m, 1024) for m in mats]
    for t in build_gemm(1.0, parts[0], parts[1], 0.0, parts[2]):
        rt.submit(t)
    rt.memory_coherent_async(mats[2], 1024)
    rt.sync()
    return rt


def test_trace_disabled_records_nothing(dgx1_small):
    rt = run_gemm(dgx1_small, trace=False)
    assert len(rt.trace) == 0
    assert rt.sim.now > 0  # timing still works


def test_cache_fraction_scales_capacity(dgx1_small):
    small = Runtime(dgx1_small, RuntimeOptions(cache_fraction=0.5))
    big = Runtime(dgx1_small, RuntimeOptions(cache_fraction=0.9))
    assert small.caches[0].capacity < big.caches[0].capacity
    assert small.caches[0].capacity == int(
        dgx1_small.gpus[0].memory_bytes * 0.5
    )


def test_pipeline_window_one_serializes_per_device(dgx1_small):
    deep = run_gemm(dgx1_small, pipeline_window=8)
    shallow = run_gemm(dgx1_small, pipeline_window=1)
    # Without lookahead, transfers cannot prefetch behind the running kernel.
    assert shallow.sim.now >= deep.sim.now


def test_task_overhead_shifts_start_times(dgx1_small):
    fast = run_gemm(dgx1_small, task_overhead=1e-7)
    # 1 ms per task makes submission the bottleneck (80 tasks ≈ 80 ms).
    slow = run_gemm(dgx1_small, task_overhead=1e-3)
    assert slow.sim.now > fast.sim.now


def test_scheduler_factory_override(dgx1_small):
    from repro.runtime.scheduler import RoundRobinScheduler

    captured = {}

    def factory(platform):
        captured["platform"] = platform
        return RoundRobinScheduler(platform.num_gpus)

    rt = Runtime(dgx1_small, RuntimeOptions(scheduler_factory=factory))
    assert isinstance(rt.scheduler, RoundRobinScheduler)
    assert captured["platform"] is dgx1_small


def test_default_options_are_xkblas_shaped():
    opts = RuntimeOptions()
    from repro.runtime.policies import SourcePolicy

    assert opts.source_policy is SourcePolicy.TOPOLOGY_OPTIMISTIC
    assert opts.scheduler == "xkaapi-locality-ws"
    assert opts.eviction == "read-only-first"
    assert opts.overlap and opts.retain_inputs
    assert opts.pinning_bandwidth is None  # paper methodology
