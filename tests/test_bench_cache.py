"""Tests for the point cache and its code-fingerprint invalidation."""

import json

from repro.bench.cache import PointCache, code_fingerprint
from repro.bench.cellspec import CellOutcome, CellSpec

SPEC = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
OUTCOME = CellOutcome(ok=True, tflops=40.0, seconds=0.1, flops=4e12)


def _tree(root, content):
    (root / "runtime").mkdir(parents=True)
    (root / "runtime" / "transfer.py").write_text(content)
    (root / "sim.py").write_text("TICK = 1\n")
    return (root / "runtime", root / "sim.py")


# ---------------------------------------------------------- fingerprints


def test_fingerprint_stable_for_identical_trees(tmp_path):
    roots_a = _tree(tmp_path / "a", "def pick(): return 0\n")
    roots_b = _tree(tmp_path / "b", "def pick(): return 0\n")
    assert code_fingerprint(roots_a) == code_fingerprint(roots_b)


def test_fingerprint_changes_when_source_edited(tmp_path):
    # The acceptance property: editing a simulated-behaviour tree (here a
    # stand-in for src/repro/runtime/) must produce a different fingerprint,
    # so records stored under the old one become unreachable.
    before = _tree(tmp_path / "a", "def pick(): return 0\n")
    after = _tree(tmp_path / "b", "def pick(): return 1\n")
    assert code_fingerprint(before) != code_fingerprint(after)


def test_fingerprint_of_real_package_is_memoized():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_fingerprint_change_invalidates_cached_records(tmp_path):
    path = tmp_path / "points.jsonl"
    cache = PointCache(path)
    cache.put(SPEC, "fp-old", OUTCOME)
    reloaded = PointCache(path)
    assert reloaded.get(SPEC, "fp-old") == OUTCOME
    # Same spec under a new fingerprint: the stale record must not be served.
    assert reloaded.get(SPEC, "fp-new") is None


# -------------------------------------------------------- in-memory cache


def test_memory_cache_hit_miss_accounting():
    cache = PointCache()
    assert not cache.persistent
    assert cache.get(SPEC, "fp") is None
    cache.put(SPEC, "fp", OUTCOME)
    assert cache.get(SPEC, "fp") == OUTCOME
    assert cache.stats() == {
        "entries": 1, "memo_hits": 1, "store_hits": 0, "misses": 1,
    }


def test_get_memo_peeks_without_store_io(tmp_path):
    # The event-loop-safe half of a lookup: hits count like get's, misses
    # count nothing and never touch the store.
    path = tmp_path / "points.sqlite"
    cache = PointCache(path)
    assert cache.get_memo(SPEC, "fp") is None
    assert cache.stats()["misses"] == 0  # a memo peek is not a miss
    other = PointCache(path)
    other.put(SPEC, "fp", OUTCOME)
    # The record exists in the shared store but not in this memo yet:
    # get_memo must stay blind to it, the full get must find it.
    assert cache.get_memo(SPEC, "fp") is None
    assert cache.get(SPEC, "fp") == OUTCOME
    assert cache.stats()["store_hits"] == 1
    assert cache.get_memo(SPEC, "fp") == OUTCOME
    assert cache.stats()["store_hits"] == 2
    cache.close()
    other.close()


def test_put_is_idempotent(tmp_path):
    path = tmp_path / "points.jsonl"
    cache = PointCache(path)
    cache.put(SPEC, "fp", OUTCOME)
    cache.put(SPEC, "fp", OUTCOME)
    assert len(path.read_text().splitlines()) == 1
    assert len(cache) == 1


# ------------------------------------------------------- persistent store


def test_store_round_trip_and_hit_attribution(tmp_path):
    path = tmp_path / "cache" / "points.jsonl"
    writer = PointCache(path)
    writer.put(SPEC, "fp", OUTCOME)
    failed = CellSpec(library="blasx", routine="syrk", n=8192, nb=1024)
    writer.put(failed, "fp", CellOutcome(ok=False, error="unsupported"))

    reader = PointCache(path)
    assert len(reader) == 2
    assert reader.get(SPEC, "fp") == OUTCOME
    assert reader.get(failed, "fp").ok is False
    # Disk-loaded hits count as store hits, not memo hits.
    assert reader.stats()["store_hits"] == 2
    assert reader.stats()["memo_hits"] == 0


def test_corrupt_lines_are_skipped_not_fatal(tmp_path):
    path = tmp_path / "points.jsonl"
    PointCache(path).put(SPEC, "fp", OUTCOME)
    with path.open("a") as fh:
        fh.write("not json at all\n")
        fh.write('{"key": "missing-the-rest"}\n')
        fh.write(json.dumps({"key": "k", "fingerprint": "f", "outcome": None}) + "\n")
        fh.write('{"key": "truncated", "fingerprint": "f", "outco')  # no newline
    reader = PointCache(path)
    assert len(reader) == 1
    assert reader.get(SPEC, "fp") == OUTCOME
