"""Tests for the dataflow dependency builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TaskGraphError
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix
from repro.runtime.access import Access, AccessMode
from repro.runtime.dataflow import TaskGraph
from repro.runtime.task import Task, make_access_list


def tiles(n=4):
    return TilePartition(Matrix.meta(n * 8, 8), nb=8).col(0)


def task(name, reads=(), writes=(), readwrites=()):
    return Task(
        name=name,
        accesses=make_access_list(reads, writes, readwrites),
        flops=1.0,
        dim=8,
    )


def test_reader_depends_on_last_writer():
    t = tiles()
    g = TaskGraph()
    w = g.add(task("w", writes=[t[0]]))
    r = g.add(task("r", reads=[t[0]], writes=[t[1]]))
    assert r.unfinished_predecessors == 1
    assert r in w.successors


def test_independent_tiles_no_dependency():
    t = tiles()
    g = TaskGraph()
    g.add(task("a", writes=[t[0]]))
    b = g.add(task("b", writes=[t[1]]))
    assert b.unfinished_predecessors == 0


def test_writer_after_readers_waits_for_all_readers():
    t = tiles()
    g = TaskGraph()
    w0 = g.add(task("w0", writes=[t[0]]))
    r1 = g.add(task("r1", reads=[t[0]], writes=[t[1]]))
    r2 = g.add(task("r2", reads=[t[0]], writes=[t[2]]))
    w1 = g.add(task("w1", writes=[t[0]]))
    assert w1.unfinished_predecessors == 3  # w0 (WAW) + two readers (WAR)
    g.complete(w0)
    assert w1.state == "waiting"
    g.complete(r1)
    g.complete(r2)
    assert w1.state == "ready"


def test_readers_do_not_depend_on_each_other():
    t = tiles()
    g = TaskGraph()
    g.add(task("w", writes=[t[0]]))
    r1 = g.add(task("r1", reads=[t[0]], writes=[t[1]]))
    r2 = g.add(task("r2", reads=[t[0]], writes=[t[2]]))
    assert r2.unfinished_predecessors == 1  # only the writer
    assert r2 not in r1.successors


def test_rw_chain_serializes():
    t = tiles()
    g = TaskGraph()
    chain = [g.add(task(f"u{i}", readwrites=[t[0]])) for i in range(4)]
    for prev, nxt in zip(chain, chain[1:]):
        assert nxt in prev.successors
    assert [c.unfinished_predecessors for c in chain] == [0, 1, 1, 1]


def test_multi_tile_dependency_deduped():
    t = tiles()
    g = TaskGraph()
    w = g.add(task("w", writes=[t[0], t[1]]))
    r = g.add(task("r", reads=[t[0], t[1]], writes=[t[2]]))
    assert r.unfinished_predecessors == 1  # one edge despite two shared tiles


def test_dependency_on_done_task_not_counted():
    t = tiles()
    g = TaskGraph()
    w = g.add(task("w", writes=[t[0]]))
    g.complete(w)
    r = g.add(task("r", reads=[t[0]], writes=[t[1]]))
    assert r.unfinished_predecessors == 0
    assert r.state == "ready"


def test_cross_call_composition_dependencies():
    """TRSM-then-GEMM style: the second call's readers wait on the first
    call's writers (§IV-F point-to-point synchronization)."""
    t = tiles()
    g = TaskGraph()
    trsm = g.add(task("trsm", readwrites=[t[0]]))
    gemm = g.add(task("gemm", reads=[t[0]], writes=[t[1]]))
    assert gemm in trsm.successors


def test_complete_twice_rejected():
    t = tiles()
    g = TaskGraph()
    w = g.add(task("w", writes=[t[0]]))
    g.complete(w)
    with pytest.raises(TaskGraphError):
        g.complete(w)


def test_task_cannot_join_two_graphs():
    t = tiles()
    g1, g2 = TaskGraph(), TaskGraph()
    w = g1.add(task("w", writes=[t[0]]))
    with pytest.raises(TaskGraphError):
        g2.add(w)


def test_critical_path_priorities_decrease_downstream():
    t = tiles()
    g = TaskGraph()
    a = g.add(task("a", writes=[t[0]]))
    b = g.add(task("b", reads=[t[0]], writes=[t[1]]))
    c = g.add(task("c", reads=[t[1]], writes=[t[2]]))
    g.critical_path_priorities()
    assert a.priority > b.priority > c.priority


def test_validate_acyclic():
    t = tiles()
    g = TaskGraph()
    g.add(task("a", writes=[t[0]]))
    g.add(task("b", reads=[t[0]], writes=[t[1]]))
    g.validate_acyclic()


def test_task_requires_accesses():
    with pytest.raises(TaskGraphError):
        Task(name="empty", accesses=[], flops=1.0, dim=8)
    with pytest.raises(TaskGraphError):
        Task(name="neg", accesses=[Access(tiles()[0], AccessMode.WRITE)], flops=-1, dim=8)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 5), max_size=3, unique=True),  # reads
            st.integers(0, 5),  # written tile
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_replaying_graph_sequentially_matches_program_order(spec):
    """Completing tasks in any topological order respects per-tile hazards:
    for each tile, writers are totally ordered and readers fall between the
    correct writer pair."""
    t = tiles(6)
    g = TaskGraph()
    tasks = []
    for reads, w in spec:
        reads = [r for r in reads if r != w]
        tasks.append(
            g.add(task(f"t{len(tasks)}", reads=[t[i] for i in reads], writes=[t[w]]))
        )
    g.validate_acyclic()
    # Simulate: repeatedly complete any ready task (deterministic order).
    done_order = []
    pending = list(tasks)
    while pending:
        ready = [x for x in pending if x.state == "ready"]
        assert ready, "graph deadlocked"
        nxt = ready[0]
        g.complete(nxt)
        done_order.append(nxt)
        pending.remove(nxt)
    # Writers of each tile complete in submission order.
    for tile_idx in range(6):
        writer_uids = [
            x.uid for x in done_order if any(a.tile is t[tile_idx] and a.writes for a in x.accesses)
        ]
        assert writer_uids == sorted(writer_uids)
