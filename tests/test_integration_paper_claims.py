"""Integration tests asserting the paper's headline behaviours end-to-end.

These are the repository's contract with the paper: each test runs real
workloads through the full stack (perf mode) and checks a qualitative claim
from the evaluation section.
"""

import pytest

from repro.bench.harness import run_point
from repro.topology.dgx1 import make_dgx1
from repro.topology.summit import make_summit_node

N, NB = 16384, 2048


@pytest.fixture(scope="module")
def plat():
    return make_dgx1(8)


def gemm_tflops(key, plat, n=N, nb=NB, scenario="host", keep=False):
    return run_point(key, "gemm", n, nb, plat, scenario=scenario, keep_runtime=keep)


def test_optimistic_heuristic_improves_gemm(plat):
    """Fig. 3 / Table II: disabling the optimistic heuristic loses performance."""
    full = gemm_tflops("xkblas", plat).tflops
    noheur = gemm_tflops("xkblas-no-heuristic", plat).tflops
    assert full > noheur * 1.05


def test_topology_ranking_improves_syr2k(plat):
    """Table II: SYR2K is strongly topology-sensitive."""
    topo = run_point("xkblas-no-heuristic", "syr2k", N, NB, plat).tflops
    notopo = run_point("xkblas-no-heuristic-no-topo", "syr2k", N, NB, plat).tflops
    assert topo > notopo * 1.1


def test_heuristics_reduce_host_traffic(plat):
    """The optimistic heuristic 'avoids duplicate tile transfers from main
    memory to GPUs to reduce data traffic on PCIe bus' (§III-C)."""
    full = gemm_tflops("xkblas", plat, keep=True).runtime
    noheur = gemm_tflops("xkblas-no-heuristic", plat, keep=True).runtime
    assert full.fabric.host_bytes_total() < noheur.fabric.host_bytes_total()
    assert full.transfer.stats()["optimistic_forwards"] > 0


def test_xkblas_beats_cublasxt_reference(plat):
    """Fig. 3: XKBlas clearly above cuBLAS-XT at all sizes."""
    assert gemm_tflops("xkblas", plat).tflops > 1.3 * gemm_tflops("cublas-xt", plat).tflops


def test_data_on_device_dominates_data_on_host(plat):
    """Fig. 4: with matrices already distributed, communication with the CPU
    disappears and performance jumps."""
    host = gemm_tflops("xkblas", plat).tflops
    dod = gemm_tflops("xkblas", plat, scenario="device").tflops
    assert dod > host


def test_gemm_peak_near_paper_fraction(plat):
    """§IV-D: peak DGEMM ~91% of the 62.4 TFlop/s aggregate (>=85% here)."""
    best = gemm_tflops("xkblas", plat, n=49152, nb=4096).tflops
    assert best >= 0.85 * 62.4


def test_transfer_share_ordering_matches_fig6(plat):
    """Fig. 6: XKBlas spends the smallest fraction of time in transfers."""
    xk = gemm_tflops("xkblas", plat, n=32768, keep=True).runtime.trace.transfer_share()
    cham = run_point(
        "chameleon-tile", "gemm", 32768, NB, plat, keep_runtime=True
    ).runtime.trace.transfer_share()
    xt = run_point(
        "cublas-xt", "gemm", 32768, NB, plat, keep_runtime=True
    ).runtime.trace.transfer_share()
    assert xk < cham
    assert xk < xt
    assert 0.10 < xk < 0.40  # paper: ~25.4%


def test_scaling_with_gpu_count():
    """More GPUs, more throughput (the library actually scales)."""
    t2 = run_point("xkblas", "gemm", N, NB, make_dgx1(2)).tflops
    t4 = run_point("xkblas", "gemm", N, NB, make_dgx1(4)).tflops
    t8 = run_point("xkblas", "gemm", N, NB, make_dgx1(8)).tflops
    assert t2 < t4 < t8


def test_makespan_not_below_compute_floor(plat):
    """No library can beat the aggregate compute floor — physics check."""
    for key in ("xkblas", "chameleon-tile", "cublas-xt"):
        res = run_point(key, "gemm", N, NB, plat)
        floor = res.flops / plat.aggregate_fp64_peak()
        assert res.seconds >= floor * 0.999


def test_optimistic_gain_small_on_summit_like_node():
    """§III-C: 'On Summit or Sierra supercomputer nodes, where GPUs have high
    speed NVLink interconnect between CPUs, it would be reasonable to assert
    that the gain will not be significant.'"""
    dgx = make_dgx1(8)
    summit = make_summit_node(6)

    def gain(platform):
        full = run_point("xkblas", "gemm", N, NB, platform).tflops
        off = run_point("xkblas-no-heuristic", "gemm", N, NB, platform).tflops
        return full / off - 1.0

    assert gain(summit) < gain(dgx)
    assert gain(summit) < 0.10


def test_deterministic_repetition(plat):
    """The simulator replaces the paper's mean-of-8-runs with determinism."""
    r1 = gemm_tflops("xkblas", plat)
    r2 = gemm_tflops("xkblas", plat)
    assert r1.seconds == r2.seconds
