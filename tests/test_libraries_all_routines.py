"""Numeric correctness of every routine through every full-featured library.

The strongest end-to-end matrix: 4 library configurations × 6 BLAS-3 routines,
each executed numerically on the simulated 4-GPU platform and compared with
the reference implementation.  Whatever the scheduler, source policy, call
semantics or eviction policy, the numbers must be identical.
"""

import numpy as np
import pytest

from repro.blas import reference as ref
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.libraries import make_library
from repro.memory.matrix import Matrix

FULL_LIBRARIES = ("xkblas", "cublas-xt", "chameleon-tile", "chameleon-lapack", "slate")
N, NB = 144, 48


def mats(*shapes, seeds=(1, 2, 3), spd_first=False):
    out = []
    for idx, (m, n) in enumerate(shapes):
        mat = Matrix.random(m, n, seed=seeds[idx % len(seeds)] + idx, name=f"M{idx}")
        if spd_first and idx == 0:
            arr = mat.to_array()
            arr += np.eye(m) * m
        out.append(mat)
    return out


@pytest.mark.parametrize("key", FULL_LIBRARIES)
class TestAllRoutinesNumeric:
    def test_gemm(self, dgx1_small, key):
        a, b, c = mats((N, 96), (96, N), (N, N))
        c0 = c.to_array().copy()
        make_library(key, dgx1_small).gemm(1.2, a, b, -0.4, c, nb=NB)
        expect = ref.ref_gemm(1.2, a.to_array(), b.to_array(), -0.4, c0)
        np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)

    def test_symm(self, dgx1_small, key):
        a, b, c = mats((N, N), (N, 96), (N, 96))
        c0 = c.to_array().copy()
        make_library(key, dgx1_small).symm(
            Side.LEFT, Uplo.LOWER, 0.9, a, b, 0.5, c, nb=NB
        )
        expect = ref.ref_symm(Side.LEFT, Uplo.LOWER, 0.9, a.to_array(), b.to_array(), 0.5, c0)
        np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)

    def test_syrk(self, dgx1_small, key):
        a, c = mats((N, 80), (N, N))
        c0 = c.to_array().copy()
        make_library(key, dgx1_small).syrk(
            Uplo.UPPER, Trans.NOTRANS, 1.0, a, 0.2, c, nb=NB
        )
        expect = ref.ref_syrk(Uplo.UPPER, Trans.NOTRANS, 1.0, a.to_array(), 0.2, c0)
        np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)

    def test_syr2k(self, dgx1_small, key):
        a, b, c = mats((N, 80), (N, 80), (N, N))
        c0 = c.to_array().copy()
        make_library(key, dgx1_small).syr2k(
            Uplo.LOWER, Trans.NOTRANS, 0.7, a, b, 0.0, c, nb=NB
        )
        expect = ref.ref_syr2k(
            Uplo.LOWER, Trans.NOTRANS, 0.7, a.to_array(), b.to_array(), 0.0, c0
        )
        np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)

    def test_trmm(self, dgx1_small, key):
        a, b = mats((N, N), (N, 96), spd_first=True)
        b0 = b.to_array().copy()
        make_library(key, dgx1_small).trmm(
            Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.5, a, b, nb=NB
        )
        expect = ref.ref_trmm(
            Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.5, a.to_array(), b0
        )
        np.testing.assert_allclose(b.to_array(), expect, atol=1e-9)

    def test_trsm(self, dgx1_small, key):
        a, b = mats((N, N), (N, 96), spd_first=True)
        b0 = b.to_array().copy()
        make_library(key, dgx1_small).trsm(
            Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b, nb=NB
        )
        expect = ref.ref_trsm(
            Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a.to_array(), b0
        )
        np.testing.assert_allclose(b.to_array(), expect, atol=1e-8)
