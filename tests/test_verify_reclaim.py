"""Tests for the reclamation-safety pass (:mod:`repro.verify.reclaim`)."""

from pathlib import Path

from repro.verify.determinism import load_baseline, new_findings
from repro.verify.reclaim import lint_reclamation

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def codes(findings) -> list[str]:
    return sorted(f.finding.code for f in findings)


# ------------------------------------------------------------------- M101a


def test_m101a_read_of_cleared_field_after_complete(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/x.py": (
            "def finish(graph, task):\n"
            "    graph.complete(task)\n"
            "    return task.successors\n"
        ),
    })
    found = lint_reclamation(root)
    assert codes(found) == ["M101"]
    assert "successors" in found[0].finding.message


def test_m101a_read_before_complete_is_clean(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/x.py": (
            "def finish(graph, task):\n"
            "    succ = task.successors\n"
            "    graph.complete(task)\n"
            "    return succ\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_m101a_uncleared_field_after_complete_is_clean(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/x.py": (
            "def finish(graph, task):\n"
            "    graph.complete(task)\n"
            "    return task.uid\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_m101a_only_the_completed_variable_is_tracked(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/x.py": (
            "def finish(graph, task, other):\n"
            "    graph.complete(task)\n"
            "    return other.successors\n"
        ),
    })
    assert lint_reclamation(root) == []


# ------------------------------------------------------------------- M101b


def test_m101b_on_complete_reads_cleared_field(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/sched.py": (
            "class Scheduler:\n"
            "    def on_complete(self, task, ctx):\n"
            "        for succ in task.successors:\n"
            "            ctx.wake(succ)\n"
        ),
    })
    found = lint_reclamation(root)
    assert codes(found) == ["M101"]


def test_m101b_follows_one_call_hop(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/sched.py": (
            "class Scheduler:\n"
            "    def on_complete(self, task, ctx):\n"
            "        self._credit(task)\n"
            "    def _credit(self, task):\n"
            "        return len(task.accesses)\n"
        ),
    })
    found = lint_reclamation(root)
    assert codes(found) == ["M101"]
    assert "accesses" in found[0].finding.message


def test_m101b_safe_fields_in_on_complete_are_clean(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/sched.py": (
            "class Scheduler:\n"
            "    def on_complete(self, task, ctx):\n"
            "        self.done.add(task.uid)\n"
            "        self.flops += task.flops\n"
        ),
    })
    assert lint_reclamation(root) == []


# -------------------------------------------------------------------- M102


def test_m102_unguarded_graph_tasks_read(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def census(graph):\n"
            "    return len(graph.tasks)\n"
        ),
    })
    found = lint_reclamation(root)
    assert codes(found) == ["M102"]


def test_m102_retained_only_method_call(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def check(task_graph):\n"
            "    task_graph.validate_acyclic()\n"
        ),
    })
    assert codes(lint_reclamation(root)) == ["M102"]


def test_m102_if_guard_dominates(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def census(graph):\n"
            "    if graph.retain_tasks:\n"
            "        return len(graph.tasks)\n"
            "    return -1\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_m102_early_raise_guard_dominates_the_rest(tmp_path):
    # The exact shape of the repo's critical_path fix in sim/analysis.py.
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def census(graph):\n"
            "    if not graph.retain_tasks:\n"
            "        raise RuntimeError('needs retained graph')\n"
            "    return len(graph.tasks)\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_m102_try_except_taskgrapherror_dominates(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "from repro.errors import TaskGraphError\n"
            "def census(graph):\n"
            "    try:\n"
            "        return len(graph.tasks)\n"
            "    except TaskGraphError:\n"
            "        return -1\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_m102_unrelated_except_does_not_dominate(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def census(graph):\n"
            "    try:\n"
            "        return len(graph.tasks)\n"
            "    except ValueError:\n"
            "        return -1\n"
        ),
    })
    assert codes(lint_reclamation(root)) == ["M102"]


def test_m102_non_graph_receiver_is_ignored(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def census(pool):\n"
            "    return len(pool.tasks)\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_m102_dataflow_module_is_exempt(tmp_path):
    root = make_tree(tmp_path, {
        "runtime/dataflow.py": (
            "class TaskGraph:\n"
            "    def census(self):\n"
            "        graph = self\n"
            "        return len(graph.tasks)\n"
        ),
    })
    assert lint_reclamation(root) == []


# --------------------------------------------------------- waivers & repo


def test_det_waiver_silences_reclaim_findings(tmp_path):
    root = make_tree(tmp_path, {
        "sim/a.py": (
            "def census(graph):\n"
            "    return len(graph.tasks)  # det: examples only pass retained graphs\n"
        ),
    })
    assert lint_reclamation(root) == []


def test_repository_tree_is_reclamation_clean():
    found = lint_reclamation(PACKAGE_ROOT)
    baseline = load_baseline(PACKAGE_ROOT / "verify" / "determinism_baseline.json")
    assert new_findings(found, baseline) == []
