"""The batched transfer path: ``ensure_resident_batch``, ``_make_room``
eviction corner cases, and ``preview_source`` / ``_select_source`` agreement.

These pin the bit-identity contract of the array-backed transfer overhaul:
the batch entry points must be op-for-op equivalent to the sequential calls
they replaced, and the read-only preview must never disagree with the
stateful pick.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Runtime, RuntimeOptions
from repro.errors import DeviceOutOfMemoryError
from repro.memory.matrix import Matrix
from repro.runtime.policies import SourcePolicy
from repro.topology.device import GpuSpec
from repro.topology.dgx1 import make_dgx1
from repro.topology.link import HOST, Link, LinkKind
from repro.topology.platform import Platform


def setup(policy=SourcePolicy.TOPOLOGY_OPTIMISTIC, num_gpus=8):
    rt = Runtime(make_dgx1(num_gpus), RuntimeOptions(source_policy=policy))
    mat = Matrix.meta(4096, 4096, name="A")
    part = rt.partition(mat, 1024)
    return rt, part


def tiny_platform(memory_tiles: int, nb: int = 32, wordsize: int = 8):
    """Two GPUs whose memory holds only ``memory_tiles`` tiles each."""
    capacity = int(memory_tiles * nb * nb * wordsize / 0.92) + 1
    gpu = GpuSpec(name="tiny", memory_bytes=capacity)
    return Platform(
        name="tiny",
        gpus=[gpu, gpu],
        links=[Link(0, 1, LinkKind.NVLINK_DOUBLE), Link(1, 0, LinkKind.NVLINK_DOUBLE)],
        pcie_switch_groups=[(0, 1)],
    )


def tiny_setup(memory_tiles: int, nb: int = 32):
    rt = Runtime(tiny_platform(memory_tiles, nb=nb))
    mat = Matrix.meta(4 * nb, 4 * nb, name="A")
    part = rt.partition(mat, nb)
    return rt, part


# ---------------------------------------------------- ensure_resident_batch


def test_batch_misses_match_sequential_ensure_resident():
    """All-miss batch: same ready times, transfer stats and directory state
    as per-access ``ensure_resident`` calls on an identical runtime."""
    coords = [(0, 0), (0, 1), (1, 0)]
    rt_a, part_a = setup()
    rt_b, part_b = setup()

    accesses = [part_a[c].read_access for c in coords]
    ready, cost, pinned = rt_a.transfer.ensure_resident_batch(
        accesses, dst=0, now=0.0, inputs_ready=0.0
    )

    readies = [rt_b.transfer.ensure_resident(part_b[c], dst=0) for c in coords]
    expect_ready = 0.0
    expect_cost = 0.0
    for r in readies:
        if r > 0.0:
            expect_cost += r - 0.0
            if r > expect_ready:
                expect_ready = r
    assert ready == expect_ready
    assert cost == expect_cost
    assert rt_a.transfer.stats() == rt_b.transfer.stats()
    assert pinned == [part_a[c].key for c in coords]
    # The batch adds the launch pin atop the landing pin.
    for c in coords:
        assert rt_a.caches[0].pin_count(part_a[c].key) == 2

    rt_a.sim.run()
    rt_b.sim.run()
    for c in coords:
        assert rt_a.directory.is_valid(part_a[c].key, 0)
        assert rt_b.directory.is_valid(part_b[c].key, 0)


def test_batch_hit_path_pins_and_counts():
    rt, part = setup()
    tile = part[(0, 0)]
    rt.transfer.ensure_resident(tile, dst=0)
    rt.sim.run()
    hits_before = rt.caches[0].hits
    ready, cost, pinned = rt.transfer.ensure_resident_batch(
        [tile.read_access], dst=0, now=rt.sim.now, inputs_ready=rt.sim.now
    )
    assert ready == rt.sim.now and cost == 0.0
    assert pinned == [tile.key]
    assert rt.caches[0].hits == hits_before + 1
    assert rt.caches[0].pin_count(tile.key) == 1
    assert rt.transfer.stats()["h2d"] == 1  # no second transfer


def test_batch_chains_on_inflight_replica():
    """A batch request while the same tile flies to ``dst`` must dedup onto
    the flight, exactly like sequential ``ensure_resident``."""
    rt, part = setup()
    tile = part[(0, 0)]
    first = rt.transfer.ensure_resident(tile, dst=0)
    ready, cost, _ = rt.transfer.ensure_resident_batch(
        [tile.read_access], dst=0, now=0.0, inputs_ready=0.0
    )
    assert ready == first
    assert rt.transfer.stats()["h2d"] == 1


def test_batch_write_only_access_allocates_without_transfer():
    rt, part = setup()
    tile = part[(0, 0)]
    ready, cost, pinned = rt.transfer.ensure_resident_batch(
        [tile.write_access], dst=0, now=0.0, inputs_ready=0.0
    )
    assert cost == 0.0
    assert pinned == []  # outputs are not launch-pinned
    stats = rt.transfer.stats()
    assert stats["h2d"] == 0 and stats["p2p"] == 0


# --------------------------------------------------------------- _make_room


def test_make_room_skips_pinned_tile():
    rt, part = tiny_setup(memory_tiles=2)
    t0, t1, t2 = part[(0, 0)], part[(0, 1)], part[(0, 2)]
    rt.transfer.ensure_resident(t0, dst=0)
    rt.sim.run()
    rt.caches[0].pin(t0.key)
    rt.transfer.ensure_resident(t1, dst=0)
    rt.sim.run()
    # Cache full (two tiles), t0 pinned: the third fetch must evict t1.
    rt.transfer.ensure_resident(t2, dst=0)
    rt.sim.run()
    assert t0.key in rt.caches[0]
    assert t1.key not in rt.caches[0]
    assert rt.directory.is_valid(t2.key, 0)


def test_make_room_raises_when_everything_pinned():
    rt, part = tiny_setup(memory_tiles=2)
    t0, t1, t2 = part[(0, 0)], part[(0, 1)], part[(0, 2)]
    for t in (t0, t1):
        rt.transfer.ensure_resident(t, dst=0)
        rt.sim.run()
        rt.caches[0].pin(t.key)
    with pytest.raises(DeviceOutOfMemoryError):
        rt.transfer.ensure_resident(t2, dst=0)


def test_make_room_respects_protect_set():
    rt, part = tiny_setup(memory_tiles=2)
    t0, t1, t2 = part[(0, 0)], part[(0, 1)], part[(0, 2)]
    rt.transfer.ensure_resident(t0, dst=0)
    rt.transfer.ensure_resident(t1, dst=0)
    rt.sim.run()
    rt.transfer.ensure_resident(t2, dst=0, protect=(t0.key,))
    rt.sim.run()
    assert t0.key in rt.caches[0]
    assert t1.key not in rt.caches[0]


def test_make_room_single_dirty_victim_written_back():
    """A dirty victim with no valid host copy is written back, not dropped."""
    rt, part = tiny_setup(memory_tiles=2)
    t0, t1, t2 = part[(0, 0)], part[(0, 1)], part[(0, 2)]
    for t in (t0, t1):
        rt.transfer.ensure_resident(t, dst=0)
        rt.sim.run()
        rt.transfer.register_write(t, device=0, when=rt.sim.now)
    assert rt.caches[0].is_dirty(t0.key) and rt.caches[0].is_dirty(t1.key)
    assert not rt.directory.host_valid(t0.key)

    rt.transfer.ensure_resident(t2, dst=0)
    rt.sim.run()

    stats = rt.transfer.stats()
    assert stats["d2h"] == 1  # one tile's worth of room: exactly one victim
    evicted = [t for t in (t0, t1) if t.key not in rt.caches[0]]
    assert len(evicted) == 1
    assert rt.directory.host_valid(evicted[0].key)
    assert rt.directory.is_valid(t2.key, 0)


def test_make_room_all_resident_dirty_batches_writebacks():
    """Every victim dirty with no valid host copy: eviction must write each
    one back (the batched D2H reservation path) before the fetch lands."""
    rt, part = tiny_setup(memory_tiles=4)
    smalls = [part[(0, j)] for j in range(4)]
    for t in smalls:
        rt.transfer.ensure_resident(t, dst=0)
        rt.sim.run()
        rt.transfer.register_write(t, device=0, when=rt.sim.now)
    assert all(rt.caches[0].is_dirty(t.key) for t in smalls)

    # One 64x64 tile = four 32x32 tiles: fetching it must evict (and write
    # back) every resident dirty tile through one batched D2H reservation.
    big = rt.partition(Matrix.meta(64, 64, name="B"), 64)[(0, 0)]
    rt.transfer.ensure_resident(big, dst=0)
    rt.sim.run()

    stats = rt.transfer.stats()
    assert stats["d2h"] == 4  # every dirty victim written back
    for t in smalls:
        assert t.key not in rt.caches[0]
        assert rt.directory.host_valid(t.key)
    assert rt.directory.is_valid(big.key, 0)


def test_make_room_dirty_victim_with_host_copy_needs_no_writeback():
    """A dirty victim whose write-back already landed (host valid) is dropped
    without a second D2H."""
    rt, part = tiny_setup(memory_tiles=2)
    t0, t1, t2 = part[(0, 0)], part[(0, 1)], part[(0, 2)]
    rt.transfer.ensure_resident(t0, dst=0)
    rt.sim.run()
    rt.transfer.register_write(t0, device=0, when=rt.sim.now)
    rt.transfer.ensure_host_valid(t0)
    rt.sim.run()
    rt.transfer.ensure_resident(t1, dst=0)
    rt.sim.run()
    d2h_before = rt.transfer.stats()["d2h"]
    rt.transfer.ensure_resident(t2, dst=0)
    rt.sim.run()
    assert rt.transfer.stats()["d2h"] == d2h_before


# -------------------------------------- preview_source vs _select_source


_POLICIES = [
    SourcePolicy.HOST_ONLY,
    SourcePolicy.ANY_VALID,
    SourcePolicy.TOPOLOGY,
    SourcePolicy.TOPOLOGY_OPTIMISTIC,
]


@given(
    replicas=st.sets(st.integers(min_value=0, max_value=7), max_size=8),
    dst=st.integers(min_value=0, max_value=7),
    ti=st.integers(min_value=0, max_value=3),
    tj=st.integers(min_value=0, max_value=3),
    policy=st.sampled_from(_POLICIES),
)
@settings(max_examples=50, deadline=None)
def test_property_preview_agrees_with_select(replicas, dst, ti, tj, policy):
    """Over random directory states (and no in-flight transfers) the
    read-only ``preview_source`` and the stateful ``_select_source`` must
    name the same source."""
    rt = Runtime(make_dgx1(8), RuntimeOptions(source_policy=policy))
    mat = Matrix.meta(4096, 4096, name="A")
    part = rt.partition(mat, 1024)
    tile = part[(ti, tj)]
    for d in sorted(replicas):
        rt.directory.seed_device(tile.key, d, exclusive=False)
        rt.caches[d].insert(tile.key, tile.nbytes)

    src_prev, bw = rt.transfer.preview_source(tile.key, dst)
    assert bw > 0
    if dst in replicas:
        # Already valid at the destination: preview reports a free local hit;
        # the launch path never consults _select_source in this state.
        assert src_prev == dst
        return
    tid = rt.directory.lookup(tile.key)
    src_sel, _ = rt.transfer._select_source(tile.key, dst, rt.sim.now, tid)
    assert src_sel == src_prev
    if not replicas or not policy.uses_device_sources:
        assert src_sel == HOST
    else:
        assert src_sel in replicas
