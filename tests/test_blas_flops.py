"""Tests for flop-count formulas."""

import pytest

from repro.blas import flops as fl
from repro.errors import BlasValidationError


def test_gemm_flops():
    assert fl.gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30


def test_symm_flops_sides():
    assert fl.symm_flops(True, 10, 20) == 2 * 10 * 10 * 20
    assert fl.symm_flops(False, 10, 20) == 2 * 10 * 20 * 20


def test_syrk_syr2k_flops():
    assert fl.syrk_flops(10, 5) == 5 * 10 * 11
    assert fl.syr2k_flops(10, 5) == 2 * 5 * 10 * 11
    # syr2k is exactly twice syrk
    assert fl.syr2k_flops(100, 40) == 2 * fl.syrk_flops(100, 40)


def test_trmm_trsm_flops():
    assert fl.trmm_flops(True, 8, 4) == 8 * 8 * 4
    assert fl.trsm_flops(False, 8, 4) == 8 * 4 * 4


def test_routine_flops_dispatch():
    assert fl.routine_flops("gemm", 4, 5, 6) == fl.gemm_flops(4, 5, 6)
    assert fl.routine_flops("DGEMM", 4, 5, 6) == fl.gemm_flops(4, 5, 6)
    assert fl.routine_flops("dsyr2k", 8, 8, 3) == fl.syr2k_flops(8, 3)
    assert fl.routine_flops("herk", 8, 8, 3) == fl.syrk_flops(8, 3)
    assert fl.routine_flops("symm", 4, 6, 4) == fl.symm_flops(True, 4, 6)
    assert fl.routine_flops("symm", 4, 6, 6) == fl.symm_flops(False, 4, 6)
    assert fl.routine_flops("trsm", 4, 6, 4) == fl.trsm_flops(True, 4, 6)


def test_routine_flops_errors():
    with pytest.raises(BlasValidationError):
        fl.routine_flops("gemm", 4, 5)  # k required
    with pytest.raises(BlasValidationError):
        fl.routine_flops("qrf", 4, 5, 6)


def test_kernel_regularity_table():
    assert fl.KERNEL_REGULARITY["gemm"] == 1.0
    assert fl.KERNEL_REGULARITY["trsm"] < fl.KERNEL_REGULARITY["trmm"] <= 1.0
