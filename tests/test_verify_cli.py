"""Tests for ``python -m repro.verify`` (:mod:`repro.verify.cli`)."""

import json

import pytest

from repro.verify import cli
from repro.verify.base import Finding


def test_static_stages_pass_on_the_repository():
    assert cli.main(["--skip-runtime", "--fast"]) == 0


def test_cli_exit_code_and_report_on_findings(tmp_path, capsys):
    bad = tmp_path / "sim"
    bad.mkdir()
    (bad / "clock.py").write_text("import time\nNOW = time.time()\n", encoding="utf-8")
    assert cli.main(["--src", str(tmp_path), "--skip-graph", "--skip-runtime"]) == 1
    out = capsys.readouterr().out
    assert "L001" in out and "1 finding(s)" in out


def test_build_tasks_covers_every_routine():
    for routine in cli.ROUTINES:
        tasks = cli.build_tasks(routine, 64, 32)
        assert tasks and all(t.accesses for t in tasks)


def test_build_tasks_rejects_unknown_routine():
    with pytest.raises(ValueError):
        cli.build_tasks("cholesky", 64, 32)


def test_built_graphs_verify_clean_at_small_size():
    assert cli.verify_built_graphs(64, 32) == []


def test_executed_run_verifies_clean():
    assert cli.verify_executed_run("gemm", 64, 32, 2) == []


def test_distribution_phase_verifies_clean():
    assert cli.verify_distribution_phase(64, 32, 2) == []


def test_streaming_run_verifies_clean():
    assert cli.verify_streaming_run("gemm", 64, 32, 2) == []


# ------------------------------------------------- structured output & flags


def test_json_output_to_file_and_schema(tmp_path):
    report = tmp_path / "report.json"
    code = cli.main(
        ["--skip-graph", "--skip-runtime", "--json", str(report)]
    )
    assert code == 0
    data = json.loads(report.read_text(encoding="utf-8"))
    assert data["schema"] == "repro.verify/1"
    assert data["exit"] == 0 and data["count"] == 0 and data["findings"] == []


def test_json_output_to_stdout_carries_findings(tmp_path, capsys):
    bad = tmp_path / "sim"
    bad.mkdir()
    (bad / "clock.py").write_text(
        "import time\nNOW = time.time()\n", encoding="utf-8"
    )
    code = cli.main(
        ["--src", str(tmp_path), "--skip-graph", "--skip-runtime", "--json", "-"]
    )
    assert code == 1
    out = capsys.readouterr().out
    document = json.loads(out[out.index("{") : out.rindex("}") + 1])
    assert document["exit"] == 1 and document["count"] >= 1
    entry = document["findings"][0]
    assert set(entry) == {"pass", "code", "subject", "message"}


def test_github_annotations_static_and_dynamic(tmp_path):
    static = Finding("lint", "L001", "sim/clock.py:2", "wall clock")
    dynamic = Finding("races", "R001", "gemm: T(A:0,0)", "50%\nconflict")
    lines = cli.github_annotations([static, dynamic], tmp_path / "repro")
    assert lines[0].startswith("::error file=")
    assert "line=2" in lines[0] and "[lint:L001]" in lines[0]
    # Dynamic findings carry no file; newlines and % must be escaped.
    assert lines[1].startswith("::error title=races R001")
    assert "%0A" in lines[1] and "%25" in lines[1] and "\n" not in lines[1]


def test_github_flag_emits_annotations(tmp_path, capsys):
    bad = tmp_path / "sim"
    bad.mkdir()
    (bad / "clock.py").write_text(
        "import time\nNOW = time.time()\n", encoding="utf-8"
    )
    code = cli.main(
        ["--src", str(tmp_path), "--skip-graph", "--skip-runtime", "--github"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "::error file=" in out and "line=2" in out


def test_write_baseline_roundtrip(tmp_path, capsys):
    bad = tmp_path / "runtime"
    bad.mkdir()
    (bad / "g.py").write_text(
        "def f(xs):\n    return id(xs)\n", encoding="utf-8"
    )
    baseline = tmp_path / "baseline.json"
    # Fails without a baseline...
    assert (
        cli.main(
            [
                "--src", str(tmp_path),
                "--skip-lint", "--skip-graph", "--skip-runtime",
                "--baseline", str(baseline),
            ]
        )
        == 1
    )
    # ...--write-baseline pins the current findings and exits 0...
    assert (
        cli.main(
            ["--src", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        )
        == 0
    )
    assert "1 fingerprint(s)" in capsys.readouterr().out
    # ...after which the same tree verifies clean.
    assert (
        cli.main(
            [
                "--src", str(tmp_path),
                "--skip-lint", "--skip-graph", "--skip-runtime",
                "--baseline", str(baseline),
            ]
        )
        == 0
    )


def test_callgraph_cache_flag_creates_cache(tmp_path):
    src = tmp_path / "runtime"
    src.mkdir()
    (src / "ok.py").write_text("def f():\n    return 1\n", encoding="utf-8")
    cache = tmp_path / "cg.json"
    code = cli.main(
        [
            "--src", str(tmp_path),
            "--skip-lint", "--skip-graph", "--skip-runtime",
            "--callgraph-cache", str(cache),
        ]
    )
    assert code == 0 and cache.is_file()
