"""Tests for ``python -m repro.verify`` (:mod:`repro.verify.cli`)."""

import pytest

from repro.verify import cli


def test_static_stages_pass_on_the_repository():
    assert cli.main(["--skip-runtime", "--fast"]) == 0


def test_cli_exit_code_and_report_on_findings(tmp_path, capsys):
    bad = tmp_path / "sim"
    bad.mkdir()
    (bad / "clock.py").write_text("import time\nNOW = time.time()\n", encoding="utf-8")
    assert cli.main(["--src", str(tmp_path), "--skip-graph", "--skip-runtime"]) == 1
    out = capsys.readouterr().out
    assert "L001" in out and "1 finding(s)" in out


def test_build_tasks_covers_every_routine():
    for routine in cli.ROUTINES:
        tasks = cli.build_tasks(routine, 64, 32)
        assert tasks and all(t.accesses for t in tasks)


def test_build_tasks_rejects_unknown_routine():
    with pytest.raises(ValueError):
        cli.build_tasks("cholesky", 64, 32)


def test_built_graphs_verify_clean_at_small_size():
    assert cli.verify_built_graphs(64, 32) == []


def test_executed_run_verifies_clean():
    assert cli.verify_executed_run("gemm", 64, 32, 2) == []


def test_distribution_phase_verifies_clean():
    assert cli.verify_distribution_phase(64, 32, 2) == []
