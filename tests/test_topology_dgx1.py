"""Tests for the DGX-1 and Summit-like topology factories."""

import pytest

from repro import config
from repro.topology.dgx1 import (
    DGX1_DOUBLE_PAIRS,
    DGX1_MEASURED_BANDWIDTH_GBPS,
    DGX1_SINGLE_PAIRS,
    make_dgx1,
)
from repro.topology.link import LinkKind
from repro.topology.summit import make_summit_node


def test_dgx1_has_8_gpus_and_62_tflops(dgx1):
    assert dgx1.num_gpus == 8
    assert dgx1.aggregate_fp64_peak() == pytest.approx(62.4e12)


def test_dgx1_every_gpu_has_exactly_6_nvlink_lanes(dgx1):
    for dev in range(8):
        lanes = 0
        for other in range(8):
            if other == dev:
                continue
            kind = dgx1.link(dev, other).kind
            lanes += {LinkKind.NVLINK_DOUBLE: 2, LinkKind.NVLINK_SINGLE: 1}.get(kind, 0)
        assert lanes == 6


def test_dgx1_link_classes_symmetric(dgx1):
    dgx1.validate()  # raises on asymmetry


def test_dgx1_double_and_single_pairs_disjoint():
    assert not set(DGX1_DOUBLE_PAIRS) & set(DGX1_SINGLE_PAIRS)
    assert len(DGX1_DOUBLE_PAIRS) == len(DGX1_SINGLE_PAIRS) == 8


def test_dgx1_measured_bandwidths_match_fig2(dgx1):
    """Link bandwidths come straight from the paper's Fig. 2 matrix."""
    for i in range(8):
        for j in range(8):
            if i == j:
                continue
            expected = DGX1_MEASURED_BANDWIDTH_GBPS[i][j] * config.GB
            assert dgx1.link(i, j).bandwidth == pytest.approx(expected)


def test_dgx1_bandwidth_classes_consistent_with_fig2(dgx1):
    """96-ish GB/s <=> double links, 48-ish <=> single, 17-ish <=> PCIe."""
    for i in range(8):
        for j in range(8):
            if i == j:
                continue
            gbps = DGX1_MEASURED_BANDWIDTH_GBPS[i][j]
            kind = dgx1.link(i, j).kind
            if gbps > 90:
                assert kind is LinkKind.NVLINK_DOUBLE
            elif gbps > 40:
                assert kind is LinkKind.NVLINK_SINGLE
            else:
                assert kind is LinkKind.PCIE_PEER


def test_dgx1_nvlink_hops_at_most_one(dgx1):
    """Paper §II-B: GPUs are at 0 or 1 hops in the NVLink cube-mesh."""
    for i in range(8):
        for j in range(8):
            hops = dgx1.nvlink_hops(i, j)
            assert hops is not None and hops <= 1


def test_dgx1_switch_groups(dgx1):
    assert [tuple(g) for g in dgx1.pcie_switch_groups] == [
        (0, 1),
        (2, 3),
        (4, 5),
        (6, 7),
    ]


def test_dgx1_nominal_bandwidth_option():
    plat = make_dgx1(8, use_measured_bandwidths=False)
    assert plat.link(0, 3).bandwidth == LinkKind.NVLINK_DOUBLE.default_bandwidth


def test_dgx1_partial_gpu_counts():
    plat = make_dgx1(4)
    assert plat.num_gpus == 4
    assert plat.link(0, 3).kind is LinkKind.NVLINK_DOUBLE
    assert [tuple(g) for g in plat.pcie_switch_groups] == [(0, 1), (2, 3)]


def test_dgx1_invalid_gpu_count():
    with pytest.raises(ValueError):
        make_dgx1(0)
    with pytest.raises(ValueError):
        make_dgx1(9)


# ------------------------------------------------------------------ summit


def test_summit_node_layout():
    plat = make_summit_node()
    assert plat.num_gpus == 6
    # intra-socket: NVLink; inter-socket: slow peer path
    assert plat.link(0, 1).kind is LinkKind.NVLINK_SINGLE
    assert plat.link(0, 3).kind is LinkKind.PCIE_PEER
    # private NVLink host links, no switch sharing
    assert plat.host_link_kind is LinkKind.NVLINK_HOST
    assert all(len(g) == 1 for g in plat.pcie_switch_groups)


def test_summit_host_links_faster_than_dgx1(dgx1):
    summit = make_summit_node()
    assert summit.host_bandwidth > dgx1.host_bandwidth


def test_summit_invalid_count():
    with pytest.raises(ValueError):
        make_summit_node(7)
