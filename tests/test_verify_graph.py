"""Tests for the task-graph race & deadlock detector (:mod:`repro.verify.graph`).

Positive direction: every graph the tiled builders produce — over random
shapes and tile sizes — certifies clean, as does every graph after real
execution.  Negative direction: each detector rule is proven live by seeding
the violation it exists for (a removed WAR edge, a cycle, a tampered
predecessor counter...) and asserting the corresponding finding code.
"""

import pytest
from hypothesis import given, settings, strategies as st
from tests.test_properties_builders import dims, nbs, part

from repro import Runtime
from repro.blas import tiled
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.errors import VerificationError
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix
from repro.runtime.dataflow import TaskGraph
from repro.runtime.task import Task, make_access_list
from repro.topology.dgx1 import make_dgx1
from repro.verify.graph import assert_graph_ok, verify_graph


def graph_of(tasks):
    g = TaskGraph()
    for t in tasks:
        g.add(t)
    return g


def codes(findings):
    return {f.code for f in findings}


def tiles(n=4):
    return TilePartition(Matrix.meta(n * 8, 8), nb=8).col(0)


def task(name, reads=(), writes=(), readwrites=()):
    return Task(
        name=name,
        accesses=make_access_list(reads, writes, readwrites),
        flops=1.0,
        dim=8,
    )


# --------------------------------------------------------------- clean graphs


@settings(max_examples=25, deadline=None)
@given(mi=dims, ni=dims, ki=dims, nb=nbs)
def test_gemm_graphs_certify_clean(mi, ni, ki, nb):
    m, n, k = mi * nb + 3, ni * nb + 1, ki * nb + 2
    tasks = tiled.build_gemm(
        1.0, part(m, k, nb), part(k, n, nb), 0.5, part(m, n, nb)
    )
    assert verify_graph(graph_of(tasks)) == []


@settings(max_examples=20, deadline=None)
@given(ni=dims, nb=nbs, uplo=st.sampled_from(list(Uplo)),
       side=st.sampled_from(list(Side)))
def test_trsm_graphs_certify_clean(ni, nb, uplo, side):
    n = ni * nb + 2
    tasks = tiled.build_trsm(
        side, uplo, Trans.NOTRANS, Diag.NONUNIT, 1.0,
        part(n, n, nb), part(n, n, nb),
    )
    assert verify_graph(graph_of(tasks)) == []


@settings(max_examples=20, deadline=None)
@given(ni=dims, ki=dims, nb=nbs, uplo=st.sampled_from(list(Uplo)))
def test_syr2k_graphs_certify_clean(ni, ki, nb, uplo):
    n, k = ni * nb + 1, ki * nb + 2
    tasks = tiled.build_syr2k(
        uplo, Trans.NOTRANS, 1.0, part(n, k, nb), part(n, k, nb), 0.5,
        part(n, n, nb),
    )
    assert verify_graph(graph_of(tasks)) == []


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_access_graphs_certify_clean(data):
    """Arbitrary read/write patterns — duplicates and RW included."""
    pool = tiles(4)
    g = TaskGraph()
    for i in range(data.draw(st.integers(1, 12))):
        reads = data.draw(st.lists(st.sampled_from(pool), max_size=3))
        writes = data.draw(st.lists(st.sampled_from(pool), max_size=2))
        if not reads and not writes:
            reads = [pool[0]]
        g.add(task(f"t{i}", reads=reads, writes=writes))
    assert verify_graph(g) == []


def test_executed_run_graph_certifies_clean():
    rt = Runtime(make_dgx1(2))
    mats = [Matrix.meta(64, 64, name=x) for x in "ABC"]
    parts = [rt.partition(m, 32) for m in mats]
    for t in tiled.build_gemm(1.0, parts[0], parts[1], 0.5, parts[2]):
        rt.submit(t)
    rt.memory_coherent_async(mats[2], 32)
    rt.sync()
    assert verify_graph(rt.executor.graph) == []


# ----------------------------------------------------------------- edge cases


def test_read_write_same_tile_is_not_a_self_conflict():
    t = tiles(1)[0]
    g = TaskGraph()
    g.add(task("w", writes=[t]))
    g.add(task("rw", readwrites=[t]))
    g.add(task("split", reads=[t], writes=[t]))  # R and W as two accesses
    assert verify_graph(g) == []


def test_duplicate_accesses_to_one_tile_in_a_single_task():
    t = tiles(1)[0]
    g = TaskGraph()
    g.add(task("dup", reads=[t, t], writes=[t, t]))
    g.add(task("reader", reads=[t]))
    assert verify_graph(g) == []


def test_dependency_on_already_done_predecessor_is_ordered_by_time():
    t = tiles(1)[0]
    g = TaskGraph()
    a = g.add(task("w", writes=[t]))
    a.start_time, a.end_time = 0.0, 1.0
    g.complete(a)
    b = g.add(task("r", reads=[t]))  # no edge recorded: a was already done
    assert a not in b.successors and not a.successors
    assert verify_graph(g) == []  # b unexecuted: nothing to violate yet
    b.state = "running"
    b.start_time = 2.0
    assert verify_graph(g) == []  # executed after a finished


def test_done_predecessor_with_overlapping_execution_is_a_race():
    t = tiles(1)[0]
    g = TaskGraph()
    a = g.add(task("w", writes=[t]))
    a.start_time, a.end_time = 0.0, 1.0
    g.complete(a)
    b = g.add(task("r", reads=[t]))
    b.state = "running"
    b.start_time = 0.5  # started before its producer finished
    assert codes(verify_graph(g)) == {"G001"}


# ----------------------------------------------------- seeded violations


def war_graph():
    """reader ``a`` then writer ``b`` on one tile: one WAR edge a->b."""
    t = tiles(1)[0]
    g = TaskGraph()
    a = g.add(task("r", reads=[t]))
    b = g.add(task("w", writes=[t]))
    assert b in a.successors and b.unfinished_predecessors == 1
    return g, a, b


def test_missing_war_edge_detected_as_race():
    g, a, b = war_graph()
    a.successors.remove(b)  # seeded builder bug: WAR edge dropped
    b.unfinished_predecessors -= 1
    assert codes(verify_graph(g)) == {"G001"}
    with pytest.raises(VerificationError):
        assert_graph_ok(g)


def test_cycle_detected():
    g, a, b = war_graph()
    b.successors.append(a)  # back edge closes the cycle
    a.unfinished_predecessors += 1
    found = codes(verify_graph(g))
    assert "G013" in found  # backward in submission order
    assert "G014" in found  # Kahn sweep proves the cycle (deadlock)


def test_self_dependency_detected():
    g, a, _b = war_graph()
    a.successors.append(a)
    assert "G010" in codes(verify_graph(g))


def test_unknown_successor_detected():
    g, a, _b = war_graph()
    foreign = task("foreign", reads=[tiles(1)[0]])
    a.successors.append(foreign)
    assert "G011" in codes(verify_graph(g))


def test_duplicate_successor_entry_detected():
    g, a, b = war_graph()
    a.successors.append(b)  # would double-decrement b's counter
    b.unfinished_predecessors += 1
    assert "G012" in codes(verify_graph(g))


def test_predecessor_counter_mismatch_detected():
    g, _a, b = war_graph()
    b.unfinished_predecessors += 1  # never reaches zero: silent deadlock
    assert codes(verify_graph(g)) == {"G021"}


def test_done_before_predecessors_detected():
    g, _a, b = war_graph()
    b.state = "done"  # finished although its predecessor never did
    b.start_time, b.end_time = 0.0, 1.0
    assert "G020" in codes(verify_graph(g))


def test_assert_graph_ok_passes_and_raises():
    g, a, b = war_graph()
    assert_graph_ok(g)  # clean graph: no exception
    a.successors.remove(b)
    b.unfinished_predecessors -= 1
    with pytest.raises(VerificationError) as exc:
        assert_graph_ok(g, context="tampered")
    assert "tampered" in str(exc.value)
    assert any(f.code == "G001" for f in exc.value.findings)
