"""Golden-makespan determinism tests.

Two guarantees, both load-bearing for the performance work:

* **run-to-run determinism** — executing the same perf-mode routine twice on
  fresh simulators yields bit-identical makespans, transfer stats and event
  counts (no hidden host state, no salted hashing, no heap-order ambiguity);
* **bit-identity against the recorded goldens** — the values in
  ``tests/data/golden_makespans.json`` were recorded on the *pre-optimization*
  hot path (PR 2); every optimization since must reproduce them exactly.
  A mismatch here means an "optimization" changed simulated behaviour, which
  is a correctness bug no wall-time win can justify.

When a *deliberate* model change shifts these numbers, re-record the golden
file and say so in the commit — never loosen the comparison.
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_point

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_makespans.json"


def _observe(routine: str, n: int, nb: int) -> dict:
    res = run_point(
        library="xkblas", routine=routine, n=n, nb=nb, keep_runtime=True
    )
    rt = res.runtime
    assert rt is not None
    return {
        "makespan": res.seconds,
        "makespan_hex": res.seconds.hex(),
        "events_fired": rt.sim.events_fired,
        "transfers": rt.transfer.stats(),
        "tasks": rt.executor.completed_tasks,
    }


def _golden_points() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["points"]


@pytest.mark.parametrize("routine", ["gemm", "trsm"])
def test_two_fresh_runs_are_bit_identical(routine):
    first = _observe(routine, n=8192, nb=1024)
    second = _observe(routine, n=8192, nb=1024)
    assert first == second


@pytest.mark.parametrize("name", sorted(_golden_points()))
def test_makespans_match_recorded_goldens(name):
    rec = _golden_points()[name]
    got = _observe(rec["routine"], rec["n"], rec["nb"])
    expected = {
        "makespan": rec["makespan"],
        "makespan_hex": rec["makespan_hex"],
        "events_fired": rec["events_fired"],
        "transfers": rec["transfers"],
        "tasks": rec["tasks"],
    }
    assert got == expected, (
        f"{name} drifted from the recorded golden — simulated behaviour "
        "changed; if deliberate, re-record tests/data/golden_makespans.json"
    )
