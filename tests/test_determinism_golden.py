"""Golden-makespan determinism tests.

Two guarantees, both load-bearing for the performance work:

* **run-to-run determinism** — executing the same perf-mode routine twice on
  fresh simulators yields bit-identical makespans, transfer stats and event
  counts (no hidden host state, no salted hashing, no heap-order ambiguity);
* **bit-identity against the recorded goldens** — the values in
  ``tests/data/golden_makespans.json`` were recorded on the *pre-optimization*
  hot path (PR 2); every optimization since must reproduce them exactly.
  A mismatch here means an "optimization" changed simulated behaviour, which
  is a correctness bug no wall-time win can justify.

When a *deliberate* model change shifts these numbers, re-record the golden
file and say so in the commit — never loosen the comparison.
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_point
from repro.blas.tiled.gemm import build_gemm
from repro.memory.layout import BlockCyclicDistribution
from repro.memory.matrix import Matrix
from repro.runtime.api import Runtime, RuntimeOptions
from repro.topology.dgx1 import make_dgx1

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_makespans.json"


def _observe(routine: str, n: int, nb: int) -> dict:
    res = run_point(
        library="xkblas", routine=routine, n=n, nb=nb, keep_runtime=True
    )
    rt = res.runtime
    assert rt is not None
    return {
        "makespan": res.seconds,
        "makespan_hex": res.seconds.hex(),
        "events_fired": rt.sim.events_fired,
        "transfers": rt.transfer.stats(),
        "tasks": rt.executor.completed_tasks,
    }


def _observe_with_scheduler(scheduler: str, n: int, nb: int) -> dict:
    """One GEMM point under a specific scheduling policy.

    Mirrors the recording script for ``scheduler_points``: owner-computes
    needs a distribution to derive owners from, every other policy runs with
    its defaults.  Priorities are assigned exactly as ``Session.sync`` does.
    """
    opts: dict = {"scheduler": scheduler}
    if scheduler == "owner-computes":
        opts["distribution"] = BlockCyclicDistribution(2, 4)
    rt = Runtime(make_dgx1(8), RuntimeOptions(**opts))
    a, b, c = (Matrix.meta(n, n) for _ in range(3))
    pa, pb, pc = rt.partition(a, nb), rt.partition(b, nb), rt.partition(c, nb)
    for task in build_gemm(1.0, pa, pb, 0.5, pc):
        rt.submit(task)
    rt.memory_coherent_async(c, nb)
    rt.executor.graph.critical_path_priorities()
    makespan = rt.sync()
    return {
        "makespan": makespan,
        "makespan_hex": makespan.hex(),
        "events_fired": rt.sim.events_fired,
        "transfers": rt.transfer.stats(),
        "tasks": rt.executor.completed_tasks,
    }


def _golden_points() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["points"]


def _golden_scheduler_points() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["scheduler_points"]


@pytest.mark.parametrize("routine", ["gemm", "trsm"])
def test_two_fresh_runs_are_bit_identical(routine):
    first = _observe(routine, n=8192, nb=1024)
    second = _observe(routine, n=8192, nb=1024)
    assert first == second


@pytest.mark.parametrize("name", sorted(_golden_points()))
def test_makespans_match_recorded_goldens(name):
    rec = _golden_points()[name]
    got = _observe(rec["routine"], rec["n"], rec["nb"])
    expected = {
        "makespan": rec["makespan"],
        "makespan_hex": rec["makespan_hex"],
        "events_fired": rec["events_fired"],
        "transfers": rec["transfers"],
        "tasks": rec["tasks"],
    }
    assert got == expected, (
        f"{name} drifted from the recorded golden — simulated behaviour "
        "changed; if deliberate, re-record tests/data/golden_makespans.json"
    )


@pytest.mark.parametrize("name", sorted(_golden_scheduler_points()))
def test_scheduler_parity_goldens(name):
    """One recorded GEMM point per scheduling policy.

    The hot-path rework (array directory, indexed ready queues, incremental
    wake-up) touches structures every scheduler pops from; these goldens pin
    each policy's pop/steal order, not just the default one the macro points
    exercise.
    """
    rec = _golden_scheduler_points()[name]
    got = _observe_with_scheduler(rec["scheduler"], rec["n"], rec["nb"])
    expected = {
        "makespan": rec["makespan"],
        "makespan_hex": rec["makespan_hex"],
        "events_fired": rec["events_fired"],
        "transfers": rec["transfers"],
        "tasks": rec["tasks"],
    }
    assert got == expected, (
        f"{name} drifted from the recorded golden — scheduler behaviour "
        "changed; if deliberate, re-record tests/data/golden_makespans.json"
    )
