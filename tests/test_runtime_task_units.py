"""Unit tests for Task/Access/Tile pieces not covered elsewhere."""

import numpy as np
import pytest

from repro.errors import TaskGraphError
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix
from repro.memory.tile import TileKey
from repro.runtime.access import Access, AccessMode, R, RW, W
from repro.runtime.task import Task, make_access_list


@pytest.fixture()
def tiles():
    return TilePartition(Matrix.meta(64, 64), 32).tiles()


def test_access_mode_flags():
    assert R.reads and not R.writes
    assert W.writes and not W.reads
    assert RW.reads and RW.writes
    assert AccessMode.READWRITE is AccessMode.READ | AccessMode.WRITE


def test_access_repr(tiles):
    assert repr(Access(tiles[0], AccessMode.READ)).startswith("R:")
    assert repr(Access(tiles[0], AccessMode.READWRITE)).startswith("RW:")


def test_make_access_list_order(tiles):
    accesses = make_access_list(
        reads=[tiles[0]], writes=[tiles[1]], readwrites=[tiles[2]]
    )
    assert [a.mode for a in accesses] == [
        AccessMode.READ,
        AccessMode.WRITE,
        AccessMode.READWRITE,
    ]


def test_task_properties(tiles):
    t = Task(
        name="k",
        accesses=make_access_list(reads=[tiles[0], tiles[1]], writes=[tiles[2]]),
        flops=10.0,
        dim=32,
    )
    assert t.reads == [tiles[0], tiles[1]]
    assert t.writes == [tiles[2]]
    assert t.output_tile is tiles[2]
    # input bytes: the two read tiles (the W-only output is not read)
    assert t.input_bytes == 2 * 32 * 32 * 8


def test_rw_counts_as_input(tiles):
    t = Task(
        name="k",
        accesses=make_access_list(readwrites=[tiles[0]]),
        flops=1.0,
        dim=32,
    )
    assert t.input_bytes == tiles[0].nbytes
    assert t.output_tile is tiles[0]


def test_reads_only_task_anchors_on_first_access(tiles):
    t = Task(
        name="flush",
        accesses=[Access(tiles[1], AccessMode.READ)],
        flops=0.0,
        dim=32,
    )
    assert t.output_tile is tiles[1]


def test_run_numeric_requires_kernel(tiles):
    t = Task(
        name="k",
        accesses=make_access_list(writes=[tiles[0]]),
        flops=1.0,
        dim=32,
    )
    with pytest.raises(TaskGraphError):
        t.run_numeric([np.zeros((2, 2))])


def test_task_uids_monotonic(tiles):
    a = Task(name="a", accesses=make_access_list(writes=[tiles[0]]), flops=1, dim=1)
    b = Task(name="b", accesses=make_access_list(writes=[tiles[0]]), flops=1, dim=1)
    assert b.uid > a.uid


def test_tile_key_identity_and_repr(tiles):
    key = tiles[0].key
    assert key == TileKey(key.matrix_id, 0, 0)
    assert repr(key) == f"T({key.matrix_id}:0,0)"
    assert tiles[0] is not tiles[1]
    assert hash(tiles[0]) != hash(tiles[1])  # identity-hashed handles


def test_tile_geometry(tiles):
    t = tiles[0]
    assert (t.m, t.n, t.wordsize) == (32, 32, 8)
    assert t.nbytes == 32 * 32 * 8
    assert (t.i, t.j) == (0, 0)
