"""Tests for the nvprof-like trace recorder."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import TraceCategory, TraceRecorder


def make_trace():
    tr = TraceRecorder()
    tr.record(TraceCategory.MEMCPY_HTOD, 0, 0.0, 1.0, nbytes=100)
    tr.record(TraceCategory.KERNEL, 0, 1.0, 3.0)
    tr.record(TraceCategory.KERNEL, 1, 0.5, 2.5)
    tr.record(TraceCategory.MEMCPY_DTOH, 1, 2.5, 3.0, nbytes=50)
    return tr


def test_record_and_iterate():
    tr = make_trace()
    assert len(tr) == 4
    assert all(iv.duration >= 0 for iv in tr)


def test_disabled_recorder_drops_everything():
    tr = TraceRecorder(enabled=False)
    tr.record(TraceCategory.KERNEL, 0, 0.0, 1.0)
    assert len(tr) == 0


def test_lazy_label_evaluated_when_enabled():
    tr = TraceRecorder()
    tr.record(TraceCategory.KERNEL, 0, 0.0, 1.0, label=lambda: "gemm[0,0]")
    assert list(tr)[0].label == "gemm[0,0]"


def test_lazy_label_not_evaluated_when_disabled():
    # The point of callable labels: a disabled recorder must never pay the
    # f-string cost — the hot path hands in thunks, not formatted strings.
    tr = TraceRecorder(enabled=False)
    calls = []

    def label():
        calls.append(1)
        return "never"

    tr.record(TraceCategory.KERNEL, 0, 0.0, 1.0, label=label)
    assert calls == []
    assert len(tr) == 0


def test_invalid_interval_rejected():
    tr = TraceRecorder()
    with pytest.raises(ValueError):
        tr.record(TraceCategory.KERNEL, 0, 2.0, 1.0)


def test_filter_by_category_and_device():
    tr = make_trace()
    assert len(tr.filter(category=TraceCategory.KERNEL)) == 2
    assert len(tr.filter(device=1)) == 2
    assert len(tr.filter(category=TraceCategory.KERNEL, device=1)) == 1


def test_cumulative_by_category():
    totals = make_trace().cumulative_by_category()
    assert totals[TraceCategory.KERNEL] == pytest.approx(4.0)
    assert totals[TraceCategory.MEMCPY_HTOD] == pytest.approx(1.0)
    assert totals[TraceCategory.MEMCPY_DTOH] == pytest.approx(0.5)


def test_normalized_sums_to_one():
    normalized = make_trace().normalized_by_category()
    assert sum(normalized.values()) == pytest.approx(1.0)


def test_normalized_empty_trace():
    assert TraceRecorder().normalized_by_category() == {}


def test_transfer_share():
    share = make_trace().transfer_share()
    assert share == pytest.approx(1.5 / 5.5)


def test_per_device_breakdown():
    breakdown = make_trace().per_device_breakdown()
    assert breakdown[0][TraceCategory.KERNEL] == pytest.approx(2.0)
    assert breakdown[1][TraceCategory.MEMCPY_DTOH] == pytest.approx(0.5)


def test_makespan():
    assert make_trace().makespan() == 3.0
    assert TraceRecorder().makespan() == 0.0


def test_device_busy_time_merges_overlaps():
    tr = TraceRecorder()
    tr.record(TraceCategory.KERNEL, 0, 0.0, 2.0)
    tr.record(TraceCategory.MEMCPY_HTOD, 0, 1.0, 3.0)  # overlaps the kernel
    tr.record(TraceCategory.KERNEL, 0, 5.0, 6.0)
    assert tr.device_busy_time(0) == pytest.approx(4.0)


def test_idle_gaps():
    tr = TraceRecorder()
    tr.record(TraceCategory.KERNEL, 0, 0.0, 1.0)
    tr.record(TraceCategory.KERNEL, 0, 3.0, 4.0)
    tr.record(TraceCategory.KERNEL, 0, 4.05, 5.0)
    gaps = tr.idle_gaps(0, min_gap=0.5)
    assert gaps == [(1.0, 3.0)]
    assert tr.idle_gaps(0, min_gap=0.01) == [(1.0, 3.0), (4.0, 4.05)]


def test_gantt_rows_sorted():
    tr = make_trace()
    rows = tr.gantt_rows([0, 1])
    for ivs in rows.values():
        starts = [iv.start for iv in ivs]
        assert starts == sorted(starts)


def test_is_transfer_classification():
    assert TraceCategory.MEMCPY_PTOP.is_transfer
    assert not TraceCategory.KERNEL.is_transfer
    assert not TraceCategory.HOST.is_transfer


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=10),
        ),
        max_size=40,
    )
)
def test_property_busy_time_bounded_by_span(entries):
    tr = TraceRecorder()
    for dev, start, dur in entries:
        tr.record(TraceCategory.KERNEL, dev, start, start + dur)
    for dev in range(4):
        ivs = tr.filter(device=dev)
        busy = tr.device_busy_time(dev)
        total = sum(iv.duration for iv in ivs)
        span = (
            max(iv.end for iv in ivs) - min(iv.start for iv in ivs) if ivs else 0.0
        )
        assert busy <= total + 1e-9
        assert busy <= span + 1e-9
