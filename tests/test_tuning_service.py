"""Tests for the tuning service: protocol, single-flight, server, client.

Most tests drive the service with a :class:`CountingExecutor` producing
synthetic outcomes (``tflops = nb``) so the concurrency logic is exercised
without simulation cost; one end-to-end test runs a real cell through a TCP
server and pins byte-identity against the direct ``run_point`` path.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.bench.cache import PointCache
from repro.bench.cellspec import CellOutcome, CellSpec
from repro.bench.executor import SweepExecutor
from repro.errors import BenchmarkError
from repro.tuning.service import (
    ServiceError,
    TuneQuery,
    TuningClient,
    TuningServer,
    TuningService,
)
from repro.tuning.service import protocol

QUERY = TuneQuery(routine="gemm", n=8192, tiles=(1024, 2048))


class CountingExecutor(SweepExecutor):
    """Synthetic outcomes (tflops = nb), instant; records every batch."""

    def __init__(self, cache: PointCache | None = None, delay: float = 0.0):
        super().__init__(jobs=1, cache=cache)
        self.batches: list[list[CellSpec]] = []
        self.delay = delay

    def evaluate(self, specs):
        ordered = list(dict.fromkeys(specs))
        self.batches.append(ordered)
        if self.delay:
            time.sleep(self.delay)
        results = {}
        for spec in ordered:
            hit = self.cache.get(spec, self.fingerprint)
            if hit is None:
                hit = CellOutcome(
                    ok=True, tflops=float(spec.nb), seconds=1.0, flops=1.0
                )
                with self._stats_lock:
                    self.cells_simulated += 1
                self.cache.put(spec, self.fingerprint, hit)
            results[spec] = hit
        return results


# ------------------------------------------------------------------ protocol


def test_query_json_round_trip():
    query = TuneQuery(
        routine="syrk", n=16384, libraries=("xkblas", "slate"),
        scenarios=("host", "device"), tiles=(1024, 2048), fast=True,
    )
    assert TuneQuery.from_json(query.to_json()) == query


def test_query_validation_errors():
    with pytest.raises(BenchmarkError):
        TuneQuery.from_json(None)
    with pytest.raises(BenchmarkError):
        TuneQuery.from_json({"routine": "gemm"})  # no n
    with pytest.raises(BenchmarkError):
        TuneQuery.from_json({"routine": "gemm", "n": -4})
    with pytest.raises(BenchmarkError):
        TuneQuery.from_json({"routine": "gemm", "n": 8192, "libraries": []})
    with pytest.raises(BenchmarkError):
        TuneQuery.from_json({"routine": "gemm", "n": 8192, "tiles": ["x"]})


def test_parse_platform():
    handle = protocol.parse_platform("nvswitchx16")
    assert (handle.factory, handle.gpus) == ("nvswitch", 16)
    assert protocol.parse_platform(None).key == "dgx1x8"
    assert protocol.parse_platform({"factory": "summit", "gpus": 6}).key == "summitx6"
    with pytest.raises(BenchmarkError):
        protocol.parse_platform("dgx1")  # no gpu count
    with pytest.raises(BenchmarkError):
        protocol.parse_platform(42)


def test_query_spec_enumeration_is_deterministic_cross_product():
    query = TuneQuery(
        routine="gemm", n=8192, libraries=("xkblas", "slate"),
        scenarios=("host", "device"), tiles=(1024, 2048),
    )
    specs = query.specs()
    assert [
        (s.library, s.scenario, s.nb) for s in specs
    ] == [
        ("xkblas", "host", 1024), ("xkblas", "host", 2048),
        ("xkblas", "device", 1024), ("xkblas", "device", 2048),
        ("slate", "host", 1024), ("slate", "host", 2048),
        ("slate", "device", 1024), ("slate", "device", 2048),
    ]
    assert specs == query.specs()


def test_pick_best_is_first_strict_maximum():
    mk = lambda nb, tflops, ok=True: protocol.CellReport(
        library="xkblas", routine="gemm", n=8192, nb=nb, scenario="host",
        ok=ok, tflops=tflops,
    )
    cells = [mk(512, 10.0), mk(1024, 12.0), mk(2048, 12.0), mk(4096, 1.0, ok=False)]
    assert protocol.pick_best(cells).nb == 1024  # tie keeps the first
    assert protocol.pick_best([mk(512, None, ok=False)]) is None


# -------------------------------------------------------------- single-flight


def test_concurrent_identical_queries_cost_one_simulation_each_cell():
    async def go():
        executor = CountingExecutor(delay=0.02)
        service = TuningService(executor)
        replies = await asyncio.gather(*(service.tune(QUERY) for _ in range(8)))
        return executor, replies

    executor, replies = asyncio.run(go())
    assert executor.cells_simulated == 2  # one per distinct cell, not per query
    assert sum(reply.simulated for reply in replies) == 2
    # Everyone got the same numbers, whatever path served them.
    assert len({
        tuple((c.nb, c.tflops, c.seconds) for c in reply.cells)
        for reply in replies
    }) == 1
    sources = {c.source for reply in replies for c in reply.cells}
    assert protocol.SOURCE_SIMULATED in sources
    assert sources <= {
        protocol.SOURCE_SIMULATED, protocol.SOURCE_COALESCED, protocol.SOURCE_CACHE,
    }


def test_concurrent_distinct_queries_coalesce_into_one_batch():
    query_a = TuneQuery(routine="gemm", n=8192, tiles=(1024, 2048))
    query_b = TuneQuery(routine="syrk", n=8192, tiles=(1024, 2048))

    async def go():
        executor = CountingExecutor()
        service = TuningService(executor)
        await asyncio.gather(service.tune(query_a), service.tune(query_b))
        return executor

    executor = asyncio.run(go())
    assert executor.cells_simulated == 4
    assert len(executor.batches) == 1  # cold cells of both queries, one dispatch
    assert len(executor.batches[0]) == 4


def test_sequential_repeat_is_a_pure_cache_hit():
    async def go():
        executor = CountingExecutor()
        service = TuningService(executor)
        first = await service.tune(QUERY)
        second = await service.tune(QUERY)
        return executor, first, second

    executor, first, second = asyncio.run(go())
    assert executor.cells_simulated == 2
    assert second.simulated == 0
    assert all(c.source == protocol.SOURCE_CACHE for c in second.cells)
    assert [(c.nb, c.tflops) for c in first.cells] == \
        [(c.nb, c.tflops) for c in second.cells]


def test_cancelled_waiter_does_not_cancel_shared_flight():
    # A client disconnect cancels its dispatch task mid-await; the shared
    # single-flight future must survive for the coalesced waiters on other
    # connections (and the in-flight key must stay claimed).
    async def go():
        executor = CountingExecutor(delay=0.1)
        service = TuningService(executor)
        survivors = [asyncio.ensure_future(service.tune(QUERY)) for _ in range(2)]
        await asyncio.sleep(0)  # let the survivors claim the cells
        victim = asyncio.ensure_future(service.tune(QUERY))
        await asyncio.sleep(0.02)  # batch dispatched, everyone awaiting
        victim.cancel()
        replies = await asyncio.gather(*survivors)
        with pytest.raises(asyncio.CancelledError):
            await victim
        return executor, replies

    executor, replies = asyncio.run(go())
    assert executor.cells_simulated == 2  # still exactly one per cell
    assert all(reply.best.nb == 2048 for reply in replies)
    assert all(reply.best.tflops == 2048.0 for reply in replies)


def test_batch_failure_falls_back_to_per_spec_evaluation():
    # One poisoned spec in a coalesced batch must not fail unrelated
    # queries: the flush retries each cell alone, and the terminal error
    # names the cell that actually failed.
    poison = TuneQuery(routine="gemm", n=8192, tiles=(1024,))
    good = TuneQuery(routine="syrk", n=8192, tiles=(2048,))

    class PoisonExecutor(CountingExecutor):
        def evaluate(self, specs):
            specs = list(specs)
            if any(s.routine == "gemm" for s in specs):
                raise RuntimeError("worker lost")
            return super().evaluate(specs)

    async def go():
        service = TuningService(PoisonExecutor())
        return await asyncio.gather(
            service.tune(poison), service.tune(good), return_exceptions=True
        )

    bad, ok = asyncio.run(go())
    assert isinstance(bad, BenchmarkError)
    assert "gemm" in str(bad) and "worker lost" in str(bad)
    assert not isinstance(ok, Exception)
    assert ok.best.nb == 2048


def test_inadmissible_query_raises_not_zero():
    async def go():
        service = TuningService(CountingExecutor())
        await service.tune(TuneQuery(routine="gemm", n=512, tiles=(1024,)))

    with pytest.raises(BenchmarkError, match="no admissible cell"):
        asyncio.run(go())


def test_failed_cells_stream_and_best_is_none():
    class FailingExecutor(CountingExecutor):
        def evaluate(self, specs):
            ordered = list(dict.fromkeys(specs))
            out = {}
            for spec in ordered:
                outcome = CellOutcome(ok=False, error="unsupported")
                self.cache.put(spec, self.fingerprint, outcome)
                out[spec] = outcome
            return out

    async def go():
        service = TuningService(FailingExecutor())
        return await service.tune(QUERY)

    reply = asyncio.run(go())
    assert reply.best is None
    assert all(not c.ok and c.error == "unsupported" for c in reply.cells)


# ----------------------------------------------------------------- TCP server


def _tcp(coro_fn):
    """Run one client coroutine against a fresh in-process TCP server."""

    async def go():
        executor = CountingExecutor()
        server = TuningServer(executor, port=0)
        host, port = await server.start()
        try:
            return await coro_fn(executor, host, port)
        finally:
            await server.close()

    return asyncio.run(go())


def test_tcp_tune_streams_cells_then_result():
    async def scenario(executor, host, port):
        streamed = []
        async with await TuningClient.connect(host, port) as client:
            assert await client.ping() == protocol.PROTOCOL_VERSION
            reply = await client.tune(query=QUERY, on_cell=streamed.append)
            stats = await client.stats()
        return streamed, reply, stats

    streamed, reply, stats = _tcp(scenario)
    assert [c.nb for c in streamed] == [1024, 2048]
    assert reply.best.nb == 2048  # tflops = nb under the counting executor
    assert reply.best.tflops == 2048.0
    assert reply.simulated == 2
    assert stats["queries"] == 1
    assert stats["cells_simulated"] == 2
    assert stats["inflight"] == 0


def test_tcp_concurrent_clients_single_flight():
    async def scenario(executor, host, port):
        async def one():
            async with await TuningClient.connect(host, port) as client:
                return await client.tune(query=QUERY)

        replies = await asyncio.gather(*(one() for _ in range(6)))
        return executor, replies

    executor, replies = _tcp(scenario)
    assert executor.cells_simulated == 2
    assert len({
        tuple((c.nb, c.tflops) for c in reply.cells) for reply in replies
    }) == 1


def test_tcp_error_event_raises_client_side():
    async def scenario(executor, host, port):
        async with await TuningClient.connect(host, port) as client:
            await client.tune(routine="gemm", n=512, tiles=(1024,))

    with pytest.raises(ServiceError, match="no admissible cell"):
        _tcp(scenario)


def test_tcp_unknown_op_and_bad_json_answer_with_errors():
    async def scenario(executor, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"id": 7, "op": "dance"}\n')
        writer.write(b"this is not json\n")
        await writer.drain()
        # The unknown op answers from a per-request task, the parse error
        # from the read loop — order between the two lines is not defined.
        events = [protocol.decode(await reader.readline()) for _ in range(2)]
        writer.close()
        await writer.wait_closed()
        unknown = next(e for e in events if e["id"] == 7)
        garbage = next(e for e in events if e["id"] is None)
        return unknown, garbage

    unknown, garbage = _tcp(scenario)
    assert unknown["event"] == "error" and "unknown op" in unknown["message"]
    assert unknown["id"] == 7
    assert garbage["event"] == "error" and garbage["id"] is None


def test_tcp_shutdown_op_stops_the_server():
    async def go():
        executor = CountingExecutor()
        server = TuningServer(executor, port=0)
        host, port = await server.start()
        serve_task = asyncio.ensure_future(server.serve_until_stopped())
        async with await TuningClient.connect(host, port) as client:
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10)
        return True

    assert asyncio.run(go())


# ------------------------------------------------------------- persistence


def test_warm_restart_against_shared_sqlite_store(tmp_path):
    store_path = tmp_path / "corpus.sqlite"

    async def first_server():
        executor = CountingExecutor(cache=PointCache(store_path))
        reply = await TuningService(executor).tune(QUERY)
        executor.cache.close()
        return executor.cells_simulated, reply

    async def second_server():
        executor = CountingExecutor(cache=PointCache(store_path))
        reply = await TuningService(executor).tune(QUERY)
        executor.cache.close()
        return executor.cells_simulated, reply

    cold_count, cold = asyncio.run(first_server())
    warm_count, warm = asyncio.run(second_server())
    assert (cold_count, warm_count) == (2, 0)
    assert all(c.source == protocol.SOURCE_CACHE for c in warm.cells)
    assert [(c.nb, c.tflops) for c in warm.cells] == \
        [(c.nb, c.tflops) for c in cold.cells]


# ------------------------------------------------------------- end to end


def test_real_cell_served_byte_identical_to_run_point():
    from repro.bench.harness import run_point
    from repro.topology.dgx1 import make_dgx1

    query = TuneQuery(routine="gemm", n=4096, tiles=(1024,))

    async def scenario():
        executor = SweepExecutor(jobs=1)
        server = TuningServer(executor, port=0)
        host, port = await server.start()
        try:
            async with await TuningClient.connect(host, port) as client:
                return await client.tune(query=query)
        finally:
            await server.close()
            executor.close()

    reply = asyncio.run(scenario())
    direct = run_point("xkblas", "gemm", 4096, 1024, make_dgx1(8))
    (cell,) = reply.cells
    assert cell.tflops == direct.tflops
    assert cell.seconds == direct.seconds
    assert reply.best.nb == 1024


def test_cli_migrate_round_trip(tmp_path):
    from repro.tuning.service.__main__ import main

    spec = CellSpec(library="xkblas", routine="gemm", n=8192, nb=1024)
    outcome = CellOutcome(ok=True, tflops=40.0, seconds=0.1)
    legacy = PointCache(tmp_path / "legacy.jsonl")
    legacy.put(spec, "fp", outcome)
    legacy.close()
    dst = tmp_path / "corpus.sqlite"
    assert main(["migrate", str(tmp_path / "legacy.jsonl"), str(dst)]) == 0
    migrated = PointCache(dst)
    assert migrated.get(spec, "fp") == outcome
    migrated.close()


def test_cli_smoke_end_to_end(tmp_path):
    # The CI acceptance walk: concurrent identical queries cost one
    # simulation per distinct cell; a second server *process* on the same
    # SQLite store answers warm.  ~15s: two real 4096-point simulations
    # plus one subprocess server start.
    from repro.tuning.service.__main__ import main

    store = tmp_path / "smoke.sqlite"
    assert main(["smoke", "--clients", "3", "--store", str(store)]) == 0
