"""Tests for the report writers and the CLI's --markdown/--csv-dir outputs."""

from repro.bench.__main__ import main
from repro.bench.harness import ExperimentResult, fmt_cell
from repro.bench.report import combined_markdown, to_csv, to_markdown


def _result():
    return ExperimentResult(
        experiment="Fig. X",
        title="demo sweep",
        columns=["N", "xkblas", "blasx"],
        rows=[[8192, 41.256, "-"], [16384, 52.5, 12.0]],
        notes=["blasx point missing: allocation failure"],
        checks={"shape holds": True},
    )


# ---------------------------------------------------------------- writers


def test_fmt_cell_formatting():
    assert fmt_cell(41.256) == "41.26"
    assert fmt_cell(8192) == "8192"
    assert fmt_cell("-") == "-"


def test_fmt_cell_deprecated_alias():
    from repro.bench import harness

    assert harness._fmt is fmt_cell


def test_to_markdown_section():
    text = to_markdown(_result())
    assert "### Fig. X — demo sweep" in text
    assert "| N | xkblas | blasx |" in text
    assert "| 8192 | 41.26 | - |" in text
    assert "> blasx point missing: allocation failure" in text
    assert "- ✅ shape holds" in text


def test_to_csv_rows():
    lines = to_csv(_result()).splitlines()
    assert lines[0] == "N,xkblas,blasx"
    assert lines[1] == "8192,41.26,-"
    assert lines[2] == "16384,52.50,12.00"


def test_combined_markdown_concatenates():
    doc = combined_markdown([_result(), _result()], header="# All\n")
    assert doc.startswith("# All\n")
    assert doc.count("### Fig. X") == 2


# -------------------------------------------------------------------- CLI


def test_cli_writes_markdown_and_csv(tmp_path, capsys):
    md = tmp_path / "out.md"
    csv_dir = tmp_path / "csv"
    # table1 summarises the platform description: no simulation, so the CLI
    # plumbing is exercised without a sweep.
    rc = main(
        ["table1", "--fast", "--jobs", "1",
         "--markdown", str(md), "--csv-dir", str(csv_dir)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep:" in out  # executor stats line always printed
    assert md.read_text().startswith("# Regenerated tables and figures")
    assert (csv_dir / "table1.csv").exists()


def test_cli_cache_flag_plumbs_through(tmp_path, capsys):
    rc = main(["table1", "--fast", "--jobs", "1", "--cache", str(tmp_path / "bc")])
    assert rc == 0
    assert "cache=" in capsys.readouterr().out


def test_persistent_cache_second_run_simulates_nothing(tmp_path):
    # The acceptance property end to end on a real (tiny) sweep: a second
    # invocation against the same store must simulate zero cells.
    from repro.bench.cache import PointCache
    from repro.bench.executor import SweepExecutor
    from repro.bench.harness import tile_specs

    path = tmp_path / "bc" / "points.jsonl"
    specs = tile_specs("xkblas", "gemm", 4096, tiles=(1024, 2048))
    with SweepExecutor(jobs=1, cache=PointCache(path)) as ex:
        first = ex.evaluate(specs)
        assert ex.cells_simulated == len(specs)
    with SweepExecutor(jobs=1, cache=PointCache(path)) as ex:
        second = ex.evaluate(specs)
        assert ex.cells_simulated == 0
        assert ex.stats()["store_hits"] == len(specs)
    assert second == first
