"""Tests for the CLI's ASCII sweep-chart rendering."""

from repro.bench.__main__ import _sweep_chart
from repro.bench.harness import ExperimentResult


def sweep_result(columns, rows):
    return ExperimentResult(
        experiment="Fig. T", title="t", columns=columns, rows=rows
    )


def test_sweep_chart_renders_size_sweeps():
    result = sweep_result(
        ["N", "xkblas", "slate"],
        [[8192, 20.0, 8.0], [16384, 40.0, "-"], [32768, 55.0, 20.0]],
    )
    chart = _sweep_chart(result)
    assert chart is not None
    assert "Fig. T" in chart
    assert "o=xkblas" in chart and "x=slate" in chart


def test_sweep_chart_skips_non_sweeps():
    result = sweep_result(["library", "share"], [["xkblas", 0.25]])
    assert _sweep_chart(result) is None
    assert _sweep_chart(sweep_result(["N", "a"], [])) is None


def test_sweep_chart_chunks_many_series():
    columns = ["N"] + [f"s{i}" for i in range(10)]
    rows = [[1024] + [float(i) for i in range(10)],
            [2048] + [float(i + 1) for i in range(10)]]
    chart = _sweep_chart(sweep_result(columns, rows))
    # 10 series split into chunks of <= 8 -> two charts
    assert chart.count("Fig. T (TFlop/s vs N)") == 2


def test_cli_plot_flag(capsys):
    from repro.bench.__main__ import main

    code = main(["table1", "--plot"])  # table1 is not a sweep: no chart, no crash
    out = capsys.readouterr().out
    assert code == 0
    assert "Table I" in out
