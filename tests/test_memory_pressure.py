"""Eviction under memory pressure, end to end and numerically.

Device memories are shrunk until the working set cannot stay resident, so the
runtime must evict (clean drops + dirty write-backs) mid-computation.  Results
must remain numerically exact — the strongest check that coherence, eviction
and the data store cooperate.
"""

import numpy as np
import pytest

from repro import Runtime, RuntimeOptions
from repro.blas.reference import ref_gemm
from repro.blas.tiled import build_gemm
from repro.errors import DeviceOutOfMemoryError
from repro.memory.matrix import Matrix
from repro.topology.device import GpuSpec
from repro.topology.link import Link, LinkKind
from repro.topology.platform import Platform


def tiny_platform(memory_tiles: int, nb: int = 32, wordsize: int = 8):
    """Two GPUs whose memory holds only ``memory_tiles`` tiles each."""
    capacity = int(memory_tiles * nb * nb * wordsize / 0.92) + 1
    gpu = GpuSpec(name="tiny", memory_bytes=capacity)
    return Platform(
        name="tiny",
        gpus=[gpu, gpu],
        links=[Link(0, 1, LinkKind.NVLINK_DOUBLE), Link(1, 0, LinkKind.NVLINK_DOUBLE)],
        pcie_switch_groups=[(0, 1)],
    )


def run_gemm(platform, n=160, nb=32, eviction="read-only-first"):
    rt = Runtime(platform, RuntimeOptions(eviction=eviction, pipeline_window=2))
    a = Matrix.random(n, n, seed=1, name="A")
    b = Matrix.random(n, n, seed=2, name="B")
    c = Matrix.random(n, n, seed=3, name="C")
    c0 = c.to_array().copy()
    pa, pb, pc = (rt.partition(m, nb) for m in (a, b, c))
    for t in build_gemm(1.0, pa, pb, 0.3, pc):
        rt.submit(t)
    rt.memory_coherent_async(c, nb)
    rt.sync()
    return rt, c, ref_gemm(1.0, a.to_array(), b.to_array(), 0.3, c0)


@pytest.mark.parametrize("eviction", ["read-only-first", "lru", "blasx-2level"])
def test_numeric_correctness_under_eviction(eviction):
    """A 5x5-tile GEMM on GPUs holding only 8 tiles: heavy eviction churn."""
    plat = tiny_platform(memory_tiles=8)
    rt, c, expect = run_gemm(plat, eviction=eviction)
    evictions = sum(cache.evictions for cache in rt.caches.values())
    assert evictions > 0, "the workload must actually overflow the cache"
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)


def test_dirty_writeback_path_numerically_exact():
    """With capacity for barely two in-flight tasks (each pins up to 3 tiles
    plus outgoing-transfer source pins), dirty C tiles must be written back
    and refetched; the result stays exact."""
    plat = tiny_platform(memory_tiles=8)
    rt, c, expect = run_gemm(plat, n=160, nb=32)
    np.testing.assert_allclose(c.to_array(), expect, atol=1e-10)
    assert rt.transfer.stats()["d2h"] >= 25  # final flush + mid-run write-backs


def test_eviction_counts_scale_with_pressure():
    roomy, _, _ = run_gemm(tiny_platform(memory_tiles=80))
    tight, _, _ = run_gemm(tiny_platform(memory_tiles=8))
    ev_roomy = sum(c.evictions for c in roomy.caches.values())
    ev_tight = sum(c.evictions for c in tight.caches.values())
    assert ev_tight > ev_roomy


def test_impossible_working_set_raises():
    """If even a single task's tiles cannot fit, the run fails loudly
    rather than deadlocking."""
    plat = tiny_platform(memory_tiles=1)  # a task needs 3 tiles
    with pytest.raises(DeviceOutOfMemoryError):
        run_gemm(plat)


def test_pressure_slows_but_does_not_break_perf_mode():
    plat_roomy = tiny_platform(memory_tiles=80)
    plat_tight = tiny_platform(memory_tiles=8)

    def perf(plat):
        rt = Runtime(plat, RuntimeOptions(pipeline_window=2))
        a, b, c = (Matrix.meta(160, 160, name=x) for x in "ABC")
        pa, pb, pc = (rt.partition(m, 32) for m in (a, b, c))
        for t in build_gemm(1.0, pa, pb, 0.0, pc):
            rt.submit(t)
        rt.memory_coherent_async(c, 32)
        return rt.sync()

    assert perf(plat_tight) > perf(plat_roomy)
