"""Tests for Platform, links and device specs."""

import math

import pytest

from repro.errors import TopologyError
from repro.topology.device import CpuSpec, GpuSpec, characteristic_dim, occupancy_tiles
from repro.topology.link import HOST, Link, LinkKind
from repro.topology.platform import Platform


def make_platform(n=3):
    links = []
    # 0-1 double, 0-2 single, 1-2 falls back to PCIe peer
    for a, b, kind in ((0, 1, LinkKind.NVLINK_DOUBLE), (0, 2, LinkKind.NVLINK_SINGLE)):
        links.append(Link(a, b, kind))
        links.append(Link(b, a, kind))
    return Platform(
        name="t", gpus=[GpuSpec()] * n, links=links, pcie_switch_groups=[(0,), (1, 2)]
    )


# ------------------------------------------------------------------ links


def test_link_defaults_to_class_bandwidth():
    link = Link(0, 1, LinkKind.NVLINK_SINGLE)
    assert link.bandwidth == LinkKind.NVLINK_SINGLE.default_bandwidth


def test_self_link_must_be_local():
    with pytest.raises(TopologyError):
        Link(0, 0, LinkKind.NVLINK_SINGLE)
    assert Link(0, 0, LinkKind.LOCAL).perf_rank == -1


def test_perf_rank_ordering():
    assert (
        LinkKind.NVLINK_DOUBLE.perf_rank
        < LinkKind.NVLINK_SINGLE.perf_rank
        < LinkKind.PCIE_PEER.perf_rank
        < LinkKind.PCIE_HOST.perf_rank
    )


def test_link_class_predicates():
    assert LinkKind.NVLINK_DOUBLE.is_nvlink and LinkKind.NVLINK_DOUBLE.is_peer
    assert not LinkKind.PCIE_HOST.is_peer
    assert LinkKind.PCIE_PEER.is_peer and not LinkKind.PCIE_PEER.is_nvlink


# --------------------------------------------------------------- platform


def test_missing_pair_falls_back_to_pcie_peer():
    plat = make_platform()
    assert plat.link(1, 2).kind is LinkKind.PCIE_PEER


def test_p2p_performance_rank_matches_cuda_convention():
    plat = make_platform()
    assert plat.p2p_performance_rank(0, 1) == 0
    assert plat.p2p_performance_rank(0, 2) == 1
    assert plat.p2p_performance_rank(1, 2) == 2


def test_peers_by_rank_sorts_best_first():
    plat = make_platform()
    assert plat.peers_by_rank(0, [1, 2]) == [1, 2]
    assert plat.peers_by_rank(2, [0, 1]) == [0, 1]  # 0 is single-NVLink to 2


def test_host_switch_of():
    plat = make_platform()
    assert plat.host_switch_of(0) == 0
    assert plat.host_switch_of(1) == plat.host_switch_of(2) == 1


def test_duplicate_link_rejected():
    links = [Link(0, 1, LinkKind.NVLINK_SINGLE)] * 2
    with pytest.raises(TopologyError):
        Platform(name="x", gpus=[GpuSpec()] * 2, links=links)


def test_switch_group_validation():
    with pytest.raises(TopologyError, match="two PCIe switch groups"):
        Platform(name="x", gpus=[GpuSpec()] * 2, pcie_switch_groups=[(0, 1), (1,)])
    with pytest.raises(TopologyError, match="missing"):
        Platform(name="x", gpus=[GpuSpec()] * 2, pcie_switch_groups=[(0,)])


def test_empty_platform_rejected():
    with pytest.raises(TopologyError):
        Platform(name="x", gpus=[])


def test_graph_export():
    plat = make_platform()
    g = plat.graph()
    assert HOST in g
    assert g.number_of_nodes() == 4
    assert g.has_edge(0, 1) and g.has_edge(HOST, 0)


def test_bandwidth_matrix_shape():
    plat = make_platform()
    mat = plat.bandwidth_matrix()
    assert len(mat) == 3 and all(len(row) == 3 for row in mat)
    assert mat[0][1] > mat[1][2]  # NVLink beats the PCIe fallback


def test_validate_detects_asymmetric_classes():
    links = [Link(0, 1, LinkKind.NVLINK_DOUBLE), Link(1, 0, LinkKind.NVLINK_SINGLE)]
    plat = Platform(name="x", gpus=[GpuSpec()] * 2, links=links)
    with pytest.raises(TopologyError, match="asymmetric"):
        plat.validate()


def test_aggregate_peak():
    plat = make_platform()
    assert plat.aggregate_fp64_peak() == pytest.approx(3 * 7.8e12)


# ------------------------------------------------------------- device spec


def test_gpu_kernel_time_monotone_in_flops():
    gpu = GpuSpec()
    t1 = gpu.kernel_time(1e9, dim=1024)
    t2 = gpu.kernel_time(2e9, dim=1024)
    assert t2 > t1


def test_gpu_efficiency_saturates():
    gpu = GpuSpec()
    assert gpu.efficiency(64) < gpu.efficiency(2048) < gpu.max_efficiency
    assert gpu.efficiency(0) == 0.0


def test_gemm_efficiency_calibration():
    """~90% of peak at 2048-wide DGEMM tiles (paper's 91.2% aggregate peak)."""
    gpu = GpuSpec()
    assert 0.87 <= gpu.efficiency(2048) <= 0.93


def test_kernel_time_zero_flops_is_launch_latency():
    gpu = GpuSpec()
    assert gpu.kernel_time(0, dim=128) == gpu.launch_latency


def test_kernel_time_negative_flops_rejected():
    with pytest.raises(TopologyError):
        GpuSpec().kernel_time(-1, dim=10)


def test_regularity_scales_duration():
    gpu = GpuSpec()
    assert gpu.kernel_time(1e9, 1024, regularity=0.5) > gpu.kernel_time(
        1e9, 1024, regularity=1.0
    )


def test_gpu_spec_validation():
    with pytest.raises(TopologyError):
        GpuSpec(fp64_peak=0)
    with pytest.raises(TopologyError):
        GpuSpec(max_efficiency=1.5)
    with pytest.raises(TopologyError):
        CpuSpec(cores=0)


def test_characteristic_dim():
    assert characteristic_dim(8, 8, 8) == 8
    assert characteristic_dim(4, 16) == 8
    assert characteristic_dim(0, 8) == 0


def test_occupancy_tiles():
    assert occupancy_tiles(32 * 1024**3, 2048) == int(
        math.floor(32 * 1024**3 / (2048 * 2048 * 8))
    )
    with pytest.raises(TopologyError):
        occupancy_tiles(1024, 0)


def test_fits():
    gpu = GpuSpec()
    assert gpu.fits(gpu.memory_bytes)
    assert not gpu.fits(gpu.memory_bytes + 1)
