"""Tests for the whole-matrix reference routines (shape checks + identities)."""

import numpy as np
import pytest

from repro.blas import reference as ref
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.errors import BlasValidationError

RNG = np.random.default_rng(99)


def test_gemm_shape_validation():
    with pytest.raises(BlasValidationError):
        ref.ref_gemm(1.0, RNG.random((3, 4)), RNG.random((5, 2)), 0.0, np.zeros((3, 2)))
    with pytest.raises(BlasValidationError):
        ref.ref_gemm(1.0, RNG.random(3), RNG.random((3, 2)), 0.0, np.zeros((1, 2)))


def test_symm_equals_gemm_on_symmetric_input():
    a = RNG.random((5, 5))
    a = a + a.T
    b = RNG.random((5, 4))
    c1 = np.zeros((5, 4))
    c2 = np.zeros((5, 4))
    ref.ref_symm(Side.LEFT, Uplo.LOWER, 1.0, np.tril(a), b, 0.0, c1)
    ref.ref_gemm(1.0, a, b, 0.0, c2)
    np.testing.assert_allclose(c1, c2, atol=1e-12)


def test_symm_shape_validation():
    with pytest.raises(BlasValidationError):
        ref.ref_symm(
            Side.LEFT, Uplo.LOWER, 1.0,
            RNG.random((3, 3)), RNG.random((4, 2)), 0.0, np.zeros((4, 2)),
        )


def test_syrk_equals_gemm_with_own_transpose():
    a = RNG.random((5, 3))
    c1 = np.zeros((5, 5))
    ref.ref_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, a, 0.0, c1)
    full = a @ a.T
    np.testing.assert_allclose(np.tril(c1), np.tril(full), atol=1e-12)


def test_syrk_rejects_rectangular_c():
    with pytest.raises(BlasValidationError):
        ref.ref_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, RNG.random((3, 2)), 0.0, np.zeros((3, 4)))


def test_syr2k_symmetry_of_update():
    a, b = RNG.random((4, 3)), RNG.random((4, 3))
    c = np.zeros((4, 4))
    ref.ref_syr2k(Uplo.LOWER, Trans.NOTRANS, 1.0, a, b, 0.0, c)
    full = a @ b.T + b @ a.T
    np.testing.assert_allclose(np.tril(c), np.tril(full), atol=1e-12)
    assert np.allclose(full, full.T)


def test_trmm_trsm_inverse_of_each_other():
    n = 6
    a = RNG.random((n, n)) + n * np.eye(n)
    b0 = RNG.random((n, 4))
    b = b0.copy()
    ref.ref_trmm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 2.0, a, b)
    ref.ref_trsm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 0.5, a, b)
    np.testing.assert_allclose(b, b0, atol=1e-10)


def test_trsm_right_side_solves():
    n = 5
    a = RNG.random((n, n)) + n * np.eye(n)
    b0 = RNG.random((3, n))
    b = b0.copy()
    ref.ref_trsm(Side.RIGHT, Uplo.UPPER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b)
    np.testing.assert_allclose(b @ np.triu(a), b0, atol=1e-10)


def test_trmm_shape_validation():
    with pytest.raises(BlasValidationError):
        ref.ref_trmm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0,
                     RNG.random((3, 3)), RNG.random((4, 2)))
    with pytest.raises(BlasValidationError):
        ref.ref_trsm(Side.RIGHT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0,
                     RNG.random((3, 3)), RNG.random((4, 2)))


def test_hermitian_wrappers():
    a = RNG.random((4, 4)) + 1j * RNG.random((4, 4))
    np.fill_diagonal(a, a.diagonal().real)
    b = RNG.random((4, 2)) + 1j * RNG.random((4, 2))
    c = np.zeros((4, 2), dtype=complex)
    ref.ref_hemm(Side.LEFT, Uplo.LOWER, 1.0, a, b, 0.0, c)
    herm = np.tril(a) + np.tril(a, -1).conj().T
    np.testing.assert_allclose(c, herm @ b, atol=1e-12)
