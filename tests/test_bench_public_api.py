"""Guard against dead code in the bench package's public surface.

Every public top-level function defined in ``repro/bench/*.py`` must be
referenced by name somewhere else in the source tree or the tests — a public
helper nobody calls is untested dead weight (this is how ``workloads.round_up``
was caught and removed).
"""

import ast
import re
from pathlib import Path

import repro.bench

BENCH_DIR = Path(repro.bench.__file__).parent
SRC_DIR = BENCH_DIR.parent
TESTS_DIR = Path(__file__).parent


def _public_functions(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return [
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not node.name.startswith("_")
    ]


def test_every_public_bench_helper_is_referenced():
    corpus = [
        (path, path.read_text(encoding="utf-8"))
        for root in (SRC_DIR, TESTS_DIR)
        for path in sorted(root.rglob("*.py"))
    ]
    unused = []
    for module in sorted(BENCH_DIR.glob("*.py")):
        for name in _public_functions(module):
            if name == "main":  # CLI entry points are invoked by name
                continue
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            used = False
            for path, text in corpus:
                matches = len(pattern.findall(text))
                # In the defining module the definition line itself is not
                # a use; anywhere else a single mention is.
                if path == module:
                    matches -= 1
                if matches > 0:
                    used = True
                    break
            if not used:
                unused.append(f"{module.name}:{name}")
    assert not unused, f"unused public bench helpers: {unused}"
