"""Tests for the numeric tile kernels (BLAS reference semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas import kernels as K
from repro.blas.params import Diag, Side, Trans, Uplo

RNG = np.random.default_rng(7)


def arrays(m, n, k):
    a = np.asfortranarray(RNG.random((m, k)) - 0.5)
    b = np.asfortranarray(RNG.random((k, n)) - 0.5)
    c = np.asfortranarray(RNG.random((m, n)) - 0.5)
    return a, b, c


def test_gemm_kernel_nn():
    a, b, c = arrays(6, 5, 4)
    expect = 2.0 * a @ b - 0.5 * c
    K.k_gemm(2.0, -0.5)(a, b, c)
    np.testing.assert_allclose(c, expect, atol=1e-12)


def test_gemm_kernel_transposes():
    a, b, c = arrays(6, 5, 4)
    at = np.asfortranarray(a.T.copy())
    bt = np.asfortranarray(b.T.copy())
    expect = a @ b
    got = np.asfortranarray(np.zeros_like(c))
    K.k_gemm(1.0, 0.0, Trans.TRANS, Trans.TRANS)(at, bt, got)
    np.testing.assert_allclose(got, expect, atol=1e-12)


def test_gemm_conjtrans_complex():
    a = np.asfortranarray(RNG.random((4, 3)) + 1j * RNG.random((4, 3)))
    b = np.asfortranarray(RNG.random((4, 5)) + 1j * RNG.random((4, 5)))
    c = np.asfortranarray(np.zeros((3, 5), dtype=complex))
    K.k_gemm(1.0, 0.0, Trans.CONJTRANS, Trans.NOTRANS)(a, b, c)
    np.testing.assert_allclose(c, a.conj().T @ b, atol=1e-12)


@pytest.mark.parametrize("uplo", list(Uplo))
def test_syrk_touches_only_stored_triangle(uplo):
    a = np.asfortranarray(RNG.random((5, 3)))
    c = np.asfortranarray(np.full((5, 5), 42.0))
    K.k_syrk(uplo, Trans.NOTRANS, 1.0, 0.0)(a, c)
    other = np.triu(c, 1) if uplo is Uplo.LOWER else np.tril(c, -1)
    assert np.all(other[other != 0] == 42.0)  # untouched region intact
    full = a @ a.T
    idx = np.tril_indices(5) if uplo is Uplo.LOWER else np.triu_indices(5)
    np.testing.assert_allclose(c[idx], full[idx], atol=1e-12)


@pytest.mark.parametrize("uplo", list(Uplo))
def test_syr2k_kernel(uplo):
    a = np.asfortranarray(RNG.random((4, 3)))
    b = np.asfortranarray(RNG.random((4, 3)))
    c0 = np.asfortranarray(RNG.random((4, 4)))
    c = c0.copy(order="F")
    K.k_syr2k(uplo, Trans.NOTRANS, 1.5, 0.25)(a, b, c)
    full = 1.5 * (a @ b.T + b @ a.T) + 0.25 * c0
    idx = np.tril_indices(4) if uplo is Uplo.LOWER else np.triu_indices(4)
    np.testing.assert_allclose(c[idx], full[idx], atol=1e-12)


def test_symm_kernel_uses_stored_triangle_only():
    a = np.asfortranarray(RNG.random((4, 4)))
    sym = np.tril(a) + np.tril(a, -1).T
    b = np.asfortranarray(RNG.random((4, 3)))
    c = np.asfortranarray(np.zeros((4, 3)))
    # Poison the unstored (upper) triangle: result must not change.
    poisoned = a.copy(order="F")
    poisoned[np.triu_indices(4, 1)] = 1e9
    K.k_symm(Side.LEFT, Uplo.LOWER, 1.0, 0.0)(poisoned, b, c)
    np.testing.assert_allclose(c, sym @ b, atol=1e-12)


def test_trmm_kernel_unit_diag():
    a = np.asfortranarray(RNG.random((4, 4)) + np.eye(4))
    b0 = np.asfortranarray(RNG.random((4, 3)))
    b = b0.copy(order="F")
    K.k_trmm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.UNIT, 2.0)(a, b)
    t = np.tril(a)
    np.fill_diagonal(t, 1.0)
    np.testing.assert_allclose(b, 2.0 * t @ b0, atol=1e-12)


@pytest.mark.parametrize("side", list(Side))
@pytest.mark.parametrize("uplo", list(Uplo))
@pytest.mark.parametrize("trans", [Trans.NOTRANS, Trans.TRANS])
def test_trsm_kernel_solves(side, uplo, trans):
    n = 5
    a = np.asfortranarray(RNG.random((n, n)) + n * np.eye(n))
    b0 = np.asfortranarray(RNG.random((n, n)))
    b = b0.copy(order="F")
    K.k_trsm(side, uplo, trans, Diag.NONUNIT, 1.5)(a, b)
    t = np.tril(a) if uplo is Uplo.LOWER else np.triu(a)
    op = t.T if trans is Trans.TRANS else t
    if side is Side.LEFT:
        np.testing.assert_allclose(op @ b, 1.5 * b0, atol=1e-9)
    else:
        np.testing.assert_allclose(b @ op, 1.5 * b0, atol=1e-9)


def test_herk_hermitian_result():
    a = np.asfortranarray(RNG.random((4, 3)) + 1j * RNG.random((4, 3)))
    c = np.asfortranarray(np.zeros((4, 4), dtype=complex))
    K.k_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, 0.0, hermitian=True)(a, c)
    full = a @ a.conj().T
    idx = np.tril_indices(4)
    np.testing.assert_allclose(c[idx], full[idx], atol=1e-12)
    assert np.allclose(np.diag(c).imag, 0.0)


def test_scale_kernel():
    c = np.asfortranarray(np.ones((3, 3)))
    K.k_scale(0.5)(c)
    assert np.all(c == 0.5)


def test_validate_tile_shapes():
    from repro.errors import BlasValidationError

    K.validate_tile_shapes(np.zeros((2, 2)))
    with pytest.raises(BlasValidationError):
        K.validate_tile_shapes(np.zeros(3))


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(1, 8),
    n=st.integers(1, 8),
    k=st.integers(1, 8),
    alpha=st.floats(-2, 2, allow_nan=False),
    beta=st.floats(-2, 2, allow_nan=False),
)
def test_property_gemm_matches_numpy(m, n, k, alpha, beta):
    rng = np.random.default_rng(m * 64 + n * 8 + k)
    a = np.asfortranarray(rng.random((m, k)))
    b = np.asfortranarray(rng.random((k, n)))
    c0 = np.asfortranarray(rng.random((m, n)))
    c = c0.copy(order="F")
    K.k_gemm(alpha, beta)(a, b, c)
    np.testing.assert_allclose(c, alpha * a @ b + beta * c0, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 8), k=st.integers(1, 8))
def test_property_syrk_result_symmetric_when_mirrored(n, k):
    rng = np.random.default_rng(n * 16 + k)
    a = np.asfortranarray(rng.random((n, k)))
    lo = np.asfortranarray(np.zeros((n, n)))
    up = np.asfortranarray(np.zeros((n, n)))
    K.k_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, 0.0)(a, lo)
    K.k_syrk(Uplo.UPPER, Trans.NOTRANS, 1.0, 0.0)(a, up)
    np.testing.assert_allclose(np.tril(lo), np.triu(up).T, atol=1e-12)
