"""Fortran-flavoured BLAS-3 entry points over a simulated backend.

:class:`BlasFrontend` mimics the call surface legacy applications use —
character ``side``/``uplo``/``trans``/``diag`` arguments, in-place NumPy
arrays in column-major layout — and forwards to one of the simulated
libraries.  It keeps a running account of simulated time, so a sequence of
legacy calls can be costed end-to-end like the NVBLAS drop-in scenario.

Example::

    front = BlasFrontend(make_dgx1(8), library="xkblas", nb=1024)
    front.dgemm("N", "N", 1.0, A, B, 0.0, C)      # NumPy arrays, in place
    front.dtrsm("L", "L", "N", "N", 1.0, L, B)
    print(front.simulated_seconds)
"""

from __future__ import annotations

import numpy as np

from repro.blas.params import Diag, Side, Trans, Uplo
from repro.errors import BlasValidationError
from repro.libraries.registry import make_library
from repro.memory.matrix import Matrix
from repro.topology.platform import Platform

_SIDE = {"L": Side.LEFT, "R": Side.RIGHT}
_UPLO = {"L": Uplo.LOWER, "U": Uplo.UPPER}
_TRANS = {"N": Trans.NOTRANS, "T": Trans.TRANS, "C": Trans.CONJTRANS}
_DIAG = {"N": Diag.NONUNIT, "U": Diag.UNIT}


def _lookup(table: dict, char: str, what: str):
    try:
        return table[char.upper()]
    except KeyError:
        raise BlasValidationError(
            f"invalid {what} character {char!r}; expected one of {sorted(table)}"
        ) from None


class BlasFrontend:
    """Character-argument BLAS-3 calls routed to a simulated library."""

    def __init__(
        self,
        platform: Platform,
        library: str = "xkblas",
        nb: int = 1024,
    ) -> None:
        self.platform = platform
        self.library = make_library(library, platform)
        self.nb = nb
        #: cumulative simulated seconds across all calls so far.
        self.simulated_seconds = 0.0
        self.calls = 0

    def _wrap(self, array: np.ndarray, name: str) -> Matrix:
        if array.ndim != 2:
            raise BlasValidationError(f"{name} must be a 2-D array")
        return Matrix(array.shape[0], array.shape[1], data=array, name=name)

    def _commit(self, result, *pairs: tuple[Matrix, np.ndarray]) -> float:
        """Copy results back into the caller's arrays; account time."""
        for wrapped, original in pairs:
            original[...] = wrapped.to_array()
        self.simulated_seconds += result.seconds
        self.calls += 1
        return result.seconds

    # ------------------------------------------------------------- routines

    def dgemm(self, transa: str, transb: str, alpha: float, a, b, beta: float, c) -> float:
        """``C = alpha op(A) op(B) + beta C``; returns simulated seconds."""
        wa, wb, wc = self._wrap(a, "A"), self._wrap(b, "B"), self._wrap(c, "C")
        res = self.library.gemm(
            alpha, wa, wb, beta, wc, nb=self.nb,
            transa=_lookup(_TRANS, transa, "trans"),
            transb=_lookup(_TRANS, transb, "trans"),
        )
        return self._commit(res, (wc, c))

    def dsymm(self, side: str, uplo: str, alpha: float, a, b, beta: float, c) -> float:
        wa, wb, wc = self._wrap(a, "A"), self._wrap(b, "B"), self._wrap(c, "C")
        res = self.library.symm(
            _lookup(_SIDE, side, "side"), _lookup(_UPLO, uplo, "uplo"),
            alpha, wa, wb, beta, wc, nb=self.nb,
        )
        return self._commit(res, (wc, c))

    def dsyrk(self, uplo: str, trans: str, alpha: float, a, beta: float, c) -> float:
        wa, wc = self._wrap(a, "A"), self._wrap(c, "C")
        res = self.library.syrk(
            _lookup(_UPLO, uplo, "uplo"), _lookup(_TRANS, trans, "trans"),
            alpha, wa, beta, wc, nb=self.nb,
        )
        return self._commit(res, (wc, c))

    def dsyr2k(self, uplo: str, trans: str, alpha: float, a, b, beta: float, c) -> float:
        wa, wb, wc = self._wrap(a, "A"), self._wrap(b, "B"), self._wrap(c, "C")
        res = self.library.syr2k(
            _lookup(_UPLO, uplo, "uplo"), _lookup(_TRANS, trans, "trans"),
            alpha, wa, wb, beta, wc, nb=self.nb,
        )
        return self._commit(res, (wc, c))

    def dtrmm(self, side: str, uplo: str, transa: str, diag: str, alpha: float, a, b) -> float:
        wa, wb = self._wrap(a, "A"), self._wrap(b, "B")
        res = self.library.trmm(
            _lookup(_SIDE, side, "side"), _lookup(_UPLO, uplo, "uplo"),
            _lookup(_TRANS, transa, "trans"), _lookup(_DIAG, diag, "diag"),
            alpha, wa, wb, nb=self.nb,
        )
        return self._commit(res, (wb, b))

    def dtrsm(self, side: str, uplo: str, transa: str, diag: str, alpha: float, a, b) -> float:
        wa, wb = self._wrap(a, "A"), self._wrap(b, "B")
        res = self.library.trsm(
            _lookup(_SIDE, side, "side"), _lookup(_UPLO, uplo, "uplo"),
            _lookup(_TRANS, transa, "trans"), _lookup(_DIAG, diag, "diag"),
            alpha, wa, wb, nb=self.nb,
        )
        return self._commit(res, (wb, b))

    def zhemm(self, side: str, uplo: str, alpha, a, b, beta, c) -> float:
        wa, wb, wc = self._wrap(a, "A"), self._wrap(b, "B"), self._wrap(c, "C")
        res = self.library.hemm(
            _lookup(_SIDE, side, "side"), _lookup(_UPLO, uplo, "uplo"),
            alpha, wa, wb, beta, wc, nb=self.nb,
        )
        return self._commit(res, (wc, c))

    def zherk(self, uplo: str, trans: str, alpha: float, a, beta: float, c) -> float:
        wa, wc = self._wrap(a, "A"), self._wrap(c, "C")
        res = self.library.herk(
            _lookup(_UPLO, uplo, "uplo"), _lookup(_TRANS, trans, "trans"),
            alpha, wa, beta, wc, nb=self.nb,
        )
        return self._commit(res, (wc, c))

    def zher2k(self, uplo: str, trans: str, alpha, a, b, beta: float, c) -> float:
        wa, wb, wc = self._wrap(a, "A"), self._wrap(b, "B"), self._wrap(c, "C")
        res = self.library.her2k(
            _lookup(_UPLO, uplo, "uplo"), _lookup(_TRANS, trans, "trans"),
            alpha, wa, wb, beta, wc, nb=self.nb,
        )
        return self._commit(res, (wc, c))
