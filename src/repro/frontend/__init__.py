"""Drop-in BLAS frontend (the NVBLAS scenario of §IV-D).

The paper's target application is legacy code calling standard BLAS with
character arguments and LAPACK-layout arrays; cuBLAS-XT (via NVBLAS) and
XKBLAS both ship interposition libraries that trap those calls.  This package
is the simulated analogue: :class:`~repro.frontend.blas3.BlasFrontend` exposes
the classic Fortran-flavoured entry points (``dgemm("N", "T", ...)``) over
NumPy arrays, routing them to any simulated library — so a legacy-style code
path can be benchmarked against every backend without modification.
"""

from repro.frontend.blas3 import BlasFrontend

__all__ = ["BlasFrontend"]
