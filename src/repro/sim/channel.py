"""Bandwidth channels.

A :class:`Channel` models one direction of a physical interconnect (an NVLink
pair, one direction of a PCIe x16 host link, a device-local copy engine...).
Transfers submitted to a channel serialize FIFO — exactly what a DMA engine
does — so the busy time of the channel is the natural measure of contention.

Shared links (the DGX-1 PCIe switch in front of two GPUs, see DESIGN.md) are
modelled by handing the *same* channel object to both GPUs: their host
transfers then queue behind each other, which reproduces the PCIe bottleneck
the paper's optimistic heuristic sidesteps.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Channel:
    """A FIFO bandwidth channel.

    Parameters
    ----------
    sim:
        Owning simulator (provides the clock).
    bandwidth:
        Sustained bandwidth in bytes/second. Must be positive.
    latency:
        Fixed per-transfer setup latency in seconds.
    name:
        Human-readable identifier used in traces and error messages.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "channel",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"channel {name!r}: bandwidth must be > 0")
        if latency < 0:
            raise SimulationError(f"channel {name!r}: latency must be >= 0")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        #: virtual time at which the FIFO backlog drains; written only by
        #: reserve/occupy.  A plain attribute: the fabric reads it on every
        #: transfer-cost estimate, where property dispatch is measurable.
        self.busy_until = 0.0
        self.bytes_moved = 0
        self.transfer_count = 0

    # ------------------------------------------------------------------ model

    def transfer_time(self, nbytes: int) -> float:
        """Duration of a transfer of ``nbytes`` once it owns the channel."""
        if nbytes < 0:
            raise SimulationError(f"channel {self.name!r}: negative size {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def reserve(self, nbytes: int, earliest: float | None = None) -> tuple[float, float]:
        """Reserve the channel for ``nbytes`` and return ``(start, end)``.

        ``earliest`` is the virtual time at which the transfer *could* start
        (e.g. when the source data becomes valid); the actual start also waits
        for the channel to drain its FIFO backlog.  The reservation is made
        immediately — callers then schedule their completion callback at
        ``end``.
        """
        if nbytes < 0:
            raise SimulationError(f"channel {self.name!r}: negative size {nbytes}")
        # transfer_time and the two max() calls, inlined: reservations happen
        # per simulated DMA and the call overhead was visible in large runs.
        now = self.sim.now
        if earliest is not None and earliest > now:
            now = earliest
        busy = self.busy_until
        start = busy if busy > now else now
        # Parenthesized like transfer_time() so the rounding (and thus every
        # recorded makespan bit) is unchanged: start + (latency + size/bw).
        end = start + (self.latency + nbytes / self.bandwidth)
        self.busy_until = end
        self.bytes_moved += nbytes
        self.transfer_count += 1
        return start, end

    def reserve_batch(
        self, requests: "list[tuple[int, float]]"
    ) -> "list[tuple[float, float]]":
        """Reserve the channel for several transfers in one call.

        ``requests`` is a sequence of ``(nbytes, earliest)`` pairs, in FIFO
        submission order.  Returns one ``(start, end)`` pair per request.

        Contract: the results are **bit-identical** to issuing the same
        sequence of :meth:`reserve` calls one by one — same float operation
        order, same FIFO chaining through ``busy_until``, same traffic
        counters.  The batch form exists purely to amortize Python call and
        attribute-lookup overhead when the transfer manager issues a run of
        reservations on one channel (e.g. the write-backs of several dirty
        eviction victims of one allocation).
        """
        now = self.sim.now
        busy = self.busy_until
        latency = self.latency
        bandwidth = self.bandwidth
        out: list[tuple[float, float]] = []
        moved = 0
        for nbytes, earliest in requests:
            if nbytes < 0:
                raise SimulationError(
                    f"channel {self.name!r}: negative size {nbytes}"
                )
            lb = now
            if earliest is not None and earliest > lb:
                lb = earliest
            start = busy if busy > lb else lb
            # Same parenthesization as reserve(): start + (latency + size/bw).
            busy = start + (latency + nbytes / bandwidth)
            out.append((start, busy))
            moved += nbytes
        self.busy_until = busy
        self.bytes_moved += moved
        self.transfer_count += len(out)
        return out

    def occupy(self, start: float, end: float, nbytes: int) -> None:
        """Account an externally-timed transfer occupying ``[start, end)``.

        Used when a route spans several channels and one reservation sets the
        timing for all of them (e.g. a PCIe peer transfer riding both host
        pipes): the fabric computes one interval and occupies each channel
        for it.  The channel's FIFO backlog is pushed to at least ``end`` and
        the traffic counters are updated, exactly as :meth:`reserve` would.
        """
        if end < start:
            raise SimulationError(
                f"channel {self.name!r}: occupation ends before it starts "
                f"[{start}, {end})"
            )
        if nbytes < 0:
            raise SimulationError(f"channel {self.name!r}: negative size {nbytes}")
        self.busy_until = max(self.busy_until, end)
        self.bytes_moved += nbytes
        self.transfer_count += 1

    # ------------------------------------------------------------- inspection

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` spent moving bytes (upper bound)."""
        if horizon <= 0:
            return 0.0
        return min(1.0, (self.bytes_moved / self.bandwidth) / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, bw={self.bandwidth / 1e9:.1f} GB/s, "
            f"busy_until={self.busy_until:.6f})"
        )
