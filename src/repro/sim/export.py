"""Trace exporters.

Turns a :class:`~repro.sim.trace.TraceRecorder` into artifacts a person can
open elsewhere:

* :func:`to_chrome_trace` — Chrome/Perfetto trace-event JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev), the closest analogue of
  the paper's nvprof timelines (Figs. 6/7/9);
* :func:`to_csv` — a flat CSV of intervals for spreadsheet/pandas analysis;
* :func:`summary_dict` — machine-readable per-category/per-device summary.
"""

from __future__ import annotations

import csv
import io
import json

from repro.sim.trace import TraceCategory, TraceRecorder

#: Track name per category in the Chrome trace (one row group per device).
_TRACK = {
    TraceCategory.KERNEL: "compute",
    TraceCategory.MEMCPY_HTOD: "copy-in",
    TraceCategory.MEMCPY_DTOH: "copy-out",
    TraceCategory.MEMCPY_PTOP: "peer",
    TraceCategory.MEMCPY_DTOD: "local",
    TraceCategory.HOST: "host",
}


def to_chrome_trace(trace: TraceRecorder, time_unit: float = 1e6) -> str:
    """Serialize a trace as Chrome trace-event JSON (complete 'X' events).

    ``time_unit`` scales virtual seconds to the format's microseconds.
    """
    events = []
    for iv in trace:
        events.append(
            {
                "name": iv.label or iv.category.value,
                "cat": iv.category.value,
                "ph": "X",
                "ts": iv.start * time_unit,
                "dur": iv.duration * time_unit,
                "pid": 0,
                "tid": f"gpu{iv.device}/{_TRACK[iv.category]}"
                if iv.device >= 0
                else "host",
                "args": {"bytes": iv.nbytes} if iv.nbytes else {},
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=None)


def to_csv(trace: TraceRecorder) -> str:
    """Flat CSV: category, device, start, end, duration, bytes, label."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["category", "device", "start_s", "end_s", "duration_s", "bytes", "label"])
    for iv in trace:
        writer.writerow(
            [iv.category.value, iv.device, f"{iv.start:.9f}", f"{iv.end:.9f}",
             f"{iv.duration:.9f}", iv.nbytes, iv.label]
        )
    return buf.getvalue()


def summary_dict(trace: TraceRecorder) -> dict:
    """Machine-readable Fig. 6/7-style summary of one trace."""
    return {
        "makespan_s": trace.makespan(),
        "cumulative_s": {
            cat.value: t for cat, t in trace.cumulative_by_category().items()
        },
        "normalized": {
            cat.value: r for cat, r in trace.normalized_by_category().items()
        },
        "transfer_share": trace.transfer_share(),
        "per_device_s": {
            dev: {cat.value: t for cat, t in cats.items()}
            for dev, cats in trace.per_device_breakdown().items()
        },
    }


def write_chrome_trace(trace: TraceRecorder, path: str) -> None:
    """Convenience file writer for :func:`to_chrome_trace`."""
    with open(path, "w") as fh:
        fh.write(to_chrome_trace(trace))
