"""CUDA-like streams.

A :class:`Stream` is an in-order execution lane: operations submitted to the
same stream serialize, operations on different streams may overlap in virtual
time.  Devices in :mod:`repro.runtime.worker` own one or more kernel streams
(the XKaapi one-stream-per-operation-type strategy from the paper's §II-B) —
copy "streams" are represented by :class:`~repro.sim.channel.Channel` objects
since their duration is bandwidth-bound rather than compute-bound.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Stream:
    """An in-order lane of timed operations on a simulated device."""

    def __init__(self, sim: Simulator, name: str = "stream") -> None:
        self.sim = sim
        self.name = name
        #: virtual time at which the lane's backlog drains.  A plain attribute
        #: (written only by :meth:`reserve`): the executor polls it on every
        #: wake round, where a property dispatch is measurable.
        self.busy_until = 0.0
        self.ops = 0

    def reserve(self, duration: float, earliest: float | None = None) -> tuple[float, float]:
        """Append an operation of ``duration`` seconds to the lane.

        Returns the ``(start, end)`` interval.  ``earliest`` lower-bounds the
        start time (e.g. kernel inputs arriving); the lane's previous backlog
        also does.
        """
        if duration < 0:
            raise SimulationError(f"stream {self.name!r}: negative duration")
        # The two max() calls, inlined: one reservation per launched kernel,
        # and the builtin-call overhead was visible in large runs.
        now = self.sim.now
        if earliest is not None and earliest > now:
            now = earliest
        busy = self.busy_until
        start = busy if busy > now else now
        end = start + duration
        self.busy_until = end
        self.ops += 1
        return start, end

    def available_at(self, earliest: float) -> float:
        """Earliest time an op could start given the backlog and ``earliest``."""
        return max(earliest, self.busy_until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.name!r}, busy_until={self.busy_until:.6f}, ops={self.ops})"
