"""Post-mortem analysis of a finished run.

Answers the questions the paper's §IV-E trace study asks with nvprof
screenshots, as computed metrics:

* :func:`critical_path` — the longest dependency chain of kernel time through
  the executed task graph.  ``makespan ≈ critical path`` means the run was
  dependency-limited (no scheduler could do better); ``makespan ≫ critical
  path`` means resources or data movement were the limit.
* :func:`overlap_efficiency` — how much transfer time was hidden behind
  compute, per device (the §II-B overlap objective).
* :func:`load_imbalance` — (max-min)/mean of per-device busy time, the Fig. 7
  metric.
* :func:`analyze` — one dictionary with all of it, used by examples/tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import TaskGraphError
from repro.runtime.dataflow import TaskGraph
from repro.runtime.task import Task
from repro.sim.trace import TraceCategory, TraceRecorder

if TYPE_CHECKING:  # avoid the runtime.api -> sim import cycle
    from repro.runtime.api import Runtime


def critical_path(graph: TaskGraph) -> tuple[float, list[Task]]:
    """Longest chain of task durations; returns ``(seconds, chain)``.

    Submission order is a topological order, so one forward sweep suffices.
    Durations are the *observed* kernel times of the run.  Requires a
    retained graph: a reclaiming run (``retain_tasks=False``) keeps neither
    the task list nor the successor edges this sweep walks.
    """
    if not graph.retain_tasks:
        raise TaskGraphError(
            "critical_path needs the executed task list, but this graph "
            "reclaims tasks on completion (retain_tasks=False); rerun the "
            "analysis with retain_tasks=True"
        )
    # Forward sweep: dist[t] = duration(t) + max over predecessors.  The
    # graph stores successors, so propagate forward instead.
    dist: dict[int, float] = {}
    pred: dict[int, Task | None] = {}
    for task in graph.tasks:
        d = max(0.0, task.duration) if task.state == "done" else 0.0
        base = dist.get(task.uid, 0.0)
        total = base + d
        dist[task.uid] = total
        pred.setdefault(task.uid, None)
        for succ in task.successors:
            if total > dist.get(succ.uid, 0.0):
                dist[succ.uid] = total
                pred[succ.uid] = task
    if not dist:
        return 0.0, []
    end_uid = max(dist, key=dist.get)
    by_uid = {t.uid: t for t in graph.tasks}
    chain: list[Task] = []
    cursor: Task | None = by_uid[end_uid]
    while cursor is not None:
        chain.append(cursor)
        cursor = pred.get(cursor.uid)
    chain.reverse()
    return dist[end_uid], chain


def overlap_efficiency(trace: TraceRecorder, device: int) -> float:
    """Fraction of the device's transfer time hidden behind its kernels.

    1.0 = every transfer second overlapped compute; 0.0 = fully exposed.
    """
    kernels = sorted(
        (iv.start, iv.end)
        for iv in trace.filter(device=device)
        if iv.category is TraceCategory.KERNEL
    )
    transfers = [
        iv for iv in trace.filter(device=device) if iv.category.is_transfer
    ]
    total = sum(iv.duration for iv in transfers)
    if total == 0:
        return 1.0
    hidden = 0.0
    for iv in transfers:
        covered, cursor = 0.0, iv.start
        for ks, ke in kernels:
            if ke <= cursor:
                continue
            if ks >= iv.end:
                break
            lo, hi = max(cursor, ks), min(iv.end, ke)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        hidden += covered
    return hidden / total


def load_imbalance(trace: TraceRecorder, devices: Iterable[int]) -> float:
    """(max - min) / mean of per-device busy time (Fig. 7's spread)."""
    busy = [trace.device_busy_time(d) for d in devices]
    mean = sum(busy) / len(busy) if busy else 0.0
    if mean == 0:
        return 0.0
    return (max(busy) - min(busy)) / mean


def analyze(runtime: Runtime) -> dict:
    """Full post-mortem of a finished :class:`~repro.runtime.api.Runtime`."""
    graph = runtime.executor.graph
    trace = runtime.trace
    devices = list(runtime.platform.device_ids())
    cp, chain = critical_path(graph)
    makespan = trace.makespan()
    kernels = [iv for iv in trace if iv.category is TraceCategory.KERNEL]
    kernel_span = (
        max(iv.end for iv in kernels) - min(iv.start for iv in kernels)
        if kernels
        else 0.0
    )
    return {
        "makespan_s": makespan,
        "critical_path_s": cp,
        "critical_path_tasks": len(chain),
        # Compared against the kernel-activity window, not the makespan: the
        # leading input staging and trailing flush are not schedulable work.
        "dependency_limited": cp >= 0.8 * kernel_span if kernel_span else False,
        "load_imbalance": load_imbalance(trace, devices),
        "overlap_efficiency": {
            d: overlap_efficiency(trace, d) for d in devices
        },
        "transfer_share": trace.transfer_share(),
    }
