"""The discrete-event simulator.

A minimal, deterministic event engine: a binary heap of timestamped entries
and a virtual clock.  Every hardware model in :mod:`repro` (links, streams,
device workers) schedules callbacks here; running the heap to exhaustion
executes one full BLAS invocation on the simulated platform.

The engine is deliberately single-threaded.  Parallelism of the modelled
machine lives entirely in virtual time: two kernels on different simulated
streams overlap because their ``[start, end)`` intervals overlap, not because
host threads run concurrently.  This is the standard discrete-event approach
and makes every run bit-reproducible.

Heap entries are plain tuples rather than the :class:`Event` objects
themselves: ``heapq`` then compares native floats and ints (the tie-breaking
``seq`` is unique, so comparison never reaches the payload), which is
measurably faster than dispatching dataclass ``__lt__`` per sift step on
paper-scale runs.  Two entry shapes coexist on the heap:

* ``(time, seq, callback, args, event)`` — from :meth:`Simulator.schedule`,
  which returns a cancellable :class:`Event` handle.  The callback and args
  are duplicated into the entry so the dispatch loop never dereferences the
  handle on the hot path; the trailing handle is consulted only for its
  ``cancelled`` flag;
* ``(time, seq, callback, args)`` — from :meth:`Simulator.post`, the
  fire-and-forget form used by the runtime's hot paths (kernel and transfer
  completions are never cancelled, so allocating a handle per event was pure
  churn).

Mixed shapes compare fine: ``seq`` is unique, so ordering is decided before
tuple comparison ever reaches the third element.

Inline event fusion
-------------------

External components may *fuse* events: process a chain of consecutive
pending actions inside one engine event instead of round-tripping each
through the heap (the runtime's submission pump does this — see
``runtime/executor.py``).  Two engine-side contracts make that safe:

* :meth:`reserve_seq` / :meth:`post_reserved` let a component draw sequence
  numbers at *intent* time and post the heap entry later, so the engine's
  ``seq`` stream — and therefore every tie-break — evolves exactly as if one
  event had been posted per action;
* :attr:`inline_horizon` bounds how far a fused chain may advance the clock
  without consulting the heap.  It is ``+inf`` during a plain
  run-to-exhaustion, ``until`` during :meth:`run` with a horizon, and
  ``-inf`` when ``max_events`` is set — the latter disables fusion entirely
  so the event budget counts every action, keeping the livelock valve exact.

Fused actions do not increment :attr:`events_fired`: the counter reports
engine dispatches, and collapsing bookkeeping chains into fewer dispatches
is precisely the optimization being measured (perfbench's
``events_per_task`` column tracks it across recordings).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.event import Event

#: cancellable heap entry: (time, seq, callback, args, event); posted entries
#: are (time, seq, callback, args).
_HeapEntry = tuple[float, int, Callable[..., Any], tuple, Event]

_INF = float("inf")


class Simulator:
    """Virtual clock + event heap.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._heap: list = []
        #: current virtual time in seconds.  A plain attribute, written only
        #: by the engine itself and by fused dispatch loops (see module
        #: docstring): the runtime reads the clock on every scheduling
        #: decision, where a property dispatch is measurable.
        self.now: float = 0.0
        #: latest virtual time up to which external components may process
        #: fused actions inline without going through the heap.  See module
        #: docstring ("Inline event fusion").
        self.inline_horizon: float = _INF
        self._seq: int = 0
        self._running = False
        self._events_fired = 0
        #: dead entries still sitting in the heap: incremented by
        #: :meth:`note_cancelled` (via Event.cancel), decremented when a
        #: dispatch loop pops a cancelled entry.  Keeps :attr:`pending` O(1).
        self._cancelled_pending = 0

    # ------------------------------------------------------------------ clock

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostic).

        Counts engine dispatches: actions fused inline into one dispatch by
        the runtime (see module docstring) count once, not per action.
        """
        return self._events_fired

    # --------------------------------------------------------------- schedule

    def schedule(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        ``time`` must not be in the past; scheduling *at* the current time is
        allowed and fires after all previously-scheduled events at that time.
        Extra positional ``args`` are stored on the event and passed to the
        callback — scheduling a bound method with its arguments this way
        avoids allocating a closure per event on the hot path.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args)
        event.sim = self
        heapq.heappush(self._heap, (time, seq, callback, args, event))
        return event

    def post(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle.

        Identical ordering semantics (same clock check, same ``seq`` stream —
        posted and scheduled events interleave deterministically), but the
        heap entry is just ``(time, seq, callback, args)``.  The runtime's
        per-event allocations were dominated by handles nobody ever cancelled.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, callback, args))

    def reserve_seq(self) -> int:
        """Draw the next sequence number without posting an event.

        Building block of inline fusion: a component that *intends* to act at
        a future instant reserves its tie-break position now and either posts
        the entry later with :meth:`post_reserved` or processes the action
        inline.  Either way the ``seq`` stream — and with it every
        deterministic same-instant ordering — is identical to posting one
        event per action.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def post_reserved(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        """Post an entry carrying a :meth:`reserve_seq`-drawn sequence number.

        The caller owns the ordering contract: ``seq`` must have been reserved
        after every already-posted entry the action must follow (reserving at
        intent time guarantees this).
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        heapq.heappush(self._heap, (time, seq, callback, args))

    def schedule_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback, *args)

    # -------------------------------------------------------------------- run

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if the heap is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 5:
                if entry[4].cancelled:
                    self._cancelled_pending -= 1
                    continue
                entry[4].sim = None  # fired: a later cancel() must not count
            self.now = entry[0]
            self._events_fired += 1
            entry[2](*entry[3])
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap is empty.

        Parameters
        ----------
        until:
            Optional virtual-time horizon; events strictly after it stay
            queued and the clock is advanced to ``until`` — also when the heap
            drains before the horizon is reached, so ``now == until`` holds on
            return regardless of how much work was actually queued.  Fused
            dispatch loops honour the same horizon via
            :attr:`inline_horizon`.
        max_events:
            Optional safety valve for tests; raises :class:`SimulationError`
            *before* firing the ``max_events + 1``-th event (a symptom of a
            livelocked model), so a runaway model cannot mutate state past
            the limit.  Setting it disables inline fusion for the duration of
            the run (``inline_horizon = -inf``) so the budget counts every
            action exactly.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        if until is None and max_events is None:
            # Run-to-exhaustion fast path (the shape every full simulation
            # uses): the pop/dispatch of :meth:`step` inlined, saving a method
            # call and a bounds re-check per event.
            heap = self._heap
            pop = heapq.heappop
            # The dispatch counter is kept in a local and flushed once at the
            # end: an attribute store per event is measurable at paper scale,
            # and nothing observable reads ``events_fired`` mid-drain (the
            # property documents end-of-run diagnostics).
            fired = 0
            try:
                while heap:
                    entry = pop(heap)
                    if len(entry) == 5:
                        if entry[4].cancelled:
                            self._cancelled_pending -= 1
                            continue
                        entry[4].sim = None  # see step()
                    self.now = entry[0]
                    fired += 1
                    entry[2](*entry[3])
            finally:
                self._events_fired += fired
                self._running = False
            return
        self.inline_horizon = -_INF if max_events is not None else until
        fired = 0
        try:
            while self._heap:
                if until is not None and self._peek_time() > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; model livelock?"
                    )
                if not self.step():
                    break
                fired += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            self.inline_horizon = _INF

    def _peek_time(self) -> float:
        heap = self._heap
        while heap and len(heap[0]) == 5 and heap[0][4].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        if not heap:
            return _INF
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` when a queued entry goes dead.

        Engine-internal contract with :class:`Event`: only events whose
        ``sim`` back-reference is still set (queued, not yet dispatched)
        report here, so the counter never drifts on cancel-after-fire.
        """
        self._cancelled_pending += 1

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) heap entries, in O(1).

        Maintained as ``len(heap)`` minus a live count of cancelled entries
        still awaiting their lazy-deletion pop — no heap scan.  A fused
        dispatch loop's single queued entry may stand for a whole batch of
        pending actions (the runtime's submission pump), so this is a lower
        bound on outstanding work in fused mode — exact otherwise.  (The
        pump itself never reads this property: its hot path peeks the raw
        heap top, where a cancelled entry merely forces one conservative
        re-arm — and the runtime never cancels events.)
        """
        return len(self._heap) - self._cancelled_pending

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Event handles issued before the reset are orphaned with the heap:
        cancelling one afterwards is unsupported (it would skew the O(1)
        pending counter for a queue that no longer holds the entry).
        """
        self._heap.clear()
        self.now = 0.0
        self.inline_horizon = _INF
        self._seq = 0
        self._events_fired = 0
        self._cancelled_pending = 0
