"""The discrete-event simulator.

A minimal, deterministic event engine: a binary heap of ``(time, seq, Event)``
entries and a virtual clock.  Every hardware model in :mod:`repro` (links,
streams, device workers) schedules callbacks here; running the heap to
exhaustion executes one full BLAS invocation on the simulated platform.

The engine is deliberately single-threaded.  Parallelism of the modelled
machine lives entirely in virtual time: two kernels on different simulated
streams overlap because their ``[start, end)`` intervals overlap, not because
host threads run concurrently.  This is the standard discrete-event approach
and makes every run bit-reproducible.

Heap entries are plain ``(time, seq, event)`` tuples rather than the
:class:`Event` objects themselves: ``heapq`` then compares native floats and
ints (the tie-breaking ``seq`` is unique, so comparison never reaches the
event), which is measurably faster than dispatching dataclass ``__lt__``
per sift step on paper-scale runs.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.event import Event

#: heap entry: (time, seq, event) — seq is unique, so tuple comparison is
#: total without ever comparing Event objects.
_HeapEntry = tuple[float, int, Event]


class Simulator:
    """Virtual clock + event heap.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_fired

    # --------------------------------------------------------------- schedule

    def schedule(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        ``time`` must not be in the past; scheduling *at* the current time is
        allowed and fires after all previously-scheduled events at that time.
        Extra positional ``args`` are stored on the event and passed to the
        callback — scheduling a bound method with its arguments this way
        avoids allocating a closure per event on the hot path.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time=time, seq=seq, callback=callback, args=args)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback, *args)

    # -------------------------------------------------------------------- run

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if the heap is empty."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time
            self._events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap is empty.

        Parameters
        ----------
        until:
            Optional virtual-time horizon; events strictly after it stay
            queued and the clock is advanced to ``until`` — also when the heap
            drains before the horizon is reached, so ``now == until`` holds on
            return regardless of how much work was actually queued.
        max_events:
            Optional safety valve for tests; raises :class:`SimulationError`
            *before* firing the ``max_events + 1``-th event (a symptom of a
            livelocked model), so a runaway model cannot mutate state past
            the limit.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if until is not None and self._peek_time() > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; model livelock?"
                    )
                if not self.step():
                    break
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def _peek_time(self) -> float:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return float("inf")
        return heap[0][0]

    @property
    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._events_fired = 0
