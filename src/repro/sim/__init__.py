"""Discrete-event simulation core.

This subpackage is the hardware-substitution substrate (DESIGN.md §2): it
replaces the physical DGX-1 with an event-driven model of time, bandwidth
channels, CUDA-like streams and an nvprof-like trace recorder.

Public surface:

* :class:`~repro.sim.engine.Simulator` — event heap + virtual clock.
* :class:`~repro.sim.channel.Channel` — FIFO bandwidth channel with latency.
* :class:`~repro.sim.stream.Stream` — in-order execution lane on a device.
* :class:`~repro.sim.trace.TraceRecorder` — interval trace (H2D/D2H/P2P/kernel).
"""

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.event import Event
from repro.sim.stream import Stream
from repro.sim.trace import Interval, TraceCategory, TraceRecorder

__all__ = [
    "Channel",
    "Event",
    "Interval",
    "Simulator",
    "Stream",
    "TraceCategory",
    "TraceRecorder",
]
