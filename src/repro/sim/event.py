"""Events for the discrete-event engine.

An :class:`Event` is a callback scheduled at a virtual time.  Events compare by
``(time, seq)`` so that simultaneous events fire in submission order, which
keeps every simulation fully deterministic (no reliance on heap tie-breaking of
unorderable payloads).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time (seconds) at which the callback fires.
    seq:
        Monotonic sequence number assigned by the simulator; ties on ``time``
        are broken by submission order.
    callback:
        Zero-argument callable invoked when the event fires.  Excluded from
        ordering comparisons.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the top."""
        self.cancelled = True
