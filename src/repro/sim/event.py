"""Events for the discrete-event engine.

An :class:`Event` is a callback scheduled at a virtual time.  The simulator's
heap orders events by ``(time, seq)`` so that simultaneous events fire in
submission order, which keeps every simulation fully deterministic (no
reliance on heap tie-breaking of unorderable payloads).  The ordering key
lives in the heap entries themselves (plain tuples — see
:class:`~repro.sim.engine.Simulator`), not in rich comparisons on the event
object: tuple comparison is what ``heapq`` is optimized for, and the hot path
fires millions of events in paper-scale sweeps.

``Event`` is a hand-written slots class rather than a dataclass: the engine
allocates one per :meth:`~repro.sim.engine.Simulator.schedule` call, and a
positional ``__init__`` with no generated-code indirection is measurably
cheaper on the bare-engine benchmark points.  Since the dispatch loop reads
the callback and args straight from the heap entry (see the engine module),
the object itself only needs to carry the cancellation flag and enough state
to be inspectable.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A scheduled callback handle.

    Attributes
    ----------
    time:
        Virtual time (seconds) at which the callback fires.
    seq:
        Monotonic sequence number assigned by the simulator; ties on ``time``
        are broken by submission order.
    callback:
        Callable invoked when the event fires, with ``args`` unpacked.
    args:
        Positional arguments passed to ``callback``.  Scheduling a bound
        method plus arguments avoids allocating a fresh closure per event —
        the dominant allocation churn of transfer/kernel completion events.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped when popped.
    sim:
        The simulator whose heap holds this event, or ``None`` once the event
        has fired (or when the handle was built outside an engine).  Lets
        :meth:`cancel` keep the engine's O(1) pending counter exact: only a
        cancellation that actually leaves a dead entry in the heap is counted.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim: Any = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the top."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            self.sim = None
            sim.note_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}{state})"
