"""nvprof-like execution traces.

The paper analyses nvprof traces in Figures 6, 7 and 9: cumulative time per
operation category (``CUDA memcpy DtoH / HtoD / PtoP`` and ``GPU Kernel``),
per-GPU breakdowns and Gantt charts.  :class:`TraceRecorder` captures the same
information from the simulator: every timed operation is recorded as an
:class:`Interval` with a category, a device and a label.

The summaries implemented here (:meth:`TraceRecorder.cumulative_by_category`,
:meth:`TraceRecorder.per_device_breakdown`, :meth:`TraceRecorder.gantt_rows`)
are exactly the reductions needed to regenerate the paper's trace figures.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import defaultdict
from typing import Callable, Iterable, Iterator


class TraceCategory(enum.Enum):
    """Operation categories matching the paper's nvprof legend."""

    MEMCPY_HTOD = "CUDA memcpy HtoD"
    MEMCPY_DTOH = "CUDA memcpy DtoH"
    MEMCPY_PTOP = "CUDA memcpy PtoP"
    MEMCPY_DTOD = "CUDA memcpy DtoD"  # local, on-device copies
    KERNEL = "GPU Kernel"
    HOST = "Host"  # host-side work (layout conversions, sync waits)

    @property
    def is_transfer(self) -> bool:
        return self is not TraceCategory.KERNEL and self is not TraceCategory.HOST


@dataclasses.dataclass(frozen=True, slots=True)
class Interval:
    """One traced operation: ``[start, end)`` on ``device``."""

    category: TraceCategory
    device: int  # -1 for host-side intervals
    start: float
    end: float
    label: str = ""
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Accumulates :class:`Interval` records and computes paper-style summaries."""

    def __init__(self, enabled: bool = True, max_intervals: int | None = None) -> None:
        self.enabled = enabled
        #: retention bound: once this many intervals are stored, further
        #: :meth:`record` calls only bump :attr:`dropped`.  ``None`` keeps
        #: everything (the historical behaviour); million-task streaming runs
        #: set a bound (or disable tracing) so the trace cannot re-materialize
        #: the memory the reclaiming graph just gave back.
        self.max_intervals = max_intervals
        #: intervals discarded because :attr:`max_intervals` was reached.
        self.dropped = 0
        #: mixed storage: raw ``(category, device, start, end, label, nbytes)``
        #: tuples appended by :meth:`record`, converted to :class:`Interval`
        #: objects in place — and label callables resolved — the first time an
        #: accessor needs them.  Entries before ``_cooked`` are materialized.
        self._intervals: list = []
        self._cooked = 0

    # ---------------------------------------------------------------- record

    def record(
        self,
        category: TraceCategory,
        device: int,
        start: float,
        end: float,
        label: str | Callable[[], str] = "",
        nbytes: int = 0,
    ) -> None:
        """Append one interval (no-op when tracing is disabled).

        ``label`` may be a zero-argument callable producing the label string;
        it is only invoked when the trace is *read* (summaries, accessors),
        never on the recording path.  Interval materialization is deferred the
        same way: recording is a bounds check plus a tuple append, so enabling
        traces costs sweeps almost nothing until they ask for the analysis.
        """
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end})")
        if (
            self.max_intervals is not None
            and len(self._intervals) >= self.max_intervals
        ):
            self.dropped += 1
            return
        self._intervals.append((category, device, start, end, label, nbytes))

    def clear(self) -> None:
        self._intervals.clear()
        self._cooked = 0
        self.dropped = 0

    def _materialized(self) -> list[Interval]:
        """Convert any still-raw entries; returns the interval list."""
        ivs = self._intervals
        cooked = self._cooked
        total = len(ivs)
        if cooked < total:
            for idx in range(cooked, total):
                category, device, start, end, label, nbytes = ivs[idx]
                if callable(label):
                    label = label()
                ivs[idx] = Interval(category, device, start, end, label, nbytes)
            self._cooked = total
        return ivs

    # ------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._materialized())

    @property
    def intervals(self) -> list[Interval]:
        return list(self._materialized())

    def filter(
        self,
        category: TraceCategory | None = None,
        device: int | None = None,
    ) -> list[Interval]:
        """Select intervals by category and/or device."""
        out = []
        for iv in self._materialized():
            if category is not None and iv.category is not category:
                continue
            if device is not None and iv.device != device:
                continue
            out.append(iv)
        return out

    def makespan(self) -> float:
        """End time of the last interval (0 for an empty trace)."""
        return max((iv.end for iv in self._materialized()), default=0.0)

    # ------------------------------------------------------------- summaries

    def cumulative_by_category(self) -> dict[TraceCategory, float]:
        """Total time per category, summed over all devices (paper Fig. 6 left).

        Note these are *cumulative* device-seconds, exactly like the paper's
        stacked bars: the total can exceed the makespan because devices and
        streams overlap.
        """
        totals: dict[TraceCategory, float] = defaultdict(float)
        for iv in self._materialized():
            totals[iv.category] += iv.duration
        return dict(totals)

    def normalized_by_category(self) -> dict[TraceCategory, float]:
        """Share of cumulative time per category (paper Fig. 6 right)."""
        totals = self.cumulative_by_category()
        grand = sum(totals.values())
        if grand == 0:
            return {}
        return {cat: t / grand for cat, t in totals.items()}

    def transfer_share(self) -> float:
        """Fraction of cumulative time spent in data transfers.

        The paper reports ~25.4% for XKBLAS GEMM at N=32768 and ~41.2% for
        Chameleon Tile.
        """
        normalized = self.normalized_by_category()
        return sum(v for cat, v in normalized.items() if cat.is_transfer)

    def per_device_breakdown(self) -> dict[int, dict[TraceCategory, float]]:
        """Per-GPU cumulative time per category (paper Fig. 7)."""
        out: dict[int, dict[TraceCategory, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        for iv in self._materialized():
            out[iv.device][iv.category] += iv.duration
        return {dev: dict(cats) for dev, cats in out.items()}

    def device_busy_time(self, device: int) -> float:
        """Union length of all intervals on ``device`` (true occupancy)."""
        ivs = sorted(
            ((iv.start, iv.end) for iv in self._materialized() if iv.device == device)
        )
        busy = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for s, e in ivs:
            if cur_start is None:
                cur_start, cur_end = s, e
            elif s <= cur_end:
                cur_end = max(cur_end, e)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = s, e
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    def gantt_rows(self, devices: Iterable[int]) -> dict[int, list[Interval]]:
        """Per-device interval lists sorted by start time (paper Fig. 9)."""
        rows = {dev: self.filter(device=dev) for dev in devices}
        return {dev: sorted(ivs, key=lambda iv: iv.start) for dev, ivs in rows.items()}

    def idle_gaps(self, device: int, min_gap: float = 0.0) -> list[tuple[float, float]]:
        """Gaps between consecutive operations on ``device``.

        Used to detect the inter-call synchronization gaps the paper observes
        in Chameleon's composition Gantt chart (Fig. 9).
        """
        ivs = sorted(
            ((iv.start, iv.end) for iv in self._materialized() if iv.device == device)
        )
        gaps: list[tuple[float, float]] = []
        cur_end: float | None = None
        for s, e in ivs:
            if cur_end is not None and s - cur_end > min_gap:
                gaps.append((cur_end, s))
            cur_end = e if cur_end is None else max(cur_end, e)
        return gaps
