"""Tiled SPD inversion (POTRI) — pure composition of TRTRI and LAUUM.

Given the Cholesky factor ``L`` (``A = L Lᴴ``), the inverse is
``A⁻¹ = L⁻ᴴ L⁻¹``: invert the triangular factor in place, then form the
triangular product — LAPACK's ``potri`` decomposed exactly the same way.
Submitted through one runtime, the LAUUM stage starts consuming inverted
tiles while the TRTRI stage is still running.
"""

from __future__ import annotations

from typing import Iterator

from repro.blas.params import Diag, Uplo
from repro.lapack.lauum import build_lauum
from repro.lapack.trtri import build_trtri
from repro.memory.layout import TilePartition
from repro.runtime.task import Task


def build_potri(uplo: Uplo, a: TilePartition) -> Iterator[Task]:
    """Yield the composed POTRI task graph (TRTRI then LAUUM) in order."""
    yield from build_trtri(uplo, Diag.NONUNIT, a)
    yield from build_lauum(uplo, a)
