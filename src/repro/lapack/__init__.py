"""LAPACK-level tiled algorithms composed from the BLAS-3 task builders.

The paper's end game is exactly this layer: "Composition is noted to be one of
the key point for reaching high performance in sparse direct solver[s] such
[as] MUMPS" (§IV-F), and XKBLAS ships as a supported multi-GPU backend of
MUMPS (§V).  This subpackage demonstrates that the reproduced runtime composes
across routine *and* factorization boundaries:

* ``POTRF`` / ``POTRS`` / ``POSV`` — Cholesky factorization and SPD solve;
* ``TRTRI`` / ``LAUUM`` / ``POTRI`` — triangular and SPD inversion;
* ``GETRF`` (unpivoted) / ``GESV`` — tile LU and general solve.

All are expressed as task graphs over the same tile partitions as the BLAS-3
routines, so consecutive stages overlap through dataflow dependencies rather
than barriers.
"""

from repro.lapack.getrf import build_getrf_nopiv, build_gesv_nopiv
from repro.lapack.lauum import build_lauum
from repro.lapack.potrf import build_potrf
from repro.lapack.potri import build_potri
from repro.lapack.solve import (
    build_potrs,
    gesv_async,
    getrf_async,
    posv_async,
    potrf_async,
    potri_async,
    potrs_async,
    trtri_async,
)
from repro.lapack.trtri import build_trtri

__all__ = [
    "build_getrf_nopiv",
    "build_gesv_nopiv",
    "build_lauum",
    "build_potrf",
    "build_potri",
    "build_potrs",
    "build_trtri",
    "gesv_async",
    "getrf_async",
    "posv_async",
    "potrf_async",
    "potri_async",
    "potrs_async",
    "trtri_async",
]
