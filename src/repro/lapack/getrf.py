"""Tiled unpivoted LU factorization (GETRF-nopiv) and the GESV solver.

The classic right-looking tile LU (PLASMA's ``dgetrf_nopiv``):

    for each pivot step k:
        GETRF  A[k,k]                      — unpivoted LU of the pivot tile
        TRSM   A[k,j] := L[k,k]⁻¹ A[k,j]   — row panel  (left, lower, unit)
        TRSM   A[i,k] := A[i,k] U[k,k]⁻¹   — column panel (right, upper)
        GEMM   A[i,j] -= A[i,k] A[k,j]     — trailing update

Pivoting is omitted, as in PLASMA's nopiv variant — appropriate for
diagonally dominant systems (our tests build such inputs).  ``build_gesv``
composes the factorization with the two triangular solves; all three stages
overlap through the dataflow dependencies.
"""

from __future__ import annotations

from typing import Iterator

from repro.blas import flops as fl
from repro.blas.kernels import k_gemm, k_getrf_nopiv, k_trsm
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.blas.tiled import build_trsm
from repro.blas.tiled.common import make_task, require
from repro.memory.layout import TilePartition
from repro.runtime.task import Task


def build_getrf_nopiv(a: TilePartition) -> Iterator[Task]:
    """Yield the tiled unpivoted-LU task graph in submission order."""
    mt, nt = a.shape
    require(mt == nt, f"getrf: matrix tile grid must be square, got {a.shape}")
    for k in range(nt):
        pivot = a[(k, k)]
        yield make_task(
            "getrf",
            reads=[],
            rw=pivot,
            flops=fl.getrf_flops(pivot.m, pivot.n),
            kernel=k_getrf_nopiv(),
            dims=(pivot.m, pivot.n),
        )
        for j in range(k + 1, nt):
            tile = a[(k, j)]
            yield make_task(
                "trsm",
                reads=[pivot],
                rw=tile,
                flops=fl.trsm_flops(True, tile.m, tile.n),
                kernel=k_trsm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.UNIT, 1.0),
                dims=(tile.m, tile.n, pivot.m),
            )
        for i in range(k + 1, nt):
            tile = a[(i, k)]
            yield make_task(
                "trsm",
                reads=[pivot],
                rw=tile,
                flops=fl.trsm_flops(False, tile.m, tile.n),
                kernel=k_trsm(Side.RIGHT, Uplo.UPPER, Trans.NOTRANS, Diag.NONUNIT, 1.0),
                dims=(tile.m, tile.n, pivot.n),
            )
        for i in range(k + 1, nt):
            for j in range(k + 1, nt):
                target = a[(i, j)]
                left, right = a[(i, k)], a[(k, j)]
                yield make_task(
                    "gemm",
                    reads=[left, right],
                    rw=target,
                    flops=fl.gemm_flops(target.m, target.n, left.n),
                    kernel=k_gemm(-1.0, 1.0, Trans.NOTRANS, Trans.NOTRANS),
                    dims=(target.m, target.n, left.n),
                )


def build_gesv_nopiv(a: TilePartition, b: TilePartition) -> Iterator[Task]:
    """Solve ``A X = B`` by unpivoted LU: factor, then L- and U-solves."""
    yield from build_getrf_nopiv(a)
    yield from build_trsm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.UNIT, 1.0, a, b)
    yield from build_trsm(Side.LEFT, Uplo.UPPER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b)


def getrf_total_flops(n: int) -> float:
    """Whole-factorization flop count: 2n³/3."""
    return 2.0 * n**3 / 3.0
