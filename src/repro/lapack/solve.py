"""Positive-definite solvers built by composition (POTRS, POSV).

``POTRS`` consumes a Cholesky factor with two triangular solves; ``POSV`` is
the factorization + solve pipeline.  Both are *pure composition*: they reuse
the tiled TRSM builder and the POTRF builder over the same tile partitions, so
when submitted through a single runtime the solve's first TRSM tasks start as
soon as the factor tiles they need are ready — before the factorization has
finished — exactly the §IV-F behaviour the paper measures on TRSM+GEMM.
"""

from __future__ import annotations

from typing import Iterator

from repro.blas.params import Diag, Side, Trans, Uplo
from repro.blas.tiled import build_trsm
from repro.lapack.potrf import build_potrf
from repro.memory.layout import TilePartition
from repro.memory.matrix import Matrix
from repro.runtime.api import Runtime
from repro.runtime.task import Task


def build_potrs(
    uplo: Uplo, a: TilePartition, b: TilePartition
) -> Iterator[Task]:
    """Solve ``A X = B`` given the Cholesky factor stored in ``a``.

    Lower: ``L Lᵀ X = B`` → forward solve with L, then backward with Lᵀ.
    Upper: ``Uᵀ U X = B`` → forward solve with Uᵀ, then backward with U.
    """
    if uplo is Uplo.LOWER:
        yield from build_trsm(Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b)
        yield from build_trsm(Side.LEFT, Uplo.LOWER, Trans.TRANS, Diag.NONUNIT, 1.0, a, b)
    else:
        yield from build_trsm(Side.LEFT, Uplo.UPPER, Trans.TRANS, Diag.NONUNIT, 1.0, a, b)
        yield from build_trsm(Side.LEFT, Uplo.UPPER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b)


# ------------------------------------------------------------- async drivers


def potrf_async(runtime: Runtime, uplo: Uplo, a: Matrix, nb: int) -> TilePartition:
    """Submit a tiled Cholesky factorization; returns A's partition."""
    part = runtime.partition(a, nb)
    for task in build_potrf(uplo, part):
        runtime.submit(task)
    return part


def potrs_async(
    runtime: Runtime, uplo: Uplo, a: Matrix, b: Matrix, nb: int
) -> TilePartition:
    """Submit the two composed solves against an (already queued) factor."""
    pa = runtime.partition(a, nb)
    pb = runtime.partition(b, nb)
    for task in build_potrs(uplo, pa, pb):
        runtime.submit(task)
    return pb


def posv_async(
    runtime: Runtime, uplo: Uplo, a: Matrix, b: Matrix, nb: int
) -> TilePartition:
    """Factor + solve in one asynchronous pipeline (``A X = B``, SPD A).

    The solve tasks depend tile-wise on the factorization tasks, so the
    runtime interleaves them; no barrier separates the phases.
    """
    potrf_async(runtime, uplo, a, nb)
    return potrs_async(runtime, uplo, a, b, nb)


def trtri_async(runtime: Runtime, uplo: Uplo, a: Matrix, nb: int) -> TilePartition:
    """Submit an in-place tiled triangular inversion."""
    from repro.blas.params import Diag
    from repro.lapack.trtri import build_trtri

    part = runtime.partition(a, nb)
    for task in build_trtri(uplo, Diag.NONUNIT, part):
        runtime.submit(task)
    return part


def potri_async(runtime: Runtime, uplo: Uplo, a: Matrix, nb: int) -> TilePartition:
    """Submit an in-place SPD inversion of a Cholesky factor (TRTRI+LAUUM)."""
    from repro.lapack.potri import build_potri

    part = runtime.partition(a, nb)
    for task in build_potri(uplo, part):
        runtime.submit(task)
    return part


def getrf_async(runtime: Runtime, a: Matrix, nb: int) -> TilePartition:
    """Submit an in-place unpivoted tiled LU factorization."""
    from repro.lapack.getrf import build_getrf_nopiv

    part = runtime.partition(a, nb)
    for task in build_getrf_nopiv(part):
        runtime.submit(task)
    return part


def gesv_async(runtime: Runtime, a: Matrix, b: Matrix, nb: int) -> TilePartition:
    """Submit an unpivoted LU solve of ``A X = B`` (factor + two solves)."""
    from repro.lapack.getrf import build_gesv_nopiv

    pa = runtime.partition(a, nb)
    pb = runtime.partition(b, nb)
    for task in build_gesv_nopiv(pa, pb):
        runtime.submit(task)
    return pb
