"""Tiled LAUUM: the triangular product ``LᴴL`` (lower) or ``UUᴴ`` (upper).

The PLASMA/Chameleon in-place tile algorithm (lower case shown; the upper
case is the conjugate mirror).  Outer loop over block rows ``m``:

    for n < m:
        A[n,n] += A[m,n]ᵀ A[m,n]          (SYRK, accumulating)
        for n < j < m:
            A[j,n] += A[m,j]ᵀ A[m,n]      (GEMM)
        A[m,n] := A[m,m]ᵀ A[m,n]          (TRMM, left, trans)
    A[m,m] := A[m,m]ᵀ A[m,m]              (LAUUM tile)

Each original ``L`` block is consumed exactly once before being overwritten;
the order above is a valid sequential schedule, so submitted as tasks it
yields the correct dataflow.
"""

from __future__ import annotations

from typing import Iterator

from repro.blas import flops as fl
from repro.blas.kernels import k_gemm, k_lauum, k_syrk, k_trmm
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.blas.tiled.common import make_task, require
from repro.memory.layout import TilePartition
from repro.runtime.task import Task


def build_lauum(uplo: Uplo, a: TilePartition) -> Iterator[Task]:
    """Yield the tiled LAUUM task graph in submission order."""
    nt, nt2 = a.shape
    require(nt == nt2, f"lauum: matrix tile grid must be square, got {a.shape}")
    lower = uplo is Uplo.LOWER

    for m in range(nt):
        diag_m = a[(m, m)]
        inner = range(m) if lower else range(m)
        for n in inner:
            panel = a[(m, n)] if lower else a[(n, m)]
            diag_n = a[(n, n)]
            # A[n,n] += panelᵀ panel  (lower) / panel panelᵀ (upper)
            trans = Trans.TRANS if lower else Trans.NOTRANS
            yield make_task(
                "syrk",
                reads=[panel],
                rw=diag_n,
                flops=fl.syrk_flops(diag_n.n, panel.m if lower else panel.n),
                kernel=k_syrk(uplo, trans, 1.0, 1.0),
                dims=(diag_n.m, diag_n.n, panel.m if lower else panel.n),
            )
            for j in range(n + 1, m):
                if lower:
                    # A[j,n] += A[m,j]ᵀ A[m,n]
                    target = a[(j, n)]
                    left, right = a[(m, j)], panel
                    kernel = k_gemm(1.0, 1.0, Trans.TRANS, Trans.NOTRANS)
                    kb = left.m
                else:
                    # A[n,j] += A[n,m] A[j,m]ᵀ
                    target = a[(n, j)]
                    left, right = panel, a[(j, m)]
                    kernel = k_gemm(1.0, 1.0, Trans.NOTRANS, Trans.TRANS)
                    kb = right.n
                yield make_task(
                    "gemm",
                    reads=[left, right],
                    rw=target,
                    flops=fl.gemm_flops(target.m, target.n, kb),
                    kernel=kernel,
                    dims=(target.m, target.n, kb),
                )
            # panel := tri(A[m,m])ᵀ panel (lower) / panel tri(A[m,m])ᵀ (upper)
            side = Side.LEFT if lower else Side.RIGHT
            yield make_task(
                "trmm",
                reads=[diag_m],
                rw=panel,
                flops=fl.trmm_flops(lower, panel.m, panel.n),
                kernel=k_trmm(side, uplo, Trans.TRANS, Diag.NONUNIT, 1.0),
                dims=(panel.m, panel.n, diag_m.m),
            )
        yield make_task(
            "lauum",
            reads=[],
            rw=diag_m,
            flops=fl.lauum_flops(diag_m.m),
            kernel=k_lauum(uplo),
            dims=(diag_m.m, diag_m.n),
        )
