"""Tiled Cholesky factorization (POTRF).

The canonical right-looking tile algorithm (PLASMA/Chameleon):

for each pivot step k:
    POTRF  A[k,k]                       — factor the diagonal tile
    TRSM   A[i,k]  (i > k)              — panel solves against the pivot
    SYRK   A[i,i] -= A[i,k] A[i,k]ᵀ     — trailing diagonal updates
    GEMM   A[i,j] -= A[i,k] A[j,k]ᵀ     — trailing off-diagonal updates

All dependencies (pivot → panel → trailing, and step k → step k+1) emerge from
the tile access modes — no explicit synchronization, which is what lets the
runtime overlap consecutive pivot steps and any surrounding BLAS calls.

Only the ``uplo`` triangle is stored/updated; the upper variant is the
transposed mirror (``A = Uᵀ U``).
"""

from __future__ import annotations

from typing import Iterator

from repro.blas import flops as fl
from repro.blas.kernels import k_gemm, k_potrf, k_syrk, k_trsm
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.blas.tiled.common import make_task, require
from repro.memory.layout import TilePartition
from repro.runtime.task import Task


def build_potrf(uplo: Uplo, a: TilePartition) -> Iterator[Task]:
    """Yield the tiled Cholesky task graph in submission order."""
    nt, nt2 = a.shape
    require(nt == nt2, f"potrf: matrix tile grid must be square, got {a.shape}")
    require(
        a.matrix.m == a.matrix.n,
        f"potrf: matrix must be square, got {a.matrix.shape}",
    )
    lower = uplo is Uplo.LOWER

    def panel(i: int, k: int):
        """Panel tile below (lower) or right of (upper) pivot k."""
        return a[(i, k)] if lower else a[(k, i)]

    for k in range(nt):
        pivot = a[(k, k)]
        yield make_task(
            "potrf",
            reads=[],
            rw=pivot,
            flops=fl.potrf_flops(pivot.m),
            kernel=k_potrf(uplo),
            dims=(pivot.m, pivot.n),
        )
        for i in range(k + 1, nt):
            ptile = panel(i, k)
            if lower:
                # A[i,k] := A[i,k] tril(A[k,k])⁻ᵀ
                kernel = k_trsm(Side.RIGHT, Uplo.LOWER, Trans.TRANS, Diag.NONUNIT, 1.0)
            else:
                # A[k,i] := triu(A[k,k])⁻ᵀ A[k,i]
                kernel = k_trsm(Side.LEFT, Uplo.UPPER, Trans.TRANS, Diag.NONUNIT, 1.0)
            yield make_task(
                "trsm",
                reads=[pivot],
                rw=ptile,
                flops=fl.trsm_flops(not lower, ptile.m, ptile.n),
                kernel=kernel,
                dims=(ptile.m, ptile.n, pivot.m),
            )
        for i in range(k + 1, nt):
            diag = a[(i, i)]
            ptile = panel(i, k)
            trans = Trans.NOTRANS if lower else Trans.TRANS
            kb = ptile.n if lower else ptile.m
            yield make_task(
                "syrk",
                reads=[ptile],
                rw=diag,
                flops=fl.syrk_flops(diag.n, kb),
                kernel=k_syrk(uplo, trans, -1.0, 1.0),
                dims=(diag.m, diag.n, kb),
            )
            js = range(k + 1, i) if lower else range(i + 1, nt)
            for j in js:
                target = a[(i, j)]
                other = panel(j, k)
                if lower:
                    # A[i,j] -= A[i,k] A[j,k]ᵀ
                    kernel = k_gemm(-1.0, 1.0, Trans.NOTRANS, Trans.TRANS)
                else:
                    # A[i,j] -= A[k,i]ᵀ A[k,j]
                    kernel = k_gemm(-1.0, 1.0, Trans.TRANS, Trans.NOTRANS)
                reads = [ptile, other]
                yield make_task(
                    "gemm",
                    reads=reads,
                    rw=target,
                    flops=fl.gemm_flops(target.m, target.n, kb),
                    kernel=kernel,
                    dims=(target.m, target.n, kb),
                )


def potrf_total_flops(n: int) -> float:
    """Whole-factorization flop count: n³/3."""
    return n**3 / 3.0
