"""Tiled triangular matrix inversion (TRTRI).

In-place, column-oriented tile algorithm.  For the lower case, block column
``k`` of ``X = L⁻¹`` is built top-down:

    X[k,k] = L[k,k]⁻¹                                  (TRTRI tile)
    for i > k:
        A[i,k] := A[i,k] · X[k,k]                      (TRMM, right)
        A[i,k] += Σ_{k<j<i} L[i,j] · X[j,k]            (GEMM chain)
        A[i,k] := -L[i,i]⁻¹ · A[i,k]                   (TRSM, left, alpha=-1)

Every original ``L[i,j]`` block read lies in a column > k (still untouched),
and every ``X[j,k]`` read was produced earlier in the same column — so the
submission order above is a valid sequential schedule and the dataflow builder
extracts all cross-column parallelism.  The upper case is the mirrored
recursion (rows below become rows above, processed bottom-up).
"""

from __future__ import annotations

from typing import Iterator

from repro.blas import flops as fl
from repro.blas.kernels import k_gemm, k_trmm, k_trsm, k_trtri
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.blas.tiled.common import make_task, require
from repro.memory.layout import TilePartition
from repro.runtime.task import Task


def build_trtri(uplo: Uplo, diag: Diag, a: TilePartition) -> Iterator[Task]:
    """Yield the tiled triangular-inversion task graph in submission order."""
    nt, nt2 = a.shape
    require(nt == nt2, f"trtri: matrix tile grid must be square, got {a.shape}")
    lower = uplo is Uplo.LOWER

    # Lower: ascending columns (originals still live to the right).
    # Upper: descending columns (originals still live to the left).
    cols = range(nt) if lower else range(nt - 1, -1, -1)
    for k in cols:
        pivot = a[(k, k)]
        yield make_task(
            "trtri",
            reads=[],
            rw=pivot,
            flops=fl.trtri_flops(pivot.m),
            kernel=k_trtri(uplo, diag),
            dims=(pivot.m, pivot.n),
        )
        rows = range(k + 1, nt) if lower else range(k - 1, -1, -1)
        for i in rows:
            target = a[(i, k)]
            # A[i,k] := A[i,k] · X[k,k]
            yield make_task(
                "trmm",
                reads=[pivot],
                rw=target,
                flops=fl.trmm_flops(False, target.m, target.n),
                kernel=k_trmm(Side.RIGHT, uplo, Trans.NOTRANS, diag, 1.0),
                dims=(target.m, target.n, pivot.m),
            )
            js = range(k + 1, i) if lower else range(i + 1, k)
            for j in js:
                block = a[(i, j)]  # original triangular block
                prior = a[(j, k)]  # already-inverted entry of column k
                yield make_task(
                    "gemm",
                    reads=[block, prior],
                    rw=target,
                    flops=fl.gemm_flops(target.m, target.n, prior.m),
                    kernel=k_gemm(1.0, 1.0, Trans.NOTRANS, Trans.NOTRANS),
                    dims=(target.m, target.n, prior.m),
                )
            diag_i = a[(i, i)]
            yield make_task(
                "trsm",
                reads=[diag_i],
                rw=target,
                flops=fl.trsm_flops(True, target.m, target.n),
                kernel=k_trsm(Side.LEFT, uplo, Trans.NOTRANS, diag, -1.0),
                dims=(target.m, target.n, diag_i.m),
            )
