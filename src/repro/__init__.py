"""repro — reproduction of *"Evaluation of two topology-aware heuristics on
level-3 BLAS library for multi-GPU platforms"* (Gautier & Lima, PAW-ATM/SC'21).

A simulated multi-GPU BLAS-3 software stack: a discrete-event model of the
NVIDIA DGX-1 platform, an XKaapi-style dataflow task runtime with a software
cache, the paper's two data-transfer heuristics (topology-aware source
selection and optimistic device-to-device forwarding), tiled BLAS-3
algorithms executed numerically with NumPy, simulated comparator libraries
(cuBLAS-XT, cuBLAS-MG, BLASX, Chameleon, SLATE, DPLASMA), and the full
experiment harness regenerating every table and figure of the paper.

Quickstart::

    import numpy as np
    from repro import Matrix, make_dgx1
    from repro.libraries import XkBlas

    plat = make_dgx1(num_gpus=8)
    lib = XkBlas(plat)
    A = Matrix.random(4096, 4096, seed=0, name="A")
    B = Matrix.random(4096, 4096, seed=1, name="B")
    C = Matrix.zeros(4096, 4096, name="C")
    result = lib.gemm(1.0, A, B, 0.0, C, nb=1024)
    print(f"{result.gflops:.1f} simulated GFlop/s in {result.seconds:.4f} s")
"""

from repro.memory.matrix import Matrix
from repro.runtime.api import Runtime, RuntimeOptions
from repro.runtime.policies import SourcePolicy
from repro.topology import Platform, make_dgx1, make_nvswitch_node, make_summit_node

__version__ = "1.0.0"

__all__ = [
    "Matrix",
    "Platform",
    "Runtime",
    "RuntimeOptions",
    "SourcePolicy",
    "__version__",
    "make_dgx1",
    "make_nvswitch_node",
    "make_summit_node",
]
