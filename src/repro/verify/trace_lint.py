"""Post-mortem trace linter.

Replays a :class:`~repro.sim.trace.TraceRecorder` stream (the nvprof-like
trace every run records) and flags transfers that contradict the protocol or
the paper's heuristics:

* **T001 — malformed transfer label**: memcpy intervals must carry the
  runtime's ``h2d``/``d2h``/``p2p`` labels naming a tile; anything else means
  a foreign producer wrote into the trace.
* **T002 — self-transfer**: a PtoP record whose source equals its
  destination.
* **T003 — unknown endpoint**: a transfer endpoint outside the platform's
  devices (when a platform is given).
* **T004 — duplicate H2D**: two host-to-device copies of the *same tile to
  the same device* overlapping in time.  The in-flight state of §III-C exists
  precisely so the second request chains on the first ("the heuristic avoids
  duplicate tile transfers from main memory"); overlap means the
  deduplication was bypassed.
* **T005 — source without provenance**: a PtoP forward from a device that,
  per the replay, cannot hold the tile: no earlier transfer delivered it
  there and no kernel ran there that could have produced it.  (Seeded
  data-on-device placements are untraced — pass ``allow_seeded=True`` for
  those scenarios.)

Two further rules run only with ``topology_aware=True``:

* **T006 — rank-order contradiction**: a PtoP forward uses source ``s``
  although another device with a strictly better link rank toward the
  destination certainly held the tile.
* **T007 — redundant H2D fan-out**: a host copy of a tile that certainly was
  already valid on some device — the topology heuristic must forward
  device-to-device instead of re-reading host memory.

T006/T007 compare against replica validity *at the DMA start time* recorded
in the trace, while the runtime picks sources at queue time — on a congested
fabric a replica can land between the two and legally look "missed".  They
are therefore exact only for queue-delay-free streams: distribution phases,
synthetic traces, replayed excerpts.  Certainty additionally requires that no
kernel has completed yet (writes invalidate replicas invisibly) and that the
run evicted nothing (pass the run's eviction count).  Within those bounds the
rules never fire on a legal trace and convict seeded violations — the CLI
applies them to the data-distribution phase it constructs.
"""

from __future__ import annotations

import dataclasses
import re

from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.platform import Platform
from repro.verify.base import Finding

_PASS = "trace"

_H2D = re.compile(r"^h2d (?P<key>T\(\d+:\d+,\d+\))$")
_D2H = re.compile(r"^d2h (?P<key>T\(\d+:\d+,\d+\))$")
_P2P = re.compile(r"^p2p (?P<src>-?\d+)->(?P<dst>-?\d+) (?P<key>T\(\d+:\d+,\d+\))$")

_EPS = 1e-12


def _finding(code: str, subject: str, message: str) -> Finding:
    return Finding(_PASS, code, subject, message)


@dataclasses.dataclass(frozen=True, slots=True)
class _Transfer:
    """One parsed memcpy interval."""

    key: str
    src: int | None  # None when the trace does not name the source (h2d)
    dst: int | None  # None for d2h (the host is the destination)
    start: float
    end: float
    category: TraceCategory


def _parse(trace: TraceRecorder) -> tuple[list[_Transfer], list[Finding]]:
    transfers: list[_Transfer] = []
    findings: list[Finding] = []
    patterns = {
        TraceCategory.MEMCPY_HTOD: _H2D,
        TraceCategory.MEMCPY_DTOH: _D2H,
        TraceCategory.MEMCPY_PTOP: _P2P,
    }
    for iv in trace:
        pattern = patterns.get(iv.category)
        if pattern is None:
            continue
        match = pattern.match(iv.label)
        if match is None:
            findings.append(
                _finding(
                    "T001",
                    iv.label or "<empty>",
                    f"unparseable {iv.category.value} label",
                )
            )
            continue
        if iv.category is TraceCategory.MEMCPY_HTOD:
            src, dst = None, iv.device
        elif iv.category is TraceCategory.MEMCPY_DTOH:
            src, dst = iv.device, None
        else:
            src, dst = int(match["src"]), int(match["dst"])
        transfers.append(
            _Transfer(match["key"], src, dst, iv.start, iv.end, iv.category)
        )
    return transfers, findings


def lint_trace(
    trace: TraceRecorder,
    platform: Platform | None = None,
    topology_aware: bool = False,
    evictions: int = 0,
    allow_seeded: bool = False,
) -> list[Finding]:
    """Lint one recorded trace; returns the (possibly empty) findings list."""
    transfers, findings = _parse(trace)
    # Earliest kernel completion per device (for provenance) and overall (for
    # the certainty window of the topology rules).
    kernel_first_end: dict[int, float] = {}
    first_kernel_end = float("inf")
    for iv in trace:
        if iv.category is TraceCategory.KERNEL:
            prev = kernel_first_end.get(iv.device)
            if prev is None or iv.end < prev:
                kernel_first_end[iv.device] = iv.end
            first_kernel_end = min(first_kernel_end, iv.end)
    devices = set(platform.device_ids()) if platform is not None else None

    # T002 / T003 -------------------------------------------------------------
    for tr in transfers:
        if tr.category is TraceCategory.MEMCPY_PTOP and tr.src == tr.dst:
            findings.append(
                _finding("T002", tr.key, f"PtoP transfer from {tr.src} to itself")
            )
        if devices is not None:
            for end in (tr.src, tr.dst):
                if end is not None and end not in devices:
                    findings.append(
                        _finding(
                            "T003",
                            tr.key,
                            f"transfer endpoint {end} is not a platform device",
                        )
                    )

    by_key: dict[str, list[_Transfer]] = {}
    for tr in transfers:
        by_key.setdefault(tr.key, []).append(tr)
    topology_certain = (
        topology_aware and platform is not None and evictions == 0
    )
    for key, trs in by_key.items():
        trs.sort(key=lambda t: (t.start, t.end))
        inbound = [t for t in trs if t.dst is not None]

        # T004: overlapping H2D of the same tile into the same device (sweep
        # with a running horizon per destination).
        horizons: dict[int, float] = {}
        for tr in trs:
            if tr.category is not TraceCategory.MEMCPY_HTOD:
                continue
            horizon = horizons.get(tr.dst, float("-inf"))
            if tr.start < horizon - _EPS:
                findings.append(
                    _finding(
                        "T004",
                        key,
                        f"duplicate H2D to device {tr.dst}: starts at "
                        f"t={tr.start:.6g} while an earlier copy of the tile "
                        f"to the same device runs until t={horizon:.6g}; the "
                        "in-flight state should have deduplicated it",
                    )
                )
            horizons[tr.dst] = max(horizon, tr.end)

        for tr in trs:
            if tr.category is not TraceCategory.MEMCPY_PTOP:
                continue
            # T005: provenance of the source.
            delivered = any(
                t.dst == tr.src and t.end <= tr.start + _EPS for t in inbound
            )
            produced = kernel_first_end.get(tr.src, float("inf")) <= tr.start + _EPS
            if not delivered and not produced and not allow_seeded:
                findings.append(
                    _finding(
                        "T005",
                        key,
                        f"PtoP from device {tr.src} at t={tr.start:.6g} but no "
                        "transfer or kernel ever produced the tile there",
                    )
                )
            # T006: rank order, only inside the certainty window.
            if topology_certain and tr.start <= first_kernel_end + _EPS:
                certain = {
                    t.dst
                    for t in inbound
                    if t.end <= tr.start + _EPS and t.dst != tr.dst
                }
                certain.add(tr.src)
                best = platform.peers_by_rank(tr.dst, sorted(certain))[0]
                if platform.p2p_performance_rank(
                    best, tr.dst
                ) < platform.p2p_performance_rank(tr.src, tr.dst):
                    findings.append(
                        _finding(
                            "T006",
                            key,
                            f"PtoP into {tr.dst} sourced from {tr.src} "
                            f"although device {best} (better link rank) "
                            "certainly held the tile",
                        )
                    )
        # T007: H2D while some device certainly already held the tile.
        if topology_certain:
            for tr in trs:
                if (
                    tr.category is not TraceCategory.MEMCPY_HTOD
                    or tr.start > first_kernel_end + _EPS
                ):
                    continue
                holders = {
                    t.dst
                    for t in inbound
                    if t.end <= tr.start + _EPS and t.dst != tr.dst
                }
                if holders:
                    findings.append(
                        _finding(
                            "T007",
                            key,
                            f"H2D into {tr.dst} at t={tr.start:.6g} although "
                            f"device(s) {sorted(holders)} certainly held the "
                            "tile; the topology heuristic forwards "
                            "device-to-device instead",
                        )
                    )
    return findings
