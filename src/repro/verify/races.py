"""Vector-clock happens-before race detection over recorded traces.

The PR-1 trace linter (:mod:`repro.verify.trace_lint`) checks *rules* —
labels parse, PtoP sources have provenance, duplicate H2Ds are deduplicated.
Rules can only convict patterns someone anticipated.  This pass instead
reconstructs the **happens-before partial order** of a trace and convicts any
pair of *conflicting* tile accesses the order fails to relate — the classic
vector-clock race detector, adapted to a trace whose "threads" are device
streams plus the host DMA engine.  One adaptation matters: operations on a
single device overlap (the runtime runs compute and prefetch streams
concurrently), so a device is *not* a sequential process and a per-device
scalar clock component would be unsound.  The sound limit of the vector
clock — one component per event, represented as causal-past bitsets — is
what :func:`_assign_clocks` computes, with the same settle-on-start sweep a
per-process clock would use.

Model
-----
* **Threads** are the host (``HOST == -1``) and every device id that appears
  in the trace.  Two operations on the *same* thread are ordered only when
  one ends before the other starts — overlapping intervals on one device are
  concurrent streams (compute overlapping a prefetch), deliberately left
  unordered, exactly the concurrency the runtime exploits.
* **Events** span one or two threads.  A kernel occupies its device.  A
  transfer occupies both endpoints: ``h2d`` reads the host replica and writes
  the device replica (threads ``{HOST, dst}``), ``d2h`` the reverse, ``p2p``
  reads at the source and writes at the destination (threads ``{src, dst}``).
  Because transfers *bridge* threads, legal runs exhibit full causal chains
  in the trace itself: writer kernel → writeback → reload is three events
  chained through shared threads, and the vector clocks order the endpoints
  with no extra information.
* **Kernel tile accesses** are not in the trace (kernel labels are routine
  names); they are recovered from a retained :class:`TaskGraph` by matching
  each done task's ``(device, start_time, end_time)`` against kernel
  intervals.  The graph's successor edges also contribute explicit
  happens-before edges (``kernel_order``) — a write-after-read pair is
  ordered *by the dependence graph* and leaves no transfer chain in the
  trace, so without those edges every WAR pair would be a false positive.
  Without a graph (streaming/reclaiming runs) kernels carry no accesses and
  only transfer/transfer conflicts are checked — still enough to catch a
  duplicated DMA or a forged trace.

Conflicts
---------
* **R001** — two kernel writes to the same tile, unordered: concurrent
  writers produce a value that depends on execution interleaving.
* **R002** — a kernel write and *any* other access of the same tile,
  unordered (any location: a stale replica read concurrent with the writer
  is a coherence violation even on another device).
* **R003** — a transfer write and any access of the same ``(tile, replica
  location)``, unordered: two DMAs storming the same replica, or a replica
  read mid-overwrite.

The detector is validated the only way a detector can be: seeded-violation
tests construct traces with known races (including a write-write kernel
conflict whose events satisfy every trace-lint rule) and legal chained
variants of the same shape that must stay clean.
"""

from __future__ import annotations

import dataclasses
import heapq
import re

from repro.runtime.dataflow import TaskGraph
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.verify.base import Finding

_PASS = "races"

#: thread id of the host DMA engine / host memory.
HOST = -1

_EPS = 1e-12

_H2D = re.compile(r"^h2d (?P<key>T\(\d+:\d+,\d+\))$")
_D2H = re.compile(r"^d2h (?P<key>T\(\d+:\d+,\d+\))$")
_P2P = re.compile(r"^p2p (?P<src>-?\d+)->(?P<dst>-?\d+) (?P<key>T\(\d+:\d+,\d+\))$")


@dataclasses.dataclass(frozen=True, slots=True)
class Access:
    """One replica touch: ``tile`` at ``location`` (device id or HOST)."""

    tile: str
    location: int
    writes: bool
    kernel: bool


@dataclasses.dataclass(slots=True)
class Event:
    """One trace interval lifted into the happens-before model."""

    seq: int
    label: str
    threads: tuple[int, ...]
    start: float
    end: float
    accesses: list[Access]
    #: causal-past clock, assigned by :func:`_assign_clocks`: bit ``i`` set
    #: iff event ``i`` happened-before this event.  A per-*device* scalar
    #: clock would be unsound here — operations on one device overlap
    #: (concurrent streams), so devices are not sequential processes; the
    #: sound degenerate vector clock has one component per event, which a
    #: bitset represents exactly.
    past: int = 0

    def happened_before(self, other: "Event") -> bool:
        """True when this event is in ``other``'s causal past."""
        return bool(other.past >> self.seq & 1)


def _events_from_trace(
    trace: TraceRecorder, graph: TaskGraph | None
) -> tuple[list[Event], list[tuple[int, int]]]:
    """Lift trace intervals into events; returns ``(events, extra_hb_edges)``.

    Extra edges are ``(pred_seq, succ_seq)`` pairs from the retained graph's
    successor relation, mapped onto kernel events.
    """
    events: list[Event] = []
    kernel_by_slot: dict[tuple[int, float, float], int] = {}
    for iv in trace:
        seq = len(events)
        if iv.category is TraceCategory.MEMCPY_HTOD:
            m = _H2D.match(iv.label)
            if m is None:
                continue  # trace_lint reports T001
            key, dst = m["key"], iv.device
            events.append(
                Event(
                    seq, iv.label, (HOST, dst), iv.start, iv.end,
                    [Access(key, HOST, False, False),
                     Access(key, dst, True, False)],
                )
            )
        elif iv.category is TraceCategory.MEMCPY_DTOH:
            m = _D2H.match(iv.label)
            if m is None:
                continue
            key, src = m["key"], iv.device
            events.append(
                Event(
                    seq, iv.label, (src, HOST), iv.start, iv.end,
                    [Access(key, src, False, False),
                     Access(key, HOST, True, False)],
                )
            )
        elif iv.category is TraceCategory.MEMCPY_PTOP:
            m = _P2P.match(iv.label)
            if m is None:
                continue
            key, src, dst = m["key"], int(m["src"]), int(m["dst"])
            if src == dst:
                continue  # trace_lint reports T002
            events.append(
                Event(
                    seq, iv.label, (src, dst), iv.start, iv.end,
                    [Access(key, src, False, False),
                     Access(key, dst, True, False)],
                )
            )
        elif iv.category is TraceCategory.KERNEL:
            events.append(
                Event(seq, iv.label, (iv.device,), iv.start, iv.end, [])
            )
            kernel_by_slot[(iv.device, iv.start, iv.end)] = seq

    extra_edges: list[tuple[int, int]] = []
    if graph is not None and graph.retain_tasks:
        task_event: dict[int, int] = {}
        for task in graph.tasks:
            if task.device is None or task.state != "done":
                continue
            seq = kernel_by_slot.get(
                (task.device, task.start_time, task.end_time)
            )
            if seq is None:
                continue
            task_event[task.uid] = seq
            event = events[seq]
            for access in task.accesses:
                event.accesses.append(
                    Access(repr(access.tile.key), task.device,
                           access.writes, True)
                )
        for task in graph.tasks:
            pred = task_event.get(task.uid)
            if pred is None:
                continue
            for succ in task.successors:
                succ_seq = task_event.get(succ.uid)
                if succ_seq is not None:
                    extra_edges.append((pred, succ_seq))
    return events, extra_edges


def _assign_clocks(events: list[Event], extra_edges: list[tuple[int, int]]) -> None:
    """Compute each event's causal-past clock in start order.

    The base happens-before edges are ``a → b`` iff ``a`` and ``b`` share an
    endpoint (device or host) and ``a.end <= b.start`` — two operations on
    one endpoint that *overlap* are concurrent streams and stay unordered.
    Per endpoint, a heap of ``(end, seq)`` holds events still in flight; when
    a later event on that endpoint starts, every entry that has ended is
    settled into the endpoint's accumulated past-set, which the starting
    event joins (transitively: settling merges the finished event's own
    past).  Explicit graph edges (``extra_edges``) join the predecessor's
    past directly.  ``O(n log n)`` heap work; set joins are bitwise ORs.
    """
    order = sorted(
        range(len(events)), key=lambda i: (events[i].start, events[i].end, i)
    )
    position = {seq: idx for idx, seq in enumerate(order)}
    settled: dict[int, int] = {}
    in_flight: dict[int, list[tuple[float, int]]] = {}
    preds: dict[int, list[int]] = {}
    for pred, succ in extra_edges:
        # An edge is usable only when the predecessor starts first; a
        # "successor" starting before its predecessor is itself racy and
        # must be convicted by the conflict check, not hidden by the edge.
        if position[pred] < position[succ]:
            preds.setdefault(succ, []).append(pred)

    for seq in order:
        event = events[seq]
        past = 0
        for thread in event.threads:
            heap = in_flight.setdefault(thread, [])
            acc = settled.get(thread, 0)
            while heap and heap[0][0] <= event.start + _EPS:
                _end, done_seq = heapq.heappop(heap)
                acc |= events[done_seq].past | (1 << done_seq)
            settled[thread] = acc
            past |= acc
        for pred in preds.get(seq, ()):
            past |= events[pred].past | (1 << pred)
        event.past = past
        for thread in event.threads:
            heapq.heappush(in_flight[thread], (event.end, seq))


def _ordered(a: Event, b: Event) -> bool:
    return a.happened_before(b) or b.happened_before(a)


def detect_races(
    trace: TraceRecorder, graph: TaskGraph | None = None
) -> list[Finding]:
    """Find unordered conflicting tile accesses in a recorded trace.

    Pass the run's :class:`TaskGraph` (retained mode) to include kernel tile
    accesses and dependence-edge ordering; without it only transfer/transfer
    conflicts are checked.
    """
    events, extra_edges = _events_from_trace(trace, graph)
    _assign_clocks(events, extra_edges)

    by_tile: dict[str, list[tuple[Event, Access]]] = {}
    for event in events:
        for access in event.accesses:
            by_tile.setdefault(access.tile, []).append((event, access))

    findings: list[Finding] = []
    reported: set[tuple[str, int, int]] = set()

    def report(code: str, tile: str, e1: Event, e2: Event, message: str) -> None:
        pair = (code, min(e1.seq, e2.seq), max(e1.seq, e2.seq))
        if pair not in reported:
            reported.add(pair)
            findings.append(Finding(_PASS, code, tile, message))

    for tile, touches in by_tile.items():
        touches.sort(key=lambda ea: (ea[0].start, ea[0].seq))
        for i, (e1, a1) in enumerate(touches):
            for e2, a2 in touches[i + 1:]:
                if e1 is e2:
                    continue  # a transfer reads and writes the same tile
                if not (a1.writes or a2.writes):
                    continue
                if _ordered(e1, e2):
                    continue
                if a1.kernel and a2.kernel and a1.writes and a2.writes:
                    report(
                        "R001", tile, e1, e2,
                        f"unordered write-write kernel conflict on {tile}: "
                        f"'{e1.label}' on device {a1.location} "
                        f"[{e1.start:.6g}, {e1.end:.6g}) and '{e2.label}' on "
                        f"device {a2.location} [{e2.start:.6g}, {e2.end:.6g}) "
                        "— the result depends on interleaving",
                    )
                elif (a1.kernel and a1.writes) or (a2.kernel and a2.writes):
                    writer, other = (
                        (e1, e2) if a1.kernel and a1.writes else (e2, e1)
                    )
                    report(
                        "R002", tile, e1, e2,
                        f"kernel write to {tile} ('{writer.label}' "
                        f"[{writer.start:.6g}, {writer.end:.6g})) is "
                        f"unordered against '{other.label}' "
                        f"[{other.start:.6g}, {other.end:.6g}) touching the "
                        "same tile",
                    )
                elif a1.location == a2.location:
                    report(
                        "R003", tile, e1, e2,
                        f"unordered replica conflict on {tile} at location "
                        f"{a1.location}: '{e1.label}' "
                        f"[{e1.start:.6g}, {e1.end:.6g}) vs '{e2.label}' "
                        f"[{e2.start:.6g}, {e2.end:.6g})",
                    )
    return findings
