"""Name-based call graph over a package tree, with a JSON disk cache.

The determinism linter and the reclamation-safety pass both need the same
question answered: *which functions are reachable from a given set of entry
points?*  Precise points-to analysis is overkill for a single package with a
consistent naming discipline, so the graph is **name-based and conservative**:

* a node is every ``def`` (function, method, lambda-holding assignment is
  ignored) in every module under the root, identified by
  ``module.py:Class.method`` qualnames;
* an edge goes from a function to *every* function whose name matches a name
  the body references — called directly (``foo()``, ``obj.foo()``) or passed
  as a callback (``sim.post(t, self._complete, ...)`` keeps ``_complete``
  reachable), which matters because the runtime wires completion events
  exactly that way.

Over-approximation is the right failure mode for a linter: an unreachable
function wrongly considered reachable can only produce a finding a human then
waives; an unreachable edge missed would silently skip a rule.

Building the graph parses every module, so the CLI (and CI, which runs it on
every push) can persist it: :func:`load_or_build` keys the cache on a content
hash of every source file and rebuilds only what changed.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

_CACHE_VERSION = 2


class FunctionNode:
    """One ``def`` in the tree."""

    __slots__ = ("module", "qualname", "name", "lineno", "refs")

    def __init__(
        self, module: str, qualname: str, name: str, lineno: int, refs: set[str]
    ) -> None:
        self.module = module  # posix relpath, e.g. "runtime/transfer.py"
        self.qualname = qualname  # e.g. "TransferManager._select_source"
        self.name = name  # unqualified, e.g. "_select_source"
        self.lineno = lineno
        #: every Name id / Attribute attr referenced in the body — the
        #: superset of callees under name-based resolution.
        self.refs = refs

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"

    def to_json(self) -> dict:
        return {
            "module": self.module,
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "refs": sorted(self.refs),
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionNode":
        return cls(
            data["module"],
            data["qualname"],
            data["name"],
            data["lineno"],
            set(data["refs"]),
        )


class _FunctionCollector(ast.NodeVisitor):
    """Collect every function/method of a module with its referenced names."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.nodes: list[FunctionNode] = []
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        refs: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                refs.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                refs.add(sub.attr)
        prefix = ".".join(self._class_stack)
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        self.nodes.append(
            FunctionNode(self.module, qualname, node.name, node.lineno, refs)
        )
        # Nested defs become their own nodes too (the outer body references
        # their name, so reachability flows through them).
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


class CallGraph:
    """All functions of a tree plus name-based reachability queries."""

    def __init__(self, nodes: list[FunctionNode]) -> None:
        self.nodes = nodes
        self._by_name: dict[str, list[FunctionNode]] = {}
        for node in nodes:
            self._by_name.setdefault(node.name, []).append(node)

    def functions_named(self, name: str) -> list[FunctionNode]:
        return self._by_name.get(name, [])

    def reachable(self, roots: list[str]) -> set[str]:
        """Keys of every function reachable from the given root names.

        A root may be an unqualified name (``"pop"`` — every function or
        method named ``pop``), a ``Class.method`` qualname, or a full
        ``path/to/module.py:Class.method`` key.
        """
        frontier: list[FunctionNode] = []
        for root in roots:
            if ":" in root:
                frontier.extend(n for n in self.nodes if n.key == root)
            elif "." in root:
                frontier.extend(n for n in self.nodes if n.qualname == root)
            else:
                frontier.extend(self.functions_named(root))
        seen: set[str] = set()
        work = list(frontier)
        while work:
            node = work.pop()
            if node.key in seen:
                continue
            seen.add(node.key)
            for ref in node.refs:
                for callee in self._by_name.get(ref, ()):
                    if callee.key not in seen:
                        work.append(callee)
        return seen

    # -------------------------------------------------------------- building

    @staticmethod
    def _tree_hashes(root: Path) -> dict[str, str]:
        hashes: dict[str, str] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            hashes[rel] = hashlib.sha1(path.read_bytes()).hexdigest()
        return hashes

    @classmethod
    def build(cls, root: Path) -> "CallGraph":
        nodes: list[FunctionNode] = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
            except SyntaxError:
                continue  # the AST lint reports it as L000
            collector = _FunctionCollector(rel)
            collector.visit(tree)
            nodes.extend(collector.nodes)
        return cls(nodes)

    def to_json(self, root: Path) -> dict:
        return {
            "version": _CACHE_VERSION,
            "files": self._tree_hashes(root),
            "functions": [n.to_json() for n in self.nodes],
        }


def load_or_build(root: Path, cache_path: Path | None = None) -> CallGraph:
    """Return the tree's call graph, reusing ``cache_path`` when still valid.

    The cache is valid iff the stored per-file content hashes exactly match
    the tree (same files, same bytes).  On miss the graph is rebuilt and the
    cache rewritten — CI keys an actions/cache entry on the same hashes, so
    warm runs skip the parse of every module.
    """
    if cache_path is not None and cache_path.is_file():
        try:
            data = json.loads(cache_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            data = None
        if (
            data is not None
            and data.get("version") == _CACHE_VERSION
            and data.get("files") == CallGraph._tree_hashes(root)
        ):
            return CallGraph(
                [FunctionNode.from_json(f) for f in data["functions"]]
            )
    graph = CallGraph.build(root)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(json.dumps(graph.to_json(root)), encoding="utf-8")
    return graph
