"""Coherence-protocol invariant checker and runtime sanitizer.

The directory implements a simplified MOSI protocol extended with in-flight
replicas (paper §III-C).  The invariants machine-checked here are the ones
the protocol's prose promises:

* **C001 — unique owner**: at most one location holds a ``MODIFIED`` replica.
  (Device ``SHARED`` copies *may* coexist with the owner: a device-to-device
  forward of a dirty replica leaves the source ``MODIFIED`` — owner
  semantics; the dirty bit keeps the write-back obligation on the source.)
* **C002 — owner excludes host**: while a device owns a ``MODIFIED``
  replica, the host copy is stale and must not be marked valid.  The host
  becomes valid again only through a write-back, which downgrades the owner.
* **C003 — generation coherence**: a write bumps the tile generation *and*
  clears outstanding flights, so no live flight may carry a generation other
  than the tile's current one (in-flight generations never exceed the tile
  generation, and stale flights never survive in the map).
* **C004 — flight source validity**: a flight's source must still be able to
  produce the bytes: a valid replica, an earlier flight landing at the source
  (optimistic chaining), or — for write-backs only — a replica discarded
  *after* the DMA was queued (the bytes live "in the wire").
* **C005 — flight destination**: a destination must not simultaneously hold
  a valid replica (``begin_transfer`` refuses it; a later transition
  re-validating the destination without clearing the flight is a bug).
* **C006 — known locations**: replica and flight endpoints must be the host
  or a platform device (when a platform is given).

:class:`CoherenceSanitizer` wires these checks into the runtime: with
``RuntimeOptions.verify_coherence`` (default off, see
:data:`repro.config.VERIFY_COHERENCE`) the transfer manager and executor call
it after every state transition and it raises
:class:`~repro.errors.VerificationError` at the first violation — an
ASan-style mode for the coherence layer.
"""

from __future__ import annotations

import math

from repro.memory.coherence import CoherenceDirectory, ReplicaState
from repro.memory.tile import TileKey
from repro.topology.link import HOST
from repro.topology.platform import Platform
from repro.verify.base import Finding, raise_on_findings

_PASS = "coherence"


def _finding(code: str, key: TileKey, message: str) -> Finding:
    return Finding(_PASS, code, repr(key), message)


def check_tile(
    directory: CoherenceDirectory,
    key: TileKey,
    platform: Platform | None = None,
) -> list[Finding]:
    """Check every protocol invariant for one tile."""
    findings: list[Finding] = []
    states = directory.replicas(key)
    flights = directory.flights(key)
    generation = directory.generation(key)
    known: set[int] | None = None
    if platform is not None:
        known = set(platform.device_ids()) | {HOST}

    owners = sorted(loc for loc, st in states.items() if st is ReplicaState.MODIFIED)
    if len(owners) > 1:
        findings.append(
            _finding("C001", key, f"multiple MODIFIED replicas at {owners}")
        )
    if owners and HOST in states and HOST not in owners:
        findings.append(
            _finding(
                "C002",
                key,
                f"host replica valid while device {owners[0]} holds MODIFIED",
            )
        )
    if known is not None:
        for loc in states:
            if loc not in known:
                findings.append(_finding("C006", key, f"replica at unknown location {loc}"))

    flight_dsts = {f.dst for f in flights}
    for flight in flights:
        if flight.generation > generation:
            findings.append(
                _finding(
                    "C003",
                    key,
                    f"flight to {flight.dst} carries generation "
                    f"{flight.generation} > tile generation {generation}",
                )
            )
        elif flight.generation != generation:
            findings.append(
                _finding(
                    "C003",
                    key,
                    f"stale flight to {flight.dst} (generation "
                    f"{flight.generation}, tile at {generation}) was never "
                    "invalidated",
                )
            )
        if flight.dst in states:
            findings.append(
                _finding(
                    "C005",
                    key,
                    f"flight to {flight.dst} but the destination already "
                    "holds a valid replica",
                )
            )
        source_ok = (
            flight.source in states
            or flight.source in flight_dsts  # chained on an inbound flight
            or flight.dst == HOST  # write-back of a discarded dirty replica
        )
        if not source_ok:
            findings.append(
                _finding(
                    "C004",
                    key,
                    f"flight to {flight.dst} sources from {flight.source}, "
                    "which holds no valid replica and expects none",
                )
            )
        if math.isnan(flight.completes_at) or math.isinf(flight.completes_at):
            findings.append(
                _finding(
                    "C007",
                    key,
                    f"flight to {flight.dst} has non-finite completion time "
                    f"{flight.completes_at}",
                )
            )
        if known is not None and (flight.dst not in known or flight.source not in known):
            findings.append(
                _finding(
                    "C006",
                    key,
                    f"flight {flight.source}->{flight.dst} touches an "
                    "unknown location",
                )
            )
    return findings


def check_directory(
    directory: CoherenceDirectory, platform: Platform | None = None
) -> list[Finding]:
    """Check every tile currently tracked by the directory."""
    findings: list[Finding] = []
    for key in directory.keys():
        findings += check_tile(directory, key, platform)
    return findings


class CoherenceSanitizer:
    """Runtime hook validating the directory at every state transition.

    Cheap by construction: each hook call re-checks only the tile that was
    touched (O(replicas + flights) per transition).  :meth:`check_all` runs
    the full sweep, used by the CLI after a run drains.
    """

    def __init__(
        self, directory: CoherenceDirectory, platform: Platform | None = None
    ) -> None:
        self.directory = directory
        self.platform = platform
        self.checks = 0

    def check_tile(self, key: TileKey) -> None:
        self.checks += 1
        raise_on_findings(
            check_tile(self.directory, key, self.platform),
            "coherence sanitizer",
        )

    def check_all(self) -> None:
        self.checks += 1
        raise_on_findings(
            check_directory(self.directory, self.platform), "coherence sanitizer"
        )
