"""Shared types of the verification subsystem.

Every analysis pass (task-graph detector, coherence checker, trace linter,
AST lint) reports :class:`Finding` records: a machine-readable code, the
subject it applies to and a human-readable message.  Passes never raise on a
violation themselves — callers decide whether findings are fatal
(:func:`raise_on_findings`, used by the sanitizer and the CLI) or merely
collected (tests asserting that a seeded violation *is* caught).
"""

from __future__ import annotations

import dataclasses

from repro.errors import VerificationError


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One verification finding.

    Attributes
    ----------
    pass_name:
        Which analysis produced it ("graph", "coherence", "trace", "lint").
    code:
        Stable machine-readable identifier, e.g. ``G001`` (unordered conflict)
        or ``C001`` (double-MODIFIED replica).
    subject:
        What the finding is about: a task pair, a tile key, a file:line.
    message:
        Human-readable explanation.
    """

    pass_name: str
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.pass_name}:{self.code}] {self.subject}: {self.message}"


def raise_on_findings(findings: list[Finding], context: str = "") -> None:
    """Raise :class:`~repro.errors.VerificationError` if ``findings`` is non-empty."""
    if not findings:
        return
    head = f"{context}: " if context else ""
    lines = "\n".join(f"  {f}" for f in findings)
    raise VerificationError(
        f"{head}{len(findings)} verification finding(s):\n{lines}", findings
    )


def render_report(findings: list[Finding]) -> str:
    """Plain-text report of findings grouped by pass (CLI output)."""
    if not findings:
        return "no findings"
    by_pass: dict[str, list[Finding]] = {}
    for f in findings:
        by_pass.setdefault(f.pass_name, []).append(f)
    out = []
    for name in sorted(by_pass):
        out.append(f"{name}: {len(by_pass[name])} finding(s)")
        out.extend(f"  {f}" for f in by_pass[name])
    return "\n".join(out)
