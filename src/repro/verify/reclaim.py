"""Reclamation-safety pass (static).

``TaskGraph(retain_tasks=False)`` — the PR-5 streaming mode — *retires* every
task the moment it completes: ``Executor._finish`` calls ``graph.complete``,
which clears ``task.successors``, empties ``task.accesses``/``access_keys``
and drops ``task.output_tile`` so million-task runs hold only the in-flight
window.  The graph-level API shrinks the same way: ``graph.tasks``,
``ready_tasks()``, ``critical_path_priorities()`` and ``validate_acyclic()``
raise :class:`~repro.errors.TaskGraphError` on a reclaiming graph.

Both of these are temporal contracts no test exercises by accident — a
scheduler that peeks at ``task.successors`` inside ``on_complete`` works
perfectly in every retained-mode test and silently reads cleared state in
streaming runs.  Two rules make the contracts static:

* **M101 — use of a retired task's cleared fields.**  ``graph.complete(task)``
  runs *before* ``scheduler.on_complete(task, ctx)`` (see
  ``Executor._finish``), so inside the completion path the task's
  ``accesses``/``access_keys``/``successors``/``output_tile`` are already
  cleared in reclaiming mode.  Flagged: reads of those fields on (a) a
  variable after a ``<graph>.complete(var)`` call in the same function, and
  (b) the completed-task parameter inside any ``on_complete``
  implementation — followed one call hop, so delegating the task to a helper
  does not hide the read.
* **M102 — retained-only graph API without a mode guard.**  Reads of
  ``<graph>.tasks`` or calls to the retained-only methods on a graph-named
  receiver, unless dominated by a ``retain_tasks`` conditional or a
  ``try/except TaskGraphError``.  :mod:`repro.runtime.dataflow` itself is
  exempt (it *implements* the contract).

Waivers use the shared ``# det: <reason>`` syntax (e.g. ``# det: retained``
on a line that only ever sees retained graphs), and findings carry the same
line-free fingerprints as the determinism lint so intentional cases can live
in the committed baseline instead.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.verify.base import Finding
from repro.verify.determinism import DetFinding, SCOPES, _in_scope, _waived

_PASS = "reclaim"

#: Task fields cleared by ``TaskGraph._retire``.
CLEARED_FIELDS = ("accesses", "access_keys", "successors", "output_tile")

#: graph attributes/methods that raise on a reclaiming graph.
RETAINED_ONLY_ATTRS = ("tasks",)
RETAINED_ONLY_METHODS = (
    "ready_tasks",
    "critical_path_priorities",
    "validate_acyclic",
)

#: modules that implement (rather than consume) the reclamation contract.
_EXEMPT = ("runtime/dataflow.py",)


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _graphish(node: ast.expr) -> bool:
    """Does the receiver expression name a task graph?"""
    dotted = _dotted(node)
    return dotted is not None and "graph" in dotted.rsplit(".", 1)[-1].lower()


def _mentions_retain(node: ast.expr) -> bool:
    return any(
        (isinstance(s, ast.Attribute) and s.attr == "retain_tasks")
        or (isinstance(s, ast.Name) and s.id == "retain_tasks")
        for s in ast.walk(node)
    )


def _catches_graph_error(stmt: ast.Try) -> bool:
    for handler in stmt.handlers:
        if handler.type is None:
            return True  # bare except also swallows TaskGraphError
        if any(
            (isinstance(s, ast.Name) and s.id == "TaskGraphError")
            or (isinstance(s, ast.Attribute) and s.attr == "TaskGraphError")
            for s in ast.walk(handler.type)
        ):
            return True
    return False


def _terminates(stmts: list[ast.stmt]) -> bool:
    """Does the statement list end by leaving the function (raise/return)?"""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break)
    )


def _functions(tree: ast.Module) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []
    stack: list[str] = []

    class _V(ast.NodeVisitor):
        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            stack.append(node.name)
            self.generic_visit(node)
            stack.pop()

        def _fn(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            prefix = ".".join(stack)
            out.append((f"{prefix}.{node.name}" if prefix else node.name, node))
            stack.append(node.name)
            self.generic_visit(node)
            stack.pop()

        visit_FunctionDef = _fn
        visit_AsyncFunctionDef = _fn

    _V().visit(tree)
    return out


def _task_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """Name of the completed-task parameter (first after self/cls)."""
    names = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if names else None


def _cleared_reads(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, alias: str
) -> list[tuple[int, str]]:
    """(lineno, field) for each cleared-field read on ``alias`` in ``fn``."""
    reads: list[tuple[int, str]] = []
    for sub in ast.walk(fn):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.ctx, ast.Load)
            and sub.attr in CLEARED_FIELDS
            and isinstance(sub.value, ast.Name)
            and sub.value.id == alias
        ):
            reads.append((sub.lineno, sub.attr))
    return reads


def _forwarded_calls(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, alias: str
) -> list[tuple[str, int]]:
    """(callee name, argument position) of calls forwarding ``alias``."""
    out: list[tuple[str, int]] = []
    for sub in ast.walk(fn):
        if not isinstance(sub, ast.Call):
            continue
        callee = _dotted(sub.func)
        if callee is None:
            continue
        for pos, arg in enumerate(sub.args):
            if isinstance(arg, ast.Name) and arg.id == alias:
                out.append((callee.rsplit(".", 1)[-1], pos))
    return out


def lint_reclamation(root: Path) -> list[DetFinding]:
    """Run both reclamation rules over the package tree at ``root``."""
    findings: list[DetFinding] = []
    modules: list[tuple[Path, ast.Module, list[str]]] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if not _in_scope(rel):
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel.as_posix())
        except SyntaxError:
            continue  # L000's job
        modules.append((rel, tree, source.splitlines()))

    #: every function by bare name, for the one-hop M101 follow.
    _Fn = ast.FunctionDef | ast.AsyncFunctionDef
    by_name: dict[str, list[tuple[Path, str, _Fn, list[str]]]] = {}
    for rel, tree, lines in modules:
        for qual, fn in _functions(tree):
            by_name.setdefault(fn.name, []).append((rel, qual, fn, lines))

    def emit(
        code: str, rel: Path, lines: list[str], lineno: int, qual: str,
        symbol: str, message: str,
    ) -> None:
        if _waived(lines, lineno):
            return
        module = rel.as_posix()
        findings.append(
            DetFinding(
                Finding(_PASS, code, f"{module}:{lineno}", f"{qual}: {message}"),
                f"{code}|{module}|{qual}|{symbol}",
            )
        )

    for rel, tree, lines in modules:
        exempt = rel.as_posix() in _EXEMPT
        for qual, fn in _functions(tree):

            # ---- M101a: reads after <graph>.complete(var) ------------------
            # ast.walk is breadth-first; statement order matters here, so
            # recurse through body/orelse/finalbody lists in source order,
            # carrying the set of names the graph has retired so far.
            def own_exprs(stmt: ast.stmt):
                """The statement's expression subtrees, nested bodies excluded."""
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        yield from ast.walk(child)
                    elif isinstance(child, (ast.withitem, ast.keyword)):
                        for sub in ast.iter_child_nodes(child):
                            if isinstance(sub, ast.expr):
                                yield from ast.walk(sub)

            def scan(stmts: list[ast.stmt], retired: set[str]) -> None:
                for stmt in stmts:
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        continue  # nested defs are scanned on their own
                    if retired:
                        for sub in own_exprs(stmt):
                            if (
                                isinstance(sub, ast.Attribute)
                                and isinstance(sub.ctx, ast.Load)
                                and sub.attr in CLEARED_FIELDS
                                and isinstance(sub.value, ast.Name)
                                and sub.value.id in retired
                            ):
                                emit(
                                    "M101", rel, lines, sub.lineno, qual,
                                    f"{sub.value.id}.{sub.attr}",
                                    f"reads '{sub.value.id}.{sub.attr}' after "
                                    f"graph.complete({sub.value.id}) — cleared "
                                    "by the reclaiming graph (retain_tasks="
                                    "False) before this line runs",
                                )
                    for sub in own_exprs(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "complete"
                            and _graphish(sub.func.value)
                            and sub.args
                            and isinstance(sub.args[0], ast.Name)
                        ):
                            retired.add(sub.args[0].id)
                    for field in ("body", "orelse", "finalbody"):
                        nested = getattr(stmt, field, None)
                        if nested:
                            scan(nested, retired)
                    for handler in getattr(stmt, "handlers", ()):
                        scan(handler.body, retired)

            scan(list(fn.body), set())

            # ---- M101b: retired-task fields inside on_complete -------------
            if fn.name == "on_complete" and not exempt:
                param = _task_param(fn)
                if param is not None:
                    for lineno, field in _cleared_reads(fn, param):
                        emit(
                            "M101", rel, lines, lineno, qual,
                            f"{param}.{field}",
                            f"'{param}.{field}' inside on_complete: the graph "
                            "retires the task *before* the scheduler callback "
                            "(Executor._finish), so this field is cleared in "
                            "streaming mode",
                        )
                    # one hop: helpers the completed task is forwarded to.
                    for callee, pos in _forwarded_calls(fn, param):
                        for crel, cqual, cfn, clines in by_name.get(callee, ()):
                            cnames = [
                                a.arg
                                for a in cfn.args.posonlyargs + cfn.args.args
                            ]
                            if cnames and cnames[0] in ("self", "cls"):
                                cnames = cnames[1:]
                            if pos >= len(cnames):
                                continue
                            for lineno, field in _cleared_reads(cfn, cnames[pos]):
                                emit(
                                    "M101", crel, clines, lineno, cqual,
                                    f"{cnames[pos]}.{field}",
                                    f"'{cnames[pos]}.{field}' reached from "
                                    f"on_complete via {callee}(): the task is "
                                    "already retired in streaming mode",
                                )

            # ---- M102: retained-only API without a mode guard --------------
            if exempt:
                continue

            def check_expr(expr: ast.expr) -> None:
                """Flag retained-only uses in one expression tree.

                Branches of an ``IfExp`` conditioned on ``retain_tasks`` are
                guarded and skipped.
                """
                if isinstance(expr, ast.IfExp) and _mentions_retain(expr.test):
                    check_expr(expr.test)
                    return
                flagged: str | None = None
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.ctx, ast.Load)
                    and expr.attr in RETAINED_ONLY_ATTRS
                    and _graphish(expr.value)
                ):
                    # `graph.tasks` as a call receiver (graph.tasks.append)
                    # still reads the property; flag it the same way.
                    flagged = expr.attr
                elif (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in RETAINED_ONLY_METHODS
                    and _graphish(expr.func.value)
                ):
                    flagged = expr.func.attr
                if flagged is not None:
                    emit(
                        "M102", rel, lines, expr.lineno, qual, flagged,
                        f"retained-only graph API '.{flagged}' without a "
                        "retain_tasks guard — raises TaskGraphError on a "
                        "reclaiming (streaming) graph",
                    )
                for child in ast.iter_child_nodes(expr):
                    if isinstance(child, ast.expr):
                        check_expr(child)

            def check_stmt_exprs(stmt: ast.stmt) -> None:
                """Check the statement's own expressions, not nested bodies."""
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        check_expr(child)
                    elif isinstance(child, (ast.arguments, ast.withitem,
                                            ast.keyword)):
                        for sub in ast.iter_child_nodes(child):
                            if isinstance(sub, ast.expr):
                                check_expr(sub)

            def scan_m102(stmts: list[ast.stmt], dominated: bool) -> None:
                """Source-order scan tracking mode-guard dominance.

                Dominated means a preceding ``retain_tasks`` conditional
                that leaves the function (early raise/return) already proved
                the mode, or an enclosing branch/handler is conditioned on
                it.
                """
                for stmt in stmts:
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        continue  # scanned as its own function/scope
                    if isinstance(stmt, ast.If) and _mentions_retain(stmt.test):
                        scan_m102(stmt.body, True)
                        scan_m102(stmt.orelse, True)
                        if _terminates(stmt.body) or _terminates(stmt.orelse):
                            dominated = True
                        continue
                    if isinstance(stmt, ast.Try) and _catches_graph_error(stmt):
                        scan_m102(stmt.body, True)
                        for handler in stmt.handlers:
                            scan_m102(handler.body, dominated)
                        scan_m102(stmt.orelse, dominated)
                        scan_m102(stmt.finalbody, dominated)
                        continue
                    if not dominated:
                        check_stmt_exprs(stmt)
                    for field in ("body", "orelse", "finalbody"):
                        nested = getattr(stmt, field, None)
                        if nested:
                            scan_m102(nested, dominated)
                    for handler in getattr(stmt, "handlers", ()):
                        scan_m102(handler.body, dominated)

            scan_m102(list(fn.body), False)
    return findings
