"""Verification subsystem: machine-checks for the invariants the paper states
in prose.

Analysis passes plus runtime wiring:

* :mod:`repro.verify.graph` — task-graph race & deadlock detector over any
  built :class:`~repro.runtime.dataflow.TaskGraph` (RAW/WAR/WAW conflict
  ordering, cycles, predecessor-counter consistency);
* :mod:`repro.verify.coherence` — MOSI+in-flight protocol invariants over a
  :class:`~repro.memory.coherence.CoherenceDirectory`, as a one-shot check or
  as a runtime sanitizer (``RuntimeOptions.verify_coherence``);
* :mod:`repro.verify.trace_lint` — post-mortem linter replaying an
  nvprof-like :class:`~repro.sim.trace.TraceRecorder` stream;
* :mod:`repro.verify.races` — vector-clock happens-before race detector over
  the same traces: true conflict detection instead of rule checks;
* :mod:`repro.verify.lint` — project-specific AST rules over the sources;
* :mod:`repro.verify.determinism` — purity/determinism linter with
  call-graph reachability (:mod:`repro.verify.callgraph`), ``# det:``
  waivers and a committed fingerprint baseline;
* :mod:`repro.verify.reclaim` — static reclamation-safety pass protecting
  the streaming (``retain_tasks=False``) mode's clear-on-complete contract.

``python -m repro.verify`` runs everything and exits non-zero on findings
(``--json`` for machine output, ``--github`` for CI annotations).
"""

from repro.verify.base import Finding, raise_on_findings, render_report
from repro.verify.callgraph import CallGraph, load_or_build
from repro.verify.coherence import CoherenceSanitizer, check_directory, check_tile
from repro.verify.determinism import (
    lint_determinism,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.verify.graph import assert_graph_ok, verify_graph
from repro.verify.lint import lint_path, lint_source
from repro.verify.races import detect_races
from repro.verify.reclaim import lint_reclamation
from repro.verify.trace_lint import lint_trace

__all__ = [
    "CallGraph",
    "CoherenceSanitizer",
    "Finding",
    "assert_graph_ok",
    "check_directory",
    "check_tile",
    "detect_races",
    "lint_determinism",
    "lint_path",
    "lint_reclamation",
    "lint_source",
    "lint_trace",
    "load_baseline",
    "load_or_build",
    "new_findings",
    "raise_on_findings",
    "render_report",
    "verify_graph",
    "write_baseline",
]
