"""Verification subsystem: machine-checks for the invariants the paper states
in prose.

Three analysis passes plus runtime wiring:

* :mod:`repro.verify.graph` — task-graph race & deadlock detector over any
  built :class:`~repro.runtime.dataflow.TaskGraph` (RAW/WAR/WAW conflict
  ordering, cycles, predecessor-counter consistency);
* :mod:`repro.verify.coherence` — MOSI+in-flight protocol invariants over a
  :class:`~repro.memory.coherence.CoherenceDirectory`, as a one-shot check or
  as a runtime sanitizer (``RuntimeOptions.verify_coherence``);
* :mod:`repro.verify.trace_lint` — post-mortem linter replaying an
  nvprof-like :class:`~repro.sim.trace.TraceRecorder` stream;
* :mod:`repro.verify.lint` — project-specific AST rules over the sources.

``python -m repro.verify`` runs everything and exits non-zero on findings.
"""

from repro.verify.base import Finding, raise_on_findings, render_report
from repro.verify.coherence import CoherenceSanitizer, check_directory, check_tile
from repro.verify.graph import assert_graph_ok, verify_graph
from repro.verify.lint import lint_path, lint_source
from repro.verify.trace_lint import lint_trace

__all__ = [
    "CoherenceSanitizer",
    "Finding",
    "assert_graph_ok",
    "check_directory",
    "check_tile",
    "lint_path",
    "lint_source",
    "lint_trace",
    "raise_on_findings",
    "render_report",
    "verify_graph",
]
