"""Purity & determinism linter (static).

Every committed experiment table in this repo is gated on *bit-identical*
golden makespans, and the sweep cache replays cell outcomes across processes
— so every scheduling or source-selection decision must be a pure function of
**run-local** state.  The one purity bug that shipped (PR 3: the
process-global ``Matrix.id`` counter leaking into the ``ANY_VALID`` source
pick through ``transfer._mix``) was only caught dynamically, after it had
skewed committed numbers.  This pass encodes the lesson statically:

* **D101 — ``id()`` on a decision-adjacent value**: CPython object addresses
  vary across processes and allocations; any comparison, container key or
  dedup keyed on ``id()`` is process-history-dependent.  (Value-identity —
  tile keys, names — is always available in this codebase.)
* **D102 — builtin ``hash()`` outside the L002 scopes**: ``blas/`` and
  ``bench/`` feed the runtime; a salted hash there poisons decisions
  downstream.  (``sim/``/``runtime/``/``memory/`` are covered by L002.)
* **D103 — module-level mutable state written from a function**: globals
  written at call time (``global`` rebinding, ``+=``, ``.append``/``.add``/
  ``.update`` on a module-level container, ``next()`` of a module-level
  ``itertools.count``) make any value derived from them depend on how often
  the process called the function before — exactly the ``Matrix.id`` shape.
* **D104 — unseeded time/random sources**: ``random.*`` (except constructing
  a seeded ``random.Random``) anywhere in the scanned scopes, plus wall-clock
  reads in ``memory/``/``blas/`` (L001 owns ``sim/``/``runtime/``; ``bench/``
  legitimately *measures* wall time, which is reporting, not deciding).
* **D105 — unordered-collection iteration on a decision path**: iterating a
  ``set``/``frozenset`` (literal, comprehension, constructor call, or a local
  assigned one) in a function reachable from the scheduler/transfer entry
  points injects ``PYTHONHASHSEED``-dependent order into schedules.
  Order-insensitive reductions (``min``/``max``/``sorted``/``sum``/``len``/
  ``any``/``all``) are exempt.
* **D106 — process-global counter mixed into decision arithmetic**: reading
  an attribute whose value comes from a process-global counter (discovered,
  not hardcoded: module-level ``itertools.count()`` objects and the instance
  attributes assigned ``next(<counter>)``, propagated one constructor hop to
  fields like ``TileKey.matrix_id``) inside arithmetic or a ``*mix*`` call on
  a decision path — unless laundered through the run-local
  ``DataStore.matrix_index`` translation first.  This is the static form of
  the PR-3 purity bug.

**Decision paths** are computed, not asserted: every function reachable (via
:mod:`repro.verify.callgraph`) from the scheduler protocol
(``Scheduler.push``/``pop``/``on_complete``), the transfer manager's
selection/residency entry points, and the executor's wake/launch/finish loop.

**Waivers**: a ``# det: <reason>`` comment on the flagged line (or the line
above it) suppresses the finding — the reason is free text, reviewed like
code.  **Baseline**: intentional findings that deserve more prose than a
line comment can instead be pinned in a committed baseline file of stable
fingerprints (``code|module|scope|symbol`` — line-number-free, so unrelated
edits do not churn it); the CLI fails only on findings that are neither
waived nor baselined.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from pathlib import Path

from repro.verify.base import Finding
from repro.verify.callgraph import CallGraph, load_or_build

_PASS = "determinism"

#: package subtrees the linter scans (relative to the package root).
SCOPES = ("sim", "runtime", "memory", "blas", "bench")

#: entry points whose transitive callees are "decision paths".
DECISION_ROOTS = [
    # the scheduler protocol — every policy's placement/serving logic
    "Scheduler.push",
    "Scheduler.pop",
    "Scheduler.on_complete",
    "push",
    "pop",
    "on_complete",
    # transfer-manager source selection and residency
    "TransferManager.ensure_resident",
    "TransferManager._select_source",
    "TransferManager.preview_source",
    "TransferManager.ensure_host_valid",
    # the executor's dispatch loop
    "Executor._wake_all",
    "Executor._launch",
    "Executor._finish",
]

#: functions that translate a process-global id into run-local state; a
#: tainted attribute read inside a call to one of these is laundered.
LAUNDERERS = {"matrix_index"}

_WAIVER = "# det:"

_WALL_CLOCKS = {
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.process_time",
    "time.time_ns",
    "time.monotonic_ns",
    "time.perf_counter_ns",
}

#: reductions whose result does not depend on iteration order.
_ORDER_INSENSITIVE = {"min", "max", "sorted", "sum", "len", "any", "all", "set",
                      "frozenset", "bool"}


@dataclasses.dataclass(frozen=True, slots=True)
class DetFinding:
    """A determinism finding plus its line-number-free baseline fingerprint."""

    finding: Finding
    fingerprint: str


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _waived(source_lines: list[str], lineno: int) -> bool:
    """True when the line (or the one above) carries a ``# det:`` waiver."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(source_lines) and _WAIVER in source_lines[ln - 1]:
            return True
    return False


def _in_scope(rel: Path, scopes: tuple[str, ...] = SCOPES) -> bool:
    return bool(rel.parts) and rel.parts[0] in scopes


# --------------------------------------------------------------------- taint


@dataclasses.dataclass(slots=True)
class TaintInfo:
    """Discovered process-global counters and the attributes they feed."""

    #: module-level names bound to ``itertools.count()`` per module.
    counters: dict[str, set[str]]
    #: attribute names whose values derive from a process-global counter
    #: (``Matrix.id``, ``Task.uid``, propagated: ``TileKey.matrix_id``).
    tainted_attrs: set[str]


def _is_count_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted in ("itertools.count", "count")


def _module_counters(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_count_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_count_call(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _expr_contains_tainted(node: ast.expr, tainted: set[str]) -> str | None:
    """Name of the first tainted attribute read inside ``node``, if any."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
            if sub.attr in tainted:
                return sub.attr
    return None


def _expr_is_next_of_counter(node: ast.expr, counters: set[str]) -> bool:
    """``next(_matrix_ids)`` — including inside a lambda default_factory."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "next"
            and sub.args
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id in counters
        ):
            return True
    return False


def _class_field_order(cls: ast.ClassDef) -> list[str]:
    """Positional field names of a dataclass-style class body."""
    fields: list[str] = []
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            fields.append(item.target.id)
    return fields


def discover_taint(trees: list[tuple[Path, ast.Module]]) -> TaintInfo:
    """Find process-global counters and the attributes carrying their values.

    Three steps, all name-based:

    1. module-level ``itertools.count()`` bindings are the counter set;
    2. an instance attribute assigned ``next(<counter>)`` anywhere in a class
       body — directly (``self.id = next(_matrix_ids)``) or as a dataclass
       ``default_factory`` lambda — is tainted;
    3. one constructor hop: a dataclass field that some call site populates
       with a tainted attribute expression (``TileKey(matrix.id, i, j)``,
       ``TileKey(matrix_id=m.id, ...)``) becomes tainted itself, to a
       fixpoint.  That is how ``matrix_id`` inherits ``Matrix.id``'s taint.
    """
    counters: dict[str, set[str]] = {}
    tainted: set[str] = set()
    for rel, tree in trees:
        module_counters = _module_counters(tree)
        if module_counters:
            counters[rel.as_posix()] = module_counters
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for sub in ast.walk(node):
                # self.id = next(_matrix_ids)
                if isinstance(sub, ast.Assign) and _expr_is_next_of_counter(
                    sub.value, module_counters
                ):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            tainted.add(target.attr)
                # uid: int = field(default_factory=lambda: next(_task_ids))
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    if isinstance(sub.target, ast.Name) and _expr_is_next_of_counter(
                        sub.value, module_counters
                    ):
                        tainted.add(sub.target.id)

    # Constructor-hop propagation to a fixpoint.
    class_fields: dict[str, list[str]] = {}
    for _rel, tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                class_fields[node.name] = _class_field_order(node)
    changed = True
    while changed:
        changed = False
        for _rel, tree in trees:
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in class_fields
                ):
                    continue
                fields = class_fields[node.func.id]
                for idx, arg in enumerate(node.args):
                    if idx < len(fields) and _expr_contains_tainted(arg, tainted):
                        if fields[idx] not in tainted:
                            tainted.add(fields[idx])
                            changed = True
                for kw in node.keywords:
                    if kw.arg is not None and _expr_contains_tainted(
                        kw.value, tainted
                    ):
                        if kw.arg not in tainted:
                            tainted.add(kw.arg)
                            changed = True
    return TaintInfo(counters=counters, tainted_attrs=tainted)


# ------------------------------------------------------------------ per-file


class _ParentMap(dict):
    """child AST node -> parent, for context checks."""

    @classmethod
    def of(cls, tree: ast.AST) -> "_ParentMap":
        parents = cls()
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents


def _set_like_locals(func: ast.AST) -> set[str]:
    """Local names assigned a set-typed value anywhere in the function."""
    names: set[str] = set()
    for node in ast.walk(func):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if value is None or not isinstance(target, ast.Name):
            continue
        if _is_set_expr(value, names):
            names.add(target.id)
    return names


def _is_set_expr(node: ast.expr, set_locals: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # set algebra producing new sets from a set-typed receiver
        if node.func.attr in ("union", "intersection", "difference",
                              "symmetric_difference", "copy") and _is_set_expr(
            node.func.value, set_locals
        ):
            return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_locals) or _is_set_expr(
            node.right, set_locals
        )
    return False


_ARITH_OPS = (ast.Mult, ast.Add, ast.Mod, ast.BitXor, ast.LShift, ast.RShift,
              ast.BitAnd, ast.BitOr, ast.Sub)


def _lint_module(
    rel: Path,
    source: str,
    tree: ast.Module,
    graph: CallGraph,
    decision_keys: set[str],
    taint: TaintInfo,
) -> list[DetFinding]:
    findings: list[DetFinding] = []
    lines = source.splitlines()
    module = rel.as_posix()
    parents = _ParentMap.of(tree)
    module_counters = taint.counters.get(module, set())
    #: module-level names bound to mutable containers (or arbitrary calls).
    module_mutables: set[str] = set(module_counters)
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        if isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                    ast.SetComp)
        ) or _is_count_call(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    module_mutables.add(target.id)

    def emit(code: str, lineno: int, scope: str, symbol: str, message: str) -> None:
        if _waived(lines, lineno):
            return
        findings.append(
            DetFinding(
                Finding(_PASS, code, f"{module}:{lineno}", f"{scope}: {message}"),
                f"{code}|{module}|{scope}|{symbol}",
            )
        )

    # Enumerate functions with their AST subtrees (for scope labels and the
    # reachability gate of D105/D106).
    class _Funcs(ast.NodeVisitor):
        def __init__(self) -> None:
            self.out: list[tuple[str, ast.AST]] = []
            self._stack: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._stack.append(node.name)
            self.generic_visit(node)
            self._stack.pop()

        def _fn(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            prefix = ".".join(self._stack)
            qual = f"{prefix}.{node.name}" if prefix else node.name
            self.out.append((qual, node))
            self._stack.append(node.name)
            self.generic_visit(node)
            self._stack.pop()

        visit_FunctionDef = _fn
        visit_AsyncFunctionDef = _fn

    funcs = _Funcs()
    funcs.visit(tree)
    func_nodes = funcs.out
    #: every node inside any function body (to tell module scope apart).
    in_function: set[int] = set()
    for _qual, fn in func_nodes:
        for sub in ast.walk(fn):
            in_function.add(id(sub))

    # D103 also applies to lambdas *outside* any def — most importantly the
    # dataclass ``field(default_factory=lambda: next(_ids))`` idiom, where the
    # counter advances at every instance construction.
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Lambda)
            and id(node) not in in_function
            and _expr_is_next_of_counter(node.body, module_counters)
        ):
            emit(
                "D103", node.lineno, "<lambda>", "next",
                "default_factory draws from a process-global counter; "
                "values encode how many instances the process has ever "
                "built (the PR-3 Matrix.id bug class)",
            )

    # ---- rules that apply to the whole module (any function) --------------
    for qual, fn in func_nodes:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        on_decision_path = f"{module}:{qual}" in decision_keys
        is_dunder = fn.name.startswith("__") and fn.name.endswith("__")
        globals_declared: set[str] = set()
        set_locals = _set_like_locals(fn)
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Global):
                globals_declared.update(sub.names)

        for sub in ast.walk(fn):
            lineno = getattr(sub, "lineno", fn.lineno)

            # D101: id() — process-address identity.
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
                and len(sub.args) == 1
            ):
                emit(
                    "D101", lineno, qual, "id",
                    "id() yields a process-local address; key on value "
                    "identity (tile keys, names) instead",
                )

            # D102: builtin hash() outside the L002 scopes.
            if (
                rel.parts[0] in ("blas", "bench")
                and isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "hash"
            ):
                emit(
                    "D102", lineno, qual, "hash",
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); derive integers arithmetically",
                )

            # D103: module-global state written from a function.
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in globals_declared
                    ):
                        emit(
                            "D103", lineno, qual, target.id,
                            f"rebinds module-global '{target.id}' at call "
                            "time; decisions derived from it depend on "
                            "process history",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_mutables
                    ):
                        emit(
                            "D103", lineno, qual, target.value.id,
                            f"writes module-level container "
                            f"'{target.value.id}' from a function",
                        )
            if isinstance(sub, ast.Call):
                func_expr = sub.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in module_mutables
                    and func_expr.attr
                    in ("append", "add", "update", "setdefault", "extend",
                        "insert", "pop", "popitem", "clear", "remove",
                        "discard", "appendleft")
                ):
                    emit(
                        "D103", lineno, qual, func_expr.value.id,
                        f"mutates module-level container "
                        f"'{func_expr.value.id}' from a function",
                    )
                elif (
                    isinstance(func_expr, ast.Name)
                    and func_expr.id == "next"
                    and sub.args
                    and isinstance(sub.args[0], ast.Name)
                    and sub.args[0].id in module_counters
                ):
                    emit(
                        "D103", lineno, qual, sub.args[0].id,
                        f"advances process-global counter "
                        f"'{sub.args[0].id}'; values drawn from it encode "
                        "process history (the PR-3 Matrix.id bug class)",
                    )

            # D104: unseeded randomness / wall clocks outside L001's scopes.
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted is not None:
                    if (
                        dotted.startswith("random.")
                        and dotted != "random.Random"
                    ) or dotted in ("np.random.seed", "numpy.random.seed"):
                        emit(
                            "D104", lineno, qual, dotted,
                            f"{dotted}() draws from global, process-seeded "
                            "state; construct a seeded Random/default_rng "
                            "and thread it through config",
                        )
                    elif dotted in (
                        "np.random.default_rng",
                        "numpy.random.default_rng",
                        "default_rng",
                    ) and not sub.args and not sub.keywords:
                        emit(
                            "D104", lineno, qual, dotted,
                            "default_rng() without a seed is entropy-seeded; "
                            "pass an explicit seed",
                        )
                    elif rel.parts[0] in ("memory", "blas") and dotted in _WALL_CLOCKS:
                        emit(
                            "D104", lineno, qual, dotted,
                            f"wall-clock {dotted}() in a data-model module; "
                            "virtual time is owned by the simulator",
                        )

            # ---- decision-path-only rules --------------------------------
            if not on_decision_path or is_dunder:
                continue

            # D105: iterating an unordered collection.
            iter_expr: ast.expr | None = None
            if isinstance(sub, ast.For):
                iter_expr = sub.iter
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                  ast.GeneratorExp)):
                iter_expr = sub.generators[0].iter
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("list", "tuple", "enumerate", "iter", "next")
                and sub.args
            ):
                iter_expr = sub.args[0]
            if iter_expr is not None and _is_set_expr(iter_expr, set_locals):
                # min/max/sorted/... over a set is order-insensitive; only
                # flag when the *iteration order* can escape.
                parent = parents.get(sub)
                if not (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_INSENSITIVE
                ):
                    emit(
                        "D105", lineno, qual, "set-iteration",
                        "iterates an unordered set on a decision path; "
                        "iteration order leaks PYTHONHASHSEED into "
                        "schedules — sort, or iterate an ordered source",
                    )

            # D106: tainted process-global identity in decision arithmetic.
            tainted_attr = None
            context = None
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and sub.attr in taint.tainted_attrs
            ):
                # climb: inside a launderer call -> ok; inside a *mix* call
                # or arithmetic BinOp -> finding.
                node_it: ast.AST = sub
                while True:
                    parent = parents.get(node_it)
                    if parent is None or isinstance(
                        parent, (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        break
                    if isinstance(parent, ast.Call):
                        pdotted = _dotted(parent.func) or ""
                        pname = pdotted.rsplit(".", 1)[-1]
                        if pname in LAUNDERERS:
                            break
                        if "mix" in pname:
                            tainted_attr, context = sub.attr, f"{pname}()"
                            break
                    if isinstance(parent, ast.BinOp) and isinstance(
                        parent.op, _ARITH_OPS
                    ):
                        tainted_attr, context = sub.attr, "arithmetic"
                        break
                    node_it = parent
            if tainted_attr is not None:
                emit(
                    "D106", lineno, qual, tainted_attr,
                    f"process-global counter value '.{tainted_attr}' feeds "
                    f"{context} on a decision path; translate through the "
                    "run-local DataStore.matrix_index first (the PR-3 "
                    "purity bug, statically)",
                )
    return findings


# ----------------------------------------------------------------- tree pass


def lint_determinism(
    root: Path,
    graph: CallGraph | None = None,
    callgraph_cache: Path | None = None,
) -> list[DetFinding]:
    """Run the purity/determinism rules over the package tree at ``root``."""
    if graph is None:
        graph = load_or_build(root, callgraph_cache)
    decision_keys = graph.reachable(DECISION_ROOTS)
    trees: list[tuple[Path, ast.Module, str]] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if not _in_scope(rel):
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel.as_posix())
        except SyntaxError:
            continue  # L000's job
        trees.append((rel, tree, source))
    taint = discover_taint([(rel, tree) for rel, tree, _ in trees])
    findings: list[DetFinding] = []
    for rel, tree, source in trees:
        findings += _lint_module(rel, source, tree, graph, decision_keys, taint)
    return findings


# ------------------------------------------------------------------ baseline


def load_baseline(path: Path) -> set[str]:
    """Committed fingerprints of intentional findings (empty if absent)."""
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("fingerprints", []))


def write_baseline(path: Path, findings: list[DetFinding]) -> None:
    path.write_text(
        json.dumps(
            {
                "comment": (
                    "Baseline of intentional determinism/reclamation findings. "
                    "Fingerprints are code|module|scope|symbol (line-free). "
                    "Regenerate with: python -m repro.verify --write-baseline"
                ),
                "fingerprints": sorted({f.fingerprint for f in findings}),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def new_findings(
    findings: list[DetFinding], baseline: set[str]
) -> list[Finding]:
    """Findings whose fingerprint is not pinned by the committed baseline."""
    return [f.finding for f in findings if f.fingerprint not in baseline]
