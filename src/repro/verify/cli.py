"""``python -m repro.verify`` — run every verification pass over the project.

Three stages, any finding makes the exit status non-zero:

1. **lint** — the project AST rules of :mod:`repro.verify.lint` over the
   installed ``repro`` package sources (override with ``--src``);
2. **graph** — build the task graphs of all six tiled BLAS-3 routines plus
   the TRSM+GEMM composition and certify them with the race/deadlock
   detector, pre-execution;
3. **runtime** — execute each of those graphs on a simulated platform with
   the coherence sanitizer enabled, then re-certify the executed graph
   (timing-aware), sweep the final coherence directory, lint the recorded
   trace, and lint a data-distribution phase with the topology-aware trace
   rules.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro
from repro import Runtime, RuntimeOptions
from repro.blas import tiled
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.memory.layout import BlockCyclicDistribution, TilePartition, default_grid
from repro.memory.matrix import Matrix
from repro.runtime.dataflow import TaskGraph
from repro.topology.dgx1 import make_dgx1
from repro.verify.base import Finding, render_report
from repro.verify.coherence import check_directory
from repro.verify.graph import verify_graph
from repro.verify.lint import lint_path
from repro.verify.trace_lint import lint_trace

#: the six tiled BLAS-3 routines of the paper's Fig. 5, plus the composition.
ROUTINES = ("gemm", "symm", "syrk", "syr2k", "trmm", "trsm", "composition")


def _partition(n: int, nb: int, name: str) -> TilePartition:
    return TilePartition(Matrix.meta(n, n, name=name), nb)


def build_tasks(routine: str, n: int, nb: int) -> list:
    """Submission-ordered task list of one routine (metadata matrices)."""
    a = _partition(n, nb, "A")
    b = _partition(n, nb, "B")
    c = _partition(n, nb, "C")
    if routine == "gemm":
        return list(tiled.build_gemm(1.0, a, b, 0.5, c))
    if routine == "symm":
        return list(tiled.build_symm(Side.LEFT, Uplo.LOWER, 1.0, a, b, 0.5, c))
    if routine == "syrk":
        return list(tiled.build_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, a, 0.5, c))
    if routine == "syr2k":
        return list(
            tiled.build_syr2k(Uplo.LOWER, Trans.NOTRANS, 1.0, a, b, 0.5, c)
        )
    if routine == "trmm":
        return list(
            tiled.build_trmm(
                Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b
            )
        )
    if routine == "trsm":
        return list(
            tiled.build_trsm(
                Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b
            )
        )
    if routine == "composition":
        # TRSM producing B, then a GEMM consuming it (§IV-F composition).
        d = _partition(n, nb, "D")
        tasks = list(
            tiled.build_trsm(
                Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b
            )
        )
        tasks += list(tiled.build_gemm(1.0, b, c, 0.5, d))
        return tasks
    raise ValueError(f"unknown routine {routine!r}")


def verify_built_graphs(n: int, nb: int) -> list[Finding]:
    """Stage 2: certify freshly built (unexecuted) graphs."""
    findings: list[Finding] = []
    for routine in ROUTINES:
        graph = TaskGraph()
        for task in build_tasks(routine, n, nb):
            graph.add(task)
        for f in verify_graph(graph):
            findings.append(
                Finding(f.pass_name, f.code, f"{routine}: {f.subject}", f.message)
            )
    return findings


def verify_executed_run(routine: str, n: int, nb: int, gpus: int) -> list[Finding]:
    """Stage 3 (per routine): run with the sanitizer on, then post-mortem."""
    platform = make_dgx1(gpus)
    rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
    tasks = build_tasks(routine, n, nb)
    # Register the partitions so flushes see them, then submit and drain.
    for task in tasks:
        rt.submit(task)
    rt.sync()
    findings = verify_graph(rt.executor.graph)
    findings += check_directory(rt.directory, platform)
    evictions = sum(int(c.stats()["evictions"]) for c in rt.caches.values())
    findings += lint_trace(rt.trace, platform, evictions=evictions)
    return [
        Finding(f.pass_name, f.code, f"{routine}: {f.subject}", f.message)
        for f in findings
    ]


def verify_distribution_phase(n: int, nb: int, gpus: int) -> list[Finding]:
    """Stage 3 (extra): topology-aware trace rules on a distribution phase.

    A 2D block-cyclic upload is a queue-delay-free, kernel-free stream — the
    window in which the strict T006/T007 rules are exact.
    """
    platform = make_dgx1(gpus)
    rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
    matrix = Matrix.meta(n, n, name="DIST")
    grid_p, grid_q = default_grid(gpus)
    dist = BlockCyclicDistribution(grid_p=grid_p, grid_q=grid_q)
    rt.distribute_2d_block_cyclic_async(matrix, nb, dist, upload=True)
    rt.sync()
    findings = lint_trace(rt.trace, platform, topology_aware=True)
    findings += check_directory(rt.directory, platform)
    return [
        Finding(f.pass_name, f.code, f"distribution: {f.subject}", f.message)
        for f in findings
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Static and dynamic verification of the repro stack.",
    )
    parser.add_argument(
        "--src",
        type=Path,
        default=Path(repro.__file__).parent,
        help="package root to lint (default: the installed repro package)",
    )
    parser.add_argument("--n", type=int, default=256, help="matrix order")
    parser.add_argument("--nb", type=int, default=64, help="tile size")
    parser.add_argument("--gpus", type=int, default=4, help="simulated GPUs")
    parser.add_argument("--skip-lint", action="store_true")
    parser.add_argument("--skip-graph", action="store_true")
    parser.add_argument("--skip-runtime", action="store_true")
    parser.add_argument(
        "--fast", action="store_true", help="smaller problems (CI-friendly)"
    )
    args = parser.parse_args(argv)
    n, nb = (128, 32) if args.fast else (args.n, args.nb)
    if n <= 0 or nb <= 0 or args.gpus <= 0:
        parser.error(f"--n, --nb and --gpus must be positive (got {n}, {nb}, {args.gpus})")

    findings: list[Finding] = []
    if not args.skip_lint:
        if not args.src.is_dir():
            parser.error(f"--src {args.src} is not a directory")
        lint = lint_path(args.src)
        print(f"lint: {len(lint)} finding(s) over {args.src}")
        findings += lint
    if not args.skip_graph:
        graph = verify_built_graphs(n, nb)
        print(
            f"graph: {len(graph)} finding(s) over {len(ROUTINES)} built "
            f"graphs (n={n}, nb={nb})"
        )
        findings += graph
    if not args.skip_runtime:
        runtime: list[Finding] = []
        for routine in ROUTINES:
            runtime += verify_executed_run(routine, n, nb, args.gpus)
        runtime += verify_distribution_phase(n, nb, args.gpus)
        print(
            f"runtime: {len(runtime)} finding(s) over {len(ROUTINES)} "
            f"sanitized runs + distribution phase ({args.gpus} GPUs)"
        )
        findings += runtime

    if findings:
        print(render_report(findings))
        return 1
    print("OK: all verification passes are clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
