"""``python -m repro.verify`` — run every verification pass over the project.

Five stages, any finding makes the exit status non-zero:

1. **lint** — the project AST rules of :mod:`repro.verify.lint` over the
   installed ``repro`` package sources (override with ``--src``);
2. **determinism** — the purity/determinism linter
   (:mod:`repro.verify.determinism`) and the reclamation-safety pass
   (:mod:`repro.verify.reclaim`), both reachability-aware over the shared
   call graph (cached with ``--callgraph-cache``) and filtered against the
   committed fingerprint baseline (``--baseline``, regenerate with
   ``--write-baseline``);
3. **graph** — build the task graphs of all six tiled BLAS-3 routines plus
   the TRSM+GEMM composition and certify them with the race/deadlock
   detector, pre-execution;
4. **runtime** — execute each of those graphs on a simulated platform with
   the coherence sanitizer enabled, then re-certify the executed graph
   (timing-aware), sweep the final coherence directory, lint the recorded
   trace, run the vector-clock race detector
   (:mod:`repro.verify.races`) over it, and lint a data-distribution phase
   with the topology-aware trace rules;
5. **streaming** — run the same workload through the reclaiming streaming
   path (``retain_tasks=False``) and race-check its trace (transfer-level:
   a reclaiming graph keeps no kernel access lists).

``--json FILE`` additionally writes the findings as machine-readable JSON
(``-`` for stdout); ``--github`` prints one ``::error``/``::warning``
workflow command per finding so CI runs annotate the offending lines.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

import repro
from repro import Runtime, RuntimeOptions
from repro.blas import tiled
from repro.blas.params import Diag, Side, Trans, Uplo
from repro.memory.layout import BlockCyclicDistribution, TilePartition, default_grid
from repro.memory.matrix import Matrix
from repro.runtime.dataflow import TaskGraph
from repro.topology.dgx1 import make_dgx1
from repro.verify.base import Finding, render_report
from repro.verify.callgraph import load_or_build
from repro.verify.coherence import check_directory
from repro.verify.determinism import (
    lint_determinism,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.verify.graph import verify_graph
from repro.verify.lint import lint_path
from repro.verify.races import detect_races
from repro.verify.reclaim import lint_reclamation
from repro.verify.trace_lint import lint_trace

#: the six tiled BLAS-3 routines of the paper's Fig. 5, plus the composition.
ROUTINES = ("gemm", "symm", "syrk", "syr2k", "trmm", "trsm", "composition")


def _partition(n: int, nb: int, name: str) -> TilePartition:
    return TilePartition(Matrix.meta(n, n, name=name), nb)


def build_tasks(routine: str, n: int, nb: int) -> list:
    """Submission-ordered task list of one routine (metadata matrices)."""
    a = _partition(n, nb, "A")
    b = _partition(n, nb, "B")
    c = _partition(n, nb, "C")
    if routine == "gemm":
        return list(tiled.build_gemm(1.0, a, b, 0.5, c))
    if routine == "symm":
        return list(tiled.build_symm(Side.LEFT, Uplo.LOWER, 1.0, a, b, 0.5, c))
    if routine == "syrk":
        return list(tiled.build_syrk(Uplo.LOWER, Trans.NOTRANS, 1.0, a, 0.5, c))
    if routine == "syr2k":
        return list(
            tiled.build_syr2k(Uplo.LOWER, Trans.NOTRANS, 1.0, a, b, 0.5, c)
        )
    if routine == "trmm":
        return list(
            tiled.build_trmm(
                Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b
            )
        )
    if routine == "trsm":
        return list(
            tiled.build_trsm(
                Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b
            )
        )
    if routine == "composition":
        # TRSM producing B, then a GEMM consuming it (§IV-F composition).
        d = _partition(n, nb, "D")
        tasks = list(
            tiled.build_trsm(
                Side.LEFT, Uplo.LOWER, Trans.NOTRANS, Diag.NONUNIT, 1.0, a, b
            )
        )
        tasks += list(tiled.build_gemm(1.0, b, c, 0.5, d))
        return tasks
    raise ValueError(f"unknown routine {routine!r}")


def verify_built_graphs(n: int, nb: int) -> list[Finding]:
    """Stage 3: certify freshly built (unexecuted) graphs."""
    findings: list[Finding] = []
    for routine in ROUTINES:
        graph = TaskGraph()
        for task in build_tasks(routine, n, nb):
            graph.add(task)
        for f in verify_graph(graph):
            findings.append(
                Finding(f.pass_name, f.code, f"{routine}: {f.subject}", f.message)
            )
    return findings


def verify_executed_run(
    routine: str, n: int, nb: int, gpus: int, races: bool = True
) -> list[Finding]:
    """Stage 4 (per routine): run with the sanitizer on, then post-mortem."""
    platform = make_dgx1(gpus)
    rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
    tasks = build_tasks(routine, n, nb)
    # Register the partitions so flushes see them, then submit and drain.
    for task in tasks:
        rt.submit(task)
    rt.sync()
    findings = verify_graph(rt.executor.graph)
    findings += check_directory(rt.directory, platform)
    evictions = sum(int(c.stats()["evictions"]) for c in rt.caches.values())
    findings += lint_trace(rt.trace, platform, evictions=evictions)
    if races:
        findings += detect_races(rt.trace, rt.executor.graph)
    return [
        Finding(f.pass_name, f.code, f"{routine}: {f.subject}", f.message)
        for f in findings
    ]


def verify_streaming_run(
    routine: str, n: int, nb: int, gpus: int
) -> list[Finding]:
    """Stage 5: reclaiming streaming run; trace race check without a graph.

    ``retain_tasks=False`` retires every task on completion, so the detector
    sees transfers only — exactly the mode the reclamation-safety pass
    protects, exercised end to end.
    """
    platform = make_dgx1(gpus)
    rt = Runtime(
        platform,
        RuntimeOptions(
            verify_coherence=True, streaming=True, retain_tasks=False
        ),
    )
    rt.submit_stream(iter(build_tasks(routine, n, nb)))
    rt.sync()
    findings = check_directory(rt.directory, platform)
    findings += lint_trace(rt.trace, platform)
    findings += detect_races(rt.trace)
    return [
        Finding(
            f.pass_name, f.code, f"streaming-{routine}: {f.subject}", f.message
        )
        for f in findings
    ]


def verify_distribution_phase(n: int, nb: int, gpus: int) -> list[Finding]:
    """Stage 4 (extra): topology-aware trace rules on a distribution phase.

    A 2D block-cyclic upload is a queue-delay-free, kernel-free stream — the
    window in which the strict T006/T007 rules are exact.
    """
    platform = make_dgx1(gpus)
    rt = Runtime(platform, RuntimeOptions(verify_coherence=True))
    matrix = Matrix.meta(n, n, name="DIST")
    grid_p, grid_q = default_grid(gpus)
    dist = BlockCyclicDistribution(grid_p=grid_p, grid_q=grid_q)
    rt.distribute_2d_block_cyclic_async(matrix, nb, dist, upload=True)
    rt.sync()
    findings = lint_trace(rt.trace, platform, topology_aware=True)
    findings += check_directory(rt.directory, platform)
    return [
        Finding(f.pass_name, f.code, f"distribution: {f.subject}", f.message)
        for f in findings
    ]


def analysis_findings(
    src: Path, baseline_path: Path, callgraph_cache: Path | None
) -> list[Finding]:
    """Stage 2: determinism + reclamation findings not pinned by the baseline."""
    graph = load_or_build(src, callgraph_cache)
    detailed = lint_determinism(src, graph=graph)
    detailed += lint_reclamation(src)
    return new_findings(detailed, load_baseline(baseline_path))


#: static-pass subjects are ``relative/path.py:lineno``.
_SUBJECT_LINE = re.compile(r"^(?P<path>[\w./-]+\.py):(?P<line>\d+)$")


def github_annotations(findings: list[Finding], src: Path) -> list[str]:
    """One GitHub Actions workflow command per finding.

    Static findings (subject ``module.py:line``) annotate the exact file and
    line; dynamic findings become file-less error commands.
    """
    try:
        rel_src = src.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        rel_src = src
    out: list[str] = []
    for f in findings:
        # Workflow commands terminate at a newline; escape the message's.
        message = f"[{f.pass_name}:{f.code}] {f.message}".replace(
            "%", "%25"
        ).replace("\n", "%0A")
        match = _SUBJECT_LINE.match(f.subject)
        if match:
            path = (rel_src / match["path"]).as_posix()
            out.append(f"::error file={path},line={match['line']}::{message}")
        else:
            subject = f.subject.replace("%", "%25").replace("\n", "%0A")
            out.append(f"::error title={f.pass_name} {f.code}::{subject}: {message}")
    return out


def findings_json(findings: list[Finding], exit_code: int) -> dict:
    """The ``--json`` document: stable schema for CI tooling."""
    return {
        "schema": "repro.verify/1",
        "exit": exit_code,
        "count": len(findings),
        "findings": [
            {
                "pass": f.pass_name,
                "code": f.code,
                "subject": f.subject,
                "message": f.message,
            }
            for f in findings
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Static and dynamic verification of the repro stack.",
    )
    parser.add_argument(
        "--src",
        type=Path,
        default=Path(repro.__file__).parent,
        help="package root to lint (default: the installed repro package)",
    )
    parser.add_argument("--n", type=int, default=256, help="matrix order")
    parser.add_argument("--nb", type=int, default=64, help="tile size")
    parser.add_argument("--gpus", type=int, default=4, help="simulated GPUs")
    parser.add_argument("--skip-lint", action="store_true")
    parser.add_argument("--skip-determinism", action="store_true")
    parser.add_argument("--skip-graph", action="store_true")
    parser.add_argument("--skip-runtime", action="store_true")
    parser.add_argument("--skip-races", action="store_true")
    parser.add_argument(
        "--fast", action="store_true", help="smaller problems (CI-friendly)"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="fingerprint baseline for the determinism stage "
        "(default: <src>/verify/determinism_baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit",
    )
    parser.add_argument(
        "--callgraph-cache",
        type=Path,
        default=None,
        help="JSON cache for the call-graph build (CI caches this file)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write findings as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="emit GitHub Actions ::error annotations per finding",
    )
    args = parser.parse_args(argv)
    n, nb = (128, 32) if args.fast else (args.n, args.nb)
    if n <= 0 or nb <= 0 or args.gpus <= 0:
        parser.error(f"--n, --nb and --gpus must be positive (got {n}, {nb}, {args.gpus})")
    if not args.src.is_dir():
        parser.error(f"--src {args.src} is not a directory")
    baseline_path = args.baseline or args.src / "verify" / "determinism_baseline.json"

    if args.write_baseline:
        graph = load_or_build(args.src, args.callgraph_cache)
        detailed = lint_determinism(args.src, graph=graph)
        detailed += lint_reclamation(args.src)
        write_baseline(baseline_path, detailed)
        print(f"baseline: {len(detailed)} fingerprint(s) -> {baseline_path}")
        return 0

    findings: list[Finding] = []
    if not args.skip_lint:
        lint = lint_path(args.src)
        print(f"lint: {len(lint)} finding(s) over {args.src}")
        findings += lint
    if not args.skip_determinism:
        analysis = analysis_findings(
            args.src, baseline_path, args.callgraph_cache
        )
        print(
            f"determinism: {len(analysis)} unwaivered finding(s) not in "
            f"baseline ({baseline_path.name})"
        )
        findings += analysis
    if not args.skip_graph:
        graph_findings = verify_built_graphs(n, nb)
        print(
            f"graph: {len(graph_findings)} finding(s) over {len(ROUTINES)} "
            f"built graphs (n={n}, nb={nb})"
        )
        findings += graph_findings
    if not args.skip_runtime:
        runtime: list[Finding] = []
        for routine in ROUTINES:
            runtime += verify_executed_run(
                routine, n, nb, args.gpus, races=not args.skip_races
            )
        runtime += verify_distribution_phase(n, nb, args.gpus)
        print(
            f"runtime: {len(runtime)} finding(s) over {len(ROUTINES)} "
            f"sanitized runs + distribution phase ({args.gpus} GPUs)"
        )
        findings += runtime
        if not args.skip_races:
            streaming = verify_streaming_run("gemm", n, nb, args.gpus)
            streaming += verify_streaming_run("composition", n, nb, args.gpus)
            print(
                f"streaming: {len(streaming)} finding(s) over 2 reclaiming "
                "streamed runs"
            )
            findings += streaming

    exit_code = 1 if findings else 0
    if args.json is not None:
        document = json.dumps(findings_json(findings, exit_code), indent=2)
        if str(args.json) == "-":
            print(document)
        else:
            args.json.write_text(document + "\n", encoding="utf-8")
    if args.github:
        for line in github_annotations(findings, args.src):
            print(line)
    if findings:
        print(render_report(findings))
        return exit_code
    print("OK: all verification passes are clean")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
