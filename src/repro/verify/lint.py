"""Project-specific AST lint rules.

Generic linters cannot know this codebase's invariants; these rules encode
them and run over ``src/`` from the CLI (``python -m repro.verify``) and CI:

* **L001 — wall-clock in virtual time** (``sim/``, ``runtime/``): the
  simulator owns time; calling ``time.time``/``time.monotonic``/
  ``time.perf_counter``/``time.process_time`` or ``datetime.now``/
  ``datetime.utcnow`` inside the engine or the runtime would leak host time
  into virtual time and break determinism (every benchmark figure depends on
  bit-identical replays).
* **L002 — salted hashing** (``sim/``, ``runtime/``, ``memory/``): builtin
  ``hash()`` is salted per process (``PYTHONHASHSEED``); any decision keyed
  on it (e.g. pseudo-random source selection over ``TileKey``\\ s) would vary
  across processes.  The transfer manager's ``_mix`` exists precisely to
  avoid this.
* **L003 — hot-path dataclasses declare ``slots=True``** (``sim/``,
  ``runtime/``, ``memory/``): tasks, accesses, tiles, events, cache and
  directory entries are allocated millions of times in large runs; a
  ``__dict__`` per instance roughly doubles their memory and slows attribute
  access.
* **L004 — ``Task.state`` mutated outside the owners**: only
  ``runtime/executor.py`` and ``runtime/dataflow.py`` implement the task
  lifecycle; any other module assigning ``.state`` bypasses the readiness
  protocol the race detector certifies.
* **L005 — unused private methods** (``sim/``, ``runtime/``, ``memory/``):
  a ``_method`` never referenced anywhere in the package is dead code (the
  executor's ``_wake`` rotted this way once its caller was refactored away).
  This is a *tree-wide* rule — it only runs from :func:`lint_path`, because
  subclass hooks are routinely defined in one module and invoked from
  another (``Scheduler`` subclasses override methods ``base.py`` calls), so
  per-file analysis would drown in false positives.

Rules are path-scoped relative to the package root, so tests can lint
synthetic trees: a file ``<root>/sim/x.py`` is treated as part of ``sim/``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.verify.base import Finding

_PASS = "lint"

#: call roots considered wall clocks (module attribute chains, dotted).
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.process_time",
    "time.time_ns",
    "time.monotonic_ns",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
#: bare names that count as wall clocks when imported directly
#: (``from time import time``).
_WALL_CLOCK_NAMES = {"time", "monotonic", "perf_counter", "process_time"}

_VIRTUAL_TIME_SCOPES = ("sim", "runtime")
_HASH_SCOPES = ("sim", "runtime", "memory")
_SLOTS_SCOPES = ("sim", "runtime", "memory")
_UNUSED_SCOPES = ("sim", "runtime", "memory")
_STATE_OWNERS = {("runtime", "executor.py"), ("runtime", "dataflow.py"),
                 ("runtime", "task.py")}


def _dotted(node: ast.expr) -> str | None:
    """Render an attribute chain (``a.b.c``) as a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _wall_clock_imports(tree: ast.Module) -> set[str]:
    """Names bound by ``from time import ...`` that denote wall clocks."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_NAMES:
                    names.add(alias.asname or alias.name)
    return names


def _is_dataclass_decorator(dec: ast.expr) -> ast.Call | str | None:
    """Return the decorator call (or the bare name) if it is a dataclass."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    dotted = _dotted(target)
    if dotted in ("dataclass", "dataclasses.dataclass"):
        return dec if isinstance(dec, ast.Call) else dotted
    return None


def _in_scope(rel_parts: tuple[str, ...], scopes: tuple[str, ...]) -> bool:
    return bool(rel_parts) and rel_parts[0] in scopes


def lint_source(source: str, rel_path: Path) -> list[Finding]:
    """Lint one module; ``rel_path`` is relative to the package root."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=str(rel_path))
    except SyntaxError as exc:
        return [
            Finding(_PASS, "L000", f"{rel_path}:{exc.lineno}", f"syntax error: {exc.msg}")
        ]
    parts = rel_path.parts
    wall_clock_names = _wall_clock_imports(tree)

    for node in ast.walk(tree):
        where = f"{rel_path}:{getattr(node, 'lineno', 0)}"
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if _in_scope(parts, _VIRTUAL_TIME_SCOPES):
                bare_clock = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in wall_clock_names
                )
                if (dotted in _WALL_CLOCK_CALLS) or bare_clock:
                    findings.append(
                        Finding(
                            _PASS,
                            "L001",
                            where,
                            f"wall-clock call {dotted or node.func.id}() inside "
                            "a virtual-time module breaks determinism; use "
                            "the simulator clock",
                        )
                    )
            if (
                _in_scope(parts, _HASH_SCOPES)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                findings.append(
                    Finding(
                        _PASS,
                        "L002",
                        where,
                        "builtin hash() is salted per process; derive "
                        "deterministic integers arithmetically (see "
                        "transfer._mix)",
                    )
                )
        elif isinstance(node, ast.ClassDef) and _in_scope(parts, _SLOTS_SCOPES):
            for dec in node.decorator_list:
                found = _is_dataclass_decorator(dec)
                if found is None:
                    continue
                slots_true = False
                if isinstance(found, ast.Call):
                    for kw in found.keywords:
                        if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                            slots_true = bool(kw.value.value)
                if not slots_true:
                    findings.append(
                        Finding(
                            _PASS,
                            "L003",
                            f"{rel_path}:{node.lineno}",
                            f"hot-path dataclass {node.name} must declare "
                            "slots=True",
                        )
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            if len(parts) >= 2 and (parts[-2], parts[-1]) in _STATE_OWNERS:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "state":
                    findings.append(
                        Finding(
                            _PASS,
                            "L004",
                            where,
                            "Task.state may only be mutated by "
                            "runtime/executor.py and runtime/dataflow.py "
                            "(the readiness protocol owners)",
                        )
                    )
    return findings


def _private_method_defs(
    tree: ast.Module, rel_path: Path
) -> list[tuple[str, str, str]]:
    """``(name, class, where)`` for every non-dunder ``_method`` definition."""
    defs: list[tuple[str, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = item.name
            if not name.startswith("_") or name.startswith("__"):
                continue
            defs.append((name, node.name, f"{rel_path}:{item.lineno}"))
    return defs


def _attribute_uses(tree: ast.Module) -> set[str]:
    """Every attribute name referenced in the module (any context).

    ``self._foo()``, ``other._foo``, and ``cls._foo = x`` all count; a
    ``def _foo`` does not.  String constants are also scanned so dynamic
    dispatch via ``getattr(obj, "_foo")`` keeps a method alive.
    """
    uses: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            uses.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.startswith("_") and node.value.isidentifier():
                uses.add(node.value)
    return uses


def _lint_unused_private_methods(
    trees: list[tuple[Path, ast.Module]]
) -> list[Finding]:
    """L005 over the whole package tree (two-phase: collect, then flag).

    Definitions are collected only from :data:`_UNUSED_SCOPES`; *usages* are
    collected from every module, so a hook defined in ``runtime/`` but
    invoked from ``libraries/`` is not a false positive.
    """
    defs: list[tuple[str, str, str]] = []
    uses: set[str] = set()
    for rel, tree in trees:
        uses |= _attribute_uses(tree)
        if _in_scope(rel.parts, _UNUSED_SCOPES):
            defs += _private_method_defs(tree, rel)
    return [
        Finding(
            _PASS,
            "L005",
            where,
            f"private method {cls}.{name} is never referenced anywhere in "
            "the package (dead code); delete it or call it",
        )
        for name, cls, where in defs
        if name not in uses
    ]


def lint_path(root: Path) -> list[Finding]:
    """Lint every ``*.py`` under ``root`` (the package directory).

    Per-file rules (L000–L004) run module by module; the tree-wide L005
    pass runs once over all parsed modules at the end.
    """
    findings: list[Finding] = []
    trees: list[tuple[Path, ast.Module]] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        source = path.read_text(encoding="utf-8")
        findings += lint_source(source, rel)
        try:
            trees.append((rel, ast.parse(source, filename=str(rel))))
        except SyntaxError:
            continue  # already reported as L000 by lint_source
    findings += _lint_unused_private_methods(trees)
    return findings
