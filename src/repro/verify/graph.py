"""Task-graph race & deadlock detector.

:class:`~repro.runtime.dataflow.TaskGraph` derives dependencies from tile
access modes.  A bug there (a forgotten write-after-read edge, a duplicate
successor entry, a miscounted predecessor) silently produces racy schedules
that still *complete* — the makespans are just wrong.  This pass recomputes
the conflict relation from first principles and certifies the graph against
it:

* **structure** — every successor is a graph member, no self-dependencies, no
  duplicate successor entries, every edge goes forward in submission order
  (submission order must be a topological order), and a Kahn sweep proves the
  successor relation acyclic even for graphs whose ``tasks`` list was
  tampered with;
* **counters** — each task's ``unfinished_predecessors`` equals the number of
  its distinct not-yet-done predecessors (the executor's readiness protocol
  relies on this exactly);
* **races** — replaying each tile's access sequence, every RAW, WAR and WAW
  conflicting pair must be *ordered*: either a dependency path connects them
  (reachability over the DAG, computed once with per-task bitsets in
  submission/topological order — not an all-pairs search), or the earlier
  task finished before the later one started (predecessors that were already
  ``done`` at submission time leave no edge behind; execution times prove the
  ordering instead).

Checking only each accessor against the tile's *current* writer/reader window
(the same interval the builder maintains) is sufficient: ordering of the
remaining conflicting pairs follows by transitivity of paths and of virtual
time.
"""

from __future__ import annotations

from repro.runtime.dataflow import TaskGraph
from repro.runtime.task import Task
from repro.verify.base import Finding, raise_on_findings

_PASS = "graph"

#: tolerance when comparing virtual times of conflicting kernels.
_EPS = 1e-12


def _finding(code: str, subject: str, message: str) -> Finding:
    return Finding(_PASS, code, subject, message)


def _structure_findings(graph: TaskGraph) -> list[Finding]:
    """Self-deps, unknown/duplicate successors, backward edges, cycles."""
    findings: list[Finding] = []
    position = {id(t): idx for idx, t in enumerate(graph.tasks)}
    for task in graph.tasks:
        seen: set[int] = set()
        for succ in task.successors:
            if succ is task:
                findings.append(
                    _finding("G010", f"Task#{task.uid}", "task depends on itself")
                )
                continue
            if id(succ) not in position:
                findings.append(
                    _finding(
                        "G011",
                        f"Task#{task.uid}->Task#{succ.uid}",
                        "successor is not a member of the graph",
                    )
                )
                continue
            if id(succ) in seen:
                findings.append(
                    _finding(
                        "G012",
                        f"Task#{task.uid}->Task#{succ.uid}",
                        "duplicate successor entry (would double-decrement "
                        "the predecessor counter)",
                    )
                )
            seen.add(id(succ))
            if position[id(succ)] <= position[id(task)]:
                findings.append(
                    _finding(
                        "G013",
                        f"Task#{task.uid}->Task#{succ.uid}",
                        "edge violates submission order (cycle or reordered "
                        "submission)",
                    )
                )
    # Kahn's algorithm over the successor relation: catches cycles even when
    # the backward-edge check above is fooled (e.g. a tasks list reordered
    # after tampering).
    indegree = {id(t): 0 for t in graph.tasks}
    for task in graph.tasks:
        for succ in task.successors:
            if id(succ) in indegree and succ is not task:
                indegree[id(succ)] += 1
    frontier = [t for t in graph.tasks if indegree[id(t)] == 0]
    visited = 0
    while frontier:
        task = frontier.pop()
        visited += 1
        for succ in task.successors:
            if id(succ) not in indegree or succ is task:
                continue
            indegree[id(succ)] -= 1
            if indegree[id(succ)] == 0:
                frontier.append(succ)
    if visited < len(graph.tasks):
        findings.append(
            _finding(
                "G014",
                "graph",
                f"dependency cycle: {len(graph.tasks) - visited} task(s) "
                "unreachable by a topological sweep (deadlock at runtime)",
            )
        )
    return findings


def _counter_findings(graph: TaskGraph) -> list[Finding]:
    """``unfinished_predecessors`` must match the actual edge set."""
    findings: list[Finding] = []
    pending: dict[int, int] = {id(t): 0 for t in graph.tasks}
    for task in graph.tasks:
        counted: set[int] = set()
        for succ in task.successors:
            if succ is task or id(succ) not in pending or id(succ) in counted:
                continue
            counted.add(id(succ))
            if task.state != "done":
                pending[id(succ)] += 1
    for task in graph.tasks:
        expected = pending[id(task)]
        if task.state == "done" and expected > 0:
            findings.append(
                _finding(
                    "G020",
                    f"Task#{task.uid}",
                    f"task is done but {expected} predecessor(s) are not "
                    "(executed before its dependencies)",
                )
            )
        if task.unfinished_predecessors != expected:
            findings.append(
                _finding(
                    "G021",
                    f"Task#{task.uid}",
                    f"unfinished_predecessors={task.unfinished_predecessors} "
                    f"but {expected} unfinished predecessor edge(s) exist",
                )
            )
    return findings


def _reachability(tasks: list[Task]) -> dict[int, int]:
    """Bitset of tasks reachable from each task (index bits, id() keyed).

    One reverse sweep over the submission order; ``reach[t]`` has bit ``i``
    set iff ``tasks[i]`` is reachable from ``t`` through successor edges.
    Only forward edges are followed — structural findings cover the rest.
    """
    position = {id(t): idx for idx, t in enumerate(tasks)}
    reach: dict[int, int] = {}
    for task in reversed(tasks):
        mask = 0
        my_pos = position[id(task)]
        for succ in task.successors:
            pos = position.get(id(succ))
            if pos is None or pos <= my_pos:
                continue
            mask |= (1 << pos) | reach.get(id(succ), 0)
        reach[id(task)] = mask
    return reach


def _ordered(
    earlier: Task,
    later: Task,
    reach: dict[int, int],
    position: dict[int, int],
) -> bool:
    """Is the conflicting pair provably ordered?"""
    pos = position.get(id(later))
    if pos is not None and reach.get(id(earlier), 0) >> pos & 1:
        return True  # a dependency path orders the pair
    # No path: legal only when `earlier` was already done at submission time
    # of `later` (the builder drops edges to done predecessors).  Execution
    # must then show `earlier` finished before `later` started.
    if earlier.state != "done":
        return False
    if later.state in ("running", "done"):
        return earlier.end_time <= later.start_time + _EPS
    return True  # later has not started; ordering cannot be violated yet


def _race_findings(graph: TaskGraph) -> list[Finding]:
    """Replay per-tile access sequences and certify conflict ordering."""
    findings: list[Finding] = []
    position = {id(t): idx for idx, t in enumerate(graph.tasks)}
    reach = _reachability(graph.tasks)

    class _Window:
        __slots__ = ("last_writer", "readers")

        def __init__(self) -> None:
            self.last_writer: Task | None = None
            self.readers: list[Task] = []

    windows: dict[object, _Window] = {}
    for task in graph.tasks:
        # Dedupe per-task tile accesses, merging modes: a task that reads and
        # writes one tile (or lists it twice) conflicts with *other* tasks
        # once, with the union of its modes, and never with itself.
        merged: dict[object, list[bool]] = {}
        for access in task.accesses:
            entry = merged.setdefault(access.tile.key, [False, False])
            entry[0] |= access.reads
            entry[1] |= access.writes
        for key, (_reads, writes) in merged.items():
            window = windows.setdefault(key, _Window())
            conflicts: list[tuple[Task, str]] = []
            if window.last_writer is not None and window.last_writer is not task:
                conflicts.append(
                    (window.last_writer, "RAW" if not writes else "WAW")
                )
            if writes:
                conflicts.extend(
                    (r, "WAR") for r in window.readers if r is not task
                )
            for pred, kind in conflicts:
                if not _ordered(pred, task, reach, position):
                    findings.append(
                        _finding(
                            "G001",
                            f"Task#{pred.uid}->Task#{task.uid}",
                            f"{kind} conflict on {key!r} is not ordered by any "
                            "dependency path (data race)",
                        )
                    )
            if writes:
                window.last_writer = task
                window.readers = []
            else:
                window.readers.append(task)
    return findings


def verify_graph(graph: TaskGraph) -> list[Finding]:
    """Run every graph check; returns the (possibly empty) findings list."""
    findings = _structure_findings(graph)
    findings += _counter_findings(graph)
    findings += _race_findings(graph)
    return findings


def assert_graph_ok(graph: TaskGraph, context: str = "task graph") -> None:
    """Raise :class:`~repro.errors.VerificationError` on any graph finding."""
    raise_on_findings(verify_graph(graph), context)
