"""Dataflow dependency construction.

XKaapi computes true data-flow dependencies from the access modes of tasks in
program (submission) order — "any sequence of user function calls generating
tasks would allow to define point-to-point synchronization between tasks among
different function calls" (paper §IV-F).  :class:`TaskGraph` implements that
rule set per tile:

* a **reader** depends on the last writer of the tile;
* a **writer** depends on the last writer *and* on every reader since then
  (write-after-read), then becomes the new last writer and clears the reader
  set.

Because dependencies cross routine boundaries, submitting TRSM tasks followed
by GEMM tasks composes them automatically — the property the composition
benchmark (Fig. 8/9) measures.

The graph does not need the whole DAG resident, exactly like XKaapi: the
per-tile window (last writer + readers since) is the only state dependency
derivation ever consults, so tasks can be *added while earlier ones already
executed* (streaming submission) and *retired once done* (their ``successors``
and ``accesses`` dropped, their ``_TileHistory`` references nulled).  Retained
mode (``retain_tasks=True``, the default) additionally keeps the full task
list for debug passes — :meth:`validate_acyclic`, the verification subsystem,
and :meth:`critical_path_priorities` (which DMDAS needs, so DMDAS runs
require retained mode).
"""

from __future__ import annotations

import dataclasses

from repro.errors import TaskGraphError
from repro.memory.tile import TileKey
from repro.runtime.task import Task


@dataclasses.dataclass(slots=True)
class _TileHistory:
    """Per-tile dependency window.

    ``last_writer_uid`` outlives ``last_writer``: retirement nulls the task
    reference (so finished tasks can be collected) but keeps the uid, which
    is all the dependency rule needs for a *done* predecessor — dep dedupe
    and edge accounting stay bit-identical to the retain-everything path.
    ``readers_since_write`` maps reader uid -> task (or ``None`` once
    retired), in insertion order, for the same reason.
    """

    last_writer: Task | None = None
    last_writer_uid: int = -1
    readers_since_write: dict[int, Task | None] = dataclasses.field(
        default_factory=dict
    )


class TaskGraph:
    """A DAG of tasks built incrementally from access declarations."""

    def __init__(self, retain_tasks: bool = True) -> None:
        self._history: dict[TileKey, _TileHistory] = {}
        #: retained mode keeps every task for debug passes; reclaiming mode
        #: only keeps counters and drops a task's references once it is done.
        self.retain_tasks = retain_tasks
        self._tasks: list[Task] = []
        #: dep-dedupe scratch, reused across :meth:`add` calls (the graph is
        #: built single-threaded and the set never escapes the call).
        self._deps_buf: set[int] = set()
        self._added = 0
        self._edges = 0
        self._done = 0
        #: tasks seen entering the "ready" state, pruned lazily by
        #: :meth:`ready_tasks`; a task becomes ready at most once, so the
        #: buffer is append-only between queries.  Maintained in retained
        #: mode only — nothing on the execution path consumes it, and in
        #: reclaiming mode it would pin every task ever submitted.
        self._ready_buffer: list[Task] = []

    # -------------------------------------------------------------- building

    def add(self, task: Task) -> Task:
        """Insert ``task``, deriving dependencies from its accesses.

        The dependency rule is inlined (no per-predecessor helper call): the
        graph build runs once per task of every run, and closure dispatch per
        edge was a visible slice of the submission phase.  Semantics per
        predecessor: dedupe on uid (a task never depends on itself), count the
        edge, and register a pending-count successor link unless the
        predecessor already finished.
        """
        if task.state != "created":
            raise TaskGraphError(f"{task!r} already belongs to a graph")
        deps = self._deps_buf  # uids, to dedupe multi-tile dependencies
        deps.clear()
        uid = task.uid
        edges = 0
        unfinished = 0

        history = self._history
        for access in task.accesses:
            key = access.tile.key
            hist = history.get(key)
            if hist is None:
                hist = history[key] = _TileHistory()
            wuid = hist.last_writer_uid
            if access.writes:
                if wuid >= 0 and wuid != uid and wuid not in deps:
                    deps.add(wuid)
                    edges += 1
                    writer = hist.last_writer
                    if writer is not None and writer.state != "done":
                        writer.successors.append(task)
                        unfinished += 1
                readers = hist.readers_since_write
                if readers:  # empty for write-chain tiles — skip the view
                    for ruid, reader in readers.items():
                        if ruid != uid and ruid not in deps:
                            deps.add(ruid)
                            edges += 1
                            if reader is not None and reader.state != "done":
                                reader.successors.append(task)
                                unfinished += 1
                    readers.clear()
                # History updated in the same pass: the uid guards above
                # already exclude self-dependencies, so a task touching one
                # tile twice sees its own earlier access filtered out rather
                # than deferred — same edges, one traversal.
                hist.last_writer = task
                hist.last_writer_uid = uid
            else:
                if wuid >= 0 and wuid != uid and wuid not in deps:
                    deps.add(wuid)
                    edges += 1
                    writer = hist.last_writer
                    if writer is not None and writer.state != "done":
                        writer.successors.append(task)
                        unfinished += 1
                hist.readers_since_write[uid] = task
        self._edges += edges
        task.unfinished_predecessors += unfinished
        if task.unfinished_predecessors == 0:
            task.state = "ready"
            if self.retain_tasks:
                self._ready_buffer.append(task)
        else:
            task.state = "waiting"
        self._added += 1
        if self.retain_tasks:
            self._tasks.append(task)
        return task

    # -------------------------------------------------------------- queries

    @property
    def tasks(self) -> list[Task]:
        """Every task ever added, in submission order (retained mode only)."""
        if not self.retain_tasks:
            raise TaskGraphError(
                "TaskGraph(retain_tasks=False) reclaims finished tasks and "
                "keeps no task list; use num_tasks/num_done, or build the "
                "graph in retained mode for debug passes"
            )
        return self._tasks

    @property
    def num_tasks(self) -> int:
        """Number of tasks ever added (cheap; works in both modes)."""
        return self._added

    @property
    def num_done(self) -> int:
        return self._done

    @property
    def num_edges(self) -> int:
        return self._edges

    def ready_tasks(self) -> list[Task]:
        """Tasks currently in the "ready" state, in became-ready order.

        Amortized O(ready): the buffer only ever receives a task once (when
        it becomes ready) and entries that moved on are dropped here, instead
        of rescanning every task in the graph per query.  The pruned buffer
        *is* the returned list — one fresh list per query, no second copy —
        so callers must treat it as a read-only snapshot.
        """
        if not self.retain_tasks:
            raise TaskGraphError(
                "ready_tasks() requires retain_tasks=True (the reclaiming "
                "graph keeps no ready buffer; the executor tracks readiness "
                "incrementally through complete())"
            )
        still_ready = [t for t in self._ready_buffer if t.state == "ready"]
        self._ready_buffer = still_ready
        return still_ready

    def last_writer(self, key: TileKey) -> Task | None:
        hist = self._history.get(key)
        return hist.last_writer if hist else None

    def complete(self, task: Task) -> list[Task]:
        """Mark ``task`` done; return successors that became ready."""
        if task.state == "done":
            raise TaskGraphError(f"{task!r} completed twice")
        task.state = "done"
        self._done += 1
        newly_ready: list[Task] = []
        for succ in task.successors:
            succ.unfinished_predecessors -= 1
            if succ.unfinished_predecessors < 0:
                raise TaskGraphError(f"{succ!r}: negative predecessor count")
            if succ.unfinished_predecessors == 0 and succ.state == "waiting":
                succ.state = "ready"
                newly_ready.append(succ)
        if self.retain_tasks:
            self._ready_buffer.extend(newly_ready)
        else:
            self._retire(task)
        return newly_ready

    def _retire(self, task: Task) -> None:
        """Drop every graph-held reference to a finished task.

        Called only in reclaiming mode.  The per-tile windows keep the uid
        (dependency derivation for *future* streamed tasks still dedupes and
        counts edges exactly as if the task were resident) but lose the
        object reference, and the task sheds its own fan-out so a retired
        region of the DAG is collectible as soon as the executor's in-flight
        events release it.
        """
        history = self._history
        uid = task.uid
        for access in task.accesses:
            hist = history.get(access.tile.key)
            if hist is None:
                continue
            if access.writes:
                if hist.last_writer is task:
                    hist.last_writer = None
            if access.reads:
                readers = hist.readers_since_write
                if readers.get(uid) is task:
                    readers[uid] = None
        task.successors.clear()
        task.accesses = ()
        task.access_keys = ()
        task.write_accesses = ()
        task.output_tile = None

    def all_done(self) -> bool:
        return self._done == self._added

    def critical_path_priorities(self) -> None:
        """Assign each task a priority = longest flop path to a sink.

        Used by priority-aware schedulers (DMDAS); reverse-topological sweep
        over the submission order, which is already a topological order.
        Requires retained mode: the sweep needs every task and its successor
        list resident, which is exactly what reclamation drops.
        """
        for task in reversed(self.tasks):
            best = 0
            for succ in task.successors:
                best = max(best, succ.priority)
            task.priority = best + max(1, int(task.flops // 1e6))

    def validate_acyclic(self) -> None:
        """Sanity check: submission order must be a topological order.

        Retained mode only (it walks the materialized task list).
        """
        position = {t.uid: idx for idx, t in enumerate(self.tasks)}
        for t in self.tasks:
            for succ in t.successors:
                if position[succ.uid] <= position[t.uid]:
                    raise TaskGraphError(
                        f"edge {t.uid}->{succ.uid} violates submission order"
                    )
