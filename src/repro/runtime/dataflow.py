"""Dataflow dependency construction.

XKaapi computes true data-flow dependencies from the access modes of tasks in
program (submission) order — "any sequence of user function calls generating
tasks would allow to define point-to-point synchronization between tasks among
different function calls" (paper §IV-F).  :class:`TaskGraph` implements that
rule set per tile:

* a **reader** depends on the last writer of the tile;
* a **writer** depends on the last writer *and* on every reader since then
  (write-after-read), then becomes the new last writer and clears the reader
  set.

Because dependencies cross routine boundaries, submitting TRSM tasks followed
by GEMM tasks composes them automatically — the property the composition
benchmark (Fig. 8/9) measures.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TaskGraphError
from repro.memory.tile import TileKey
from repro.runtime.task import Task


@dataclasses.dataclass(slots=True)
class _TileHistory:
    last_writer: Task | None = None
    readers_since_write: list[Task] = dataclasses.field(default_factory=list)


class TaskGraph:
    """A DAG of tasks built incrementally from access declarations."""

    def __init__(self) -> None:
        self._history: dict[TileKey, _TileHistory] = {}
        self.tasks: list[Task] = []
        self._edges = 0

    # -------------------------------------------------------------- building

    def add(self, task: Task) -> Task:
        """Insert ``task``, deriving dependencies from its accesses."""
        if task.state != "created":
            raise TaskGraphError(f"{task!r} already belongs to a graph")
        deps: set[int] = set()  # uids, to dedupe multi-tile dependencies

        def depend_on(pred: Task) -> None:
            if pred.uid == task.uid or pred.uid in deps:
                return
            deps.add(pred.uid)
            self._edges += 1
            if pred.state == "done":
                return  # already finished; no pending count
            pred.successors.append(task)
            task.unfinished_predecessors += 1

        for access in task.accesses:
            hist = self._history.setdefault(access.tile.key, _TileHistory())
            if access.writes:
                if hist.last_writer is not None:
                    depend_on(hist.last_writer)
                for reader in hist.readers_since_write:
                    depend_on(reader)
            elif hist.last_writer is not None:
                depend_on(hist.last_writer)
        # Second pass: update histories (after dependencies are computed so a
        # task touching one tile twice does not depend on itself).
        for access in task.accesses:
            hist = self._history[access.tile.key]
            if access.writes:
                hist.last_writer = task
                hist.readers_since_write.clear()
            else:
                hist.readers_since_write.append(task)
        task.state = "ready" if task.unfinished_predecessors == 0 else "waiting"
        self.tasks.append(task)
        return task

    # -------------------------------------------------------------- queries

    @property
    def num_edges(self) -> int:
        return self._edges

    def ready_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.state == "ready"]

    def last_writer(self, key: TileKey) -> Task | None:
        hist = self._history.get(key)
        return hist.last_writer if hist else None

    def complete(self, task: Task) -> list[Task]:
        """Mark ``task`` done; return successors that became ready."""
        if task.state == "done":
            raise TaskGraphError(f"{task!r} completed twice")
        task.state = "done"
        newly_ready: list[Task] = []
        for succ in task.successors:
            succ.unfinished_predecessors -= 1
            if succ.unfinished_predecessors < 0:
                raise TaskGraphError(f"{succ!r}: negative predecessor count")
            if succ.unfinished_predecessors == 0 and succ.state == "waiting":
                succ.state = "ready"
                newly_ready.append(succ)
        return newly_ready

    def all_done(self) -> bool:
        return all(t.state == "done" for t in self.tasks)

    def critical_path_priorities(self) -> None:
        """Assign each task a priority = longest flop path to a sink.

        Used by priority-aware schedulers (DMDAS); reverse-topological sweep
        over the submission order, which is already a topological order.
        """
        for task in reversed(self.tasks):
            best = 0
            for succ in task.successors:
                best = max(best, succ.priority)
            task.priority = best + max(1, int(task.flops // 1e6))

    def validate_acyclic(self) -> None:
        """Sanity check: submission order must be a topological order."""
        position = {t.uid: idx for idx, t in enumerate(self.tasks)}
        for t in self.tasks:
            for succ in t.successors:
                if position[succ.uid] <= position[t.uid]:
                    raise TaskGraphError(
                        f"edge {t.uid}->{succ.uid} violates submission order"
                    )
