"""Dataflow dependency construction.

XKaapi computes true data-flow dependencies from the access modes of tasks in
program (submission) order — "any sequence of user function calls generating
tasks would allow to define point-to-point synchronization between tasks among
different function calls" (paper §IV-F).  :class:`TaskGraph` implements that
rule set per tile:

* a **reader** depends on the last writer of the tile;
* a **writer** depends on the last writer *and* on every reader since then
  (write-after-read), then becomes the new last writer and clears the reader
  set.

Because dependencies cross routine boundaries, submitting TRSM tasks followed
by GEMM tasks composes them automatically — the property the composition
benchmark (Fig. 8/9) measures.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TaskGraphError
from repro.memory.tile import TileKey
from repro.runtime.task import Task


@dataclasses.dataclass(slots=True)
class _TileHistory:
    last_writer: Task | None = None
    readers_since_write: list[Task] = dataclasses.field(default_factory=list)


class TaskGraph:
    """A DAG of tasks built incrementally from access declarations."""

    def __init__(self) -> None:
        self._history: dict[TileKey, _TileHistory] = {}
        self.tasks: list[Task] = []
        self._edges = 0
        self._done = 0
        #: tasks seen entering the "ready" state, pruned lazily by
        #: :meth:`ready_tasks`; a task becomes ready at most once, so the
        #: buffer is append-only between queries.
        self._ready_buffer: list[Task] = []

    # -------------------------------------------------------------- building

    def add(self, task: Task) -> Task:
        """Insert ``task``, deriving dependencies from its accesses.

        The dependency rule is inlined (no per-predecessor helper call): the
        graph build runs once per task of every run, and closure dispatch per
        edge was a visible slice of the submission phase.  Semantics per
        predecessor: dedupe on uid (a task never depends on itself), count the
        edge, and register a pending-count successor link unless the
        predecessor already finished.
        """
        if task.state != "created":
            raise TaskGraphError(f"{task!r} already belongs to a graph")
        deps: set[int] = set()  # uids, to dedupe multi-tile dependencies
        uid = task.uid
        edges = 0
        unfinished = 0

        history = self._history
        hists = []
        for access in task.accesses:
            key = access.tile.key
            hist = history.get(key)
            if hist is None:
                hist = history[key] = _TileHistory()
            hists.append(hist)
            writer = hist.last_writer
            if access.writes:
                if writer is not None and writer.uid != uid and writer.uid not in deps:
                    deps.add(writer.uid)
                    edges += 1
                    if writer.state != "done":
                        writer.successors.append(task)
                        unfinished += 1
                for reader in hist.readers_since_write:
                    r = reader.uid
                    if r != uid and r not in deps:
                        deps.add(r)
                        edges += 1
                        if reader.state != "done":
                            reader.successors.append(task)
                            unfinished += 1
            elif writer is not None and writer.uid != uid and writer.uid not in deps:
                deps.add(writer.uid)
                edges += 1
                if writer.state != "done":
                    writer.successors.append(task)
                    unfinished += 1
        self._edges += edges
        task.unfinished_predecessors += unfinished
        # Second pass: update histories (after dependencies are computed so a
        # task touching one tile twice does not depend on itself).
        for access, hist in zip(task.accesses, hists):
            if access.writes:
                hist.last_writer = task
                hist.readers_since_write.clear()
            else:
                hist.readers_since_write.append(task)
        if task.unfinished_predecessors == 0:
            task.state = "ready"
            self._ready_buffer.append(task)
        else:
            task.state = "waiting"
        self.tasks.append(task)
        return task

    # -------------------------------------------------------------- queries

    @property
    def num_edges(self) -> int:
        return self._edges

    def ready_tasks(self) -> list[Task]:
        """Tasks currently in the "ready" state, in became-ready order.

        Amortized O(ready): the buffer only ever receives a task once (when
        it becomes ready) and entries that moved on are dropped here, instead
        of rescanning every task in the graph per query.
        """
        still_ready = [t for t in self._ready_buffer if t.state == "ready"]
        self._ready_buffer = still_ready
        return list(still_ready)

    def last_writer(self, key: TileKey) -> Task | None:
        hist = self._history.get(key)
        return hist.last_writer if hist else None

    def complete(self, task: Task) -> list[Task]:
        """Mark ``task`` done; return successors that became ready."""
        if task.state == "done":
            raise TaskGraphError(f"{task!r} completed twice")
        task.state = "done"
        self._done += 1
        newly_ready: list[Task] = []
        for succ in task.successors:
            succ.unfinished_predecessors -= 1
            if succ.unfinished_predecessors < 0:
                raise TaskGraphError(f"{succ!r}: negative predecessor count")
            if succ.unfinished_predecessors == 0 and succ.state == "waiting":
                succ.state = "ready"
                newly_ready.append(succ)
        self._ready_buffer.extend(newly_ready)
        return newly_ready

    def all_done(self) -> bool:
        return self._done == len(self.tasks)

    def critical_path_priorities(self) -> None:
        """Assign each task a priority = longest flop path to a sink.

        Used by priority-aware schedulers (DMDAS); reverse-topological sweep
        over the submission order, which is already a topological order.
        """
        for task in reversed(self.tasks):
            best = 0
            for succ in task.successors:
                best = max(best, succ.priority)
            task.priority = best + max(1, int(task.flops // 1e6))

    def validate_acyclic(self) -> None:
        """Sanity check: submission order must be a topological order."""
        position = {t.uid: idx for idx, t in enumerate(self.tasks)}
        for t in self.tasks:
            for succ in t.successors:
                if position[succ.uid] <= position[t.uid]:
                    raise TaskGraphError(
                        f"edge {t.uid}->{succ.uid} violates submission order"
                    )
