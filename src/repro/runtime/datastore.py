"""Numeric-mode data store.

Holds the NumPy arrays behind every replica location.  Host tiles are views
into the owning matrix's Fortran-ordered array (LAPACK layout, zero copy);
device replicas are compacted dense arrays, exactly the paper's §III-A
behaviour where ``cudaMemcpy2D`` compacts a sub-matrix to ``ld == m`` form on
the GPU.

In perf mode (metadata-only matrices) every operation is a cheap no-op, so the
runtime code path stays identical between modes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoherenceError
from repro.memory.tile import Tile, TileKey
from repro.topology.link import HOST


class DataStore:
    """Array storage for device replicas + host write-back."""

    def __init__(self) -> None:
        self._device_arrays: dict[tuple[int, TileKey], np.ndarray] = {}
        self._tiles: dict[TileKey, Tile] = {}
        self._matrix_index: dict[int, int] = {}

    def register(self, tile: Tile) -> None:
        """Make a tile known (idempotent)."""
        self._tiles.setdefault(tile.key, tile)
        mid = tile.key.matrix_id
        if mid not in self._matrix_index:
            self._matrix_index[mid] = len(self._matrix_index)

    def matrix_index(self, matrix_id: int) -> int:
        """Dense run-local index of a matrix, in tile-registration order.

        ``Matrix.id`` is a process-global counter, so its absolute value
        depends on how many matrices existed before this run; any simulated
        decision derived from it (the no-topo pseudo-random source pick)
        would make a run's outcome depend on process history.  Registration
        order is a pure function of the submitted task graph, so this index
        is what decision code must mix instead.
        """
        return self._matrix_index.get(matrix_id, matrix_id)

    def tile(self, key: TileKey) -> Tile:
        return self._tiles[key]

    @staticmethod
    def _numeric(tile: Tile) -> bool:
        return tile.matrix.numeric

    # ---------------------------------------------------------------- access

    def host_view(self, tile: Tile) -> np.ndarray:
        """The host array region of a tile (a view, never a copy)."""
        rows, cols = tile.host_slice()
        return tile.matrix.to_array()[rows, cols]

    def device_array(self, device: int, key: TileKey) -> np.ndarray:
        try:
            return self._device_arrays[(device, key)]
        except KeyError:
            raise CoherenceError(f"no array for {key} on device {device}") from None

    def has_device_array(self, device: int, key: TileKey) -> bool:
        return (device, key) in self._device_arrays

    # -------------------------------------------------------------- movement

    def copy_tile(self, tile: Tile, src: int, dst: int) -> None:
        """Materialize the replica movement ``src -> dst`` for one tile.

        No-op in perf mode.  Host -> device compacts the LAPACK view into a
        dense array; device -> host scatters it back into the matrix.
        """
        if not tile.matrix.numeric:
            # Perf mode: nothing to move, and the tile was already registered
            # when its transfer was issued — skip the idempotent re-register
            # on this per-completion-event path.
            return
        self.register(tile)
        if src == dst:
            return
        if src == HOST:
            self._device_arrays[(dst, tile.key)] = np.asfortranarray(
                self.host_view(tile).copy()
            )
        elif dst == HOST:
            self.host_view(tile)[...] = self.device_array(src, tile.key)
        else:
            self._device_arrays[(dst, tile.key)] = self.device_array(
                src, tile.key
            ).copy(order="F")

    def allocate_device_tile(self, tile: Tile, device: int) -> None:
        """Allocate an (uninitialized) output array for a WRITE-only access."""
        self.register(tile)
        if not self._numeric(tile):
            return
        key = (device, tile.key)
        if key not in self._device_arrays:
            dtype = tile.matrix.to_array().dtype
            self._device_arrays[key] = np.zeros((tile.m, tile.n), dtype=dtype, order="F")

    def drop_device_tile(self, key: TileKey, device: int) -> None:
        """Free the device array on eviction/invalidation (idempotent)."""
        self._device_arrays.pop((device, key), None)

    def arrays_for(self, device: int, tiles: list[Tile]) -> list[np.ndarray]:
        """Device arrays of a task's accesses, in declaration order."""
        return [self.device_array(device, t.key) for t in tiles]

    # ------------------------------------------------------------ inspection

    def device_bytes(self, device: int) -> int:
        return sum(
            a.nbytes for (dev, _), a in self._device_arrays.items() if dev == device
        )

    def __len__(self) -> int:
        return len(self._device_arrays)
