"""Event-driven task execution.

The :class:`Executor` drives the whole machine inside virtual time:

* tasks are *submitted* sequentially by the host thread, paying the runtime's
  per-task creation overhead (this is why small matrices expose runtime
  weight, §I);
* a task becomes *schedulable* once its dependencies completed and its
  submission instant passed; it then enters the scheduler;
* each device worker keeps up to ``pipeline_window`` tasks in flight: when a
  task is launched, its input transfers are reserved on the fabric immediately
  (the DMA queues), and the kernel is enqueued on the least-busy kernel stream
  with ``earliest = max(input arrival times)`` — giving the
  transfer/computation overlap of XKaapi's stream-per-operation-type model
  (§II-B);
* at kernel completion the numeric kernel (if any) executes over the device
  arrays, written tiles are registered with the coherence directory, and
  newly-ready successors wake the workers.

Host-flush tasks (reads-only tasks created by ``memory_coherent_async``) skip
the device scheduler entirely: when schedulable they trigger a D2H write-back,
implementing XKBLAS's lazy coherence (§IV-F).

Submission comes in two shapes with identical virtual-time accounting:

* :meth:`Executor.submit` — the materialized path: every task object exists
  before the simulation runs, one submission-instant event per task;
* :meth:`Executor.submit_stream` — the streaming path: tasks are *pulled*
  from an iterable one at a time, each pull happening at the previous task's
  submission instant (which is exactly when the simulated host thread frees
  up to create the next task).  The clock arithmetic is the same
  ``max(submit_clock, now) + task_overhead`` recurrence, and one event fires
  per task, so makespans, transfer stats and event counts are bit-identical
  to the materialized path — but only a bounded window of the task graph is
  ever resident, which is what lets million-task graphs run in flat memory
  (paired with ``TaskGraph(retain_tasks=False)`` reclamation).

The ``stream_window`` admission bound makes the residency claim real: since
per-task submission overhead (µs) is orders of magnitude below kernel times
(ms), an unthrottled stream would materialize the whole graph in the opening
instants of virtual time.  Once ``stream_window`` tasks are live the pull
chain pauses and completions resume it — exactly StarPU's task-window
submission throttling.  Graphs that never reach the window (all golden-sized
points) keep bit-identical accounting; beyond it, submission instants shift
to completion-driven ones, which can perturb makespans slightly and is the
documented price of flat memory (see DESIGN §9).
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.errors import CoherenceError, SchedulingError
from repro.memory.coherence import ReplicaState
from repro.runtime.dataflow import TaskGraph
from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task
from repro.runtime.transfer import TransferManager
from repro.sim.engine import Simulator
from repro.sim.stream import Stream
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.platform import Platform


@dataclasses.dataclass(slots=True)
class _Worker:
    device: int
    streams: list[Stream]
    window: int
    #: inflight count below which a busy worker may still steal
    #: (max(2, window // 3), precomputed — consulted on every wake round).
    steal_threshold: int = 2
    inflight: int = 0


class Executor:
    """Binds graph + scheduler + transfer manager to the simulator."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        scheduler: Scheduler,
        transfer: TransferManager,
        trace: TraceRecorder,
        task_overhead: float,
        pop_overhead: float,
        kernel_streams: int,
        pipeline_window: int | None = None,
        overlap: bool = True,
        retain_inputs: bool = True,
        retain_tasks: bool = True,
        stream_window: int | None = 8192,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.scheduler = scheduler
        self.transfer = transfer
        self.trace = trace
        self.graph = TaskGraph(retain_tasks=retain_tasks)
        self.task_overhead = task_overhead
        self.pop_overhead = pop_overhead
        self.overlap = overlap
        self.retain_inputs = retain_inputs
        window = pipeline_window if pipeline_window is not None else 2 * kernel_streams
        # One *compute engine* per device: concurrent kernel streams on a real
        # GPU share the SMs, so throughput never exceeds one kernel's rate.
        # Multiple logical streams show up as the lookahead window (transfers
        # of queued tasks overlap the running kernel), not as extra flop rate.
        self.workers = [
            _Worker(
                device=dev,
                streams=[Stream(sim, name=f"gpu{dev}-compute")],
                window=window,
                steal_threshold=max(2, window // 3),
            )
            for dev in platform.device_ids()
        ]
        self.ctx = SchedulerContext(
            platform=platform,
            directory=transfer.directory,
            transfer=transfer,
            device_load=self._device_load,
            device_idle=self._device_idle,
            device_loads=self._device_loads,
        )
        self._submit_clock = 0.0
        self._wake_origin = 0
        #: queued task sources for streaming submission, drained in order:
        #: each entry is ``(iterator, is_flush)``.  While a drain is active,
        #: direct ``submit()`` calls append behind it so the host thread's
        #: submission order (and its per-task overhead charges) match the
        #: materialized path exactly.
        self._pending_streams: deque = deque()
        self._stream_active = False
        #: admission window for streamed submission: while this many tasks
        #: are live (submitted, not yet retired), the pull chain pauses and
        #: resumes on completions — the bounded task window of real runtimes
        #: (StarPU's submission throttling, XKaapi's bounded frames).  Graphs
        #: smaller than the window never pause, so their virtual-time
        #: accounting is bit-identical to the materialized path; larger
        #: graphs trade exact submission instants for flat memory.
        self._stream_window = stream_window
        self._stream_paused = False
        self._submitted: set[int] = set()
        self._completed = 0
        self._flush_tasks: set[int] = set()
        self._all_workers_mask = (1 << len(self.workers)) - 1
        self._loads_buf = [0.0] * len(self.workers)
        #: memoized GpuSpec.kernel_time keyed on its full argument tuple —
        #: tiled graphs repeat a handful of (flops, dim) shapes thousands of
        #: times, and the efficiency-curve arithmetic is pure.
        self._kernel_time_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------ submission

    def submit(self, task: Task, is_flush: bool = False) -> Task:
        """Add ``task`` to the graph and schedule its submission instant.

        While a streamed drain is active the task is queued behind it (the
        simulated host thread is still busy creating the streamed tasks), so
        interleaving ``submit_stream`` and ``submit`` keeps program order.
        """
        if self._stream_active:
            self._pending_streams.append((iter((task,)), is_flush))
            return task
        self.graph.add(task)
        if is_flush:
            self._flush_tasks.add(task.uid)
        self._submit_clock = max(self._submit_clock, self.sim.now) + self.task_overhead
        self.sim.post(self._submit_clock, self._mark_submitted, task)
        return task

    def submit_stream(self, tasks, is_flush: bool = False) -> None:
        """Submit tasks from an iterable, pulling them lazily.

        Only one task of the stream is materialized ahead of the simulation:
        the next task is pulled inside the previous one's submission-instant
        event — the same moment the simulated host thread becomes free to
        create it — so the ``task_overhead`` recurrence, the submission
        order, and the one-event-per-task count are identical to
        :meth:`submit` over the materialized list.
        """
        self._pending_streams.append((iter(tasks), is_flush))
        if not self._stream_active:
            self._stream_active = True
            self._pull_next()

    def _pull_next(self) -> None:
        """Pull one task from the pending streams; deactivate when drained."""
        window = self._stream_window
        if (
            window is not None
            and self.graph.num_tasks - self.graph.num_done >= window
        ):
            self._stream_paused = True
            return
        streams = self._pending_streams
        while streams:
            it, is_flush = streams[0]
            task = next(it, None)
            if task is None:
                streams.popleft()
                continue
            self.graph.add(task)
            if is_flush:
                self._flush_tasks.add(task.uid)
            self._submit_clock = (
                max(self._submit_clock, self.sim.now) + self.task_overhead
            )
            self.sim.post(self._submit_clock, self._mark_submitted_stream, task)
            return
        self._stream_active = False

    def _mark_submitted(self, task: Task) -> None:
        """Submission-instant event: the host thread finished creating the task."""
        self._submitted.add(task.uid)
        if task.state == "ready":
            self._enqueue(task)

    def _mark_submitted_stream(self, task: Task) -> None:
        """Streamed submission instant: pull the successor, then proceed.

        The pull happens *before* this task is handed to the scheduler so the
        next submission event is on the heap ahead of whatever this task's
        enqueue posts — mirroring the materialized path, where all submission
        events pre-date every launch/completion event.
        """
        self._pull_next()
        self._submitted.add(task.uid)
        if task.state == "ready":
            self._enqueue(task)

    def _enqueue(self, task: Task) -> None:
        """Task is schedulable: hand to the scheduler (or run a host flush)."""
        if task.uid in self._flush_tasks:
            self._run_flush(task)
            return
        self.scheduler.push(task, self.ctx)
        self._wake_all()

    # ----------------------------------------------------------- host flush

    def _run_flush(self, task: Task) -> None:
        end = self.sim.now
        for access in task.accesses:
            end = max(end, self.transfer.ensure_host_valid(access.tile, self.sim.now))
        task.device = None
        task.start_time = self.sim.now
        task.state = "running"
        self.sim.post(end, self._complete_flush, task, end)

    def _complete_flush(self, task: Task, end: float) -> None:
        task.end_time = end
        self._finish(task)

    # -------------------------------------------------------------- workers

    def _wake_all(self) -> None:
        # Fair drain: one launch per worker per round, so an early-woken
        # worker cannot swallow the whole ready pool into its lookahead
        # window before its peers get a turn.  The scan origin rotates across
        # calls — with a fixed origin, tasks released one at a time would
        # always land on the lowest-numbered eligible worker and starve the
        # tail of the worker array.  (The rotation advances on every call,
        # launches or not: the origin sequence is part of the recorded
        # schedules.)
        #
        # Incremental wake: instead of a pop attempt per worker per round,
        # each round consults the scheduler's owned-work mask plus its
        # stealable-work flag and only pops for devices that could actually
        # be served — owners of queued work always, everyone else only while
        # idle and something is stealable.  A worker whose pop returned None
        # (or whose window filled, or that failed the idle gate) is retired
        # from this wake via the ``dead`` mask — no event between here and
        # the next launch can change its answer: nothing is pushed during a
        # wake, pops only remove tasks, device loads only grow when their own
        # deque drains, and idleness only decays as windows fill.
        workers = self.workers
        n = len(workers)
        self._wake_origin = (self._wake_origin + 1) % n
        origin = self._wake_origin
        scheduler = self.scheduler
        ctx = self.ctx
        now = self.sim.now  # frozen for the whole wake
        ready_mask = scheduler.ready_device_mask
        stealable = scheduler.has_stealable_work
        pop = scheduler.pop
        dead = 0
        progress = True
        while progress:
            progress = False
            owned = ready_mask(ctx)
            if stealable(ctx):
                avail = self._all_workers_mask & ~dead
            else:
                avail = owned & ~dead
            if not avail:
                break
            # Rotated-bitmask scan: visit exactly the set bits of ``avail``,
            # starting at ``origin`` and wrapping — the same visit order as an
            # index loop over all n workers, but skipping the unavailable ones
            # costs nothing instead of a mask test each.
            rot = ((avail >> origin) | (avail << (n - origin))) & self._all_workers_mask
            while rot:
                low = rot & -rot
                rot ^= low
                idx = low.bit_length() - 1 + origin
                if idx >= n:
                    idx -= n
                worker = workers[idx]
                bit = 1 << worker.device
                if worker.inflight >= worker.window:
                    dead |= bit  # windows only fill during a wake
                    continue
                if owned & bit:
                    task = pop(worker.device, ctx)
                elif (
                    worker.inflight < worker.steal_threshold
                    or worker.streams[0].busy_until <= now
                ):  # _device_idle, inlined on the hottest loop of the runtime
                    task = pop(worker.device, ctx, idle=True)
                else:
                    dead |= bit  # idleness only decays during a wake
                    continue
                if task is None:
                    dead |= bit
                    continue
                self._launch(task, worker)
                progress = True

    def _device_load(self, dev: int) -> float:
        """Compute backlog (seconds of queued kernels) of device ``dev``."""
        load = self.workers[dev].streams[0].busy_until - self.sim.now
        return load if load > 0.0 else 0.0

    def _device_loads(self) -> list[float]:
        """All device backlogs at once (bulk form of :meth:`_device_load`).

        Returns a buffer reused across calls — callers must consume it before
        the next call (the schedulers read it synchronously inside ``push``).
        """
        now = self.sim.now
        buf = self._loads_buf
        for i, worker in enumerate(self.workers):
            load = worker.streams[0].busy_until - now
            buf[i] = load if load > 0.0 else 0.0
        return buf

    def _device_idle(self, dev: int) -> bool:
        """A worker may steal while it is starving (little work in flight).

        Tasks in flight that are still waiting on transfers do not make the
        GPU busy — XKaapi worker threads keep stealing while DMAs are pending
        — but a worker with a few tasks enqueued ahead stops raiding, which
        bounds hoarding while preserving transfer/compute pipelining.
        """
        worker = self.workers[dev]
        return (
            worker.inflight < worker.steal_threshold
            or worker.streams[0].busy_until <= self.sim.now
        )

    def _launch(self, task: Task, worker: _Worker) -> None:
        dev = worker.device
        task.device = dev
        task.state = "running"
        worker.inflight += 1
        protect = task.access_keys
        now = self.sim.now
        transfer = self.transfer
        cache = transfer.caches[dev]
        inputs_ready = now + self.pop_overhead
        transfer_cost = 0.0
        pinned = []
        for access in task.accesses:
            if access.reads:
                ready = transfer.ensure_resident(
                    access.tile, dev, earliest=now, protect=protect
                )
                if ready > now:
                    transfer_cost += ready - now
                if ready > inputs_ready:
                    inputs_ready = ready
                key = access.tile.key
                if cache.pin_if_resident(key):
                    pinned.append(key)
            else:  # WRITE-only output
                ready = transfer.allocate_output(access.tile, dev, now)
                if ready > inputs_ready:
                    inputs_ready = ready

        kt_key = (dev, task.flops, task.dim, task.output_tile.wordsize, task.regularity)
        duration = self._kernel_time_cache.get(kt_key)
        if duration is None:
            duration = self._kernel_time_cache[kt_key] = self.platform.gpus[
                dev
            ].kernel_time(
                task.flops, task.dim, wordsize=kt_key[3], regularity=task.regularity
            )
        streams = worker.streams
        stream = (
            streams[0]
            if len(streams) == 1
            else min(streams, key=lambda s: s.busy_until)
        )
        if self.overlap:
            start, end = stream.reserve(duration, earliest=inputs_ready)
        else:
            # Copies and kernel share one in-order lane (cuBLAS-XT-style):
            # the stream is also occupied for the transfer durations.
            start, end = stream.reserve(duration + transfer_cost, earliest=inputs_ready)
            start = end - duration
        task.start_time = start
        task.end_time = end
        self.trace.record(TraceCategory.KERNEL, dev, start, end, task.name)
        self.sim.post(end, self._complete_task, task, worker, pinned)

    def _complete_task(self, task: Task, worker: _Worker, pinned: list) -> None:
        """Kernel-completion event: writes registered, pins dropped, wake-up."""
        self._execute_numeric(task)
        for access in task.accesses:
            if access.writes:
                self.transfer.register_write(access.tile, worker.device, self.sim.now)
        self.transfer.caches[worker.device].unpin_many(pinned)
        if not self.retain_inputs:
            self._drop_clean_inputs(task, worker.device)
        if self.transfer.sanitizer is not None:
            for access in task.accesses:
                self.transfer.sanitize(access.tile.key)
        worker.inflight -= 1
        self._finish(task)

    def _drop_clean_inputs(self, task: Task, device: int) -> None:
        """Batched-workspace model: free read-only staging tiles after use."""
        directory = self.transfer.directory
        cache = self.transfer.caches[device]
        for access in task.accesses:
            if access.writes:
                continue
            key = access.tile.key
            if directory.state(key, device) is not ReplicaState.SHARED:
                continue
            if key not in cache or cache.pin_count(key):
                continue
            try:
                directory.evict(key, device)
            except CoherenceError:
                continue  # last replica somewhere transient; keep it
            cache.remove(key)
            self.transfer.datastore.drop_device_tile(key, device)

    def _execute_numeric(self, task: Task) -> None:
        # Cheap perf-mode bail: the output tile is one of the accesses, so if
        # its matrix carries no array the all() below is False anyway.
        if task.kernel is None or not task.output_tile.matrix.numeric:
            return
        if not all(a.tile.matrix.numeric for a in task.accesses):
            return  # perf mode
        dev = task.device
        assert dev is not None
        arrays = self.transfer.datastore.arrays_for(
            dev, [a.tile for a in task.accesses]
        )
        task.run_numeric(arrays)

    def _finish(self, task: Task) -> None:
        self._completed += 1
        newly_ready = self.graph.complete(task)
        if not self.graph.retain_tasks:
            # Reclaiming mode: the graph just retired the task; drop the
            # executor's own bookkeeping so the uid sets stay bounded by the
            # in-flight window instead of growing with the whole run.
            self._submitted.discard(task.uid)
            self._flush_tasks.discard(task.uid)
        if self._stream_paused:
            window = self._stream_window
            if (
                window is None
                or self.graph.num_tasks - self.graph.num_done < window
            ):
                self._stream_paused = False
                self._pull_next()
        for succ in newly_ready:
            if succ.uid in self._submitted:
                self._enqueue(succ)
        self.scheduler.on_complete(task, self.ctx)
        self._wake_all()

    # ------------------------------------------------------------------ run

    def run_to_completion(self, max_events: int | None = None) -> float:
        """Drain the event heap; returns the makespan.

        Raises :class:`SchedulingError` if tasks remain unexecuted (a
        scheduling bug or an impossible mapping).
        """
        self.sim.run(max_events=max_events)
        graph = self.graph
        if not graph.all_done():
            if graph.retain_tasks:
                stuck = [t for t in graph.tasks if t.state != "done"]
                raise SchedulingError(
                    f"{len(stuck)} tasks never completed, e.g. {stuck[0]!r}"
                )
            raise SchedulingError(
                f"{graph.num_tasks - graph.num_done} of {graph.num_tasks} "
                "tasks never completed (reclaiming graph keeps no task list; "
                "rerun with retain_tasks=True to identify them)"
            )
        return self.sim.now

    @property
    def completed_tasks(self) -> int:
        return self._completed
