"""Event-driven task execution.

The :class:`Executor` drives the whole machine inside virtual time:

* tasks are *submitted* sequentially by the host thread, paying the runtime's
  per-task creation overhead (this is why small matrices expose runtime
  weight, §I);
* a task becomes *schedulable* once its dependencies completed and its
  submission instant passed; it then enters the scheduler;
* each device worker keeps up to ``pipeline_window`` tasks in flight: when a
  task is launched, its input transfers are reserved on the fabric immediately
  (the DMA queues), and the kernel is enqueued on the least-busy kernel stream
  with ``earliest = max(input arrival times)`` — giving the
  transfer/computation overlap of XKaapi's stream-per-operation-type model
  (§II-B);
* at kernel completion the numeric kernel (if any) executes over the device
  arrays, written tiles are registered with the coherence directory, and
  newly-ready successors wake the workers.

Host-flush tasks (reads-only tasks created by ``memory_coherent_async``) skip
the device scheduler entirely: when schedulable they trigger a D2H write-back,
implementing XKBLAS's lazy coherence (§IV-F).

Submission comes in two shapes with identical virtual-time accounting:

* :meth:`Executor.submit` — the materialized path: every task object exists
  before the simulation runs, one submission-instant event per task;
* :meth:`Executor.submit_stream` — the streaming path: tasks are *pulled*
  from an iterable one at a time, each pull happening at the previous task's
  submission instant (which is exactly when the simulated host thread frees
  up to create the next task).  The clock arithmetic is the same
  ``max(submit_clock, now) + task_overhead`` recurrence, and one event fires
  per task, so makespans, transfer stats and event counts are bit-identical
  to the materialized path — but only a bounded window of the task graph is
  ever resident, which is what lets million-task graphs run in flat memory
  (paired with ``TaskGraph(retain_tasks=False)`` reclamation).

The ``stream_window`` admission bound makes the residency claim real: since
per-task submission overhead (µs) is orders of magnitude below kernel times
(ms), an unthrottled stream would materialize the whole graph in the opening
instants of virtual time.  Once ``stream_window`` tasks are live the pull
chain pauses and completions resume it — exactly StarPU's task-window
submission throttling.  Graphs that never reach the window (all golden-sized
points) keep bit-identical accounting; beyond it, submission instants shift
to completion-driven ones, which can perturb makespans slightly and is the
documented price of flat memory (see DESIGN §9).

Fused-event dispatch
--------------------

With ``fused_events`` on (and no trace recorder attached), submission
instants run through the *submission pump* (:meth:`Executor._pump`) instead
of one engine event each.  Every submission still reserves its own engine
sequence number at intent time (:meth:`Simulator.reserve_seq`), so every
same-instant tie-break is decided exactly as in the unfused path; but only
the *first* pending submission owns a heap entry.  When the pump fires it
processes its submission and then keeps folding consecutive pending
submissions into the same engine event, for as long as (a) the next pending
``(time, seq)`` precedes everything on the heap — i.e. the engine would have
dispatched it next anyway — and (b) it does not pass the engine's
``inline_horizon`` (a ``run(until=...)`` horizon; ``run(max_events=...)``
disables fusion so event budgets stay exact).  Otherwise the pump re-arms a
heap entry carrying the next pending submission's reserved key and yields.
The observable virtual-time state (makespans, transfer stats, task
start/end times, scheduler decisions) is bit-identical to the unfused path
by construction; only :attr:`Simulator.events_fired` drops, which is the
point — see perfbench's ``events_per_task`` column.

The fused path is disabled whenever the runtime's :class:`TraceRecorder` is
enabled at construction, so traces (and the race detector built on them)
observe one engine event per submission exactly as before.  Completions
already fold their wake-up and successor launches into the completion event
itself (``_complete_task`` → ``_finish`` → ``_wake_all`` runs inline), in
both modes — the same-instant coalescing there is achieved by skipping
provably-no-op work (window-full workers are masked out of the wake scan,
an empty scheduler returns after the rotation advance) rather than by
reordering wake calls, which measurably perturbs the recorded schedules
(the scan-origin rotation is part of them).
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.errors import CoherenceError, SchedulingError
from repro.memory.coherence import ReplicaState
from repro.runtime.dataflow import TaskGraph
from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task
from repro.runtime.transfer import TransferManager
from repro.sim.engine import Simulator
from repro.sim.stream import Stream
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.platform import Platform


@dataclasses.dataclass(slots=True)
class _Worker:
    device: int
    streams: list[Stream]
    window: int
    #: inflight count below which a busy worker may still steal
    #: (max(2, window // 3), precomputed — consulted on every wake round).
    steal_threshold: int = 2
    inflight: int = 0
    #: ``streams[0]``, dereferenced once — the wake gate and the load
    #: queries read the compute stream on every visit.
    stream0: Stream = dataclasses.field(init=False)
    #: per-device kernel-duration memo, keyed by ``Task.kt_shape`` — the
    #: launch path does one dict probe on the prebuilt tuple instead of
    #: assembling a ``(dev, ...)`` key per launch.
    durations: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.stream0 = self.streams[0]


class Executor:
    """Binds graph + scheduler + transfer manager to the simulator."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        scheduler: Scheduler,
        transfer: TransferManager,
        trace: TraceRecorder,
        task_overhead: float,
        pop_overhead: float,
        kernel_streams: int,
        pipeline_window: int | None = None,
        overlap: bool = True,
        retain_inputs: bool = True,
        retain_tasks: bool = True,
        stream_window: int | None = 8192,
        fused_events: bool = False,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.scheduler = scheduler
        self.transfer = transfer
        self.trace = trace
        self.graph = TaskGraph(retain_tasks=retain_tasks)
        self.task_overhead = task_overhead
        self.pop_overhead = pop_overhead
        self.overlap = overlap
        self.retain_inputs = retain_inputs
        window = pipeline_window if pipeline_window is not None else 2 * kernel_streams
        # One *compute engine* per device: concurrent kernel streams on a real
        # GPU share the SMs, so throughput never exceeds one kernel's rate.
        # Multiple logical streams show up as the lookahead window (transfers
        # of queued tasks overlap the running kernel), not as extra flop rate.
        self.workers = [
            _Worker(
                device=dev,
                streams=[Stream(sim, name=f"gpu{dev}-compute")],
                window=window,
                steal_threshold=max(2, window // 3),
            )
            for dev in platform.device_ids()
        ]
        self.ctx = SchedulerContext(
            platform=platform,
            directory=transfer.directory,
            transfer=transfer,
            device_load=self._device_load,
            device_idle=self._device_idle,
            device_loads=self._device_loads,
        )
        self._submit_clock = 0.0
        self._wake_origin = 0
        #: queued task sources for streaming submission, drained in order:
        #: each entry is ``(iterator, is_flush)``.  While a drain is active,
        #: direct ``submit()`` calls append behind it so the host thread's
        #: submission order (and its per-task overhead charges) match the
        #: materialized path exactly.
        self._pending_streams: deque = deque()
        self._stream_active = False
        #: admission window for streamed submission: while this many tasks
        #: are live (submitted, not yet retired), the pull chain pauses and
        #: resumes on completions — the bounded task window of real runtimes
        #: (StarPU's submission throttling, XKaapi's bounded frames).  Graphs
        #: smaller than the window never pause, so their virtual-time
        #: accounting is bit-identical to the materialized path; larger
        #: graphs trade exact submission instants for flat memory.
        self._stream_window = stream_window
        self._stream_paused = False
        self._completed = 0
        self._flush_tasks: set[int] = set()
        #: fused-event dispatch (see module docstring): decided once at
        #: construction — an attached (enabled) trace recorder forces the
        #: unfused path so traces see one engine event per submission.
        self._fused = bool(fused_events) and not trace.enabled
        #: pending fused submissions: ``(time, seq, task, streamed)`` in
        #: nondecreasing ``(time, seq)`` order.  Only the head owns a heap
        #: entry; the pump folds the rest inline when the engine would have
        #: dispatched them next anyway.
        self._fused_pending: deque = deque()
        self._pumping = False
        #: one vectorized kernel-time prefill per pump arming (re-arms within
        #: a batch skip the rescan — the shapes were already collected).
        self._pump_prefilled = True
        self._all_workers_mask = (1 << len(self.workers)) - 1
        self._num_workers = len(self.workers)
        #: precomputed visit orders for the wake scan: ``_rot_orders[origin]``
        #: holds ``(worker, bit)`` pairs in the exact order a wake starting at
        #: ``origin`` visits them.  Walking one tuple and testing membership
        #: bits is cheaper than extracting/rotating set bits per visit — the
        #: wake loop is the hottest code in the runtime, and whenever work is
        #: stealable every worker is a candidate, so walking candidate bits
        #: would not shorten the visit list.
        nw = len(self.workers)
        self._rot_orders = tuple(
            tuple(
                (self.workers[(origin + i) % nw], 1 << ((origin + i) % nw))
                for i in range(nw)
            )
            for origin in range(nw)
        )
        #: bitmask of workers whose pipeline window is full — maintained by
        #: launch/completion so a wake scan skips them without a visit.
        self._full_mask = 0
        for w in self.workers:
            if w.inflight >= w.window:  # window == 0 (degenerate config)
                self._full_mask |= 1 << w.device
        self._loads_buf = [0.0] * len(self.workers)
        #: virtual time of the last wake that completed with the wake-visible
        #: state unchanged since (-1.0 = dirty).  See _wake_all for the
        #: invariant; _enqueue and _complete_task dirty it.
        self._wake_clean_at = -1.0

    # ------------------------------------------------------------ submission

    def submit(self, task: Task, is_flush: bool = False) -> Task:
        """Add ``task`` to the graph and schedule its submission instant.

        While a streamed drain is active the task is queued behind it (the
        simulated host thread is still busy creating the streamed tasks), so
        interleaving ``submit_stream`` and ``submit`` keeps program order.
        """
        if self._stream_active:
            self._pending_streams.append((iter((task,)), is_flush))
            return task
        self.graph.add(task)
        if is_flush:
            self._flush_tasks.add(task.uid)
        sim = self.sim
        clock = self._submit_clock
        now = sim.now
        if now > clock:
            clock = now
        t = self._submit_clock = clock + self.task_overhead
        if self._fused:
            seq = sim.reserve_seq()
            pending = self._fused_pending
            if not pending and not self._pumping:
                sim.post_reserved(t, seq, self._pump)
                self._pump_prefilled = False
            pending.append((t, seq, task, False))
        else:
            sim.post(t, self._mark_submitted, task)
        return task

    def submit_stream(self, tasks, is_flush: bool = False) -> None:
        """Submit tasks from an iterable, pulling them lazily.

        Only one task of the stream is materialized ahead of the simulation:
        the next task is pulled inside the previous one's submission-instant
        event — the same moment the simulated host thread becomes free to
        create it — so the ``task_overhead`` recurrence, the submission
        order, and the one-event-per-task count are identical to
        :meth:`submit` over the materialized list.
        """
        self._pending_streams.append((iter(tasks), is_flush))
        if not self._stream_active:
            self._stream_active = True
            self._pull_next()

    def _pull_next(self) -> None:
        """Pull one task from the pending streams; deactivate when drained."""
        window = self._stream_window
        if (
            window is not None
            and self.graph.num_tasks - self.graph.num_done >= window
        ):
            self._stream_paused = True
            return
        streams = self._pending_streams
        while streams:
            it, is_flush = streams[0]
            task = next(it, None)
            if task is None:
                streams.popleft()
                continue
            self.graph.add(task)
            if is_flush:
                self._flush_tasks.add(task.uid)
            sim = self.sim
            clock = self._submit_clock
            now = sim.now
            if now > clock:
                clock = now
            t = self._submit_clock = clock + self.task_overhead
            if self._fused:
                seq = sim.reserve_seq()
                pending = self._fused_pending
                if not pending and not self._pumping:
                    sim.post_reserved(t, seq, self._pump)
                    self._pump_prefilled = False
                pending.append((t, seq, task, True))
            else:
                sim.post(t, self._mark_submitted_stream, task)
            return
        self._stream_active = False

    def _mark_submitted(self, task: Task) -> None:
        """Submission-instant event: the host thread finished creating the task."""
        task.submitted = True
        if task.state == "ready":
            self._enqueue(task)

    def _mark_submitted_stream(self, task: Task) -> None:
        """Streamed submission instant: pull the successor, then proceed.

        The pull happens *before* this task is handed to the scheduler so the
        next submission event is on the heap ahead of whatever this task's
        enqueue posts — mirroring the materialized path, where all submission
        events pre-date every launch/completion event.
        """
        self._pull_next()
        task.submitted = True
        if task.state == "ready":
            self._enqueue(task)

    def _pump(self) -> None:
        """Fused submission pump: one engine event, many submission instants.

        Fires as the heap entry of the head of ``_fused_pending``; after
        processing it, keeps folding the next pending submission into this
        same engine event exactly when the engine itself would have
        dispatched it next — its ``(time, seq)`` strictly precedes the heap
        top (reserved seqs make the comparison exact, including same-instant
        ties) and does not pass ``inline_horizon``.  Otherwise it re-arms a
        heap entry under the next submission's reserved key and returns.
        Streamed entries pull their successor *before* being enqueued, same
        as :meth:`_mark_submitted_stream`.
        """
        sim = self.sim
        # Engine-owned, never rebound; read-only ``heap[0]`` peek below.  The
        # raw peek deliberately bypasses cancellation accounting (unlike
        # ``Simulator.pending``): a cancelled top entry only makes the
        # comparison conservative — the pump re-arms a reserved event instead
        # of folding inline, same virtual order either way — and the runtime
        # never cancels events, so the case is theoretical.  Everything in
        # this loop is O(1) per folded submission; the streamed-window resume
        # path (``_pull_next``) is two counter comparisons, not a scan.
        heap = sim._heap
        pending = self._fused_pending
        if not pending:  # pragma: no cover - defensive; invariant: armed ⇒ pending
            return
        self._pumping = True
        try:
            if not self._pump_prefilled and len(pending) >= 16:
                self._prefill_kernel_times(pending)
                self._pump_prefilled = True
            while True:
                t, _seq, task, streamed = pending.popleft()
                sim.now = t
                if streamed:
                    self._pull_next()
                task.submitted = True
                if task.state == "ready":
                    self._enqueue(task)
                if not pending:
                    return
                head = pending[0]
                t2 = head[0]
                if t2 > sim.inline_horizon:
                    sim.post_reserved(t2, head[1], self._pump)
                    return
                if heap:
                    top = heap[0]
                    tt = top[0]
                    if tt < t2 or (tt == t2 and top[1] < head[1]):
                        sim.post_reserved(t2, head[1], self._pump)
                        return
        finally:
            self._pumping = False

    def _prefill_kernel_times(self, pending) -> None:
        """Vectorized kernel-time computation over a fused submission batch.

        One numpy pass per device fills each worker's duration memo for every
        distinct (flops, dim, wordsize, regularity) shape in the batch —
        tiled graphs repeat a handful of shapes thousands of times, so the
        whole batch's kernel times are computed in a few array operations
        instead of per-launch scalar arithmetic.
        ``GpuSpec.kernel_time_batch`` mirrors the scalar operation order in
        float64, so cached values are bit-identical to the scalar path.
        """
        shapes: dict[tuple, None] = {}
        for entry in pending:
            shapes[entry[2].kt_shape] = None
        for worker in self.workers:
            durations = worker.durations
            missing = [s for s in shapes if s not in durations]
            if not missing:
                continue
            gpu = self.platform.gpus[worker.device]
            times = gpu.kernel_time_batch(
                [s[0] for s in missing],
                [s[1] for s in missing],
                [s[2] for s in missing],
                [s[3] for s in missing],
            )
            # .tolist() yields Python floats (exact value-preserving), so the
            # cache never leaks numpy scalars into virtual-time arithmetic.
            for s, duration in zip(missing, times.tolist()):
                durations[s] = duration

    def _enqueue(self, task: Task) -> None:
        """Task is schedulable: hand to the scheduler (or run a host flush)."""
        if task.uid in self._flush_tasks:
            self._run_flush(task)
            return
        self._wake_clean_at = -1.0  # new work: the next wake must scan
        self.scheduler.push(task, self.ctx)
        self._wake_all()

    # ----------------------------------------------------------- host flush

    def _run_flush(self, task: Task) -> None:
        end = self.sim.now
        for access in task.accesses:
            end = max(end, self.transfer.ensure_host_valid(access.tile, self.sim.now))
        task.device = None
        task.start_time = self.sim.now
        task.state = "running"
        self.sim.post(end, self._complete_flush, task, end)

    def _complete_flush(self, task: Task, end: float) -> None:
        task.end_time = end
        self._finish(task)

    # -------------------------------------------------------------- workers

    def _wake_all(self) -> None:
        # Fair drain: one launch per worker per round, so an early-woken
        # worker cannot swallow the whole ready pool into its lookahead
        # window before its peers get a turn.  The scan origin rotates across
        # calls — with a fixed origin, tasks released one at a time would
        # always land on the lowest-numbered eligible worker and starve the
        # tail of the worker array.  (The rotation advances on every call,
        # launches or not: the origin sequence is part of the recorded
        # schedules.)
        #
        # Incremental wake: instead of a pop attempt per worker per round,
        # each round consults the scheduler's owned-work mask plus its
        # stealable-work flag and only pops for devices that could actually
        # be served — owners of queued work always, everyone else only while
        # idle and something is stealable.  A worker whose pop returned None
        # (or whose window filled, or that failed the idle gate) is retired
        # from this wake via the ``dead`` mask — no event between here and
        # the next launch can change its answer: nothing is pushed during a
        # wake, pops only remove tasks, device loads only grow when their own
        # deque drains, and idleness only decays as windows fill.
        self._wake_origin = origin = (self._wake_origin + 1) % self._num_workers
        now = self.sim.now  # frozen for the whole wake
        if self._wake_clean_at == now:
            # A wake already ran at this instant and nothing it reads has
            # changed since: a wake only terminates when a full round makes no
            # progress (every live worker's pop returned None, or every
            # candidate is window-full / gate-rejected), so re-scanning the
            # same state must launch nothing.  Wake outcomes read only
            # scheduler queues (invalidated on push), worker windows and
            # stream backlogs (mutated only by launches, i.e. inside wakes,
            # and by completions, which invalidate), and the clock (compared
            # here) — transfer/directory state is never consulted by a pop or
            # gate, and on_complete only adjusts push-side estimates.  The
            # rotation advance above is the wake's only observable remnant
            # and is preserved.
            return
        scheduler = self.scheduler
        if scheduler.empty():
            # Nothing queued anywhere: every pop below would return None and
            # mutate nothing, so only the rotation advance (already done — the
            # origin sequence is part of the recorded schedules) is observable.
            # An empty scheduler stays empty until a push, so this outcome is
            # as stable as a full no-progress scan.
            self._wake_clean_at = now
            return
        ctx = self.ctx
        ready_mask = scheduler.ready_device_mask
        stealable = scheduler.has_stealable_work
        pop = scheduler.pop
        # Window-full workers are pre-retired via the maintained mask: visiting
        # one only ever set its dead-bit (windows only fill during a wake), so
        # skipping the visit is unobservable.
        dead = self._full_mask
        # Pre-resolved visit order for this origin: one membership test per
        # worker per round replaces the bit-extraction arithmetic the scan
        # used to pay per visit (most visits are gate rejections).
        order = self._rot_orders[origin]
        all_mask = self._all_workers_mask
        progress = True
        while progress:
            progress = False
            owned = ready_mask(ctx)
            # Re-read the maintained full mask each round instead of checking
            # inflight-vs-window per visit: a worker's window state at its
            # visit was last changed by its *own* launch in a previous round
            # (each worker launches at most once per round and _launch keeps
            # the mask exact), so the round-start mask gives the same answer.
            dead |= self._full_mask
            if stealable(ctx):
                avail = all_mask & ~dead
            else:
                avail = owned & ~dead
            if not avail:
                break
            for worker, bit in order:
                if not avail & bit:
                    continue
                if owned & bit:
                    task = pop(worker.device, ctx)
                elif (
                    worker.inflight < worker.steal_threshold
                    or worker.stream0.busy_until <= now
                ):  # _device_idle, inlined on the hottest loop of the runtime
                    task = pop(worker.device, ctx, idle=True)
                else:
                    dead |= bit  # idleness only decays during a wake
                    continue
                if task is None:
                    dead |= bit
                    continue
                self._launch(task, worker)
                progress = True
        # The scan only falls out once no further launch is possible; record
        # that so back-to-back wakes at one instant (the tail of every
        # completion cascade) skip the rescan.
        self._wake_clean_at = now

    def _device_load(self, dev: int) -> float:
        """Compute backlog (seconds of queued kernels) of device ``dev``."""
        load = self.workers[dev].stream0.busy_until - self.sim.now
        return load if load > 0.0 else 0.0

    def _device_loads(self) -> list[float]:
        """All device backlogs at once (bulk form of :meth:`_device_load`).

        Returns a buffer reused across calls — callers must consume it before
        the next call (the schedulers read it synchronously inside ``push``).
        """
        now = self.sim.now
        buf = self._loads_buf
        for i, worker in enumerate(self.workers):
            load = worker.stream0.busy_until - now
            buf[i] = load if load > 0.0 else 0.0
        return buf

    def _device_idle(self, dev: int) -> bool:
        """A worker may steal while it is starving (little work in flight).

        Tasks in flight that are still waiting on transfers do not make the
        GPU busy — XKaapi worker threads keep stealing while DMAs are pending
        — but a worker with a few tasks enqueued ahead stops raiding, which
        bounds hoarding while preserving transfer/compute pipelining.
        """
        worker = self.workers[dev]
        return (
            worker.inflight < worker.steal_threshold
            or worker.stream0.busy_until <= self.sim.now
        )

    def _launch(self, task: Task, worker: _Worker) -> None:
        dev = worker.device
        task.device = dev
        task.state = "running"
        worker.inflight += 1
        if worker.inflight >= worker.window:
            self._full_mask |= 1 << dev
        now = self.sim.now
        # One batched residency pass over the whole access list: the manager
        # hoists every per-access attribute lookup and handles the hit/pin
        # bookkeeping, miss staging and output allocation in declaration
        # order, op-for-op as the former per-access loop.  Left as a plain
        # attribute call (not hoisted at init) so instrumentation wrappers
        # installed on the manager see every launch.
        inputs_ready, transfer_cost, pinned = self.transfer.ensure_resident_batch(
            task.accesses, dev, now, now + self.pop_overhead, task.access_keys
        )

        shape = task.kt_shape
        durations = worker.durations
        duration = durations.get(shape)
        if duration is None:
            duration = durations[shape] = self.platform.gpus[dev].kernel_time(
                shape[0], shape[1], wordsize=shape[2], regularity=shape[3]
            )
        # Least-loaded stream, first-wins on ties (what min() with a key
        # returns) — an explicit strict-< scan so no key closure is allocated
        # per launch.
        streams = worker.streams
        stream = streams[0]
        busy = stream.busy_until
        for s in streams:
            sb = s.busy_until
            if sb < busy:
                stream, busy = s, sb
        if self.overlap:
            start, end = stream.reserve(duration, earliest=inputs_ready)
        else:
            # Copies and kernel share one in-order lane (cuBLAS-XT-style):
            # the stream is also occupied for the transfer durations.
            start, end = stream.reserve(duration + transfer_cost, earliest=inputs_ready)
            start = end - duration
        task.start_time = start
        task.end_time = end
        if self.trace.enabled:
            self.trace.record(TraceCategory.KERNEL, dev, start, end, task.name)
        self.sim.post(end, self._complete_task, task, worker, pinned)

    def _complete_task(self, task: Task, worker: _Worker, pinned: list) -> None:
        """Kernel-completion event: writes registered, pins dropped, wake-up."""
        self._wake_clean_at = -1.0  # the window drains: wakes must rescan
        # The numeric bail is inlined (perf mode completes thousands of tasks
        # and never runs a kernel); _execute_numeric re-checks for the
        # numeric-mode path.
        if task.kernel is not None and task.output_tile.matrix.numeric:
            self._execute_numeric(task)
        transfer = self.transfer
        dev = worker.device
        now = self.sim.now
        for access in task.write_accesses:
            transfer.register_write(access.tile, dev, now)
        transfer.caches[dev].unpin_many(pinned)
        if not self.retain_inputs:
            self._drop_clean_inputs(task, dev)
        if transfer.sanitizer is not None:
            for access in task.accesses:
                transfer.sanitize(access.tile.key)
        if worker.inflight >= worker.window:
            self._full_mask &= ~(1 << worker.device)
        worker.inflight -= 1
        self._finish(task)

    def _drop_clean_inputs(self, task: Task, device: int) -> None:
        """Batched-workspace model: free read-only staging tiles after use."""
        directory = self.transfer.directory
        cache = self.transfer.caches[device]
        for access in task.accesses:
            if access.writes:
                continue
            key = access.tile.key
            if directory.state(key, device) is not ReplicaState.SHARED:
                continue
            if key not in cache or cache.pin_count(key):
                continue
            try:
                directory.evict(key, device)
            except CoherenceError:
                continue  # last replica somewhere transient; keep it
            cache.remove(key)
            self.transfer.datastore.drop_device_tile(key, device)

    def _execute_numeric(self, task: Task) -> None:
        # Cheap perf-mode bail: the output tile is one of the accesses, so if
        # its matrix carries no array the all() below is False anyway.
        if task.kernel is None or not task.output_tile.matrix.numeric:
            return
        if not all(a.tile.matrix.numeric for a in task.accesses):
            return  # perf mode
        dev = task.device
        assert dev is not None
        arrays = self.transfer.datastore.arrays_for(
            dev, [a.tile for a in task.accesses]
        )
        task.run_numeric(arrays)

    def _finish(self, task: Task) -> None:
        self._completed += 1
        graph = self.graph
        newly_ready = graph.complete(task)
        if not graph.retain_tasks:
            # Reclaiming mode: the graph just retired the task; drop the
            # executor's own bookkeeping so the uid sets stay bounded by the
            # in-flight window instead of growing with the whole run.  (The
            # submitted flag lives on the task itself and is reclaimed with
            # it — only the flush set needs trimming.)
            self._flush_tasks.discard(task.uid)
        if self._stream_paused:
            window = self._stream_window
            if window is None or graph.num_tasks - graph.num_done < window:
                self._stream_paused = False
                self._pull_next()
        for succ in newly_ready:
            if succ.submitted:
                self._enqueue(succ)
        self.scheduler.on_complete(task, self.ctx)
        self._wake_all()

    # ------------------------------------------------------------------ run

    def run_to_completion(self, max_events: int | None = None) -> float:
        """Drain the event heap; returns the makespan.

        Raises :class:`SchedulingError` if tasks remain unexecuted (a
        scheduling bug or an impossible mapping).
        """
        self.sim.run(max_events=max_events)
        graph = self.graph
        if not graph.all_done():
            if graph.retain_tasks:
                stuck = [t for t in graph.tasks if t.state != "done"]
                raise SchedulingError(
                    f"{len(stuck)} tasks never completed, e.g. {stuck[0]!r}"
                )
            raise SchedulingError(
                f"{graph.num_tasks - graph.num_done} of {graph.num_tasks} "
                "tasks never completed (reclaiming graph keeps no task list; "
                "rerun with retain_tasks=True to identify them)"
            )
        return self.sim.now

    @property
    def completed_tasks(self) -> int:
        return self._completed
