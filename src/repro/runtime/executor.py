"""Event-driven task execution.

The :class:`Executor` drives the whole machine inside virtual time:

* tasks are *submitted* sequentially by the host thread, paying the runtime's
  per-task creation overhead (this is why small matrices expose runtime
  weight, §I);
* a task becomes *schedulable* once its dependencies completed and its
  submission instant passed; it then enters the scheduler;
* each device worker keeps up to ``pipeline_window`` tasks in flight: when a
  task is launched, its input transfers are reserved on the fabric immediately
  (the DMA queues), and the kernel is enqueued on the least-busy kernel stream
  with ``earliest = max(input arrival times)`` — giving the
  transfer/computation overlap of XKaapi's stream-per-operation-type model
  (§II-B);
* at kernel completion the numeric kernel (if any) executes over the device
  arrays, written tiles are registered with the coherence directory, and
  newly-ready successors wake the workers.

Host-flush tasks (reads-only tasks created by ``memory_coherent_async``) skip
the device scheduler entirely: when schedulable they trigger a D2H write-back,
implementing XKBLAS's lazy coherence (§IV-F).
"""

from __future__ import annotations

import dataclasses

from repro.errors import SchedulingError
from repro.runtime.dataflow import TaskGraph
from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task
from repro.runtime.transfer import TransferManager
from repro.sim.engine import Simulator
from repro.sim.stream import Stream
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.platform import Platform


@dataclasses.dataclass(slots=True)
class _Worker:
    device: int
    streams: list[Stream]
    window: int
    #: inflight count below which a busy worker may still steal
    #: (max(2, window // 3), precomputed — consulted on every wake round).
    steal_threshold: int = 2
    inflight: int = 0


class Executor:
    """Binds graph + scheduler + transfer manager to the simulator."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        scheduler: Scheduler,
        transfer: TransferManager,
        trace: TraceRecorder,
        task_overhead: float,
        pop_overhead: float,
        kernel_streams: int,
        pipeline_window: int | None = None,
        overlap: bool = True,
        retain_inputs: bool = True,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.scheduler = scheduler
        self.transfer = transfer
        self.trace = trace
        self.graph = TaskGraph()
        self.task_overhead = task_overhead
        self.pop_overhead = pop_overhead
        self.overlap = overlap
        self.retain_inputs = retain_inputs
        window = pipeline_window if pipeline_window is not None else 2 * kernel_streams
        # One *compute engine* per device: concurrent kernel streams on a real
        # GPU share the SMs, so throughput never exceeds one kernel's rate.
        # Multiple logical streams show up as the lookahead window (transfers
        # of queued tasks overlap the running kernel), not as extra flop rate.
        self.workers = [
            _Worker(
                device=dev,
                streams=[Stream(sim, name=f"gpu{dev}-compute")],
                window=window,
                steal_threshold=max(2, window // 3),
            )
            for dev in platform.device_ids()
        ]
        self.ctx = SchedulerContext(
            platform=platform,
            directory=transfer.directory,
            transfer=transfer,
            device_load=lambda dev: max(
                0.0, self.workers[dev].streams[0].busy_until - self.sim.now
            ),
        )
        self._submit_clock = 0.0
        self._wake_origin = 0
        self._submitted: set[int] = set()
        self._completed = 0
        self._flush_tasks: set[int] = set()

    # ------------------------------------------------------------ submission

    def submit(self, task: Task, is_flush: bool = False) -> Task:
        """Add ``task`` to the graph and schedule its submission instant."""
        self.graph.add(task)
        if is_flush:
            self._flush_tasks.add(task.uid)
        self._submit_clock = max(self._submit_clock, self.sim.now) + self.task_overhead
        self.sim.schedule(self._submit_clock, self._mark_submitted, task)
        return task

    def _mark_submitted(self, task: Task) -> None:
        """Submission-instant event: the host thread finished creating the task."""
        self._submitted.add(task.uid)
        if task.state == "ready":
            self._enqueue(task)

    def _enqueue(self, task: Task) -> None:
        """Task is schedulable: hand to the scheduler (or run a host flush)."""
        if task.uid in self._flush_tasks:
            self._run_flush(task)
            return
        self.scheduler.push(task, self.ctx)
        self._wake_all()

    # ----------------------------------------------------------- host flush

    def _run_flush(self, task: Task) -> None:
        end = self.sim.now
        for access in task.accesses:
            end = max(end, self.transfer.ensure_host_valid(access.tile, self.sim.now))
        task.device = None
        task.start_time = self.sim.now
        task.state = "running"
        self.sim.schedule(end, self._complete_flush, task, end)

    def _complete_flush(self, task: Task, end: float) -> None:
        task.end_time = end
        self._finish(task)

    # -------------------------------------------------------------- workers

    def _wake_all(self) -> None:
        # Fair drain: one launch per worker per round, so an early-woken
        # worker cannot swallow the whole ready pool into its lookahead
        # window before its peers get a turn.  The scan origin rotates across
        # calls — with a fixed origin, tasks released one at a time would
        # always land on the lowest-numbered eligible worker and starve the
        # tail of the worker array.
        self._wake_origin = (self._wake_origin + 1) % len(self.workers)
        order = self.workers[self._wake_origin:] + self.workers[: self._wake_origin]
        scheduler = self.scheduler
        progress = True
        while progress:
            progress = False
            if scheduler.empty():
                break  # nothing to hand out; skip the per-worker pop round
            for worker in order:
                if worker.inflight >= worker.window:
                    continue
                task = scheduler.pop(
                    worker.device, self.ctx, idle=self._compute_idle(worker)
                )
                if task is None:
                    continue
                self._launch(task, worker)
                progress = True

    def _compute_idle(self, worker: _Worker) -> bool:
        """A worker may steal while it is starving (little work in flight).

        Tasks in flight that are still waiting on transfers do not make the
        GPU busy — XKaapi worker threads keep stealing while DMAs are pending
        — but a worker with a few tasks enqueued ahead stops raiding, which
        bounds hoarding while preserving transfer/compute pipelining.
        """
        if worker.streams[0].busy_until <= self.sim.now:
            return True
        return worker.inflight < worker.steal_threshold

    def _launch(self, task: Task, worker: _Worker) -> None:
        dev = worker.device
        task.device = dev
        task.state = "running"
        worker.inflight += 1
        protect = tuple(a.tile.key for a in task.accesses)
        inputs_ready = self.sim.now + self.pop_overhead
        transfer_cost = 0.0
        pinned = []
        for access in task.accesses:
            if access.reads:
                before = self.sim.now
                ready = self.transfer.ensure_resident(
                    access.tile, dev, earliest=self.sim.now, protect=protect
                )
                transfer_cost += max(0.0, ready - before)
                inputs_ready = max(inputs_ready, ready)
                cache = self.transfer.caches[dev]
                if access.tile.key in cache:
                    cache.pin(access.tile.key)
                    pinned.append(access.tile.key)
            else:  # WRITE-only output
                ready = self.transfer.allocate_output(access.tile, dev, self.sim.now)
                inputs_ready = max(inputs_ready, ready)

        spec = self.platform.gpus[dev]
        duration = spec.kernel_time(
            task.flops, task.dim, wordsize=task.output_tile.wordsize,
            regularity=task.regularity,
        )
        streams = worker.streams
        stream = (
            streams[0]
            if len(streams) == 1
            else min(streams, key=lambda s: s.busy_until)
        )
        if self.overlap:
            start, end = stream.reserve(duration, earliest=inputs_ready)
        else:
            # Copies and kernel share one in-order lane (cuBLAS-XT-style):
            # the stream is also occupied for the transfer durations.
            start, end = stream.reserve(duration + transfer_cost, earliest=inputs_ready)
            start = end - duration
        task.start_time = start
        task.end_time = end
        self.trace.record(TraceCategory.KERNEL, dev, start, end, task.name)
        self.sim.schedule(end, self._complete_task, task, worker, tuple(pinned))

    def _complete_task(self, task: Task, worker: _Worker, pinned: tuple) -> None:
        """Kernel-completion event: writes registered, pins dropped, wake-up."""
        self._execute_numeric(task)
        for access in task.accesses:
            if access.writes:
                self.transfer.register_write(access.tile, worker.device, self.sim.now)
        cache = self.transfer.caches[worker.device]
        for key in pinned:
            cache.unpin(key)
        if not self.retain_inputs:
            self._drop_clean_inputs(task, worker.device)
        if self.transfer.sanitizer is not None:
            for access in task.accesses:
                self.transfer.sanitize(access.tile.key)
        worker.inflight -= 1
        self._finish(task)

    def _drop_clean_inputs(self, task: Task, device: int) -> None:
        """Batched-workspace model: free read-only staging tiles after use."""
        from repro.errors import CoherenceError
        from repro.memory.coherence import ReplicaState

        directory = self.transfer.directory
        cache = self.transfer.caches[device]
        for access in task.accesses:
            if access.writes:
                continue
            key = access.tile.key
            if directory.state(key, device) is not ReplicaState.SHARED:
                continue
            if key not in cache or cache.pin_count(key):
                continue
            try:
                directory.evict(key, device)
            except CoherenceError:
                continue  # last replica somewhere transient; keep it
            cache.remove(key)
            self.transfer.datastore.drop_device_tile(key, device)

    def _execute_numeric(self, task: Task) -> None:
        if task.kernel is None:
            return
        if not all(a.tile.matrix.numeric for a in task.accesses):
            return  # perf mode
        dev = task.device
        assert dev is not None
        arrays = self.transfer.datastore.arrays_for(
            dev, [a.tile for a in task.accesses]
        )
        task.run_numeric(arrays)

    def _finish(self, task: Task) -> None:
        self._completed += 1
        newly_ready = self.graph.complete(task)
        for succ in newly_ready:
            if succ.uid in self._submitted:
                self._enqueue(succ)
        self.scheduler.on_complete(task, self.ctx)
        self._wake_all()

    # ------------------------------------------------------------------ run

    def run_to_completion(self, max_events: int | None = None) -> float:
        """Drain the event heap; returns the makespan.

        Raises :class:`SchedulingError` if tasks remain unexecuted (a
        scheduling bug or an impossible mapping).
        """
        self.sim.run(max_events=max_events)
        if not self.graph.all_done():
            stuck = [t for t in self.graph.tasks if t.state != "done"]
            raise SchedulingError(
                f"{len(stuck)} tasks never completed, e.g. {stuck[0]!r}"
            )
        return self.sim.now

    @property
    def completed_tasks(self) -> int:
        return self._completed
