"""XKaapi-equivalent dataflow task runtime.

The paper's two heuristics live here, in the transfer manager
(:mod:`repro.runtime.transfer`):

* :class:`~repro.runtime.policies.SourcePolicy.TOPOLOGY` — pick the transfer
  source among valid replicas in decreasing link-performance order (§III-B);
* :class:`~repro.runtime.policies.SourcePolicy.TOPOLOGY_OPTIMISTIC` — when no
  device replica is valid yet, chain onto an in-flight copy instead of going
  back to the host (§III-C).

The rest of the subpackage is the substrate the heuristics plug into: task
graphs derived from data access modes, per-device workers with XKaapi's
stream-per-operation-type model, schedulers (locality work stealing, DMDAS,
owner-computes, round-robin), and the asynchronous user API.
"""

from repro.runtime.access import Access, AccessMode
from repro.runtime.api import Runtime, RuntimeOptions
from repro.runtime.policies import SourcePolicy
from repro.runtime.task import Task
from repro.runtime.dataflow import TaskGraph

__all__ = [
    "Access",
    "AccessMode",
    "Runtime",
    "RuntimeOptions",
    "SourcePolicy",
    "Task",
    "TaskGraph",
]
