"""The asynchronous user-facing runtime — the simulated XKBLAS/XKaapi surface.

:class:`Runtime` wires a platform to the simulator, coherence directory,
caches, fabric, transfer manager, scheduler and executor, and exposes the
XKBLAS programming model (§III, §IV-F):

* ``submit(task)`` — asynchronous task submission; dependencies between BLAS
  calls are derived from tile accesses, so sequences of calls compose without
  synchronization barriers;
* ``memory_coherent_async(matrix)`` — the *lazy* coherence operation: the user
  says which matrix must become valid on the host, the runtime schedules D2H
  write-backs as soon as the producing tasks finish;
* ``distribute_2d_block_cyclic_async(matrix, nb, distribution)`` — the
  data-on-device primitive of §IV-C
  (``xkblas_distribute_2Dblock_cyclic_async``);
* ``sync()`` — wait for everything (drains the virtual-time event heap) and
  return the makespan.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

from repro import config
from repro.errors import SchedulingError
from repro.memory.cache import (
    DeviceCache,
    EvictionPolicy,
    POLICIES,
    ReadOnlyFirstPolicy,
)
from repro.memory.coherence import CoherenceDirectory
from repro.memory.layout import BlockCyclicDistribution, TilePartition
from repro.memory.matrix import Matrix
from repro.runtime.datastore import DataStore
from repro.runtime.executor import Executor
from repro.runtime.fabric import Fabric
from repro.runtime.policies import SourcePolicy
from repro.runtime.scheduler import (
    DmdaScheduler,
    LocalityWorkStealing,
    OwnerComputesScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.runtime.task import Task
from repro.runtime.transfer import TransferManager
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.topology.platform import Platform


@dataclasses.dataclass(slots=True)
class RuntimeOptions:
    """Tunable knobs of one runtime instance (one library configuration)."""

    #: transfer source-selection policy — the paper's ablation axis.
    source_policy: SourcePolicy = SourcePolicy.TOPOLOGY_OPTIMISTIC
    #: scheduler name: "xkaapi-locality-ws", "starpu-dmdas", "owner-computes",
    #: "round-robin" — or a factory via ``scheduler_factory``.
    scheduler: str = "xkaapi-locality-ws"
    scheduler_factory: Callable[[Platform], Scheduler] | None = None
    #: eviction policy name (see :data:`repro.memory.cache.POLICIES`).
    eviction: str = ReadOnlyFirstPolicy.name
    #: per-task host-side creation overhead, seconds.
    task_overhead: float = config.XKAAPI_TASK_OVERHEAD
    #: per-pop scheduling overhead, seconds.
    pop_overhead: float = config.SCHEDULE_POP_OVERHEAD
    #: concurrent kernel streams per device.
    kernel_streams: int = config.DEFAULT_KERNEL_STREAMS
    #: max tasks in flight per device (lookahead/prefetch depth).
    pipeline_window: int | None = None
    #: False serializes copies and kernels per stream (no overlap).
    overlap: bool = True
    #: False drops clean input replicas right after each task (batched-
    #: workspace model, e.g. SLATE's block outer product: panels are staging
    #: buffers, not a cache, so every step re-fetches over PCIe).
    retain_inputs: bool = True
    #: fraction of device memory usable as software cache.
    cache_fraction: float = 0.92
    #: record an nvprof-like trace (disable for the largest sweeps).  The
    #: default follows :data:`repro.config.TRACE_EVENTS` at construction, so
    #: benchmarks can time the untraced production path by flipping the module
    #: flag without threading an argument through every library surface.
    trace: bool = dataclasses.field(default_factory=lambda: config.TRACE_EVENTS)
    #: cap on recorded trace intervals (``None`` = unbounded).  Huge runs
    #: with tracing on keep the first ``trace_limit`` intervals and count the
    #: rest (``TraceRecorder.dropped``) instead of holding millions of tuples.
    trace_limit: int | None = None
    #: submit library calls through the streaming intake
    #: (:meth:`Runtime.submit_stream`): tasks are pulled from the tiled
    #: builders' generators one at a time during the run instead of being
    #: materialized up front.  Virtual-time output is bit-identical to the
    #: eager path; combine with ``retain_tasks=False`` for bounded memory on
    #: million-task graphs.
    streaming: bool = False
    #: admission window of the streaming intake: at most this many tasks live
    #: (submitted, not yet retired) before the pull chain pauses until
    #: completions make room — StarPU-style submission throttling.  Graphs
    #: smaller than the window never pause, keeping virtual-time accounting
    #: bit-identical to the eager path; ``None`` disables throttling (and with
    #: it the flat-memory guarantee).
    stream_window: int | None = 8192
    #: False lets the task graph *reclaim* finished tasks (references dropped,
    #: task list replaced by counters).  Required True for debug passes
    #: (``validate_acyclic``, ``graph.tasks``, the verify subsystem) and for
    #: DMDAS, whose critical-path priorities need the whole DAG resident.
    retain_tasks: bool = True
    #: host page-locking (cudaHostRegister) bandwidth in bytes/s, charged once
    #: per matrix at its first host transfer.  ``None`` (default) ignores the
    #: cost, matching the paper's methodology (§IV-A: "the time to page lock
    #: the memory was ignored in all experiments"); set a figure (~5 GB/s is
    #: typical) to quantify what that exclusion hides.
    pinning_bandwidth: float | None = None
    #: distribution used by owner-computes when tasks carry no hint.
    distribution: BlockCyclicDistribution | None = None
    #: run the coherence-protocol sanitizer at every directory transition
    #: (ASan-style debugging mode; see :mod:`repro.verify.coherence`).  The
    #: default follows :data:`repro.config.VERIFY_COHERENCE` at construction.
    verify_coherence: bool = dataclasses.field(
        default_factory=lambda: config.VERIFY_COHERENCE
    )
    #: fuse per-task submission bookkeeping into batched engine events (see
    #: ``runtime/executor.py`` — "Fused-event dispatch").  Bit-identical
    #: virtual-time output; automatically falls back to unfused dispatch while
    #: a trace recorder is enabled so traces see every intermediate event.
    #: The default follows :data:`repro.config.FUSED_EVENTS` at construction.
    fused_events: bool = dataclasses.field(
        default_factory=lambda: config.FUSED_EVENTS
    )
    #: install :class:`repro.bench.phases.PhaseCounters` on this runtime —
    #: per-phase (engine/dispatch/transfer-path) wall-time accumulators for
    #: perf diagnosis.  Off by default: the production hot path then carries
    #: no timing code at all.  The default follows
    #: :data:`repro.config.PHASE_COUNTERS` at construction.
    phase_counters: bool = dataclasses.field(
        default_factory=lambda: config.PHASE_COUNTERS
    )


class Runtime:
    """One simulated multi-GPU runtime instance over a platform."""

    def __init__(self, platform: Platform, options: RuntimeOptions | None = None) -> None:
        self.platform = platform
        self.options = options or RuntimeOptions()
        opts = self.options
        self.sim = Simulator()
        self.trace = TraceRecorder(enabled=opts.trace, max_intervals=opts.trace_limit)
        self.directory = CoherenceDirectory()
        self.datastore = DataStore()
        self.fabric = Fabric(self.sim, platform)
        self.caches = {
            dev: DeviceCache(
                dev, int(platform.gpus[dev].memory_bytes * opts.cache_fraction)
            )
            for dev in platform.device_ids()
        }
        try:
            eviction: EvictionPolicy = POLICIES[opts.eviction]()
        except KeyError:
            raise SchedulingError(
                f"unknown eviction policy {opts.eviction!r}; "
                f"choose from {sorted(POLICIES)}"
            ) from None
        sanitizer = None
        if opts.verify_coherence:
            from repro.verify.coherence import CoherenceSanitizer

            sanitizer = CoherenceSanitizer(self.directory, platform=platform)
        self.sanitizer = sanitizer
        self.transfer = TransferManager(
            sim=self.sim,
            platform=platform,
            fabric=self.fabric,
            directory=self.directory,
            datastore=self.datastore,
            caches=self.caches,
            eviction_policy=eviction,
            trace=self.trace,
            policy=opts.source_policy,
            pinning_bandwidth=opts.pinning_bandwidth,
            sanitizer=sanitizer,
        )
        self.scheduler = self._make_scheduler()
        self.executor = Executor(
            sim=self.sim,
            platform=platform,
            scheduler=self.scheduler,
            transfer=self.transfer,
            trace=self.trace,
            task_overhead=opts.task_overhead,
            pop_overhead=opts.pop_overhead,
            kernel_streams=opts.kernel_streams,
            pipeline_window=opts.pipeline_window,
            overlap=opts.overlap,
            retain_inputs=opts.retain_inputs,
            retain_tasks=opts.retain_tasks,
            stream_window=opts.stream_window,
            fused_events=opts.fused_events,
        )
        #: per-phase wall-time counters, or None when not enabled.  Installed
        #: last: the wrappers must see the fully-assembled object graph.
        self.phases = None
        if opts.phase_counters:
            from repro.bench.phases import PhaseCounters

            self.phases = PhaseCounters().install(self)
        self._partitions: dict[int, TilePartition] = {}

    def _make_scheduler(self) -> Scheduler:
        opts = self.options
        if opts.scheduler_factory is not None:
            return opts.scheduler_factory(self.platform)
        n = self.platform.num_gpus
        if opts.scheduler == LocalityWorkStealing.name:
            return LocalityWorkStealing(n)
        if opts.scheduler == DmdaScheduler.name:
            return DmdaScheduler(n, self.platform)
        if opts.scheduler == OwnerComputesScheduler.name:
            return OwnerComputesScheduler(n, distribution=opts.distribution)
        if opts.scheduler == RoundRobinScheduler.name:
            return RoundRobinScheduler(n)
        raise SchedulingError(f"unknown scheduler {self.options.scheduler!r}")

    # ---------------------------------------------------------------- tiling

    def partition(self, matrix: Matrix, nb: int) -> TilePartition:
        """Tile a matrix (cached per matrix; one tiling per runtime)."""
        part = self._partitions.get(matrix.id)
        if part is None or part.nb != nb:
            part = TilePartition(matrix, nb)
            self._partitions[matrix.id] = part
            for tile in part:
                self.datastore.register(tile)
        return part

    # ------------------------------------------------------------ submission

    def submit(self, task: Task) -> Task:
        """Submit one asynchronous task."""
        return self.executor.submit(task)

    def submit_all(self, tasks: Sequence[Task]) -> None:
        for task in tasks:
            self.executor.submit(task)

    def submit_stream(self, tasks: Iterable[Task]) -> None:
        """Submit tasks lazily: each is pulled at the previous submission
        instant, so at most one unsubmitted task of the stream is resident.

        Bit-identical virtual-time accounting to :meth:`submit_all` (same
        submission order, same ``task_overhead`` charges, one event per
        task).  Schedulers that need whole-DAG critical-path priorities
        (DMDAS, ``needs_priorities=True``) cannot act on a graph that is not
        materialized, so for them the stream is drained eagerly — equivalent
        to :meth:`submit_all`, documented in DESIGN §9.
        """
        if getattr(self.scheduler, "needs_priorities", False):
            for task in tasks:
                self.executor.submit(task)
            return
        self.executor.submit_stream(tasks)

    # ---------------------------------------------------------- lazy flushes

    def memory_coherent_async(self, matrix: Matrix, nb: int | None = None) -> None:
        """Schedule host write-backs of a matrix's tiles (lazy coherence).

        Each tile gets a reads-only flush task depending on its last writer,
        so D2H transfers start "as soon as tile results are computed" (§IV-F)
        and overlap the remaining computation.
        """
        part = self._partitions.get(matrix.id)
        if part is None:
            part = self.partition(matrix, nb or config.DEFAULT_TILE_SIZE)
        for tile in part:
            task = Task(
                name="flush",
                accesses=[tile.read_access],
                flops=0.0,
                dim=tile.m,
            )
            self.executor.submit(task, is_flush=True)

    # -------------------------------------------------------- data-on-device

    def distribute_2d_block_cyclic_async(
        self,
        matrix: Matrix,
        nb: int,
        distribution: BlockCyclicDistribution,
        upload: bool = True,
    ) -> TilePartition:
        """Place a matrix's tiles on devices in 2D block-cyclic fashion.

        With ``upload=True`` the placement is performed by H2D transfers at
        time zero (charged to the run only if the caller does not reset
        timing); with ``upload=False`` the tiles are *seeded* directly in
        device memory, modelling matrices that already live on the GPUs as in
        the paper's data-on-device scenario (time to distribute excluded).
        """
        part = self.partition(matrix, nb)
        for tile in part:
            dev = distribution.owner(tile.i, tile.j)
            if upload:
                self.transfer.ensure_resident(tile, dev)
            else:
                # Register up front: the residency fast paths rely on every
                # device-valid tile being known to the data store already.
                self.datastore.register(tile)
                self.directory.seed_device(tile.key, dev, exclusive=True)
                self.caches[dev].insert(tile.key, tile.nbytes, now=self.sim.now)
                self.caches[dev].mark_dirty(tile.key, True)
                # Numeric seeding: materialize the device array from host data.
                if matrix.numeric:
                    self.datastore.allocate_device_tile(tile, dev)
                    self.datastore.device_array(dev, tile.key)[...] = (
                        self.datastore.host_view(tile)
                    )
        return part

    # ------------------------------------------------------------------ sync

    def sync(self, max_events: int | None = None) -> float:
        """Wait for all submitted work; returns the virtual makespan (s)."""
        return self.executor.run_to_completion(max_events=max_events)

    # ------------------------------------------------------------ statistics

    def stats(self) -> dict[str, object]:
        """Aggregate run statistics (transfers, cache hits, steals...)."""
        out: dict[str, object] = {
            "makespan": self.sim.now,
            "tasks": self.executor.completed_tasks,
            "transfers": self.transfer.stats(),
            "host_bytes": self.fabric.host_bytes_total(),
            "p2p_bytes": self.fabric.p2p_bytes_total(),
            "caches": {dev: c.stats() for dev, c in self.caches.items()},
        }
        if isinstance(self.scheduler, LocalityWorkStealing):
            out["steals"] = self.scheduler.steals
        return out
