"""Transfer source-selection policies — the paper's ablation axis.

The four policies map one-to-one onto the configurations of the paper's
Figure 3:

* ``TOPOLOGY_OPTIMISTIC`` — "XKBlas": both heuristics enabled.
* ``TOPOLOGY`` — "XKBlas, no heuristic": optimistic device-to-device chaining
  disabled, topology-aware source ranking kept.
* ``ANY_VALID`` — "XKBlas, no heuristic, no topo": any valid device replica
  may serve as source (first found, no ranking), falling back to the host.
* ``HOST_ONLY`` — degenerate baseline used by libraries that never exploit
  P2P (SLATE's batched outer-product path, cuBLAS-XT).
"""

from __future__ import annotations

import enum


class SourcePolicy(enum.Enum):
    """How the transfer manager picks the source replica of a tile."""

    HOST_ONLY = "host-only"
    ANY_VALID = "any-valid"
    TOPOLOGY = "topology"
    TOPOLOGY_OPTIMISTIC = "topology-optimistic"

    @property
    def uses_device_sources(self) -> bool:
        return self is not SourcePolicy.HOST_ONLY

    @property
    def topology_aware(self) -> bool:
        return self in (SourcePolicy.TOPOLOGY, SourcePolicy.TOPOLOGY_OPTIMISTIC)

    @property
    def optimistic(self) -> bool:
        return self is SourcePolicy.TOPOLOGY_OPTIMISTIC

    @classmethod
    def xkblas_variant(cls, label: str) -> "SourcePolicy":
        """Map the paper's figure labels onto policies."""
        return {
            "xkblas": cls.TOPOLOGY_OPTIMISTIC,
            "xkblas-no-heuristic": cls.TOPOLOGY,
            "xkblas-no-heuristic-no-topo": cls.ANY_VALID,
        }[label]
