"""Data access modes.

Tasks declare how they touch each tile; the dependency builder
(:mod:`repro.runtime.dataflow`) derives the DAG from these declarations, the
dependent-task model of XKaapi (paper §I, §III).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.memory.tile import Tile


class AccessMode(enum.Flag):
    """How a task accesses a tile."""

    READ = enum.auto()
    WRITE = enum.auto()
    READWRITE = READ | WRITE

    @property
    def reads(self) -> bool:
        return bool(self & AccessMode.READ)

    @property
    def writes(self) -> bool:
        return bool(self & AccessMode.WRITE)


# Short aliases used by the tiled algorithms, mirroring task-runtime idiom.
R = AccessMode.READ
W = AccessMode.WRITE
RW = AccessMode.READWRITE


@dataclasses.dataclass(frozen=True, slots=True)
class Access:
    """One (tile, mode) declaration of a task."""

    tile: Tile
    mode: AccessMode

    @property
    def reads(self) -> bool:
        return self.mode.reads

    @property
    def writes(self) -> bool:
        return self.mode.writes

    def __repr__(self) -> str:
        tag = {AccessMode.READ: "R", AccessMode.WRITE: "W", AccessMode.READWRITE: "RW"}[
            self.mode
        ]
        return f"{tag}:{self.tile.key!r}"
