"""Data access modes.

Tasks declare how they touch each tile; the dependency builder
(:mod:`repro.runtime.dataflow`) derives the DAG from these declarations, the
dependent-task model of XKaapi (paper §I, §III).
"""

from __future__ import annotations

import enum

from repro.memory.tile import Tile


class AccessMode(enum.Flag):
    """How a task accesses a tile.

    ``reads``/``writes`` use identity checks over the three valid members
    rather than flag arithmetic: ``enum.Flag.__and__`` resolves a member
    lookup per call, and the dependency builder plus the executor consult
    these predicates for every access of every task.
    """

    READ = enum.auto()
    WRITE = enum.auto()
    READWRITE = READ | WRITE

    @property
    def reads(self) -> bool:
        return self is not AccessMode.WRITE

    @property
    def writes(self) -> bool:
        return self is not AccessMode.READ


# Short aliases used by the tiled algorithms, mirroring task-runtime idiom.
R = AccessMode.READ
W = AccessMode.WRITE
RW = AccessMode.READWRITE


class Access:
    """One (tile, mode) declaration of a task.

    ``reads``/``writes`` are materialized as plain attributes at construction
    (rather than properties chaining into enum arithmetic) — they are read on
    every dependency derivation, launch and completion.

    A hand-written ``__slots__`` class rather than a frozen dataclass: builders
    create one per operand per task (three per GEMM tile task), and the frozen
    machinery's ``object.__setattr__`` calls tripled the construction cost of
    the graph-build phase.  Instances are immutable by convention.
    """

    __slots__ = ("tile", "mode", "reads", "writes")

    def __init__(self, tile: Tile, mode: AccessMode) -> None:
        self.tile = tile
        self.mode = mode
        self.reads = mode is not AccessMode.WRITE
        self.writes = mode is not AccessMode.READ

    def __repr__(self) -> str:
        tag = {AccessMode.READ: "R", AccessMode.WRITE: "W", AccessMode.READWRITE: "RW"}[
            self.mode
        ]
        return f"{tag}:{self.tile.key!r}"
