"""Data access modes.

Tasks declare how they touch each tile; the dependency builder
(:mod:`repro.runtime.dataflow`) derives the DAG from these declarations, the
dependent-task model of XKaapi (paper §I, §III).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.memory.tile import Tile


class AccessMode(enum.Flag):
    """How a task accesses a tile.

    ``reads``/``writes`` use identity checks over the three valid members
    rather than flag arithmetic: ``enum.Flag.__and__`` resolves a member
    lookup per call, and the dependency builder plus the executor consult
    these predicates for every access of every task.
    """

    READ = enum.auto()
    WRITE = enum.auto()
    READWRITE = READ | WRITE

    @property
    def reads(self) -> bool:
        return self is not AccessMode.WRITE

    @property
    def writes(self) -> bool:
        return self is not AccessMode.READ


# Short aliases used by the tiled algorithms, mirroring task-runtime idiom.
R = AccessMode.READ
W = AccessMode.WRITE
RW = AccessMode.READWRITE


@dataclasses.dataclass(frozen=True, slots=True)
class Access:
    """One (tile, mode) declaration of a task.

    ``reads``/``writes`` are materialized as plain attributes at construction
    (rather than properties chaining into enum arithmetic) — they are read on
    every dependency derivation, launch and completion.
    """

    tile: Tile
    mode: AccessMode
    reads: bool = dataclasses.field(init=False, repr=False)
    writes: bool = dataclasses.field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", self.mode.reads)
        object.__setattr__(self, "writes", self.mode.writes)

    def __repr__(self) -> str:
        tag = {AccessMode.READ: "R", AccessMode.WRITE: "W", AccessMode.READWRITE: "RW"}[
            self.mode
        ]
        return f"{tag}:{self.tile.key!r}"
