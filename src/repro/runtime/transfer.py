"""The transfer manager — where the paper's two heuristics live.

``TransferManager.ensure_resident(tile, dst)`` makes a tile valid on a device
and returns the virtual time at which it is usable.  Source selection follows
the active :class:`~repro.runtime.policies.SourcePolicy`:

1. already valid on ``dst`` → ready immediately;
2. already **in flight** to ``dst`` → ready when that transfer completes (this
   alone deduplicates host→device copies, §III-C: "the heuristic avoids
   duplicate tile transfers from main memory");
3. some device holds a valid replica → with the **topology-aware** heuristic
   the source is the valid device with the best link-performance rank toward
   ``dst`` (§III-B); without it, an arbitrary (deterministically pseudo-random)
   valid device;
4. no device replica valid, but one is in flight somewhere → with the
   **optimistic** heuristic, wait for the flight to land and forward
   device-to-device (§III-C); otherwise fall back to the host;
5. otherwise copy from the host (after restoring host validity if the only
   valid replica is dirty on a device).

The manager also owns device-memory admission: before a transfer lands, space
is ensured in the destination's :class:`~repro.memory.cache.DeviceCache`,
evicting victims chosen by the cache's policy and writing dirty ones back.

Hot-path layout
---------------

The per-tile state the manager consults per access is array-backed on the
directory's interned tile ids: validity and host-validity bits
(``directory._valid``), the in-flight destination bitmask
(``directory._fmask`` — one integer test answers "nothing in flight", the
overwhelmingly common case), the insertion-ordered flight maps
(``directory._flights``) and the page-lock deadlines (``_pin_ready``, indexed
by the run-local :meth:`DataStore.matrix_index`; the dict-keyed view survives
as the :attr:`pinned_matrices` adapter).  Source selection reads the fabric's
precomputed tables (`rank_key`, `best_source_by_mask`, `mask_members`,
`link_bandwidth`) instead of re-deriving topology facts per transfer.

The executor's launch path enters through :meth:`ensure_resident_batch`: one
pass over all of a task's accesses with every per-access attribute lookup
hoisted.  The batch is *op-for-op* identical to calling the single-access
entry points in declaration order — every cache counter, channel reservation,
directory transition and completion post happens in the same sequence, so all
virtual-time output (golden makespans, transfer stats, per-task schedules) is
bit-identical by construction.
"""

from __future__ import annotations

from repro.errors import CoherenceError
from repro.memory.cache import DeviceCache, EvictionPolicy
from repro.memory.coherence import CoherenceDirectory
from repro.memory.tile import Tile, TileKey
from repro.runtime.datastore import DataStore
from repro.runtime.fabric import Fabric
from repro.runtime.policies import SourcePolicy
from repro.sim.engine import Simulator
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.link import HOST
from repro.topology.platform import Platform

#: bit of the host inside the validity / in-flight masks (``HOST + 1 == 0``).
_HOST_BIT = 1 << (HOST + 1)


def _mix(matrix_index: int, i: int, j: int, dst: int) -> int:
    """Deterministic integer hash of (tile, destination) — stable across
    processes (pure integer arithmetic, no salted hashing).

    ``matrix_index`` must be the run-local :meth:`DataStore.matrix_index`,
    never the process-global ``Matrix.id``: a cell's simulated outcome has
    to be a pure function of its spec (the sweep executor caches outcomes
    and replays them across processes), so no input may encode how many
    matrices happened to exist earlier in the process.
    """
    h = (matrix_index * 1000003 + i * 10007 + j * 101 + dst) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class TransferManager:
    """Replica movement engine shared by all simulated libraries."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        fabric: Fabric,
        directory: CoherenceDirectory,
        datastore: DataStore,
        caches: dict[int, DeviceCache],
        eviction_policy: EvictionPolicy,
        trace: TraceRecorder,
        policy: SourcePolicy = SourcePolicy.TOPOLOGY_OPTIMISTIC,
        pinning_bandwidth: float | None = None,
        sanitizer=None,
    ) -> None:
        self.sim = sim
        #: optional :class:`repro.verify.coherence.CoherenceSanitizer` called
        #: after every directory state transition (``verify_coherence`` mode).
        self.sanitizer = sanitizer
        self.platform = platform
        self.fabric = fabric
        self.directory = directory
        self.datastore = datastore
        self.caches = caches
        self.eviction_policy = eviction_policy
        #: the shared-elsewhere hint feeds only policies that declare they
        #: read it (BLASX two-level); for the others the directory walk after
        #: every write and transfer landing is maintenance of a bit nobody
        #: consults, so it is skipped wholesale.
        self._track_shared = eviction_policy.uses_shared_hint
        # Install the policy's incremental victim index on every cache so
        # _make_room's choose_victims pops candidates instead of scanning and
        # sorting the resident set (see DeviceCache.set_eviction_policy).
        for cache in caches.values():
            cache.set_eviction_policy(eviction_policy)
        self.trace = trace
        self.policy = policy
        #: host page-locking model (None = ignored, the paper's methodology).
        self.pinning_bandwidth = pinning_bandwidth
        #: array-backed page-lock deadlines, indexed by the run-local
        #: :meth:`DataStore.matrix_index` (-1.0 = not yet page-locked); the
        #: dict-keyed view lives on as :attr:`pinned_matrices`.
        self._pin_ready: list[float] = []
        self._pin_clock = 0.0  # page-locking is serial host work
        # Direct references into the directory's interning dict and state
        # arrays for the residency fast paths below.  All are bound once in
        # CoherenceDirectory.__init__ and only ever mutated in place
        # (append/assign), never rebound, so the aliases stay live.
        self._dir_ids = directory._ids
        self._dir_valid = directory._valid
        self._dir_fmask = directory._fmask
        self._dir_flights = directory._flights
        # Source-selection tables, built once per platform on the fabric and
        # shared by every consumer (see Fabric.__init__).
        self._rank_key = fabric.rank_key
        self._link_bandwidth = fabric.link_bandwidth
        self._best_by_mask = fabric.best_source_by_mask
        self._mask_members = fabric.mask_members
        # statistics
        self.h2d_transfers = 0
        self.d2h_transfers = 0
        self.p2p_transfers = 0
        self.optimistic_forwards = 0

    # ---------------------------------------------------------- verification

    def sanitize(self, key: TileKey) -> None:
        """Re-check the tile's coherence invariants (no-op without sanitizer)."""
        if self.sanitizer is not None:
            self.sanitizer.check_tile(key)

    # ------------------------------------------------------------ residency

    def ensure_resident(
        self,
        tile: Tile,
        dst: int,
        earliest: float | None = None,
        protect: tuple[TileKey, ...] = (),
    ) -> float:
        """Make ``tile`` valid on device ``dst``; return its ready time."""
        now = self.sim.now if earliest is None else max(self.sim.now, earliest)
        key = tile.key
        cache = self.caches[dst]

        # Inlined directory.lookup + is_valid_id: this is the hottest call of
        # the whole runtime (every read access of every launch lands here) and
        # the overwhelmingly common outcome is "already valid on dst" — one
        # dict probe plus one bit test, no method dispatch.
        tid = self._dir_ids.get(key)
        if tid is None:
            tid = self.directory.lookup(key)
        dstbit = 1 << (dst + 1)
        if self._dir_valid[tid] & dstbit:
            # A replica valid on a device was transferred or seeded there, so
            # the tile is already registered — the fast paths skip that call.
            cache.access_hit(key, now)
            return now

        if self._dir_fmask[tid] & dstbit:
            cache.record_access(key)
            flight = self._dir_flights[tid][dst]
            return max(now, flight.completes_at)

        return self._issue_transfer(tile, key, tid, dst, cache, now, protect)

    def ensure_resident_batch(
        self,
        accesses,
        dst: int,
        now: float,
        inputs_ready: float,
        protect: tuple[TileKey, ...] = (),
    ) -> tuple[float, float, list[TileKey]]:
        """Residency for every access of one launching task, in one pass.

        Read accesses are ensured resident on ``dst`` and pinned for the
        launch; WRITE-only accesses get their output allocation.  Returns
        ``(inputs_ready, transfer_cost, pinned)``: the given readiness bound
        folded with every access's ready time, the accumulated per-access
        delay beyond ``now`` (charged to the kernel stream by the no-overlap
        model), and the keys pinned on ``dst`` for the task's lifetime.

        Op-for-op equivalent to the former per-access launch loop (hit/pin
        bookkeeping on the fast path, :meth:`ensure_resident` plus the launch
        pin on misses, :meth:`allocate_output` for outputs): every cache
        counter, reservation, directory transition and completion post runs
        in the same order, so virtual-time output is bit-identical.  The
        batch form exists to hoist the per-access attribute traffic out of
        the hottest loop of the runtime.
        """
        transfer_cost = 0.0
        pinned: list[TileKey] = []
        pinned_append = pinned.append
        cache = self.caches[dst]
        resident_get = cache._resident.get
        dir_ids_get = self._dir_ids.get
        dir_valid = self._dir_valid
        dstbit = 1 << (dst + 1)
        for access in accesses:
            tile = access.tile
            key = tile.key
            if access.reads:
                tid = dir_ids_get(key)
                if tid is not None and dir_valid[tid] & dstbit:
                    entry = resident_get(key)
                    if entry is None:
                        # Valid in the directory but not byte-accounted:
                        # mirrors the defensive miss of the slow path.
                        cache.misses += 1
                    else:
                        cache.hits += 1
                        if now > entry.last_use:
                            entry.last_use = now
                        entry.pins += 1
                        pinned_append(key)
                    continue
                if tid is None:
                    tid = self.directory.lookup(key)
                if self._dir_fmask[tid] & dstbit:
                    # In flight to this device: chain on the landing; the
                    # replica was byte-accounted (and landing-pinned) when
                    # the transfer was issued, so the launch pin is one
                    # entry probe (record_access + pin_if_resident, fused).
                    entry = resident_get(key)
                    if entry is None:
                        cache.misses += 1
                    else:
                        cache.hits += 1
                        entry.pins += 1
                        pinned_append(key)
                    ready = self._dir_flights[tid][dst].completes_at
                else:
                    ready = self._issue_transfer(
                        tile, key, tid, dst, cache, now, protect
                    )
                    cache.pin(key)  # the launch pin, atop the landing pin
                    pinned_append(key)
                if ready > now:
                    transfer_cost += ready - now
                    if ready > inputs_ready:
                        inputs_ready = ready
            else:  # WRITE-only output (allocate_output, inlined)
                self.datastore.register(tile)
                if resident_get(key) is None:
                    tid = dir_ids_get(key)
                    if tid is None:
                        tid = self.directory.lookup(key)
                    if not self._dir_fmask[tid] & dstbit:
                        ready = self._make_room(dst, tile.nbytes, now)
                        self.datastore.allocate_device_tile(tile, dst)
                        if ready > inputs_ready:
                            inputs_ready = ready
        return inputs_ready, transfer_cost, pinned

    def _issue_transfer(
        self,
        tile: Tile,
        key: TileKey,
        tid: int,
        dst: int,
        cache: DeviceCache,
        now: float,
        protect: tuple[TileKey, ...],
    ) -> float:
        """The residency miss path: pick a source, make room, reserve the
        route, record the flight; returns the landing time.

        The op *order* here (stats, reservation, directory transition,
        insert+pin, completion post) is part of the bit-identity contract —
        recorded goldens pin the exact interleaving.
        """
        self.datastore.register(tile)
        if cache.record_access(key):
            # Resident but not valid and not in flight: stale bytes left by a
            # same-instant invalidation while pinned.
            cache.remove(key)
            self.datastore.drop_device_tile(key, dst)
        source, source_ready = self._select_source(key, dst, now, tid)
        alloc_ready = self._make_room(dst, tile.nbytes, now, protect=protect)
        if source == HOST:
            pin_ready = self._ensure_pinned(tile, now)
            if pin_ready > source_ready:
                source_ready = pin_ready
        # max(now, source_ready, alloc_ready), inlined (per-transfer path).
        start_lb = now
        if source_ready > start_lb:
            start_lb = source_ready
        if alloc_ready > start_lb:
            start_lb = alloc_ready
        start, end = self.fabric.reserve(source, dst, tile.nbytes, start_lb)
        self.directory.begin_transfer_id(tid, key, dst, completes_at=end, source=source)
        # Insert + protect until landed; the landing pin drops in the
        # completion event.
        cache.insert_pinned(key, tile.nbytes, now=end)
        # Pin the source replica too: a DMA must not read a freed buffer.
        src_pinned = source != HOST and self.caches[source].pin_if_resident(key)
        if source == HOST:
            self.h2d_transfers += 1
            if self.trace.enabled:
                self.trace.record(
                    TraceCategory.MEMCPY_HTOD, dst, start, end,
                    lambda: f"h2d {key}", tile.nbytes,
                )
        else:
            self.p2p_transfers += 1
            if self.trace.enabled:
                self.trace.record(
                    TraceCategory.MEMCPY_PTOP, dst, start, end,
                    lambda: f"p2p {source}->{dst} {key}", tile.nbytes,
                )

        self.sim.post(end, self._complete_d2d, tile, tid, source, dst, src_pinned)
        if self.sanitizer is not None:
            self.sanitizer.check_tile(key)
        return end

    def _complete_d2d(
        self, tile: Tile, tid: int, source: int, dst: int, src_pinned: bool
    ) -> None:
        """Completion event of a transfer landed on device ``dst``.

        ``tid`` is the directory id interned when the transfer was issued —
        ids are stable for the lifetime of the directory, so the completion
        event reuses it instead of re-hashing the key.
        """
        key = tile.key
        cache = self.caches[dst]
        landed = self.directory.complete_transfer_id(tid, key, dst)
        cache.unpin(key)
        if src_pinned:
            self.caches[source].unpin_if_resident(key)
        if landed:
            self.datastore.copy_tile(tile, source, dst)
            if self._track_shared:
                self._refresh_shared_flags(key, tid)
        else:
            # Invalidated mid-flight by a writer: drop the stale bytes.
            cache.remove(key)
            self.datastore.drop_device_tile(key, dst)
        self.sanitize(key)

    def _tile_mix(self, key: TileKey, dst: int) -> int:
        """The no-ranking pseudo-random pick, keyed on run-local state only."""
        return _mix(self.datastore.matrix_index(key.matrix_id), key.i, key.j, dst)

    def _select_source(
        self, key: TileKey, dst: int, now: float, tid: int
    ) -> tuple[int, float]:
        """Pick ``(source_location, source_ready_time)`` per the active policy.

        ``tid`` is the directory id of ``key`` — the caller already interned
        it, so this path never re-hashes the key against the directory.
        """
        dmask = (self._dir_valid[tid] >> 1) & ~(1 << dst)
        policy = self.policy
        if dmask and policy.uses_device_sources:
            if policy.topology_aware:
                table = self._best_by_mask
                if table is not None:
                    # Equivalent to Platform.peers_by_rank(dst, candidates)[0]
                    # (min over the same (rank, device-id) key), precomputed
                    # for every candidate mask — one list index per pick.
                    best = table[dst][dmask]
                else:  # platform too large for mask tables: walk the bitmask
                    rank = self._rank_key[dst]
                    best = -1
                    best_rank: tuple[int, int] | None = None
                    m = dmask
                    while m:
                        low = m & -m
                        m ^= low
                        d = low.bit_length() - 1
                        r = rank[d]
                        if best_rank is None or r < best_rank:
                            best, best_rank = d, r
            else:
                # "No ranking" = whichever replica the runtime happens to find
                # first; modelled as a deterministic pseudo-random pick so no
                # artificial hot source emerges (the paper's no-topo variant
                # is link-class-blind, not systematically biased).
                members = self._mask_members
                if members is not None:
                    candidates = members[dmask]
                else:
                    candidates = []
                    m = dmask
                    while m:
                        low = m & -m
                        m ^= low
                        candidates.append(low.bit_length() - 1)
                best = candidates[self._tile_mix(key, dst) % len(candidates)]
            self.caches[best].touch(key, now)
            return best, now
        fmask = self._dir_fmask[tid]
        if policy.optimistic and fmask & ~_HOST_BIT & ~(1 << (dst + 1)):
            # Optimistic device-to-device forwarding (§III-C): prefer waiting
            # for an in-flight replica and forwarding it over NVLink to
            # issuing another host copy over the congested PCIe fabric — but
            # only when the estimated arrival actually beats the direct host
            # route (a forward behind a long DMA backlog would be pessimism,
            # not optimism).  The flight-mask guard above skips the estimate
            # entirely when nothing is in flight toward another device.
            nbytes = self.datastore.tile(key).nbytes
            fabric = self.fabric
            host_eta = fabric.estimate(HOST, dst, nbytes, now)
            best_flight = None
            best_eta = host_eta
            for flight in self._dir_flights[tid].values():
                fdst = flight.dst
                if fdst == dst or fdst == HOST:
                    continue
                eta = fabric.estimate(
                    fdst, dst, nbytes, max(now, flight.completes_at)
                )
                if eta < best_eta:
                    best_flight, best_eta = flight, eta
            if best_flight is not None:
                self.optimistic_forwards += 1
                return best_flight.dst, best_flight.completes_at
        # Fall back to the host.
        if self._dir_valid[tid] & _HOST_BIT:
            return HOST, now
        if fmask & _HOST_BIT:
            return HOST, self._dir_flights[tid][HOST].completes_at
        return HOST, self.ensure_host_valid(self.datastore.tile(key), now)

    def _ensure_pinned(self, tile: Tile, now: float) -> float:
        """First host DMA touching a matrix pays its page-locking time.

        One serial host pass over the whole matrix (cudaHostRegister), charged
        once; later transfers of the same matrix are free — the amortization
        the paper assumes (§IV-A).
        """
        if self.pinning_bandwidth is None:
            return now
        matrix = tile.matrix
        idx = self.datastore.matrix_index(matrix.id)
        ready = self._pin_ready
        if idx >= len(ready):
            ready.extend([-1.0] * (idx + 1 - len(ready)))
        done = ready[idx]
        if done >= 0.0:
            return max(now, done)
        start = max(now, self._pin_clock)
        done = start + matrix.nbytes / self.pinning_bandwidth
        self._pin_clock = done
        ready[idx] = done
        if self.trace.enabled:
            self.trace.record(
                TraceCategory.HOST, -1, start, done,
                lambda: f"pin {matrix.name}", matrix.nbytes,
            )
        return done

    @property
    def pinned_matrices(self) -> dict[int, float]:
        """Dict-keyed adapter over the array-backed page-lock deadlines.

        ``matrix id -> ready time`` for every matrix whose page-locking has
        been charged; the hot path indexes :attr:`_pin_ready` directly.
        """
        ready = self._pin_ready
        return {
            mid: ready[idx]
            for mid, idx in self.datastore._matrix_index.items()
            if idx < len(ready) and ready[idx] >= 0.0
        }

    def preview_source(self, key: TileKey, dst: int) -> tuple[int, float]:
        """Where would a transfer to ``dst`` come from, and at what bandwidth?

        A read-only estimate used by cost-model schedulers (DMDAS); mirrors
        :meth:`_select_source` without touching any state.
        """
        directory = self.directory
        tid = directory.lookup(key)
        if directory.is_valid_id(tid, dst):
            return dst, float("inf")
        dmask = directory.device_valid_mask(tid) & ~(1 << dst)
        if dmask and self.policy.uses_device_sources:
            if self.policy.topology_aware:
                table = self._best_by_mask
                if table is not None:
                    src = table[dst][dmask]
                else:
                    src = min(
                        self._mask_walk(dmask), key=self._rank_key[dst].__getitem__
                    )
            else:
                members = self._mask_members
                candidates = (
                    members[dmask] if members is not None else self._mask_walk(dmask)
                )
                src = candidates[self._tile_mix(key, dst) % len(candidates)]
            return src, self._link_bandwidth[(src, dst)]
        return HOST, self.platform.host_bandwidth

    @staticmethod
    def _mask_walk(dmask: int) -> list[int]:
        """Set bits of a validity mask in ascending device order (fallback
        for platforms too large for the fabric's precomputed mask tables)."""
        out = []
        m = dmask
        while m:
            low = m & -m
            m ^= low
            out.append(low.bit_length() - 1)
        return out

    # ----------------------------------------------------------- host flush

    def ensure_host_valid(self, tile: Tile, earliest: float | None = None) -> float:
        """Make the host copy of ``tile`` valid (D2H write-back); return time.

        Used both by the HOST_ONLY fallback above and by the user-facing
        ``memory_coherent_async`` (lazy coherence, §IV-F).
        """
        now = self.sim.now if earliest is None else max(self.sim.now, earliest)
        key = tile.key
        directory = self.directory
        tid = self._dir_ids.get(key)
        if tid is None:
            tid = directory.lookup(key)
        if self._dir_valid[tid] & _HOST_BIT:
            return now
        if self._dir_fmask[tid] & _HOST_BIT:
            return max(now, self._dir_flights[tid][HOST].completes_at)
        mod = directory._mod[tid]
        if mod:
            source = (mod & -mod).bit_length() - 2
        else:
            dmask = self._dir_valid[tid] >> 1
            if not dmask:
                raise CoherenceError(f"{key}: no valid replica anywhere")
            source = (dmask & -dmask).bit_length() - 1
        if source == HOST:  # pragma: no cover - host_valid already checked
            return now
        start, end = self.fabric.reserve_d2h(source, tile.nbytes, now)
        directory.begin_transfer_id(tid, key, HOST, completes_at=end, source=source)
        # touch + pin of the source replica, fused into one entry probe.
        entry = self.caches[source]._resident.get(key)
        src_pinned = entry is not None
        if src_pinned:
            if now > entry.last_use:
                entry.last_use = now
            entry.pins += 1
        self.d2h_transfers += 1
        if self.trace.enabled:
            self.trace.record(
                TraceCategory.MEMCPY_DTOH, source, start, end,
                lambda: f"d2h {key}", tile.nbytes,
            )

        self.sim.post(end, self._complete_d2h, tile, tid, source, src_pinned)
        if self.sanitizer is not None:
            self.sanitizer.check_tile(key)
        return end

    def _complete_d2h(
        self, tile: Tile, tid: int, source: int, src_pinned: bool
    ) -> None:
        """Completion event of a write-back landed on the host."""
        key = tile.key
        landed = self.directory.complete_transfer_id(tid, key, HOST)
        if src_pinned:
            self.caches[source].unpin_if_resident(key)
        if landed:
            self.datastore.copy_tile(tile, source, HOST)
            if self.directory.state(key, source) is not None:
                try:
                    self.directory.downgrade(key, source)
                except CoherenceError:
                    pass  # already SHARED
                if key in self.caches[source]:
                    self.caches[source].mark_dirty(key, False)
        self.sanitize(key)

    # -------------------------------------------------------------- writes

    def register_write(self, tile: Tile, device: int, when: float) -> None:
        """A kernel on ``device`` wrote ``tile`` at time ``when``.

        The directory invalidates every other replica; caches and the data
        store drop theirs.
        """
        key = tile.key
        tid = self._dir_ids.get(key)
        if tid is None:
            tid = self.directory.lookup(key)
        caches = self.caches
        m = (self._dir_valid[tid] >> 1) & ~(1 << device)
        while m:
            low = m & -m
            m ^= low
            other = low.bit_length() - 1
            ccache = caches.get(other)
            if ccache is not None:
                oentry = ccache._resident.get(key)
                if oentry is not None and not oentry.pins:
                    # cache.remove, inlined (the pin guard above already ran).
                    del ccache._resident[key]
                    ccache._used -= oentry.nbytes
                    self.datastore.drop_device_tile(key, other)
                # else: pinned elsewhere (running reader finished at same
                # instant, event ordering): keep bytes, directory invalidates
                # below.
        self.directory.write_id(tid, device)
        cache = caches[device]
        # note_write, fused with the residency probe: one dict lookup covers
        # the "already resident" test and the dirty/recency update.
        entry = cache._resident.get(key)
        if entry is None:
            # WRITE-only access: the output tile was allocated, not transferred.
            # Space was planned by allocate_output but may have been consumed
            # by concurrent stagings; evict again if needed (write-back delay
            # of victims is already covered by their own D2H reservations).
            self._make_room(device, tile.nbytes, when)
            cache.insert(key, tile.nbytes, now=when)
            entry = cache._resident[key]
        entry.dirty = True
        if when > entry.last_use:
            entry.last_use = when
        if self._track_shared:
            self._refresh_shared_flags(key, tid)
        if self.sanitizer is not None:
            self.sanitizer.check_tile(key)

    def allocate_output(self, tile: Tile, device: int, earliest: float) -> float:
        """Ensure space for a WRITE-only output tile; returns readiness time."""
        key = tile.key
        cache = self.caches[device]
        self.datastore.register(tile)
        if key in cache or self.directory.in_flight_to(key, device) is not None:
            return earliest
        ready = self._make_room(device, tile.nbytes, earliest)
        self.datastore.allocate_device_tile(tile, device)
        # Residency is accounted at write registration (task completion).
        return ready

    # ------------------------------------------------------------- eviction

    def _make_room(
        self, device: int, nbytes: int, now: float, protect: tuple[TileKey, ...] = ()
    ) -> float:
        """Evict until ``nbytes`` fit on ``device``; return readiness time."""
        cache = self.caches[device]
        if nbytes <= cache.free:
            return now  # fits as-is; skip the victim-selection machinery
        victims = self.eviction_policy.choose_victims(cache, nbytes, protect=protect)
        datastore = self.datastore
        directory = self.directory
        dir_valid = self._dir_valid
        dir_fmask = self._dir_fmask
        # Pass 1 — classify every victim and batch the D2H reservations of
        # the dirty ones needing a fresh write-back.  Victims are distinct
        # tiles, so no victim's classification depends on another victim's
        # processing; classification draws no engine sequence numbers, so
        # grouping the reservations is invisible to the event stream
        # (reservations draw no seqs either, and chain per channel in victim
        # order exactly as the former one-call-per-victim sequence did).
        # Plan rows: [key, tile, dirty, tid, kind, source, start, end] with
        # kind 0 = clean, 1 = host already valid, 2 = write-back already in
        # flight, 3 = reserve a write-back.
        plans: list[list] = []
        groups: dict = {}  # d2h Channel -> [plan, ...] in victim order
        for vkey in victims:
            vtile = datastore.tile(vkey)
            if not cache.is_dirty(vkey):
                plans.append([vkey, vtile, False, -1, 0, HOST, now, now])
                continue
            tid = self._dir_ids.get(vkey)
            if tid is None:
                tid = directory.lookup(vkey)
            if dir_valid[tid] & _HOST_BIT:
                plans.append([vkey, vtile, True, tid, 1, HOST, now, now])
                continue
            if dir_fmask[tid] & _HOST_BIT:
                plans.append([vkey, vtile, True, tid, 2, HOST, now, now])
                continue
            mod = directory._mod[tid]
            if mod:
                source = (mod & -mod).bit_length() - 2
            else:
                dmask = dir_valid[tid] >> 1
                if not dmask:
                    raise CoherenceError(f"{vkey}: no valid replica anywhere")
                source = (dmask & -dmask).bit_length() - 1
            if source == HOST:  # pragma: no cover - host_valid checked above
                plans.append([vkey, vtile, True, tid, 1, HOST, now, now])
                continue
            plan = [vkey, vtile, True, tid, 3, source, now, now]
            groups.setdefault(self.fabric.d2h_channel(source), []).append(plan)
            plans.append(plan)
        for chan, chan_plans in groups.items():
            slots = chan.reserve_batch([(p[1].nbytes, now) for p in chan_plans])
            for p, (start, end) in zip(chan_plans, slots):
                p[6] = start
                p[7] = end
        # Pass 2 — apply every victim's state transitions in victim order,
        # op-for-op as the sequential remove → write-back → discard chain.
        ready = now
        trace_on = self.trace.enabled
        sanitizer = self.sanitizer
        for vkey, vtile, dirty, tid, kind, source, start, end in plans:
            if dirty:
                # Dirty victim: start the write-back, then forget the replica
                # eagerly — the in-flight record to HOST keeps the tile alive
                # in the directory, so later requests chain on the write-back
                # instead of seeing a phantom device copy.  Bytes are freed
                # immediately; the DMA's source buffer survives in the data
                # store until the flight lands.
                cache.remove(vkey)
                if kind == 1:
                    end = now
                elif kind == 2:
                    end = max(now, self._dir_flights[tid][HOST].completes_at)
                else:
                    directory.begin_transfer_id(
                        tid, vkey, HOST, completes_at=end, source=source
                    )
                    # touch + pin of the source replica (one probe); the
                    # victim was just removed from *this* device, so the
                    # probe only hits when the dirty source is elsewhere.
                    entry = self.caches[source]._resident.get(vkey)
                    src_pinned = entry is not None
                    if src_pinned:
                        if now > entry.last_use:
                            entry.last_use = now
                        entry.pins += 1
                    self.d2h_transfers += 1
                    if trace_on:
                        self.trace.record(
                            TraceCategory.MEMCPY_DTOH, source, start, end,
                            lambda k=vkey: f"d2h {k}", vtile.nbytes,
                        )
                    self.sim.post(
                        end, self._complete_d2h, vtile, tid, source, src_pinned
                    )
                    if sanitizer is not None:
                        sanitizer.check_tile(vkey)
                if end > ready:
                    ready = end
                directory.discard(vkey, device)
                self._refresh_shared_flags(vkey)
                self.sim.post(end, datastore.drop_device_tile, vkey, device)
            else:
                cache.remove(vkey)
                directory.evict(vkey, device)
                datastore.drop_device_tile(vkey, device)
                self._refresh_shared_flags(vkey)
            cache.evictions += 1
            if sanitizer is not None:
                sanitizer.check_tile(vkey)
        return ready

    # ----------------------------------------------------------- bookkeeping

    def _refresh_shared_flags(self, key: TileKey, tid: int | None = None) -> None:
        """Maintain the BLASX-policy hint: is the tile replicated elsewhere?"""
        if not self._track_shared:
            return
        if tid is None:
            tid = self.directory.lookup(key)
        m = self.directory.device_valid_mask(tid)
        multi = m.bit_count() > 1
        caches = self.caches
        while m:
            low = m & -m
            m ^= low
            cache = caches.get(low.bit_length() - 1)
            if cache is not None:
                # Must go through the cache method: a shared-hint change
                # re-ranks the entry in the victim index, and a flag
                # *clearing* in particular has to re-stamp eagerly.
                cache.mark_shared_elsewhere(key, multi)
        return

    def stats(self) -> dict[str, int]:
        return {
            "h2d": self.h2d_transfers,
            "d2h": self.d2h_transfers,
            "p2p": self.p2p_transfers,
            "optimistic_forwards": self.optimistic_forwards,
        }
