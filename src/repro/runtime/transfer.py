"""The transfer manager — where the paper's two heuristics live.

``TransferManager.ensure_resident(tile, dst)`` makes a tile valid on a device
and returns the virtual time at which it is usable.  Source selection follows
the active :class:`~repro.runtime.policies.SourcePolicy`:

1. already valid on ``dst`` → ready immediately;
2. already **in flight** to ``dst`` → ready when that transfer completes (this
   alone deduplicates host→device copies, §III-C: "the heuristic avoids
   duplicate tile transfers from main memory");
3. some device holds a valid replica → with the **topology-aware** heuristic
   the source is the valid device with the best link-performance rank toward
   ``dst`` (§III-B); without it, an arbitrary (deterministically pseudo-random)
   valid device;
4. no device replica valid, but one is in flight somewhere → with the
   **optimistic** heuristic, wait for the flight to land and forward
   device-to-device (§III-C); otherwise fall back to the host;
5. otherwise copy from the host (after restoring host validity if the only
   valid replica is dirty on a device).

The manager also owns device-memory admission: before a transfer lands, space
is ensured in the destination's :class:`~repro.memory.cache.DeviceCache`,
evicting victims chosen by the cache's policy and writing dirty ones back.
"""

from __future__ import annotations

from repro.errors import CoherenceError
from repro.memory.cache import DeviceCache, EvictionPolicy
from repro.memory.coherence import CoherenceDirectory
from repro.memory.tile import Tile, TileKey
from repro.runtime.datastore import DataStore
from repro.runtime.fabric import Fabric
from repro.runtime.policies import SourcePolicy
from repro.sim.engine import Simulator
from repro.sim.trace import TraceCategory, TraceRecorder
from repro.topology.link import HOST
from repro.topology.platform import Platform


def _mix(matrix_index: int, i: int, j: int, dst: int) -> int:
    """Deterministic integer hash of (tile, destination) — stable across
    processes (pure integer arithmetic, no salted hashing).

    ``matrix_index`` must be the run-local :meth:`DataStore.matrix_index`,
    never the process-global ``Matrix.id``: a cell's simulated outcome has
    to be a pure function of its spec (the sweep executor caches outcomes
    and replays them across processes), so no input may encode how many
    matrices happened to exist earlier in the process.
    """
    h = (matrix_index * 1000003 + i * 10007 + j * 101 + dst) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class TransferManager:
    """Replica movement engine shared by all simulated libraries."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        fabric: Fabric,
        directory: CoherenceDirectory,
        datastore: DataStore,
        caches: dict[int, DeviceCache],
        eviction_policy: EvictionPolicy,
        trace: TraceRecorder,
        policy: SourcePolicy = SourcePolicy.TOPOLOGY_OPTIMISTIC,
        pinning_bandwidth: float | None = None,
        sanitizer=None,
    ) -> None:
        self.sim = sim
        #: optional :class:`repro.verify.coherence.CoherenceSanitizer` called
        #: after every directory state transition (``verify_coherence`` mode).
        self.sanitizer = sanitizer
        self.platform = platform
        self.fabric = fabric
        self.directory = directory
        self.datastore = datastore
        self.caches = caches
        self.eviction_policy = eviction_policy
        #: the shared-elsewhere hint feeds only policies that declare they
        #: read it (BLASX two-level); for the others the directory walk after
        #: every write and transfer landing is maintenance of a bit nobody
        #: consults, so it is skipped wholesale.
        self._track_shared = eviction_policy.uses_shared_hint
        self.trace = trace
        self.policy = policy
        #: host page-locking model (None = ignored, the paper's methodology).
        self.pinning_bandwidth = pinning_bandwidth
        self._pinned_matrices: dict[int, float] = {}  # matrix id -> ready time
        self._pin_clock = 0.0  # page-locking is serial host work
        # Per-destination link-rank and bandwidth tables.  The topology is
        # immutable for the lifetime of the manager, so the (rank, src) sort
        # key behind Platform.peers_by_rank is precomputed once per (dst, src)
        # pair: source selection then reduces to a min() over a dict lookup
        # instead of re-sorting the candidate list on every transfer.
        # Direct references into the directory's interning dict and validity
        # array for the residency fast path below.  Both are bound once in
        # CoherenceDirectory.__init__ and only ever mutated in place
        # (append/assign), never rebound, so the aliases stay live.
        self._dir_ids = directory._ids
        self._dir_valid = directory._valid
        devices = list(platform.device_ids())
        self._rank_key: dict[int, dict[int, tuple[int, int]]] = {
            dst: {
                src: (platform.p2p_performance_rank(src, dst), src)
                for src in devices
                if src != dst
            }
            for dst in devices
        }
        self._link_bandwidth: dict[tuple[int, int], float] = {
            (src, dst): platform.link(src, dst).bandwidth
            for dst in devices
            for src in devices
            if src != dst
        }
        # statistics
        self.h2d_transfers = 0
        self.d2h_transfers = 0
        self.p2p_transfers = 0
        self.optimistic_forwards = 0

    # ---------------------------------------------------------- verification

    def sanitize(self, key: TileKey) -> None:
        """Re-check the tile's coherence invariants (no-op without sanitizer)."""
        if self.sanitizer is not None:
            self.sanitizer.check_tile(key)

    # ------------------------------------------------------------ residency

    def ensure_resident(
        self,
        tile: Tile,
        dst: int,
        earliest: float | None = None,
        protect: tuple[TileKey, ...] = (),
    ) -> float:
        """Make ``tile`` valid on device ``dst``; return its ready time."""
        now = self.sim.now if earliest is None else max(self.sim.now, earliest)
        key = tile.key
        cache = self.caches[dst]
        directory = self.directory

        # Inlined directory.lookup + is_valid_id: this is the hottest call of
        # the whole runtime (every read access of every launch lands here) and
        # the overwhelmingly common outcome is "already valid on dst" — one
        # dict probe plus one bit test, no method dispatch.
        tid = self._dir_ids.get(key)
        if tid is None:
            tid = directory.lookup(key)
        if self._dir_valid[tid] & (1 << (dst + 1)):
            # A replica valid on a device was transferred or seeded there, so
            # the tile is already registered — the fast paths skip that call.
            cache.access_hit(key, now)
            return now

        flight = directory.flights_map(tid).get(dst)
        if flight is not None:
            cache.record_access(key)
            return max(now, flight.completes_at)

        self.datastore.register(tile)
        if cache.record_access(key):
            # Resident but not valid and not in flight: stale bytes left by a
            # same-instant invalidation while pinned.
            cache.remove(key)
            self.datastore.drop_device_tile(key, dst)
        source, source_ready = self._select_source(key, dst, now, tid)
        alloc_ready = self._make_room(dst, tile.nbytes, now, protect=protect)
        if source == HOST:
            source_ready = max(source_ready, self._ensure_pinned(tile, now))
        start_lb = max(now, source_ready, alloc_ready)
        start, end = self.fabric.reserve(source, dst, tile.nbytes, start_lb)
        directory.begin_transfer_id(tid, key, dst, completes_at=end, source=source)
        cache.insert(key, tile.nbytes, now=end)
        cache.pin(key)  # protect until landed; unpinned in the completion event
        # Pin the source replica too: a DMA must not read a freed buffer.
        src_pinned = source != HOST and self.caches[source].pin_if_resident(key)
        if source == HOST:
            self.h2d_transfers += 1
            self.trace.record(
                TraceCategory.MEMCPY_HTOD, dst, start, end,
                lambda: f"h2d {key}", tile.nbytes,
            )
        else:
            self.p2p_transfers += 1
            self.trace.record(
                TraceCategory.MEMCPY_PTOP, dst, start, end,
                lambda: f"p2p {source}->{dst} {key}", tile.nbytes,
            )

        self.sim.post(end, self._complete_d2d, tile, tid, source, dst, src_pinned)
        self.sanitize(key)
        return end

    def ensure_resident_pin(
        self,
        tile: Tile,
        dst: int,
        earliest: float | None = None,
        protect: tuple[TileKey, ...] = (),
    ) -> tuple[float, bool]:
        """:meth:`ensure_resident` plus the launch pin in one replica walk.

        The executor pins every input that is resident right after ensuring
        residency; fusing the two into ``(ready, pinned)`` lets the common
        already-valid outcome resolve with a single cache probe
        (:meth:`DeviceCache.access_hit_pin`) instead of two.
        """
        now = self.sim.now
        if earliest is not None and earliest > now:
            now = earliest
        key = tile.key
        tid = self._dir_ids.get(key)
        if tid is not None and self._dir_valid[tid] & (1 << (dst + 1)):
            return now, self.caches[dst].access_hit_pin(key, now)
        ready = self.ensure_resident(tile, dst, earliest=earliest, protect=protect)
        return ready, self.caches[dst].pin_if_resident(key)

    def _complete_d2d(
        self, tile: Tile, tid: int, source: int, dst: int, src_pinned: bool
    ) -> None:
        """Completion event of a transfer landed on device ``dst``.

        ``tid`` is the directory id interned when the transfer was issued —
        ids are stable for the lifetime of the directory, so the completion
        event reuses it instead of re-hashing the key.
        """
        key = tile.key
        cache = self.caches[dst]
        landed = self.directory.complete_transfer_id(tid, key, dst)
        cache.unpin(key)
        if src_pinned:
            self.caches[source].unpin_if_resident(key)
        if landed:
            self.datastore.copy_tile(tile, source, dst)
            self._refresh_shared_flags(key, tid)
        else:
            # Invalidated mid-flight by a writer: drop the stale bytes.
            cache.remove(key)
            self.datastore.drop_device_tile(key, dst)
        self.sanitize(key)

    def _tile_mix(self, key: TileKey, dst: int) -> int:
        """The no-ranking pseudo-random pick, keyed on run-local state only."""
        return _mix(self.datastore.matrix_index(key.matrix_id), key.i, key.j, dst)

    def _select_source(
        self, key: TileKey, dst: int, now: float, tid: int
    ) -> tuple[int, float]:
        """Pick ``(source_location, source_ready_time)`` per the active policy.

        ``tid`` is the directory id of ``key`` — the caller already interned
        it, so this path never re-hashes the key against the directory.
        """
        directory = self.directory
        dmask = directory.device_valid_mask(tid) & ~(1 << dst)
        if dmask and self.policy.uses_device_sources:
            if self.policy.topology_aware:
                # Equivalent to Platform.peers_by_rank(dst, candidates)[0]
                # (min over the same (rank, device-id) key), without
                # re-sorting per transfer — iterating the valid-device
                # bitmask directly, no candidate list built.
                rank = self._rank_key[dst]
                best = -1
                best_rank: tuple[int, int] | None = None
                m = dmask
                while m:
                    low = m & -m
                    m ^= low
                    d = low.bit_length() - 1
                    r = rank[d]
                    if best_rank is None or r < best_rank:
                        best, best_rank = d, r
            else:
                # "No ranking" = whichever replica the runtime happens to find
                # first; modelled as a deterministic pseudo-random pick so no
                # artificial hot source emerges (the paper's no-topo variant
                # is link-class-blind, not systematically biased).
                candidates = []
                m = dmask
                while m:
                    low = m & -m
                    m ^= low
                    candidates.append(low.bit_length() - 1)
                best = candidates[self._tile_mix(key, dst) % len(candidates)]
            self.caches[best].touch(key, now)
            return best, now
        if self.policy.optimistic:
            # Optimistic device-to-device forwarding (§III-C): prefer waiting
            # for an in-flight replica and forwarding it over NVLink to
            # issuing another host copy over the congested PCIe fabric — but
            # only when the estimated arrival actually beats the direct host
            # route (a forward behind a long DMA backlog would be pessimism,
            # not optimism).
            nbytes = self.datastore.tile(key).nbytes
            host_eta = self.fabric.estimate(HOST, dst, nbytes, now)
            best_flight = None
            best_eta = host_eta
            for flight in directory.flights_map(tid).values():
                if flight.dst == dst or flight.dst == HOST:
                    continue
                eta = self.fabric.estimate(
                    flight.dst, dst, nbytes, max(now, flight.completes_at)
                )
                if eta < best_eta:
                    best_flight, best_eta = flight, eta
            if best_flight is not None:
                self.optimistic_forwards += 1
                return best_flight.dst, best_flight.completes_at
        # Fall back to the host.
        if directory.host_valid_id(tid):
            return HOST, now
        host_flight = directory.flights_map(tid).get(HOST)
        if host_flight is not None:
            return HOST, host_flight.completes_at
        return HOST, self.ensure_host_valid(self.datastore.tile(key), now)

    def _ensure_pinned(self, tile: Tile, now: float) -> float:
        """First host DMA touching a matrix pays its page-locking time.

        One serial host pass over the whole matrix (cudaHostRegister), charged
        once; later transfers of the same matrix are free — the amortization
        the paper assumes (§IV-A).
        """
        if self.pinning_bandwidth is None:
            return now
        matrix = tile.matrix
        done = self._pinned_matrices.get(matrix.id)
        if done is not None:
            return max(now, done)
        start = max(now, self._pin_clock)
        done = start + matrix.nbytes / self.pinning_bandwidth
        self._pin_clock = done
        self._pinned_matrices[matrix.id] = done
        self.trace.record(
            TraceCategory.HOST, -1, start, done,
            lambda: f"pin {matrix.name}", matrix.nbytes,
        )
        return done

    def preview_source(self, key: TileKey, dst: int) -> tuple[int, float]:
        """Where would a transfer to ``dst`` come from, and at what bandwidth?

        A read-only estimate used by cost-model schedulers (DMDAS); mirrors
        :meth:`_select_source` without touching any state.
        """
        tid = self.directory.lookup(key)
        if self.directory.is_valid_id(tid, dst):
            return dst, float("inf")
        dmask = self.directory.device_valid_mask(tid) & ~(1 << dst)
        if dmask and self.policy.uses_device_sources:
            candidates = []
            m = dmask
            while m:
                low = m & -m
                m ^= low
                candidates.append(low.bit_length() - 1)
            if self.policy.topology_aware:
                src = min(candidates, key=self._rank_key[dst].__getitem__)
            else:
                src = candidates[self._tile_mix(key, dst) % len(candidates)]
            return src, self._link_bandwidth[(src, dst)]
        return HOST, self.platform.host_bandwidth

    # ----------------------------------------------------------- host flush

    def ensure_host_valid(self, tile: Tile, earliest: float | None = None) -> float:
        """Make the host copy of ``tile`` valid (D2H write-back); return time.

        Used both by the HOST_ONLY fallback above and by the user-facing
        ``memory_coherent_async`` (lazy coherence, §IV-F).
        """
        now = self.sim.now if earliest is None else max(self.sim.now, earliest)
        key = tile.key
        tid = self.directory.lookup(key)
        if self.directory.host_valid_id(tid):
            return now
        flight = self.directory.flights_map(tid).get(HOST)
        if flight is not None:
            return max(now, flight.completes_at)
        source = self.directory.modified_location(key)
        if source is None:
            dmask = self.directory.device_valid_mask(tid)
            if not dmask:
                raise CoherenceError(f"{key}: no valid replica anywhere")
            source = (dmask & -dmask).bit_length() - 1
        if source == HOST:  # pragma: no cover - host_valid already checked
            return now
        start, end = self.fabric.reserve_d2h(source, tile.nbytes, now)
        self.directory.begin_transfer_id(tid, key, HOST, completes_at=end, source=source)
        src_pinned = key in self.caches[source]
        if src_pinned:
            self.caches[source].touch(key, now)
            self.caches[source].pin(key)
        self.d2h_transfers += 1
        self.trace.record(
            TraceCategory.MEMCPY_DTOH, source, start, end,
            lambda: f"d2h {key}", tile.nbytes,
        )

        self.sim.post(end, self._complete_d2h, tile, tid, source, src_pinned)
        self.sanitize(key)
        return end

    def _complete_d2h(
        self, tile: Tile, tid: int, source: int, src_pinned: bool
    ) -> None:
        """Completion event of a write-back landed on the host."""
        key = tile.key
        landed = self.directory.complete_transfer_id(tid, key, HOST)
        if src_pinned:
            self.caches[source].unpin_if_resident(key)
        if landed:
            self.datastore.copy_tile(tile, source, HOST)
            if self.directory.state(key, source) is not None:
                try:
                    self.directory.downgrade(key, source)
                except CoherenceError:
                    pass  # already SHARED
                if key in self.caches[source]:
                    self.caches[source].mark_dirty(key, False)
        self.sanitize(key)

    # -------------------------------------------------------------- writes

    def register_write(self, tile: Tile, device: int, when: float) -> None:
        """A kernel on ``device`` wrote ``tile`` at time ``when``.

        The directory invalidates every other replica; caches and the data
        store drop theirs.
        """
        key = tile.key
        tid = self.directory.lookup(key)
        m = self.directory.device_valid_mask(tid) & ~(1 << device)
        while m:
            low = m & -m
            m ^= low
            other = low.bit_length() - 1
            if other in self.caches and key in self.caches[other]:
                ccache = self.caches[other]
                if ccache.pin_count(key) == 0:
                    ccache.remove(key)
                    self.datastore.drop_device_tile(key, other)
                else:
                    # Pinned elsewhere (running reader finished at same instant
                    # event ordering): keep bytes, directory invalidates below.
                    pass
        self.directory.write_id(tid, device)
        cache = self.caches[device]
        if key not in cache:
            # WRITE-only access: the output tile was allocated, not transferred.
            # Space was planned by allocate_output but may have been consumed
            # by concurrent stagings; evict again if needed (write-back delay
            # of victims is already covered by their own D2H reservations).
            self._make_room(device, tile.nbytes, when)
            cache.insert(key, tile.nbytes, now=when)
        cache.note_write(key, when)
        self._refresh_shared_flags(key, tid)
        self.sanitize(key)

    def allocate_output(self, tile: Tile, device: int, earliest: float) -> float:
        """Ensure space for a WRITE-only output tile; returns readiness time."""
        key = tile.key
        cache = self.caches[device]
        self.datastore.register(tile)
        if key in cache or self.directory.in_flight_to(key, device) is not None:
            return earliest
        ready = self._make_room(device, tile.nbytes, earliest)
        self.datastore.allocate_device_tile(tile, device)
        # Residency is accounted at write registration (task completion).
        return ready

    # ------------------------------------------------------------- eviction

    def _make_room(
        self, device: int, nbytes: int, now: float, protect: tuple[TileKey, ...] = ()
    ) -> float:
        """Evict until ``nbytes`` fit on ``device``; return readiness time."""
        cache = self.caches[device]
        if nbytes <= cache.free:
            return now  # fits as-is; skip the victim-selection machinery
        victims = self.eviction_policy.choose_victims(cache, nbytes, protect=protect)
        ready = now
        for vkey in victims:
            vtile = self.datastore.tile(vkey)
            if cache.is_dirty(vkey):
                # Dirty victim: start the write-back, then forget the replica
                # eagerly — the in-flight record to HOST keeps the tile alive
                # in the directory, so later requests chain on the write-back
                # instead of seeing a phantom device copy.  Bytes are freed
                # immediately; the DMA's source buffer survives in the data
                # store until the flight lands.
                cache.remove(vkey)
                end = self.ensure_host_valid(vtile, now)
                ready = max(ready, end)
                self.directory.discard(vkey, device)
                self._refresh_shared_flags(vkey)
                self.sim.post(end, self.datastore.drop_device_tile, vkey, device)
            else:
                cache.remove(vkey)
                self.directory.evict(vkey, device)
                self.datastore.drop_device_tile(vkey, device)
                self._refresh_shared_flags(vkey)
            cache.evictions += 1
            self.sanitize(vkey)
        return ready

    # ----------------------------------------------------------- bookkeeping

    def _refresh_shared_flags(self, key: TileKey, tid: int | None = None) -> None:
        """Maintain the BLASX-policy hint: is the tile replicated elsewhere?"""
        if not self._track_shared:
            return
        if tid is None:
            tid = self.directory.lookup(key)
        m = self.directory.device_valid_mask(tid)
        multi = m.bit_count() > 1
        caches = self.caches
        while m:
            low = m & -m
            m ^= low
            cache = caches.get(low.bit_length() - 1)
            if cache is not None:
                # mark_shared_elsewhere, inlined (one resident probe, no
                # method dispatch — this runs after every write and transfer
                # landing); a no-op for non-resident keys.
                entry = cache._resident.get(key)
                if entry is not None:
                    entry.shared_elsewhere = multi

    def stats(self) -> dict[str, int]:
        return {
            "h2d": self.h2d_transfers,
            "d2h": self.d2h_transfers,
            "p2p": self.p2p_transfers,
            "optimistic_forwards": self.optimistic_forwards,
        }
