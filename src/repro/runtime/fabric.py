"""Communication fabric: channels instantiated from a platform.

Maps the :class:`~repro.topology.platform.Platform` description onto
:class:`~repro.sim.channel.Channel` objects:

* one H2D and one D2H channel **per PCIe switch group** — the two GPUs behind
  one DGX-1 switch contend on the same host pipe, in each direction;
* one dedicated channel per directed NVLink pair;
* PCIe *peer* transfers ride the host fabric: they occupy the source's D2H
  switch channel and the destination's H2D switch channel simultaneously, at
  the (lower) measured peer bandwidth — so bulk P2P over PCIe also slows host
  traffic, which is exactly why the paper's heuristics try to keep traffic on
  NVLink.
* one local copy channel per device (the Fig. 2 diagonal).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.topology.link import HOST, LinkKind
from repro.topology.platform import Platform


class Fabric:
    """All communication channels of one simulated platform instance.

    Besides the channels, the fabric owns every precomputed routing table the
    transfer heuristics consult per transfer: per-route latency/bandwidth
    vectors (for :meth:`estimate`), per-destination link-performance rank
    keys, raw link bandwidths, and — on platforms small enough to enumerate —
    the full candidate-mask source-selection tables (:attr:`mask_members`,
    :attr:`best_source_by_mask`), which collapse the topology-aware argmin
    over a validity bitmask into a single list index.  The topology is
    immutable for the fabric's lifetime, so all of these are built once here
    and shared by every consumer.
    """

    #: Aggregate NVLink bandwidth of one V100 (6 bricks x ~25 GB/s, derated).
    #: Kept as the class-level default; per-device figures come from
    #: :attr:`repro.topology.device.GpuSpec.nvlink_aggregate_bw`.
    NVLINK_AGGREGATE_BW = 132e9

    #: largest GPU count for which the 2**n-entry candidate-mask tables are
    #: enumerated; beyond it :attr:`best_source_by_mask` / :attr:`mask_members`
    #: are None and selection falls back to the per-call bitmask walk.
    MASK_TABLE_MAX_GPUS = 12

    def __init__(self, sim: Simulator, platform: Platform) -> None:
        self.sim = sim
        self.platform = platform
        self._h2d: dict[int, Channel] = {}
        self._d2h: dict[int, Channel] = {}
        for gi, group in enumerate(platform.pcie_switch_groups):
            h2d = Channel(
                sim,
                platform.host_bandwidth,
                platform.host_latency,
                name=f"switch{gi}-h2d",
            )
            d2h = Channel(
                sim,
                platform.host_bandwidth,
                platform.host_latency,
                name=f"switch{gi}-d2h",
            )
            for dev in group:
                self._h2d[dev] = h2d
                self._d2h[dev] = d2h
        self._p2p: dict[tuple[int, int], Channel] = {}
        n = platform.num_gpus
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                link = platform.link(src, dst)
                if link.kind.is_nvlink:
                    self._p2p[(src, dst)] = Channel(
                        sim,
                        link.bandwidth,
                        link.latency,
                        name=f"nvlink-{src}->{dst}",
                    )
        self._local = {
            dev: Channel(
                sim,
                platform.link(dev, dev).bandwidth,
                0.0,
                name=f"local-{dev}",
            )
            for dev in range(n)
        }
        # Per-device NVLink injection/ejection engines: a V100 has 6 NVLink
        # bricks (~150 GB/s aggregate) shared by all its peer links, so a GPU
        # serving many concurrent pulls saturates — the mechanism behind the
        # paper's §IV-B observation that "some GPUs require more time to send
        # or receive data than the others".
        self._nvlink_egress = {
            dev: Channel(
                sim,
                platform.gpus[dev].nvlink_aggregate_bw,
                0.0,
                name=f"nvl-out-{dev}",
            )
            for dev in range(n)
        }
        self._nvlink_ingress = {
            dev: Channel(
                sim,
                platform.gpus[dev].nvlink_aggregate_bw,
                0.0,
                name=f"nvl-in-{dev}",
            )
            for dev in range(n)
        }
        # Effective (latency, bandwidth) of every directed route, flattened to
        # ``(src + 1) * (n + 1) + (dst + 1)`` (HOST = -1 maps to slot 0).  The
        # topology is immutable, so :meth:`estimate`'s *duration* term — which
        # mirrors ``Channel.transfer_time`` — is a pure function of (route,
        # nbytes); :meth:`_durations` turns these arrays into a per-size table
        # for every route at once in one numpy pass.  Unused slots (host-host,
        # local) get bandwidth 1.0 so the vector division stays clean; nothing
        # reads them.
        stride = n + 1
        lat = np.zeros(stride * stride, dtype=np.float64)
        bw = np.ones(stride * stride, dtype=np.float64)
        for dst in range(n):
            h2d = self._h2d[dst]
            lat[dst + 1] = h2d.latency
            bw[dst + 1] = h2d.bandwidth
        for src in range(n):
            d2h = self._d2h[src]
            lat[(src + 1) * stride] = d2h.latency
            bw[(src + 1) * stride] = d2h.bandwidth
            for dst in range(n):
                if src == dst:
                    continue
                direct = self._p2p.get((src, dst))
                idx = (src + 1) * stride + dst + 1
                if direct is not None:
                    lat[idx] = direct.latency
                    bw[idx] = direct.bandwidth
                else:
                    link = platform.link(src, dst)
                    lat[idx] = link.latency
                    bw[idx] = link.bandwidth
        self._route_latency = lat
        self._route_bandwidth = bw
        self._route_stride = stride
        #: nbytes -> flat per-route duration table (Python floats — `.tolist()`
        #: is value-preserving, so entries are bit-identical to the scalar
        #: ``latency + nbytes / bandwidth`` the channels would compute).
        self._duration_tables: dict[int, list[float]] = {}
        #: per-route tuple of the channels whose FIFO backlog gates a transfer
        #: on that route, same flat indexing as the latency/bandwidth tables —
        #: :meth:`estimate` maxes their ``busy_until`` in one walk instead of
        #: re-deriving the route shape per call.
        deps: list[tuple[Channel, ...]] = [()] * (stride * stride)
        for dst in range(n):
            deps[dst + 1] = (self._h2d[dst],)
        for src in range(n):
            deps[(src + 1) * stride] = (self._d2h[src],)
            for dst in range(n):
                idx = (src + 1) * stride + dst + 1
                direct = self._p2p.get((src, dst))
                if direct is not None:
                    deps[idx] = (
                        direct,
                        self._nvlink_egress[src],
                        self._nvlink_ingress[dst],
                    )
                else:
                    deps[idx] = (self._d2h[src], self._h2d[dst])
        self._route_deps = deps
        # --- source-selection tables (consumed by the transfer manager) ---
        # rank_key[dst][src] is the (performance-rank, src) sort key behind
        # Platform.peers_by_rank; link_bandwidth the raw directed figure.
        devices = range(n)
        self.rank_key: list[dict[int, tuple[int, int]]] = [
            {
                src: (platform.p2p_performance_rank(src, dst), src)
                for src in devices
                if src != dst
            }
            for dst in devices
        ]
        self.link_bandwidth: dict[tuple[int, int], float] = {
            (src, dst): platform.link(src, dst).bandwidth
            for dst in devices
            for src in devices
            if src != dst
        }
        # Candidate-mask tables: mask_members[mask] lists the devices of a
        # validity bitmask in ascending id order (the order the bitmask walk
        # produces), and best_source_by_mask[dst][mask] is the rank-minimal
        # member — the whole topology-aware source pick becomes one index.
        if n <= self.MASK_TABLE_MAX_GPUS:
            members: list[tuple[int, ...]] = [()] * (1 << n)
            for mask in range(1, 1 << n):
                low = mask & -mask
                members[mask] = (low.bit_length() - 1, *members[mask ^ low])
            self.mask_members: tuple[tuple[int, ...], ...] | None = tuple(members)
            best: list[list[int]] = []
            for dst in devices:
                rank = self.rank_key[dst]
                table = [-1] * (1 << n)
                for mask in range(1, 1 << n):
                    m = mask & ~(1 << dst)
                    if m:
                        table[mask] = min(members[m], key=rank.__getitem__)
                best.append(table)
            self.best_source_by_mask: list[list[int]] | None = best
        else:
            self.mask_members = None
            self.best_source_by_mask = None

    # ------------------------------------------------------------- reserving

    def reserve_h2d(self, dst: int, nbytes: int, earliest: float) -> tuple[float, float]:
        """Host -> device transfer over the destination's switch channel."""
        return self._h2d[dst].reserve(nbytes, earliest)

    def reserve_d2h(self, src: int, nbytes: int, earliest: float) -> tuple[float, float]:
        """Device -> host transfer over the source's switch channel."""
        return self._d2h[src].reserve(nbytes, earliest)

    def reserve_p2p(
        self, src: int, dst: int, nbytes: int, earliest: float
    ) -> tuple[float, float]:
        """Device -> device transfer.

        NVLink pairs use their dedicated channel.  PCIe peer routes reserve
        both host-fabric channels involved (source D2H and destination H2D)
        for the same interval at the measured peer bandwidth.
        """
        if src == dst:
            raise TopologyError(f"p2p transfer with src == dst == {src}")
        direct = self._p2p.get((src, dst))
        if direct is not None:
            # The transfer streams through the source's egress engine, the
            # pair link, and the destination's ingress engine; the slowest
            # stage (usually the pair link) sets the duration, the shared
            # engines charge their own occupancy so fan-in/fan-out hotspots
            # serialize.
            e_start, _ = self._nvlink_egress[src].reserve(nbytes, earliest)
            i_start, _ = self._nvlink_ingress[dst].reserve(
                nbytes, earliest if earliest > e_start else e_start
            )
            return direct.reserve(nbytes, i_start if i_start > e_start else e_start)
        link = self.platform.link(src, dst)
        out_chan = self._d2h[src]
        in_chan = self._h2d[dst]
        start = max(earliest, self.sim.now, out_chan.busy_until, in_chan.busy_until)
        duration = link.latency + nbytes / link.bandwidth
        end = start + duration
        # Occupy both pipes for the whole interval.
        for chan in (out_chan, in_chan) if out_chan is not in_chan else (out_chan,):
            chan.occupy(start, end, nbytes)
        return start, end

    def reserve(
        self, src: int, dst: int, nbytes: int, earliest: float
    ) -> tuple[float, float]:
        """Dispatch on endpoint kinds (HOST = -1)."""
        if src == HOST and dst == HOST:
            raise TopologyError("host-to-host transfers are not modelled")
        if src == HOST:
            return self.reserve_h2d(dst, nbytes, earliest)
        if dst == HOST:
            return self.reserve_d2h(src, nbytes, earliest)
        return self.reserve_p2p(src, dst, nbytes, earliest)

    def reserve_local(self, dev: int, nbytes: int, earliest: float) -> tuple[float, float]:
        return self._local[dev].reserve(nbytes, earliest)

    def d2h_channel(self, src: int) -> Channel:
        """The D2H switch channel serving ``src`` (shared per switch group).

        Exposed so the transfer manager can batch several write-back
        reservations on one channel (``Channel.reserve_batch``) when an
        allocation evicts multiple dirty victims at once.
        """
        return self._d2h[src]

    # ------------------------------------------------------------ estimating

    def _durations(self, nbytes: int) -> list[float]:
        """Per-route transfer durations for ``nbytes``, built vectorized.

        One numpy pass computes ``latency + nbytes / bandwidth`` for *every*
        directed route at once (the ``Channel.transfer_time`` formula over the
        tables precomputed in ``__init__``); tiled runs move a handful of
        distinct sizes, so after the first transfer of each size every
        estimate is a list index instead of scalar arithmetic.
        """
        table = self._duration_tables.get(nbytes)
        if table is None:
            table = (
                self._route_latency + nbytes / self._route_bandwidth
            ).tolist()
            self._duration_tables[nbytes] = table
        return table

    def estimate(self, src: int, dst: int, nbytes: int, earliest: float) -> float:
        """Estimated completion time of a transfer, without reserving.

        Accounts for the current FIFO backlog of the channels involved; used
        by source-selection policies to compare candidate routes.  The
        duration term comes from the vectorized per-size route table
        (:meth:`_durations`) and the backlog term from the precomputed
        per-route channel tuple — both bit-identical to walking the route
        shape by hand (a max over the same operands in the same order).
        """
        idx = (src + 1) * self._route_stride + dst + 1
        table = self._duration_tables.get(nbytes)
        if table is None:
            table = self._durations(nbytes)
        start = self.sim.now
        if earliest > start:
            start = earliest
        for chan in self._route_deps[idx]:
            busy = chan.busy_until
            if busy > start:
                start = busy
        return start + table[idx]

    # ------------------------------------------------------------ inspection

    def link_kind(self, src: int, dst: int) -> LinkKind:
        if src == HOST or dst == HOST:
            return self.platform.host_link_kind
        return self.platform.link(src, dst).kind

    def host_channel_stats(self) -> dict[str, dict[str, float]]:
        """Per-switch traffic summary (bytes and transfer counts).

        Shared-channel topologies map several device slots to one channel
        object; channels are deduplicated by :attr:`name` (unique per
        channel — it is also the output key) rather than object identity.
        """
        out: dict[str, dict[str, float]] = {}
        for chan in list(self._h2d.values()) + list(self._d2h.values()):
            if chan.name in out:
                continue
            out[chan.name] = {
                "bytes": chan.bytes_moved,
                "transfers": chan.transfer_count,
            }
        return out

    def p2p_bytes_total(self) -> int:
        return sum(c.bytes_moved for c in self._p2p.values())

    def host_bytes_total(self) -> int:
        seen: set[str] = set()
        total = 0
        for chan in list(self._h2d.values()) + list(self._d2h.values()):
            if chan.name in seen:
                continue
            seen.add(chan.name)
            total += chan.bytes_moved
        return total
