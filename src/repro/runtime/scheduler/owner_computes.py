"""Strict owner-computes scheduling from a tile distribution.

Used by the data-on-device experiments (§IV-C) and by cuBLAS-MG's static 2D
block-cyclic execution: every task runs on the device that owns its written
tile under the distribution, no stealing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import SchedulingError
from repro.memory.layout import BlockCyclicDistribution
from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task


class OwnerComputesScheduler(Scheduler):
    name = "owner-computes"

    def __init__(
        self,
        num_devices: int,
        owner_of: Callable[[Task], int] | None = None,
        distribution: BlockCyclicDistribution | None = None,
    ) -> None:
        """``owner_of`` wins over ``distribution``; one of them is required
        unless every task carries an ``owner_hint``."""
        super().__init__(num_devices)
        if owner_of is not None:
            self._owner_of = owner_of
        elif distribution is not None:
            self._owner_of = lambda t: distribution.owner(
                t.output_tile.i, t.output_tile.j
            )
        else:
            self._owner_of = self._hint_owner
        self._queues: list[deque[Task]] = [deque() for _ in range(num_devices)]
        self._nonempty_mask = 0

    @staticmethod
    def _hint_owner(task: Task) -> int:
        if task.owner_hint is None:
            raise SchedulingError(
                f"{task!r}: owner-computes needs owner_hint or a distribution"
            )
        return task.owner_hint

    def push(self, task: Task, ctx: SchedulerContext) -> None:
        dev = self._owner_of(task)
        if not 0 <= dev < self.num_devices:
            raise SchedulingError(f"{task!r}: owner {dev} out of range")
        self._queues[dev].append(task)
        self._nonempty_mask |= 1 << dev

    def pop(
        self, device: int, ctx: SchedulerContext, idle: bool | None = None
    ) -> Task | None:
        queue = self._queues[device]
        if not queue:
            return None
        self.scheduled += 1
        task = queue.popleft()
        if not queue:
            self._nonempty_mask &= ~(1 << device)
        return task

    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def empty(self) -> bool:
        return not self._nonempty_mask

    def ready_device_mask(self, ctx: SchedulerContext) -> int:
        return self._nonempty_mask
