"""Static round-robin scheduling.

Models cuBLAS-XT's dispatch: output blocks of the routine are dealt to GPUs
cyclically in submission order, with no data-locality consideration — every
input panel is streamed from the host for each block, which is why cuBLAS-XT
sits at the bottom of the paper's Fig. 3/5 curves on a machine whose host
links are the bottleneck.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task


class RoundRobinScheduler(Scheduler):
    name = "round-robin"

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        self._queues: list[deque[Task]] = [deque() for _ in range(num_devices)]
        self._next = 0
        self._nonempty_mask = 0

    def push(self, task: Task, ctx: SchedulerContext) -> None:
        if task.owner_hint is not None:
            dev = task.owner_hint % self.num_devices
        else:
            dev = self._next
            self._next = (self._next + 1) % self.num_devices
        self._queues[dev].append(task)
        self._nonempty_mask |= 1 << dev

    def pop(
        self, device: int, ctx: SchedulerContext, idle: bool | None = None
    ) -> Task | None:
        queue = self._queues[device]
        if not queue:
            return None
        self.scheduled += 1
        task = queue.popleft()
        if not queue:
            self._nonempty_mask &= ~(1 << device)
        return task

    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def empty(self) -> bool:
        return not self._nonempty_mask

    def ready_device_mask(self, ctx: SchedulerContext) -> int:
        return self._nonempty_mask
