"""StarPU's DMDAS scheduler (deque model data aware, sorted).

The paper runs Chameleon with "the DMDAS StarPU scheduling algorithm that
seems to be well suited for linear algebra" (§IV-A), after warm-up runs that
let StarPU "build a performance model of each task".

StarPU's dmda family assigns a task *when it becomes ready*, to the worker
minimizing the expected completion time

``ect(task, w) = max(avail[w], now) + transfer_estimate(task, w) + kernel_estimate(task)``

where the transfer estimate charges non-resident input bytes at the bandwidth
of the cheapest available path, and the kernel estimate comes from the
calibrated performance model (our GPU efficiency curve plays that role — the
simulated equivalent of StarPU's history-based model after warm-up runs).
The ``s`` suffix (sorted) orders each worker's queue by task priority.

This data-aware global placement is what lets Chameleon balance SYRK/SYR2K
better than XKaapi's work stealing at large sizes (§IV-D/E) — each update task
lands where its C tile already lives, and queue-length feedback evens the
load.
"""

from __future__ import annotations

import heapq
import itertools

from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task
from repro.topology.platform import Platform


class DmdaScheduler(Scheduler):
    name = "starpu-dmdas"
    #: the sorted queues read ``Task.priority``, which only
    #: ``TaskGraph.critical_path_priorities()`` (whole-DAG, retained mode)
    #: assigns — streaming submission materializes eagerly for this policy.
    needs_priorities = True

    def __init__(self, num_devices: int, platform: Platform) -> None:
        super().__init__(num_devices)
        self.platform = platform
        self._seq = itertools.count()
        #: per-worker priority queues: (-priority, seq, task)
        self._queues: list[list[tuple[int, int, Task]]] = [
            [] for _ in range(num_devices)
        ]
        #: expected time at which each worker drains its assigned queue
        self._avail = [0.0] * num_devices
        self._now = 0.0
        #: bit ``d`` set iff ``_queues[d]`` is non-empty
        self._nonempty_mask = 0

    # -------------------------------------------------------------- placing

    def _transfer_estimate(self, task: Task, device: int, ctx: SchedulerContext) -> float:
        """Predicted input-transfer time, per tile, from the source the data
        manager would actually use (StarPU's calibrated bus model)."""
        total = 0.0
        for access in task.accesses:
            if not access.reads:
                continue
            key = access.tile.key
            if ctx.directory.in_flight_to(key, device) is not None:
                continue
            _, bw = ctx.transfer.preview_source(key, device)
            if bw != float("inf"):
                total += access.tile.nbytes / bw
        return total

    def _kernel_estimate(self, task: Task, device: int) -> float:
        spec = self.platform.gpus[device]
        return spec.kernel_time(task.flops, task.dim, regularity=task.regularity)

    def push(self, task: Task, ctx: SchedulerContext) -> None:
        best_dev, best_ect = 0, float("inf")
        for dev in range(self.num_devices):
            ect = (
                max(self._avail[dev], self._now)
                + self._transfer_estimate(task, dev, ctx)
                + self._kernel_estimate(task, dev)
            )
            if ect < best_ect:
                best_dev, best_ect = dev, ect
        self._avail[best_dev] = best_ect
        heapq.heappush(self._queues[best_dev], (-task.priority, next(self._seq), task))
        self._nonempty_mask |= 1 << best_dev

    # -------------------------------------------------------------- serving

    def pop(
        self, device: int, ctx: SchedulerContext, idle: bool | None = None
    ) -> Task | None:
        queue = self._queues[device]
        if not queue:
            return None
        self.scheduled += 1
        task = heapq.heappop(queue)[2]
        if not queue:
            self._nonempty_mask &= ~(1 << device)
        return task

    def on_complete(self, task: Task, ctx: SchedulerContext) -> None:
        # Re-anchor availability on observed completions so estimates do not
        # drift (StarPU refreshes its worker ETAs the same way).
        self._now = max(self._now, task.end_time)
        if task.device is not None:
            self._avail[task.device] = max(self._avail[task.device], task.end_time)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def empty(self) -> bool:
        return not self._nonempty_mask

    def ready_device_mask(self, ctx: SchedulerContext) -> int:
        return self._nonempty_mask
