"""Task-to-device scheduling policies.

* :class:`~repro.runtime.scheduler.locality_ws.LocalityWorkStealing` — the
  XKaapi scheduler the paper builds on (§III-A): owner-computes placement with
  a locality heuristic plus work stealing; responsible for both XKBLAS's
  reactivity and the SYR2K imbalance the paper analyses (§IV-E).
* :class:`~repro.runtime.scheduler.dmdas.DmdaScheduler` — StarPU's DMDAS
  (deque model data aware, sorted), used by Chameleon (§IV-A).
* :class:`~repro.runtime.scheduler.owner_computes.OwnerComputesScheduler` —
  strict owner-computes from a tile distribution (data-on-device runs,
  cuBLAS-MG's static 2D block-cyclic).
* :class:`~repro.runtime.scheduler.round_robin.RoundRobinScheduler` — static
  cyclic assignment of output blocks (cuBLAS-XT's behaviour).
"""

from repro.runtime.scheduler.base import Scheduler
from repro.runtime.scheduler.dmdas import DmdaScheduler
from repro.runtime.scheduler.locality_ws import LocalityWorkStealing
from repro.runtime.scheduler.owner_computes import OwnerComputesScheduler
from repro.runtime.scheduler.round_robin import RoundRobinScheduler

__all__ = [
    "DmdaScheduler",
    "LocalityWorkStealing",
    "OwnerComputesScheduler",
    "RoundRobinScheduler",
    "Scheduler",
]
