"""Scheduler interface.

A scheduler receives tasks when they become *schedulable* (all dependencies
done and the submission overhead paid) and serves device workers that ask for
work.  It is consulted at virtual-time events only — all state lives in plain
Python structures, keeping runs deterministic.

Schedulers may use a :class:`SchedulerContext` to ask locality questions
(where do a task's input tiles live? how big are they?) without depending on
the full executor.
"""

from __future__ import annotations

import abc
import dataclasses
import typing

from repro.memory.coherence import CoherenceDirectory
from repro.runtime.task import Task
from repro.topology.platform import Platform

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.transfer import TransferManager


@dataclasses.dataclass(slots=True)
class SchedulerContext:
    """Read-only view of runtime state offered to scheduling policies."""

    platform: Platform
    directory: CoherenceDirectory
    transfer: "TransferManager"
    #: compute backlog (seconds of queued kernels) per device; wired by the
    #: executor so load-aware policies can see starvation.
    device_load: "typing.Callable[[int], float]" = lambda dev: 0.0
    #: is the device idle (nothing in flight / below its steal threshold)?
    #: Wired by the executor; schedulers resolve it lazily so the answer is
    #: only computed for workers whose own queue came up empty.
    device_idle: "typing.Callable[[int], bool]" = lambda dev: True
    #: bulk form of :attr:`device_load`: every device's backlog in one call,
    #: indexed by device id.  ``None`` (the default) means not wired —
    #: policies must fall back to per-device ``device_load``, which keeps
    #: tests that stub ``device_load`` alone honest.
    device_loads: "typing.Callable[[], list[float]] | None" = None
    #: memoized :meth:`kernel_estimate` results — tiled graphs repeat a few
    #: (flops, dim, regularity) shapes across thousands of pushes, and the
    #: efficiency-curve arithmetic is pure per device.
    _kernel_time_cache: dict = dataclasses.field(default_factory=dict)

    def kernel_estimate(self, task: Task, device: int) -> float:
        key = (device, task.flops, task.dim, task.regularity)
        est = self._kernel_time_cache.get(key)
        if est is None:
            spec = self.platform.gpus[device]
            est = self._kernel_time_cache[key] = spec.kernel_time(
                task.flops, task.dim, regularity=task.regularity
            )
        return est

    def locality_bytes(self, task: Task, device: int) -> int:
        """Bytes of ``task``'s inputs already valid (or in flight) on ``device``."""
        total = 0
        for access in task.accesses:
            if not access.reads:
                continue
            key = access.tile.key
            if self.directory.is_valid(key, device):
                total += access.tile.nbytes
            elif self.directory.in_flight_to(key, device) is not None:
                total += access.tile.nbytes
        return total

    def missing_bytes(self, task: Task, device: int) -> int:
        """Bytes that would have to be transferred to run ``task`` on ``device``."""
        return task.input_bytes - self.locality_bytes(task, device)

    def best_locality_device(self, task: Task) -> int | None:
        """Device holding the most input bytes, or ``None`` if nothing is placed."""
        best_dev, best_bytes = None, 0
        for dev in self.platform.device_ids():
            b = self.locality_bytes(task, dev)
            if b > best_bytes:
                best_dev, best_bytes = dev, b
        return best_dev


class Scheduler(abc.ABC):
    """Maps schedulable tasks onto devices on demand."""

    name = "abstract"
    #: True for policies whose decisions read ``Task.priority`` (DMDAS).
    #: Critical-path priorities need the whole DAG materialized before the
    #: run, so ``Runtime.submit_stream`` falls back to eager submission for
    #: such schedulers and reclaiming graphs are documented as unsupported
    #: with them (see DESIGN §9).
    needs_priorities = False

    def __init__(self, num_devices: int) -> None:
        self.num_devices = num_devices
        self.scheduled = 0
        #: bitmask with every device bit set; basis for ready-device masks.
        self._all_mask = (1 << num_devices) - 1

    @abc.abstractmethod
    def push(self, task: Task, ctx: SchedulerContext) -> None:
        """Accept a task that became schedulable."""

    @abc.abstractmethod
    def pop(
        self, device: int, ctx: SchedulerContext, idle: bool | None = None
    ) -> Task | None:
        """Serve one task for ``device``, or ``None`` when nothing suits it.

        ``idle`` is True when the device has no task in flight; work-stealing
        schedulers only steal for idle devices (a busy worker enqueues ahead
        from its own deque but does not raid its neighbours).  ``None`` means
        "not computed yet": schedulers that care resolve it on demand through
        ``ctx.device_idle``, so the common own-queue hit skips the idleness
        computation entirely.
        """

    @abc.abstractmethod
    def pending(self) -> int:
        """Number of tasks queued inside the scheduler."""

    def empty(self) -> bool:
        """True when no task is queued anywhere.

        Consulted by the executor before each wake round so an empty
        scheduler costs one cheap check instead of a pop attempt (with its
        idleness computation) per worker.  Subclasses with several internal
        queues should override with a direct truth test.
        """
        return self.pending() == 0

    def ready_device_mask(self, ctx: SchedulerContext) -> int:
        """Bitmask of devices :meth:`pop` could serve *regardless of idleness*.

        A conservative superset is fine — the executor still calls ``pop``
        and tolerates ``None`` — but a device whose bit is clear is a promise:
        popping for it (unless it is idle and :meth:`has_stealable_work`)
        would return ``None``, so the wake loop skips it without the call.
        The default is all-or-nothing on :meth:`empty`; indexed schedulers
        override with their per-device non-empty masks.
        """
        return 0 if self.empty() else self._all_mask

    def has_stealable_work(self, ctx: SchedulerContext) -> bool:
        """Could an *idle* device outside :meth:`ready_device_mask` get work?

        Work-stealing schedulers return True while their shared queue is
        non-empty or a peer deque is raidable; everyone else keeps the
        default False, which lets the executor's wake loop skip busy workers
        with no owned work without a pop attempt each.
        """
        return False

    def on_complete(self, task: Task, ctx: SchedulerContext) -> None:
        """Completion hook (optional; e.g. performance-model updates)."""
