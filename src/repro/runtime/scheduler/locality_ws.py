"""XKaapi's locality-aware work stealing.

The paper's §III-A: "the internal scheduling algorithm uses an owner-computes
rule heuristic to map tasks on resources" and §IV-D: "the XKBlas scheduler
relies on the XKaapi work stealing, with locality heuristic".

Placement of a schedulable task:

1. the device holding the MODIFIED replica of its written tile binds the task
   (owner computes — the task continues a chain in place), unless that owner
   is far ahead of a starving peer (load-aware release);
2. anything else goes to the spawning (host) thread's shared queue.

Each device owns a deque: the owner pops LIFO (depth-first reuse of warm
data); an idle device steals FIFO — first from the shared queue, then from the
most-loaded peer deque.  Steals ignore data locality: that blindness is
precisely the mechanism behind the communication/load imbalance the paper
observes on SYR2K (§IV-E), which our Fig. 7 reproduction exhibits.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.scheduler.base import Scheduler, SchedulerContext
from repro.runtime.task import Task
from repro.topology.link import HOST


class LocalityWorkStealing(Scheduler):
    name = "xkaapi-locality-ws"

    def __init__(self, num_devices: int, steal_from_richest: bool = True) -> None:
        super().__init__(num_devices)
        self._deques: list[deque[Task]] = [deque() for _ in range(num_devices)]
        #: fresh tasks with no placed data sit in the spawning (host) thread's
        #: queue; idle GPU workers steal them FIFO, locality-blind — the
        #: XKaapi distribution mechanism, and the source of the SYR2K
        #: imbalance the paper analyses (§IV-E).
        self._host_queue: deque[Task] = deque()
        #: bit ``d`` set iff ``_deques[d]`` is non-empty (kept by push/pop).
        self._deque_mask = 0
        self.steal_from_richest = steal_from_richest
        self.steals = 0

    # -------------------------------------------------------------- placing

    def _owner_device(self, task: Task, ctx: SchedulerContext) -> int | None:
        """Owner-computes: the device holding the *dirty* written tile.

        Only a MODIFIED replica binds (the task continues a chain in place);
        a merely SHARED copy does not — binding on read replicas was observed
        to serialize wavefront-shaped graphs (TRMM) onto the few devices that
        happened to read a column first.  Unbound tasks go to the shared
        queue, where idle workers apply the data-aware steal.
        """
        if task.owner_hint is not None:
            return task.owner_hint
        out = task.output_tile
        holder = ctx.directory.modified_location(out.key)
        if holder is not None and holder != HOST:
            return holder
        return None

    def push(self, task: Task, ctx: SchedulerContext) -> None:
        # Owner computes on the *written* tile only.  Reader locality is
        # deliberately NOT used for placement: herding tasks toward whichever
        # GPU fetched input data first serializes the startup; communication
        # locality is the transfer heuristics' job (§III-B/C), not the
        # scheduler's.
        dev = self._owner_device(task, ctx)
        if dev is None:
            self._host_queue.append(task)
            return
        dev %= self.num_devices
        # Load-aware locality (the [11] heuristics combine data affinity with
        # queue load): when the owner is far ahead of a starving peer, release
        # the task to the shared queue so an idle worker can steal it — this
        # is what keeps wavefront-shaped graphs (TRMM) from strangling on a
        # few owner devices.
        est = ctx.kernel_estimate(task, dev)
        owner_load = ctx.device_load(dev)
        # Backlogs are clamped non-negative, so ``owner_load - min_load``
        # never exceeds ``owner_load`` (IEEE: subtracting a non-negative
        # float cannot round above the minuend).  When the owner itself is
        # within the release margin the condition below is provably false —
        # skip the all-devices backlog scan entirely on that common path.
        # Per-event cost audit (large-tier profile, 266k tasks): this branch
        # is O(num_devices) behind the 4x-estimate guard — a platform-sized
        # constant (8 on the DGX-1 model), not a function of live tasks or
        # resident tiles, so it does not contribute to the large-N scaling
        # cliff.  Replacing min() with an incrementally tracked minimum would
        # risk float-comparison drift in release decisions for no asymptotic
        # gain.
        if owner_load > 4.0 * est:
            loads_fn = ctx.device_loads
            if loads_fn is not None:
                # Bulk query: one call for all backlogs.  min() over the full
                # list equals the owner/others split below because the owner's
                # load is a member of both.
                min_load = min(loads_fn())
            else:
                device_load = ctx.device_load
                min_load = owner_load
                for d in range(self.num_devices):
                    if d != dev:
                        load = device_load(d)
                        if load < min_load:
                            min_load = load
            if owner_load - min_load > 4.0 * est and min_load < est:
                self._host_queue.append(task)
                return
        self._deques[dev].append(task)
        self._deque_mask |= 1 << dev

    # -------------------------------------------------------------- serving

    def pop(
        self, device: int, ctx: SchedulerContext, idle: bool | None = None
    ) -> Task | None:
        own = self._deques[device]
        if own:
            self.scheduled += 1
            task = own.pop()  # LIFO on own deque
            if not own:
                self._deque_mask &= ~(1 << device)
            return task
        if idle is None:
            idle = ctx.device_idle(device)
        if not idle:
            return None  # busy workers do not steal
        if self._host_queue:
            self.steals += 1
            self.scheduled += 1
            return self._steal_from_host_queue(device, ctx)
        victim = self._choose_victim(device, ctx)
        if victim is None:
            return None
        self.steals += 1
        self.scheduled += 1
        raided = self._deques[victim]
        task = raided.popleft()  # FIFO steal
        if not raided:
            self._deque_mask &= ~(1 << victim)
        return task

    def _steal_from_host_queue(self, device: int, ctx: SchedulerContext) -> Task:
        """FIFO steal from the spawning thread's queue.

        A data-aware scan (preferring tasks with inputs already local, as in
        [11]) was evaluated here: it raises GEMM throughput slightly but
        clusters same-panel chains per device, *increasing* host-PCIe traffic
        and destroying the paper's Fig. 6 signature (XKBlas must have the
        lowest HtoD time) — so the replica-level heuristics, not the steal,
        carry the locality, exactly as the paper argues.
        """
        return self._host_queue.popleft()

    def _choose_victim(self, thief: int, ctx: SchedulerContext) -> int | None:
        """Pick a deque to raid.

        A victim whose own worker is idle and holds a single queued task is
        not raided — it will pop that task immediately itself, and stealing
        it would only drag the written tile to another GPU (chain
        ping-pong).
        """
        best, best_len = None, 0
        m = self._deque_mask & ~(1 << thief)
        while m:
            low = m & -m
            m ^= low
            dev = low.bit_length() - 1
            size = len(self._deques[dev])
            if size == 1 and ctx.device_load(dev) <= 0.0:
                continue  # the idle owner is about to take it anyway
            if self.steal_from_richest:
                if size > best_len:
                    best, best_len = dev, size
            elif best is None:
                best = dev
        return best

    def pending(self) -> int:
        return sum(len(d) for d in self._deques) + len(self._host_queue)

    def empty(self) -> bool:
        return not self._host_queue and not self._deque_mask

    def ready_device_mask(self, ctx: SchedulerContext) -> int:
        """Owners of non-empty deques (served whether idle or not)."""
        return self._deque_mask

    def has_stealable_work(self, ctx: SchedulerContext) -> bool:
        """Shared queue non-empty, or a deque is raidable per the
        :meth:`_choose_victim` feasibility rule — then any idle peer can get
        work beyond its own deque."""
        if self._host_queue:
            return True
        m = self._deque_mask
        while m:
            low = m & -m
            m ^= low
            dev = low.bit_length() - 1
            if len(self._deques[dev]) > 1 or ctx.device_load(dev) > 0.0:
                return True
        return False

    def queue_sizes(self) -> list[int]:
        return [len(d) for d in self._deques]
