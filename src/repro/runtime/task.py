"""Tasks.

A :class:`Task` couples a set of tile accesses with a compute model (flop
count + characteristic dimension, used by perf mode) and an optional numeric
kernel (a callable over NumPy arrays, used by numeric mode).  Dependencies are
not stored here — :mod:`repro.runtime.dataflow` derives them from the access
declarations in submission order.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Sequence

import numpy as np

from repro.errors import TaskGraphError
from repro.memory.tile import Tile
from repro.runtime.access import Access, AccessMode

_task_ids = itertools.count()

_NAN = float("nan")

#: Signature of a numeric kernel: receives the device arrays of the task's
#: accesses *in declaration order* and mutates the written ones in place.
NumericKernel = Callable[..., None]


@dataclasses.dataclass(eq=False, slots=True, weakref_slot=True)
class Task:
    """One schedulable kernel invocation.

    Parameters
    ----------
    name:
        Kernel name ("dgemm", "dtrsm"...), used for traces and debugging.
    accesses:
        Tile accesses in kernel-argument order.
    flops:
        Floating-point operations performed (drives perf-mode duration).
    dim:
        Characteristic dimension for the GPU efficiency curve.
    kernel:
        Numeric implementation (optional; required only in numeric mode).
    regularity:
        Efficiency scale of the kernel class (GEMM 1.0, TRSM lower).
    priority:
        Larger runs earlier under priority-aware schedulers; tiled algorithms
        set it to the remaining critical-path estimate.
    owner_hint:
        Device preferred by owner-computes/static schedulers, or ``None``.
    """

    name: str
    accesses: Sequence[Access]
    flops: float
    dim: int
    kernel: NumericKernel | None = None
    regularity: float = 1.0
    priority: int = 0
    owner_hint: int | None = None

    # --- fields managed by the runtime ---
    #: keys of every accessed tile, precomputed once (accesses are immutable
    #: after construction); the executor passes this as the eviction-protect
    #: set on every input transfer instead of rebuilding the tuple per launch.
    access_keys: tuple = ()
    #: the written accesses, precomputed for the completion path: write
    #: registration runs once per finished task and only visits these instead
    #: of filtering the full access list each time.
    write_accesses: tuple = ()
    #: ``(flops, dim, wordsize, regularity)`` — the kernel-duration cache key,
    #: prebuilt so the launch path indexes a per-worker duration table with
    #: one attribute load instead of assembling a tuple per launch.
    kt_shape: tuple = ()
    #: the first written tile (first access for reads-only tasks) — the
    #: owner-computes anchor, precomputed for the same reason as
    #: ``access_keys``: the schedulers read it on every push.
    output_tile: Tile | None = None
    #: process-global on purpose: uids only need to be unique per process
    #: (executor bookkeeping sets, repr); no decision arithmetic consumes
    #: them — lint rule D106 would flag it if one ever did.
    uid: int = dataclasses.field(  # det: unique-only, never decision input
        default_factory=lambda: next(_task_ids)
    )
    unfinished_predecessors: int = 0
    successors: list["Task"] = dataclasses.field(default_factory=list)
    #: set by the executor once the task's submission instant has passed —
    #: a flag on the task (not a uid set) so the check per successor edge is
    #: one attribute load and reclaiming graphs carry no growing set.
    submitted: bool = False
    device: int | None = None  # assigned at execution
    start_time: float = float("nan")
    end_time: float = float("nan")
    state: str = "created"  # created -> ready -> running -> done

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise TaskGraphError(f"task {self.name}: negative flops")
        if not self.accesses:
            raise TaskGraphError(f"task {self.name}: a task must access data")
        keys = []
        out = None
        writes = []
        for a in self.accesses:
            keys.append(a.tile.key)
            if a.writes:
                writes.append(a)
                if out is None:
                    out = a.tile
        self.access_keys = tuple(keys)
        self.write_accesses = tuple(writes)
        self.output_tile = out if out is not None else self.accesses[0].tile
        self.kt_shape = (
            self.flops, self.dim, self.output_tile.wordsize, self.regularity
        )

    @classmethod
    def build(
        cls,
        name: str,
        accesses: Sequence[Access],
        flops: float,
        dim: int,
        kernel: NumericKernel | None,
        regularity: float,
    ) -> "Task":
        """Construct a task without the dataclass ``__init__`` machinery.

        The tiled builders emit thousands of tasks per call; the generated
        ``__init__`` parses seven keywords, walks the default table and then
        calls ``__post_init__`` in a second frame.  This sets every slot
        directly in one frame — field-for-field identical to
        ``Task(name=..., ..., regularity=...)``, and it must stay in sync
        with the field list above.
        """
        if flops < 0:
            raise TaskGraphError(f"task {name}: negative flops")
        if not accesses:
            raise TaskGraphError(f"task {name}: a task must access data")
        task = object.__new__(cls)
        task.name = name
        task.accesses = accesses
        task.flops = flops
        task.dim = dim
        task.kernel = kernel
        task.regularity = regularity
        task.priority = 0
        task.owner_hint = None
        task.uid = next(_task_ids)  # det: unique-only, never decision input
        task.unfinished_predecessors = 0
        task.successors = []
        task.submitted = False
        task.device = None
        task.start_time = _NAN
        task.end_time = _NAN
        task.state = "created"
        keys = []
        out = None
        writes = []
        for a in accesses:
            keys.append(a.tile.key)
            if a.writes:
                writes.append(a)
                if out is None:
                    out = a.tile
        task.access_keys = tuple(keys)
        task.write_accesses = tuple(writes)
        out = out if out is not None else accesses[0].tile
        task.output_tile = out
        task.kt_shape = (flops, dim, out.wordsize, regularity)
        return task

    # -------------------------------------------------------------- queries

    @property
    def reads(self) -> list[Tile]:
        return [a.tile for a in self.accesses if a.reads]

    @property
    def writes(self) -> list[Tile]:
        return [a.tile for a in self.accesses if a.writes]

    @property
    def input_bytes(self) -> int:
        """Bytes a device must hold valid before the kernel can start."""
        return sum(a.tile.nbytes for a in self.accesses if a.reads)

    def run_numeric(self, arrays: Sequence[np.ndarray]) -> None:
        """Execute the numeric kernel over the device arrays."""
        if self.kernel is None:
            raise TaskGraphError(f"task {self.name} has no numeric kernel")
        self.kernel(*arrays)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def __repr__(self) -> str:
        return f"Task#{self.uid}({self.name}, {list(self.accesses)!r})"


def make_access_list(
    reads: Sequence[Tile] = (),
    writes: Sequence[Tile] = (),
    readwrites: Sequence[Tile] = (),
) -> list[Access]:
    """Convenience builder for access lists (reads, then writes, then RW)."""
    out = [Access(t, AccessMode.READ) for t in reads]
    out += [Access(t, AccessMode.WRITE) for t in writes]
    out += [Access(t, AccessMode.READWRITE) for t in readwrites]
    return out
