"""ASCII chart renderers (no third-party dependencies)."""

from __future__ import annotations

from typing import Mapping, Sequence

#: Distinct plotting glyphs, one per series.
GLYPHS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Mapping[float, float | None]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render multiple (x -> y) series on one ASCII grid.

    ``None`` values (the paper's missing points) are skipped.  X positions are
    scaled by value (not by index) so uneven sweeps render proportionally.
    """
    points: list[tuple[float, float, int]] = []
    names = list(series)
    for idx, name in enumerate(names):
        for x, y in series[name].items():
            if y is not None:
                points.append((float(x), float(y), idx))
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, idx in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        cell = grid[row][col]
        grid[row][col] = GLYPHS[idx % len(GLYPHS)] if cell == " " else "?"
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_hi:8.1f} |"
        elif r == height - 1:
            label = f"{y_lo:8.1f} |"
        elif r == height // 2:
            label = f"{(y_lo + y_hi) / 2:8.1f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<12.0f}{ylabel:^{max(0, width - 24)}}{x_hi:>12.0f}")
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"          {legend}  ('?' = overplot)")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        return "(no data)"
    top = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, int(value / top * width))
        lines.append(f"{str(name):>{label_w}} |{bar:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of a numeric sequence."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = [v for v in values if v is not None]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] if v is not None else " "
        for v in values
    )
