"""Dependency-free terminal visualization.

The environment has no plotting stack, so the figures are rendered as ASCII:
line charts for the TFlop/s-vs-N sweeps (Figs. 3-5, 8), bar charts for the
trace breakdowns (Fig. 6), and the Gantt renderer already used by Fig. 9.
``python -m repro.bench <fig> --plot`` attaches the chart to the report.
"""

from repro.viz.ascii import bar_chart, line_chart, sparkline

__all__ = ["bar_chart", "line_chart", "sparkline"]
