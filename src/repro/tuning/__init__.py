"""Tile-size autotuning.

The paper's methodology picks, per (library, routine, N), the best tile size
among a fixed candidate set and notes "block size tuning is outside of the
scope of this paper" (§IV-A).  Because our platform is a deterministic
simulator, tuning *is* in scope here: :class:`~repro.tuning.tuner.TileTuner`
searches tile sizes cheaply (golden-section-style refinement over the
power-of-two ladder) and caches results per (library, routine, size class) —
the tool a downstream user would reach for before running a real workload.

:mod:`repro.tuning.service` wraps the same search space in a long-running
asyncio server (single-flight deduplication, batched cold-cell dispatch,
shared persistent store), so many clients — and many server processes —
answer tuning queries from one warm corpus.
"""

from repro.tuning.tuner import TileTuner, TuningResult

__all__ = ["TileTuner", "TuningResult"]
