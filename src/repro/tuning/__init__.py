"""Tile-size autotuning.

The paper's methodology picks, per (library, routine, N), the best tile size
among a fixed candidate set and notes "block size tuning is outside of the
scope of this paper" (§IV-A).  Because our platform is a deterministic
simulator, tuning *is* in scope here: :class:`~repro.tuning.tuner.TileTuner`
searches tile sizes cheaply (golden-section-style refinement over the
power-of-two ladder) and caches results per (library, routine, size class) —
the tool a downstream user would reach for before running a real workload.
"""

from repro.tuning.tuner import TileTuner, TuningResult

__all__ = ["TileTuner", "TuningResult"]
