"""The tile-size tuner.

Strategy: evaluate the power-of-two ladder between ``min_nb`` and ``max_nb``
(both clamped to sane fractions of N), then refine around the best rung with
its two half-step neighbours (3·2ᵏ sizes).  Every evaluation is one simulated
run — deterministic, so results are cacheable and exactly reproducible.

A tuner built over a :class:`~repro.bench.cellspec.PlatformHandle` with a
:class:`~repro.bench.executor.SweepExecutor` routes every evaluation through
the executor's point cache — the configuration the tuning service uses, so
server restarts and sibling processes share one warm corpus.  A raw
:class:`~repro.topology.platform.Platform` keeps the direct, uncached path.
"""

from __future__ import annotations

import dataclasses
import math

from repro.bench.cellspec import PlatformHandle
from repro.bench.executor import SweepExecutor
from repro.bench.harness import run_point
from repro.errors import BenchmarkError
from repro.topology.platform import Platform


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning search."""

    library: str
    routine: str
    n: int
    best_nb: int
    best_tflops: float
    evaluated: dict[int, float]  # nb -> TFlop/s

    @property
    def evaluations(self) -> int:
        return len(self.evaluated)


class TileTuner:
    """Searches tile sizes for a (library, routine) on one platform."""

    def __init__(
        self,
        platform: Platform | PlatformHandle,
        min_nb: int = 256,
        max_nb: int = 8192,
        max_tiles: int = 32,
        executor: SweepExecutor | None = None,
    ) -> None:
        if min_nb <= 0 or max_nb < min_nb:
            raise BenchmarkError(f"invalid nb range [{min_nb}, {max_nb}]")
        self.platform = platform
        self.min_nb = min_nb
        self.max_nb = max_nb
        #: tile sizes finer than n/max_tiles per dimension are not explored
        #: (task-graph size explodes, and they never won in our sweeps).
        self.max_tiles = max_tiles
        self.executor = executor
        self._cache: dict[tuple[str, str, int, str], TuningResult] = {}

    # ------------------------------------------------------------ searching

    def _candidates(self, n: int) -> list[int]:
        # Ladder floor: the smallest admissible tile — at least ``min_nb``
        # and coarse enough that n/nb <= max_tiles — rounded up to the next
        # power of two.  ceil() (not floor division) so the first rung never
        # lands just below the max_tiles admission bound.
        floor = max(self.min_nb, math.ceil(n / self.max_tiles))
        nb = 1 << (floor - 1).bit_length()
        out = []
        while nb <= min(self.max_nb, n // 2):
            out.append(nb)
            nb *= 2
        return out or [max(self.min_nb, n // 2)]

    def tune(
        self,
        library: str,
        routine: str,
        n: int,
        scenario: str = "host",
        refine: bool = True,
    ) -> TuningResult:
        """Find the best tile size for one problem size.

        Raises :class:`BenchmarkError` when no candidate is admissible (every
        nb in range violates ``nb < n`` or ``n/nb <= max_tiles`` — e.g.
        ``n <= min_nb``): a zero-TFlop/s "recommendation" must never be
        computed, cached, or served.
        """
        key = (library, routine, n, scenario)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluated: dict[int, float] = {}
        rejected: set[int] = set()

        def measure(nb: int) -> float:
            nb = int(nb)
            if nb in evaluated:
                return evaluated[nb]
            if nb >= n or n / nb > self.max_tiles:
                rejected.add(nb)
                evaluated[nb] = 0.0
                return 0.0
            res = run_point(
                library, routine, n, nb, self.platform,
                scenario=scenario, executor=self.executor,
            )
            evaluated[nb] = res.tflops
            return res.tflops

        for nb in self._candidates(n):
            measure(nb)
        measured = {nb: tf for nb, tf in evaluated.items() if nb not in rejected}
        if measured:
            best_nb = max(measured, key=measured.get)
            if refine:
                # Probe the 1.5x midpoints around the winning rung.
                for cand in (best_nb * 3 // 4, best_nb * 3 // 2):
                    cand = max(self.min_nb, min(cand, self.max_nb))
                    measure(cand)
                measured = {
                    nb: tf for nb, tf in evaluated.items() if nb not in rejected
                }
                best_nb = max(measured, key=measured.get)
        else:
            raise BenchmarkError(
                f"no admissible tile size for {library}/{routine} n={n}: "
                f"candidates {sorted(evaluated)} in [{self.min_nb}, {self.max_nb}] "
                f"all rejected by nb < n and n/nb <= {self.max_tiles}"
            )
        result = TuningResult(
            library=library,
            routine=routine,
            n=n,
            best_nb=best_nb,
            best_tflops=evaluated[best_nb],
            evaluated=dict(evaluated),
        )
        self._cache[key] = result
        return result

    # -------------------------------------------------------------- queries

    def recommend(self, library: str, routine: str, n: int, scenario: str = "host") -> int:
        """Best tile size (tuning on first use, cached afterwards)."""
        return self.tune(library, routine, n, scenario=scenario).best_nb

    def table(self, library: str, routine: str, sizes, scenario: str = "host"):
        """Tuning table across problem sizes: ``[(n, best_nb, tflops)]``."""
        return [
            (n, r.best_nb, round(r.best_tflops, 2))
            for n in sizes
            for r in [self.tune(library, routine, n, scenario=scenario)]
        ]
