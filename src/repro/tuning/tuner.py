"""The tile-size tuner.

Strategy: evaluate the power-of-two ladder between ``min_nb`` and ``max_nb``
(both clamped to sane fractions of N), then refine around the best rung with
its two half-step neighbours (3·2ᵏ sizes).  Every evaluation is one simulated
run — deterministic, so results are cacheable and exactly reproducible.
"""

from __future__ import annotations

import dataclasses
import math

from repro.bench.harness import run_point
from repro.errors import BenchmarkError
from repro.topology.platform import Platform


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning search."""

    library: str
    routine: str
    n: int
    best_nb: int
    best_tflops: float
    evaluated: dict[int, float]  # nb -> TFlop/s

    @property
    def evaluations(self) -> int:
        return len(self.evaluated)


class TileTuner:
    """Searches tile sizes for a (library, routine) on one platform."""

    def __init__(
        self,
        platform: Platform,
        min_nb: int = 256,
        max_nb: int = 8192,
        max_tiles: int = 32,
    ) -> None:
        if min_nb <= 0 or max_nb < min_nb:
            raise BenchmarkError(f"invalid nb range [{min_nb}, {max_nb}]")
        self.platform = platform
        self.min_nb = min_nb
        self.max_nb = max_nb
        #: tile sizes finer than n/max_tiles per dimension are not explored
        #: (task-graph size explodes, and they never won in our sweeps).
        self.max_tiles = max_tiles
        self._cache: dict[tuple[str, str, int, str], TuningResult] = {}

    # ------------------------------------------------------------ searching

    def _candidates(self, n: int) -> list[int]:
        lo = max(self.min_nb, 1 << max(0, (n // self.max_tiles)).bit_length() - 1)
        out = []
        nb = 1 << int(math.ceil(math.log2(max(self.min_nb, n // self.max_tiles))))
        while nb <= min(self.max_nb, n // 2):
            out.append(nb)
            nb *= 2
        return out or [max(self.min_nb, n // 2)]

    def tune(
        self,
        library: str,
        routine: str,
        n: int,
        scenario: str = "host",
        refine: bool = True,
    ) -> TuningResult:
        """Find the best tile size for one problem size."""
        key = (library, routine, n, scenario)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        evaluated: dict[int, float] = {}

        def measure(nb: int) -> float:
            nb = int(nb)
            if nb in evaluated:
                return evaluated[nb]
            if nb >= n or n / nb > self.max_tiles:
                evaluated[nb] = 0.0
                return 0.0
            res = run_point(library, routine, n, nb, self.platform, scenario=scenario)
            evaluated[nb] = res.tflops
            return res.tflops

        ladder = self._candidates(n)
        for nb in ladder:
            measure(nb)
        best_nb = max(evaluated, key=evaluated.get)
        if refine:
            # Probe the 1.5x midpoints around the winning rung.
            for cand in (best_nb * 3 // 4, best_nb * 3 // 2):
                cand = max(self.min_nb, min(cand, self.max_nb))
                measure(cand)
            best_nb = max(evaluated, key=evaluated.get)
        result = TuningResult(
            library=library,
            routine=routine,
            n=n,
            best_nb=best_nb,
            best_tflops=evaluated[best_nb],
            evaluated=dict(evaluated),
        )
        self._cache[key] = result
        return result

    # -------------------------------------------------------------- queries

    def recommend(self, library: str, routine: str, n: int, scenario: str = "host") -> int:
        """Best tile size (tuning on first use, cached afterwards)."""
        return self.tune(library, routine, n, scenario=scenario).best_nb

    def table(self, library: str, routine: str, sizes, scenario: str = "host"):
        """Tuning table across problem sizes: ``[(n, best_nb, tflops)]``."""
        return [
            (n, r.best_nb, round(r.best_tflops, 2))
            for n in sizes
            for r in [self.tune(library, routine, n, scenario=scenario)]
        ]
