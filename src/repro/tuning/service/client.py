"""Client for the tuning service.

:class:`TuningClient` is the asyncio client: one connection, sequential
requests, streamed per-cell callbacks.  The ``*_sync`` helpers wrap single
calls in ``asyncio.run`` for CLIs and scripts that don't run a loop.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Callable

from repro.tuning.service import protocol
from repro.tuning.service.protocol import (
    CellReport,
    ServiceError,
    TuneQuery,
    TuneReply,
)


class TuningClient:
    """One connection to a tuning server.

    Requests on one client are sequential (``tune`` awaits its full stream);
    concurrency comes from opening several clients — each query is
    single-flighted server-side, so identical concurrent queries still cost
    one simulation total.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = protocol.DEFAULT_PORT
    ) -> TuningClient:
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> TuningClient:
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------- requests

    async def _request(self, payload: dict) -> AsyncIterator[dict]:
        """Send one request; yield its response events until the terminal one."""
        self._next_id += 1
        request_id = self._next_id
        self._writer.write(protocol.encode({"id": request_id, **payload}))
        await self._writer.drain()
        while True:
            line = await self._reader.readline()
            if not line:
                raise ServiceError("connection closed mid-request")
            event = protocol.decode(line)
            if event.get("id") != request_id:
                continue  # stale event from an aborted earlier request
            if event.get("event") == "error":
                raise ServiceError(event.get("message", "server error"))
            yield event
            if event.get("event") != "cell":
                return

    async def tune(
        self,
        query: TuneQuery | None = None,
        *,
        routine: str | None = None,
        n: int | None = None,
        on_cell: Callable[[CellReport], None] | None = None,
        **query_kwargs: object,
    ) -> TuneReply:
        """Run one tune query; ``on_cell`` observes each cell as it streams.

        Pass either a prebuilt :class:`TuneQuery` or ``routine``/``n`` plus
        any other :class:`TuneQuery` field as keyword arguments.
        """
        if query is None:
            if routine is None or n is None:
                raise ServiceError("tune needs a query or routine= and n=")
            query = TuneQuery(routine=routine, n=int(n), **query_kwargs)  # type: ignore[arg-type]
        cells: list[CellReport] = []
        simulated = 0
        async for event in self._request({"op": "tune", "query": query.to_json()}):
            if event["event"] == "cell":
                cell = CellReport.from_json(event["cell"])
                cells.append(cell)
                if on_cell is not None:
                    on_cell(cell)
            elif event["event"] == "result":
                simulated = int(event.get("simulated", 0))
        return TuneReply(
            cells=tuple(cells),
            best=protocol.pick_best(cells),
            simulated=simulated,
        )

    async def stats(self) -> dict:
        async for event in self._request({"op": "stats"}):
            return dict(event.get("stats", {}))
        raise ServiceError("no stats event received")

    async def ping(self) -> int:
        """Round-trip liveness check; returns the server protocol version."""
        async for event in self._request({"op": "ping"}):
            return int(event.get("version", 0))
        raise ServiceError("no pong received")

    async def shutdown(self) -> None:
        """Ask the server process to stop serving (it drains and exits)."""
        async for _ in self._request({"op": "shutdown"}):
            return


# ------------------------------------------------------------ sync wrappers


def tune_sync(
    query: TuneQuery,
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
    on_cell: Callable[[CellReport], None] | None = None,
) -> TuneReply:
    """Blocking one-shot tune against a running server."""

    async def go() -> TuneReply:
        async with await TuningClient.connect(host, port) as client:
            return await client.tune(query, on_cell=on_cell)

    return asyncio.run(go())


def stats_sync(host: str = "127.0.0.1", port: int = protocol.DEFAULT_PORT) -> dict:
    """Blocking server-stats fetch."""

    async def go() -> dict:
        async with await TuningClient.connect(host, port) as client:
            return await client.stats()

    return asyncio.run(go())


def shutdown_sync(host: str = "127.0.0.1", port: int = protocol.DEFAULT_PORT) -> None:
    """Blocking shutdown request."""

    async def go() -> None:
        async with await TuningClient.connect(host, port) as client:
            await client.shutdown()

    asyncio.run(go())
