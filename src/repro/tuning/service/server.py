"""The concurrent autotune server.

Three layers, smallest surface first:

* :class:`SingleFlight` — at most one in-flight evaluation per
  ``(cell key, fingerprint)``: the first asker owns the computation, every
  concurrent identical asker awaits the same future.  This is what makes N
  simultaneous identical queries cost exactly one simulation.
* :class:`TuningService` — transport-independent query engine.  A tune query
  expands to its deterministic cell enumeration; warm cells answer from the
  :class:`~repro.bench.cache.PointCache` immediately, cold cells are claimed
  through single-flight and coalesced into one batch per event-loop tick
  (plus an optional ``batch_window``) before dispatching to the
  :class:`~repro.bench.executor.SweepExecutor` on a worker thread.  Results
  stream back per cell, in enumeration order, as they resolve.
* :class:`TuningServer` — the asyncio TCP front end speaking the
  newline-delimited JSON protocol of :mod:`repro.tuning.service.protocol`,
  with per-connection write serialization and multiple requests in flight
  per connection.

Simulated numbers are never recomputed differently here: every cell routes
through the same :func:`repro.bench.executor.evaluate_cell` the offline
sweeps use, so a served TFlop/s is byte-identical to the direct
``harness.run_point`` path.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import AsyncIterator, Awaitable, Callable

from repro.bench.cellspec import CellOutcome, CellSpec
from repro.bench.executor import SweepExecutor
from repro.errors import BenchmarkError, ReproError
from repro.tuning.service import protocol
from repro.tuning.service.protocol import TuneQuery


class SingleFlight:
    """Deduplicates concurrent computations of the same key.

    :meth:`claim` returns ``(future, owned)``: the first claimant of a key
    owns it (must eventually resolve the future); later claimants of the
    same key get the same future with ``owned=False`` and await it — always
    through :func:`asyncio.shield`, so one cancelled waiter cannot cancel
    the shared computation out from under the others.
    Keys free themselves when their future completes — by then the point
    cache holds the outcome, so re-claims only happen after an eviction
    (never, in practice) or a fingerprint change.
    """

    def __init__(self) -> None:
        self._inflight: dict[object, asyncio.Future] = {}

    def claim(self, key: object) -> tuple[asyncio.Future, bool]:
        future = self._inflight.get(key)
        if future is not None:
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        future.add_done_callback(
            lambda _, key=key: self._inflight.pop(key, None)
        )
        return future, True

    def __len__(self) -> int:
        return len(self._inflight)


class TuningService:
    """Transport-independent tune-query engine (single-flight + batching)."""

    def __init__(self, executor: SweepExecutor, batch_window: float = 0.0) -> None:
        self.executor = executor
        self.batch_window = batch_window
        self.queries = 0
        self.batches_dispatched = 0
        self._flight = SingleFlight()
        self._pending: list[tuple[CellSpec, asyncio.Future]] = []
        self._flush_task: asyncio.Task | None = None

    # ------------------------------------------------------------- querying

    async def handle_tune(self, query: TuneQuery) -> AsyncIterator[dict]:
        """Stream one query's events: ``cell`` per evaluated cell (in
        enumeration order, as each resolves), then the terminal ``result``."""
        self.queries += 1
        specs = query.specs()
        if not specs:
            raise BenchmarkError(
                f"no admissible cell for {query.routine} n={query.n}: every "
                f"candidate tile (tiles={query.tiles}) violates nb < n and "
                f"n/nb <= 32"
            )
        fingerprint = self.executor.fingerprint
        cache = self.executor.cache
        hits: dict[CellSpec, CellOutcome] = {}
        cold: list[CellSpec] = []
        for spec in specs:
            hit = cache.get_memo(spec, fingerprint)
            if hit is not None:
                hits[spec] = hit
            else:
                cold.append(spec)
        if cold:
            # The store re-check is synchronous I/O behind the store's lock,
            # which an off-loop evaluate batch may be holding — run it on a
            # worker thread (one hop for every cold cell of the query) so the
            # event loop never stalls on it.  Memory-only caches have no I/O;
            # the inline call just keeps the miss accounting of ``get``.
            if cache.persistent:
                found = await asyncio.to_thread(
                    lambda: [(s, cache.get(s, fingerprint)) for s in cold]
                )
            else:
                found = [(s, cache.get(s, fingerprint)) for s in cold]
            hits.update((s, hit) for s, hit in found if hit is not None)
        # Claim every remaining miss in one synchronous stretch, so all cold
        # cells of this query land in the same flush batch.
        plan: list[tuple[CellSpec, str, CellOutcome | asyncio.Future]] = []
        for spec in specs:
            hit = hits.get(spec)
            if hit is not None:
                plan.append((spec, protocol.SOURCE_CACHE, hit))
                continue
            future, owned = self._flight.claim((spec.cache_key(), fingerprint))
            if owned:
                self._enqueue(spec, future)
                plan.append((spec, protocol.SOURCE_SIMULATED, future))
            else:
                plan.append((spec, protocol.SOURCE_COALESCED, future))
        reports: list[protocol.CellReport] = []
        simulated = 0
        for spec, source, pending in plan:
            if isinstance(pending, CellOutcome):
                outcome = pending
            else:
                # Shielded: cancelling this waiter (client disconnect cancels
                # its dispatch task) must not cancel the shared single-flight
                # future other connections are awaiting, nor free its key
                # while the batch still runs.
                outcome = await asyncio.shield(pending)
            simulated += source == protocol.SOURCE_SIMULATED
            report = protocol.report_from_outcome(spec, outcome, source)
            reports.append(report)
            yield {"event": "cell", "cell": report.to_json()}
        best = protocol.pick_best(reports)
        yield {
            "event": "result",
            "best": best.to_json() if best is not None else None,
            "cells": len(reports),
            "simulated": simulated,
        }

    async def tune(self, query: TuneQuery) -> protocol.TuneReply:
        """In-process convenience: drain :meth:`handle_tune` into a reply."""
        cells: list[protocol.CellReport] = []
        simulated = 0
        async for event in self.handle_tune(query):
            if event["event"] == "cell":
                cells.append(protocol.CellReport.from_json(event["cell"]))
            else:
                simulated = event["simulated"]
        return protocol.TuneReply(
            cells=tuple(cells), best=protocol.pick_best(cells), simulated=simulated
        )

    # ------------------------------------------------------------- batching

    def _enqueue(self, spec: CellSpec, future: asyncio.Future) -> None:
        self._pending.append((spec, future))
        if self._flush_task is None:
            self._flush_task = asyncio.ensure_future(self._flush_soon())

    async def _flush_soon(self) -> None:
        # Cold cells claimed in the same tick (or window) coalesce into one
        # executor batch: concurrent distinct queries share pool dispatch.
        if self.batch_window > 0:
            await asyncio.sleep(self.batch_window)
        else:
            await asyncio.sleep(0)
        batch, self._pending = self._pending, []
        self._flush_task = None
        if not batch:
            return
        self.batches_dispatched += 1
        specs = [spec for spec, _ in batch]
        try:
            outcomes = await self.executor.evaluate_async(specs)
        except Exception:  # noqa: BLE001 — isolate the failure per cell
            # A batch fails as one unit, but its cells were coalesced from
            # unrelated queries: retry each alone so one poisoned spec cannot
            # opaquely fail the others, and name the cell in terminal errors.
            for spec, future in batch:
                try:
                    outcome = (await self.executor.evaluate_async([spec]))[spec]
                except Exception as exc:  # noqa: BLE001
                    if not future.done():
                        future.set_exception(BenchmarkError(
                            f"evaluation failed for {spec.cache_key()}: {exc}"
                        ))
                else:
                    if not future.done():
                        future.set_result(outcome)
        else:
            for spec, future in batch:
                if not future.done():
                    future.set_result(outcomes[spec])

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "batches": self.batches_dispatched,
            "inflight": len(self._flight),
            **self.executor.stats(),
        }


class TuningServer:
    """Asyncio TCP front end over a :class:`TuningService`."""

    def __init__(
        self,
        executor: SweepExecutor,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.0,
    ) -> None:
        self.service = TuningService(executor, batch_window=batch_window)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port) — port 0 resolves
        to an ephemeral port, for tests and the smoke harness."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` op) is called."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self.close()

    def stop(self) -> None:
        self._stop.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._stop.set()

    def stats(self) -> dict[str, int]:
        return self.service.stats()

    # ----------------------------------------------------------- connection

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        send = _locked_sender(writer)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except protocol.ServiceError as exc:
                    await send({"id": None, "event": "error", "message": str(exc)})
                    continue
                task = asyncio.ensure_future(self._dispatch(message, send))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            # CancelledError included: the handler itself may be cancelled by
            # server shutdown while draining the close — benign either way.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(
        self, message: dict, send: Callable[[dict], Awaitable[None]]
    ) -> None:
        request_id = message.get("id")
        op = message.get("op")
        try:
            if op == "ping":
                await send({
                    "id": request_id,
                    "event": "pong",
                    "version": protocol.PROTOCOL_VERSION,
                })
            elif op == "stats":
                await send({
                    "id": request_id, "event": "stats", "stats": self.stats(),
                })
            elif op == "shutdown":
                await send({"id": request_id, "event": "ok"})
                self.stop()
            elif op == "tune":
                query = TuneQuery.from_json(message.get("query"))
                async for event in self.service.handle_tune(query):
                    await send({"id": request_id, **event})
            else:
                await send({
                    "id": request_id,
                    "event": "error",
                    "message": f"unknown op {op!r}",
                })
        except ReproError as exc:
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await send({
                    "id": request_id,
                    "event": "error",
                    "message": str(exc),
                    "kind": type(exc).__name__,
                })
        except (ConnectionResetError, BrokenPipeError):
            pass


def _locked_sender(
    writer: asyncio.StreamWriter,
) -> Callable[[dict], Awaitable[None]]:
    """Per-connection serialized writes, so concurrent in-flight requests on
    one connection never interleave partial lines."""
    lock = asyncio.Lock()

    async def send(message: dict) -> None:
        async with lock:
            writer.write(protocol.encode(message))
            await writer.drain()

    return send
