"""Wire protocol of the tuning service.

Transport is newline-delimited JSON over a stream: every request and every
response event is one JSON object per line.  A request carries an ``id``
(client-chosen, echoed on every response event so one connection can hold
multiple requests in flight) and an ``op``; a ``tune`` request streams zero
or more ``cell`` events — one per evaluated (library, nb, scenario) cell, in
deterministic enumeration order, as results become available — followed by a
terminal ``result`` (or ``error``) event.

The typed surface is :class:`TuneQuery` (what a client asks), ``CellReport``
(one evaluated cell plus where its number came from: the warm cache, another
in-flight query's simulation, or a simulation this query owned), and
:class:`TuneReply` (the assembled answer).  All three round-trip through
plain JSON dicts; floats survive exactly (JSON text preserves the shortest
repr round-trip), so a served TFlop/s equals the direct
:func:`repro.bench.harness.run_point` number byte for byte.
"""

from __future__ import annotations

import dataclasses
import json

from repro.bench.cellspec import (
    DEFAULT_PLATFORM,
    PLATFORM_FACTORIES,
    CellOutcome,
    CellSpec,
    PlatformHandle,
)
from repro.bench.harness import tile_specs
from repro.errors import BenchmarkError, ReproError

#: Bumped on incompatible wire changes; servers echo it in ``pong`` events.
PROTOCOL_VERSION = 1

#: The default TCP port (chosen free; override with ``--port``).
DEFAULT_PORT = 7341

#: Where a ``cell`` number came from (observability, not semantics).
SOURCE_CACHE = "cache"          # already warm before the query arrived
SOURCE_COALESCED = "coalesced"  # joined another query's in-flight simulation
SOURCE_SIMULATED = "simulated"  # this query owned the (single) simulation


class ServiceError(ReproError):
    """An ``error`` event from the server, re-raised client-side."""


def parse_platform(value: object) -> PlatformHandle:
    """Coerce a wire platform field (``"dgx1x8"``, a dict, or ``None``)."""
    if value is None:
        return DEFAULT_PLATFORM
    if isinstance(value, PlatformHandle):
        return value
    if isinstance(value, str):
        # Factory names may themselves contain 'x<digit>' (dgx1), so split on
        # the last 'x' AND require a registered factory — 'dgx1' must not
        # silently parse as factory 'dg' with one GPU.
        factory, sep, gpus = value.rpartition("x")
        if not sep or not gpus.isdigit() or factory not in PLATFORM_FACTORIES:
            raise BenchmarkError(
                f"bad platform {value!r}; expected '<factory>x<gpus>' like "
                f"'dgx1x8' with factory in {sorted(PLATFORM_FACTORIES)}"
            )
        return PlatformHandle(factory, int(gpus))
    if isinstance(value, dict):
        try:
            return PlatformHandle(
                str(value.get("factory", "dgx1")), int(value.get("gpus", 8))
            )
        except (TypeError, ValueError) as exc:
            raise BenchmarkError(f"bad platform {value!r}: {exc}") from None
    raise BenchmarkError(f"bad platform {value!r}")


@dataclasses.dataclass(frozen=True)
class TuneQuery:
    """One "best (library, nb, placement) for my (routine, N, platform)" ask.

    ``libraries`` and ``scenarios`` span the search space alongside the tile
    ladder: the answer is the best cell over their cross product.  ``tiles``
    overrides the paper's candidate set; ``fast`` uses the reduced set.
    """

    routine: str
    n: int
    libraries: tuple[str, ...] = ("xkblas",)
    scenarios: tuple[str, ...] = ("host",)
    platform: PlatformHandle = DEFAULT_PLATFORM
    tiles: tuple[int, ...] | None = None
    fast: bool = False

    def specs(self) -> tuple[CellSpec, ...]:
        """Deterministic cell enumeration: libraries × scenarios × tile set."""
        out: list[CellSpec] = []
        for library in self.libraries:
            for scenario in self.scenarios:
                out.extend(
                    tile_specs(
                        library, self.routine, self.n, self.platform,
                        scenario=scenario, tiles=self.tiles, fast=self.fast,
                    )
                )
        return tuple(dict.fromkeys(out))

    def to_json(self) -> dict:
        payload: dict = {
            "routine": self.routine,
            "n": self.n,
            "libraries": list(self.libraries),
            "scenarios": list(self.scenarios),
            "platform": self.platform.key,
        }
        if self.tiles is not None:
            payload["tiles"] = list(self.tiles)
        if self.fast:
            payload["fast"] = True
        return payload

    @classmethod
    def from_json(cls, payload: object) -> TuneQuery:
        if not isinstance(payload, dict):
            raise BenchmarkError(f"tune query must be an object, got {payload!r}")
        try:
            routine = str(payload["routine"])
            n = int(payload["n"])
        except (KeyError, TypeError, ValueError):
            raise BenchmarkError(
                f"tune query needs 'routine' and integer 'n', got {payload!r}"
            ) from None
        if n <= 0:
            raise BenchmarkError(f"tune query needs n > 0, got n={n}")
        libraries = _str_tuple(payload.get("libraries"), ("xkblas",), "libraries")
        scenarios = _str_tuple(payload.get("scenarios"), ("host",), "scenarios")
        tiles_raw = payload.get("tiles")
        tiles: tuple[int, ...] | None = None
        if tiles_raw is not None:
            try:
                tiles = tuple(int(t) for t in tiles_raw)
            except (TypeError, ValueError):
                raise BenchmarkError(f"bad tiles {tiles_raw!r}") from None
        return cls(
            routine=routine,
            n=n,
            libraries=libraries,
            scenarios=scenarios,
            platform=parse_platform(payload.get("platform")),
            tiles=tiles,
            fast=bool(payload.get("fast", False)),
        )


def _str_tuple(value: object, default: tuple[str, ...], field: str) -> tuple[str, ...]:
    if value is None:
        return default
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)) and value:
        return tuple(str(v) for v in value)
    raise BenchmarkError(f"bad {field} {value!r}; expected a non-empty list")


@dataclasses.dataclass(frozen=True)
class CellReport:
    """One evaluated cell of a tune reply."""

    library: str
    routine: str
    n: int
    nb: int
    scenario: str
    ok: bool
    tflops: float | None = None
    seconds: float | None = None
    flops: float | None = None
    error: str | None = None
    source: str = SOURCE_SIMULATED

    def to_json(self) -> dict:
        return {
            k: v for k, v in dataclasses.asdict(self).items() if v is not None
        }

    @classmethod
    def from_json(cls, payload: dict) -> CellReport:
        try:
            return cls(
                library=str(payload["library"]),
                routine=str(payload["routine"]),
                n=int(payload["n"]),
                nb=int(payload["nb"]),
                scenario=str(payload["scenario"]),
                ok=bool(payload["ok"]),
                tflops=payload.get("tflops"),
                seconds=payload.get("seconds"),
                flops=payload.get("flops"),
                error=payload.get("error"),
                source=str(payload.get("source", SOURCE_SIMULATED)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad cell payload {payload!r}: {exc}") from None


def report_from_outcome(
    spec: CellSpec, outcome: CellOutcome, source: str
) -> CellReport:
    """Fold an executor outcome into the wire-level cell report."""
    return CellReport(
        library=spec.library,
        routine=spec.routine,
        n=spec.n,
        nb=spec.nb,
        scenario=spec.scenario,
        ok=outcome.ok,
        tflops=outcome.tflops,
        seconds=outcome.seconds,
        flops=outcome.flops,
        error=outcome.error,
        source=source,
    )


def pick_best(cells: tuple[CellReport, ...] | list[CellReport]) -> CellReport | None:
    """First strict maximum over ok cells, in enumeration order — the same
    rule as :func:`repro.bench.harness.best_over_tiles`."""
    best: CellReport | None = None
    for cell in cells:
        if not cell.ok or cell.tflops is None:
            continue
        if best is None or cell.tflops > best.tflops:
            best = cell
    return best


@dataclasses.dataclass(frozen=True)
class TuneReply:
    """The assembled answer to one :class:`TuneQuery`."""

    cells: tuple[CellReport, ...]
    best: CellReport | None
    simulated: int

    def to_json(self) -> dict:
        return {
            "cells": [c.to_json() for c in self.cells],
            "best": self.best.to_json() if self.best is not None else None,
            "simulated": self.simulated,
        }

    @classmethod
    def from_json(cls, payload: dict) -> TuneReply:
        cells = tuple(CellReport.from_json(c) for c in payload.get("cells", ()))
        best_raw = payload.get("best")
        return cls(
            cells=cells,
            best=CellReport.from_json(best_raw) if best_raw else None,
            simulated=int(payload.get("simulated", 0)),
        )


def encode(message: dict) -> bytes:
    """One wire line for one message."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ServiceError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError(f"bad wire line: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceError(f"wire message must be an object, got {message!r}")
    return message
