"""Command-line entry point: ``python -m repro.tuning.service <command>``.

Commands:

* ``serve`` — run a tuning server.  ``--store`` names the persistent point
  store (``.sqlite``/``.db`` suffix selects the concurrent-safe SQLite
  backend; anything else is JSON-lines); ``--jobs`` sizes the simulation
  worker pool; the bound address is printed as ``listening on HOST:PORT``
  once ready.
* ``query`` — one tune query against a running server, streaming each cell
  as the server resolves it.
* ``stats`` / ``shutdown`` — observe or stop a running server.
* ``migrate`` — compact a legacy JSON-lines store into a SQLite store.
* ``smoke`` — end-to-end self-check (used by CI): N concurrent identical
  queries against a fresh store must cost exactly one simulation per
  distinct cell and match the direct ``run_point`` numbers, and a second
  server *process* on the same store must answer warm without simulating.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.bench.cache import PointCache, SqliteStore
from repro.bench.executor import SweepExecutor
from repro.errors import ReproError
from repro.tuning.service import client as client_mod
from repro.tuning.service import protocol
from repro.tuning.service.protocol import CellReport, TuneQuery
from repro.tuning.service.server import TuningServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning.service",
        description="Concurrent autotune service over the sweep executor.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a tuning server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=protocol.DEFAULT_PORT,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--store", metavar="PATH", default=None,
                       help="persistent point store (.sqlite/.db = SQLite, "
                            "else JSON-lines); default: in-memory only")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="simulation worker processes (default 1: in-thread)")
    serve.add_argument("--start-method", default=None,
                       choices=("fork", "forkserver", "spawn"),
                       help="worker start method (default: auto, thread-safe)")
    serve.add_argument("--batch-window", type=float, default=0.0, metavar="SEC",
                       help="extra wait to coalesce cold cells into one batch")

    query = sub.add_parser("query", help="one tune query against a server")
    query.add_argument("routine")
    query.add_argument("n", type=int)
    query.add_argument("--library", action="append", default=None,
                       help="library/scheduler to consider (repeatable)")
    query.add_argument("--scenario", action="append", default=None,
                       help="data placement: host and/or device (repeatable)")
    query.add_argument("--platform", default=None, metavar="FACTORYxGPUS",
                       help="e.g. dgx1x8, nvswitchx16, summitx6")
    query.add_argument("--tiles", type=int, nargs="+", default=None,
                       help="explicit tile candidates (default: paper set)")
    query.add_argument("--fast", action="store_true",
                       help="reduced tile candidate set")
    _net_args(query)

    _net_args(sub.add_parser("stats", help="print server statistics"))
    _net_args(sub.add_parser("shutdown", help="stop a running server"))

    migrate = sub.add_parser(
        "migrate", help="compact a JSON-lines store into a SQLite store"
    )
    migrate.add_argument("src", help="legacy .jsonl point store")
    migrate.add_argument("dst", help="target .sqlite store (created if missing)")

    smoke = sub.add_parser("smoke", help="end-to-end single-flight self-check")
    smoke.add_argument("--clients", type=int, default=8,
                       help="concurrent identical queries (default 8)")
    smoke.add_argument("--store", metavar="PATH", default=None,
                       help="SQLite store to use (default: fresh temp store)")

    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "stats":
            print(client_mod.stats_sync(args.host, args.port))
            return 0
        if args.command == "shutdown":
            client_mod.shutdown_sync(args.host, args.port)
            print("server asked to shut down")
            return 0
        if args.command == "migrate":
            return _cmd_migrate(args)
        if args.command == "smoke":
            return _cmd_smoke(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(f"error: no server on {args.host}:{args.port}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


def _net_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument("--port", type=int, default=protocol.DEFAULT_PORT)


# ------------------------------------------------------------------ commands


def _cmd_serve(args: argparse.Namespace) -> int:
    cache = PointCache(args.store)
    executor = SweepExecutor(
        jobs=args.jobs, cache=cache, start_method=args.start_method
    )

    async def run() -> None:
        server = TuningServer(
            executor, host=args.host, port=args.port,
            batch_window=args.batch_window,
        )
        host, port = await server.start()
        store_note = f", store={args.store}" if args.store else ""
        print(
            f"listening on {host}:{port} (jobs={executor.jobs}{store_note})",
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        executor.close()
        cache.close()
        stats = executor.stats()
        print(
            f"served: {stats['cells_simulated']} cells simulated, "
            f"{stats['memo_hits']} memo hits, {stats['store_hits']} store hits",
            flush=True,
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    query = TuneQuery(
        routine=args.routine,
        n=args.n,
        libraries=tuple(args.library) if args.library else ("xkblas",),
        scenarios=tuple(args.scenario) if args.scenario else ("host",),
        platform=protocol.parse_platform(args.platform),
        tiles=tuple(args.tiles) if args.tiles else None,
        fast=args.fast,
    )

    def show(cell: CellReport) -> None:
        if cell.ok:
            print(
                f"cell {cell.library:>10} nb={cell.nb:<6} {cell.scenario:<7}"
                f" {cell.tflops:8.2f} TFlop/s  [{cell.source}]"
            )
        else:
            print(
                f"cell {cell.library:>10} nb={cell.nb:<6} {cell.scenario:<7}"
                f" failed: {cell.error}  [{cell.source}]"
            )

    reply = client_mod.tune_sync(query, args.host, args.port, on_cell=show)
    if reply.best is None:
        print("no admissible cell succeeded")
        return 1
    best = reply.best
    print(
        f"best: {best.library} nb={best.nb} {best.scenario} "
        f"{best.tflops:.2f} TFlop/s ({reply.simulated} cells simulated)"
    )
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    src = Path(args.src)
    if not src.exists():
        print(f"error: {src} does not exist", file=sys.stderr)
        return 1
    store = SqliteStore(args.dst)
    try:
        imported = store.import_jsonl(src)
        total = len(store)
    finally:
        store.close()
    print(f"migrated {imported} unique records from {src} -> {args.dst} "
          f"({total} rows total)")
    return 0


# -------------------------------------------------------------------- smoke


def _cmd_smoke(args: argparse.Namespace) -> int:
    """The acceptance walk: single-flight, byte-identity, warm restart."""
    from repro.bench.harness import run_point
    from repro.topology.dgx1 import make_dgx1

    query = TuneQuery(routine="gemm", n=4096, tiles=(1024, 2048))
    with contextlib.ExitStack() as stack:
        if args.store is None:
            tmp = stack.enter_context(tempfile.TemporaryDirectory())
            store_path = str(Path(tmp) / "points.sqlite")
        else:
            store_path = args.store

        # Phase 1: fresh store, N concurrent identical queries in-process.
        replies, stats = asyncio.run(_smoke_concurrent(store_path, args.clients))
        distinct = len(query.specs())
        ok = True
        ok &= _check(
            stats["cells_simulated"] == distinct,
            f"single-flight: {args.clients} concurrent identical queries "
            f"simulated {stats['cells_simulated']} cells "
            f"(expected {distinct} distinct)",
        )
        owned = sum(reply.simulated for reply in replies)
        ok &= _check(
            owned == distinct,
            f"exactly one query owned each simulation ({owned} owned)",
        )
        numbers = {
            tuple((c.nb, c.tflops, c.seconds) for c in reply.cells)
            for reply in replies
        }
        ok &= _check(
            len(numbers) == 1, f"all {args.clients} replies identical"
        )

        # Byte-identity against the direct, executor-free harness path.
        direct = run_point("xkblas", "gemm", 4096, 1024, make_dgx1(8))
        served = next(c for c in replies[0].cells if c.nb == 1024)
        ok &= _check(
            served.tflops == direct.tflops and served.seconds == direct.seconds,
            f"served nb=1024 matches direct run_point "
            f"({served.tflops} vs {direct.tflops} TFlop/s)",
        )

        # Phase 2: a *second server process* on the same store answers warm.
        ok &= _smoke_warm_process(store_path, query)
    print("smoke: PASS" if ok else "smoke: FAIL")
    return 0 if ok else 1


async def _smoke_concurrent(store_path: str, clients: int):
    query = TuneQuery(routine="gemm", n=4096, tiles=(1024, 2048))
    cache = PointCache(store_path)
    executor = SweepExecutor(jobs=1, cache=cache)
    server = TuningServer(executor, port=0)
    host, port = await server.start()

    async def one() -> protocol.TuneReply:
        async with await client_mod.TuningClient.connect(host, port) as cl:
            return await cl.tune(query)

    try:
        replies = await asyncio.gather(*(one() for _ in range(clients)))
        stats = executor.stats()
    finally:
        await server.close()
        executor.close()
        cache.close()
    return replies, stats


def _smoke_warm_process(store_path: str, query: TuneQuery) -> bool:
    import repro

    env = os.environ.copy()
    # The child must import the same repro tree regardless of cwd or a
    # relative PYTHONPATH in the parent.
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.tuning.service", "serve",
            "--store", store_path, "--port", "0", "--jobs", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        if "listening on" not in line:
            print(f"FAIL second server did not start: {line.strip()}")
            return False
        address = line.split("listening on", 1)[1].split()[0]
        host, port = address.rsplit(":", 1)
        reply = client_mod.tune_sync(query, host, int(port))
        stats = client_mod.stats_sync(host, int(port))
        ok = _check(
            stats["cells_simulated"] == 0 and reply.simulated == 0,
            f"warm restart: second server process simulated "
            f"{stats['cells_simulated']} cells (expected 0), "
            f"{stats['store_hits']} store hits",
        )
        ok &= _check(
            reply.best is not None, "warm reply carries a best cell"
        )
        client_mod.shutdown_sync(host, int(port))
        proc.wait(timeout=60)
        return ok
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def _check(condition: bool, message: str) -> bool:
    print(("ok   " if condition else "FAIL ") + message, flush=True)
    return bool(condition)


if __name__ == "__main__":
    sys.exit(main())
