"""Tuning-as-a-service: a concurrent autotune server over the sweep stack.

The offline story (PR 3) is one giant sweep through the
:class:`~repro.bench.executor.SweepExecutor` and its persistent
:class:`~repro.bench.cache.PointCache`.  This package serves the same pure
evaluation core as a long-running asyncio service: concurrent "best
(library, nb, placement) for my (routine, N, platform)" queries, warm cells
answered from the shared store at cache speed, cold cells single-flighted
(N identical concurrent queries cost one simulation) and batched to the
worker pool, per-cell results streamed as they resolve.

Run a server with ``python -m repro.tuning.service serve --store
cache.sqlite``; query it with :class:`TuningClient` or ``python -m
repro.tuning.service query gemm 16384``.
"""

from repro.tuning.service.client import (
    TuningClient,
    shutdown_sync,
    stats_sync,
    tune_sync,
)
from repro.tuning.service.protocol import (
    CellReport,
    ServiceError,
    TuneQuery,
    TuneReply,
)
from repro.tuning.service.server import SingleFlight, TuningServer, TuningService

__all__ = [
    "CellReport",
    "ServiceError",
    "SingleFlight",
    "TuneQuery",
    "TuneReply",
    "TuningClient",
    "TuningServer",
    "TuningService",
    "shutdown_sync",
    "stats_sync",
    "tune_sync",
]
