"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers can
catch everything coming out of the simulated BLAS stack with a single except
clause while still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Raised for invalid platform descriptions (unknown device, bad link...)."""


class SimulationError(ReproError):
    """Raised by the discrete-event engine for inconsistent event usage."""


class MemoryViewError(ReproError):
    """Raised for invalid LAPACK memory-view operations (bad sub-view bounds...)."""


class CoherenceError(ReproError):
    """Raised when the software cache detects an impossible state transition."""


class DeviceOutOfMemoryError(ReproError):
    """Raised when a device allocation cannot be satisfied even after eviction."""


class SchedulingError(ReproError):
    """Raised by schedulers on impossible mappings (no eligible device...)."""


class TaskGraphError(ReproError):
    """Raised when a task graph is malformed (cycles, unknown tiles...)."""


class BlasValidationError(ReproError):
    """Raised for invalid BLAS arguments (dimension mismatch, bad uplo/side...)."""


class LibraryError(ReproError):
    """Raised when a simulated comparator library cannot run a routine.

    For instance BLASX, cuBLAS-MG and DPLASMA only implement GEMM, matching the
    missing points of the paper's Figure 5.
    """


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for inconsistent experiment setups."""


class VerificationError(ReproError):
    """Raised by :mod:`repro.verify` when an invariant check fails.

    Carries the list of :class:`repro.verify.base.Finding` objects that
    triggered it in :attr:`findings`.
    """

    def __init__(self, message: str, findings: list = ()) -> None:
        super().__init__(message)
        self.findings = list(findings)
