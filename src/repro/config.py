"""Global configuration constants for the simulated platform and runtime.

The numeric values below are calibrated against the figures reported in the
paper for the NVIDIA DGX-1 testbed ("Gemini", Table I):

* V100-SXM2 FP64 peak of 7.8 TFlop/s per GPU (62.4 TFlop/s for 8 GPUs),
* NVLink-2 pair bandwidths measured in the paper's Fig. 2 (~96 GB/s for
  double links, ~48 GB/s for single links, ~17 GB/s over PCIe peer routes),
* x16 PCIe Gen3 host links at 16 GB/s shared by two GPUs per switch.

They are defaults, not hard-coded behaviour: every model object accepts
explicit parameters so tests and ablation benchmarks can build platforms with
different characteristics.
"""

from __future__ import annotations

# --- unit helpers -----------------------------------------------------------

GB = 1e9  #: bytes in a (decimal) gigabyte, matching GB/s link figures.
MB = 1e6
KB = 1e3

TFLOP = 1e12
GFLOP = 1e9

# --- GPU compute model (NVIDIA V100-SXM2) ------------------------------------

#: FP64 peak of one V100-SXM2 in flop/s (paper §I).
V100_FP64_PEAK = 7.8 * TFLOP
#: FP32 peak of one V100-SXM2 in flop/s.
V100_FP32_PEAK = 15.7 * TFLOP
#: Device memory per V100 on the DGX-1 of Table I (32 GB variant).
V100_MEMORY_BYTES = int(32 * GB)
#: Fixed launch latency charged per kernel, seconds.
KERNEL_LAUNCH_LATENCY = 5e-6
#: Number of concurrent kernel streams per device (XKaapi strategy uses
#: several kernel streams plus dedicated copy streams).
DEFAULT_KERNEL_STREAMS = 4

# --- link bandwidths (paper Fig. 2, GB/s -> bytes/s) --------------------------

#: Two bonded NVLink-2 lanes between a GPU pair (measured ~96.5 GB/s).
NVLINK2_DOUBLE_BW = 96.4 * GB
#: A single NVLink-2 lane between a GPU pair (measured ~48.4 GB/s).
NVLINK2_SINGLE_BW = 48.4 * GB
#: Effective GPU-to-GPU bandwidth across the PCIe fabric (measured ~17 GB/s).
PCIE_PEER_BW = 17.2 * GB
#: Host-to-device / device-to-host bandwidth of one x16 PCIe Gen3 link.
PCIE_HOST_BW = 16.0 * GB
#: Aggregate NVLink injection/ejection bandwidth of one V100 (6 bricks at
#: ~25 GB/s each, derated to the sustained figure).  Sizes the per-device
#: NVLink engines behind the paper's §IV-B observation that some GPUs take
#: longer to send/receive than others; per-device override via
#: :attr:`repro.topology.device.GpuSpec.nvlink_aggregate_bw`.
NVLINK_AGGREGATE_BW = 132 * GB
#: Local (intra-GPU) copy bandwidth, i.e. the diagonal of Fig. 2 (~750 GB/s
#: corresponds to device-memory copy throughput).
LOCAL_COPY_BW = 748.0 * GB
#: One-way latency charged per transfer, seconds.
LINK_LATENCY = 10e-6
#: Extra latency of host transfers (driver + DMA setup on PCIe).
PCIE_HOST_LATENCY = 15e-6

# --- runtime overheads --------------------------------------------------------

#: Cost charged on the host for creating one task (XKaapi is lightweight).
XKAAPI_TASK_OVERHEAD = 1.5e-6
#: StarPU per-task overhead (larger runtime, performance-model lookups).
STARPU_TASK_OVERHEAD = 9e-6
#: Scheduling decision cost charged when a worker pops/steals a task.
SCHEDULE_POP_OVERHEAD = 0.5e-6

# --- matrix / tiling defaults --------------------------------------------------

#: Word size of FP64 elements.
FP64_WORDSIZE = 8
FP32_WORDSIZE = 4
#: Default tile size used when none is specified.
DEFAULT_TILE_SIZE = 2048
#: Candidate tile sizes explored by the paper's methodology (§IV-A).
PAPER_TILE_SIZES = (1024, 2048, 4096)
#: Extended tile sizes used for cuBLAS-XT and SLATE in the paper.
PAPER_TILE_SIZES_EXTENDED = (1024, 2048, 4096, 8192, 16384)

# --- runtime dispatch ----------------------------------------------------------

#: Default of ``RuntimeOptions.fused_events``: collapse per-task submission
#: bookkeeping chains into fused engine events (see ``runtime/executor.py``,
#: "Fused-event dispatch").  Virtual-time output is bit-identical either way;
#: fusion only reduces engine dispatches and Python overhead.  Automatically
#: falls back to unfused dispatch when a trace recorder is enabled, so traces
#: and the race detector keep seeing one event per submission.
FUSED_EVENTS = True

#: Default of ``RuntimeOptions.trace``: record the nvprof-like interval trace.
#: On by default (traces feed the verification suite and golden recordings);
#: perfbench flips the module flag around its macro measurements so the timed
#: hot path is the production configuration — no trace append per interval,
#: fused dispatch active.
TRACE_EVENTS = True

# --- verification -------------------------------------------------------------

#: Default of ``RuntimeOptions.phase_counters``: accumulate wall-clock time
#: per runtime phase (dispatch vs transfer path) in cheap perf-mode counters
#: (:class:`repro.bench.phases.PhaseCounters`).  Off by default — the
#: counters wrap the two hottest entry points of the runtime, so perfbench
#: measures the production path untimed and replays each point with the flag
#: flipped to attribute the wall clock.
PHASE_COUNTERS = False

#: Default of ``RuntimeOptions.verify_coherence``: run the coherence-protocol
#: sanitizer (:class:`repro.verify.coherence.CoherenceSanitizer`) at every
#: directory state transition.  Off by default — it is a debugging/CI mode,
#: like a sanitizer build of a C library.  Flip the module flag to opt every
#: subsequently created runtime in.
VERIFY_COHERENCE = False

# --- host model ----------------------------------------------------------------

#: Host main memory on the DGX-1 of Table I.
HOST_MEMORY_BYTES = int(512 * GB)
#: Host memcpy bandwidth (layout conversions for Chameleon-LAPACK happen here).
HOST_MEMCPY_BW = 12.0 * GB
