"""Per-device software caches and eviction policies.

Each simulated GPU owns a :class:`DeviceCache` accounting for the tiles
resident in its memory.  When an allocation does not fit, an
:class:`EvictionPolicy` chooses victims among the unpinned resident tiles:

* :class:`ReadOnlyFirstPolicy` — XKaapi's policy ("the eviction strategy
  prioritizes read-only data first", paper §II-C/§III-A): clean (SHARED)
  replicas are evicted before dirty (MODIFIED) ones, LRU within each class.
  Evicting a clean replica is free; a dirty one costs a write-back.
* :class:`LruPolicy` — plain least-recently-used, the ablation baseline.
* :class:`Blasx2LevelPolicy` — an approximation of BLASX's two-level cache
  (§II-C): tiles that other devices also hold (or held) are demoted last, so
  replicas useful as GPU-to-GPU sources survive longer.

The cache itself never touches coherence state: it *selects* victims; the
runtime performs write-backs and directory updates, keeping the two substrates
independently testable.
"""

from __future__ import annotations

import abc
import dataclasses
import heapq
from typing import Callable, Iterable

from repro.errors import CoherenceError, DeviceOutOfMemoryError
from repro.memory.tile import TileKey


@dataclasses.dataclass(slots=True)
class _Resident:
    key: TileKey
    nbytes: int
    last_use: float
    pins: int = 0
    dirty: bool = False
    shared_elsewhere: bool = False
    #: victim-index generation (see :meth:`DeviceCache.set_eviction_policy`):
    #: identifies the single *live* heap stamp of this entry.  Bumped on
    #: (re-)insertion and on every eager re-stamp, so stamps carrying an older
    #: generation are dead and get discarded when they surface.
    gen: int = 0


class DeviceCache:
    """Byte-accounted set of tiles resident on one device."""

    def __init__(self, device: int, capacity: int) -> None:
        if capacity <= 0:
            raise CoherenceError(f"device {device}: cache capacity must be positive")
        self.device = device
        self.capacity = capacity
        self._resident: dict[TileKey, _Resident] = {}
        self._used = 0
        self._clock = 0.0
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        # Incremental victim index (see set_eviction_policy): a lazy-deletion
        # min-heap of (rank, gen, key) stamps mirroring the installed policy's
        # victim order.  _vrank is the policy's entry_rank, cached as an
        # attribute so the hot paths skip the method lookup; None until a
        # policy is installed (victim selection then uses the scan-and-sort
        # reference path).
        self._vpolicy: EvictionPolicy | None = None
        self._vrank: Callable[[_Resident], tuple] | None = None
        self._vheap: list[tuple[tuple, int, TileKey]] = []
        self._vgen = 0

    # ------------------------------------------------------------- residency

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def contains(self, key: TileKey) -> bool:
        return key in self._resident

    def __contains__(self, key: TileKey) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident_keys(self) -> list[TileKey]:
        return list(self._resident)

    def insert(self, key: TileKey, nbytes: int, now: float = 0.0) -> None:
        """Account for a new resident tile (space must have been ensured)."""
        if key in self._resident:
            raise CoherenceError(f"{key} already resident on device {self.device}")
        if nbytes > self.free:
            raise DeviceOutOfMemoryError(
                f"device {self.device}: inserting {nbytes} B with only "
                f"{self.free} B free (capacity {self.capacity})"
            )
        self._resident[key] = entry = _Resident(key=key, nbytes=nbytes, last_use=now)
        self._used += nbytes
        if self._vrank is not None:
            self._stamp(entry)

    def insert_pinned(self, key: TileKey, nbytes: int, now: float = 0.0) -> None:
        """Fused :meth:`insert` + :meth:`pin` for the transfer-issue path.

        Every tile the transfer manager inserts is immediately pinned until
        its transfer lands, so one dict store covers both operations.
        """
        if key in self._resident:
            raise CoherenceError(f"{key} already resident on device {self.device}")
        if nbytes > self.free:
            raise DeviceOutOfMemoryError(
                f"device {self.device}: inserting {nbytes} B with only "
                f"{self.free} B free (capacity {self.capacity})"
            )
        self._resident[key] = entry = _Resident(
            key=key, nbytes=nbytes, last_use=now, pins=1
        )
        self._used += nbytes
        if self._vrank is not None:
            self._stamp(entry)

    def remove(self, key: TileKey) -> int:
        """Drop a resident tile; returns its size."""
        entry = self._resident.get(key)
        if entry is None:
            raise CoherenceError(f"{key} not resident on device {self.device}")
        if entry.pins:
            raise CoherenceError(f"{key} is pinned on device {self.device}")
        del self._resident[key]
        self._used -= entry.nbytes
        return entry.nbytes

    # ------------------------------------------------------------ annotations

    def touch(self, key: TileKey, now: float) -> None:
        """Record a use (kernel read/write or transfer source) for recency."""
        entry = self._resident.get(key)
        if entry is None:
            raise CoherenceError(f"{key} not resident on device {self.device}")
        entry.last_use = max(entry.last_use, now)

    def pin(self, key: TileKey) -> None:
        """Protect a tile from eviction (inputs of a scheduled task)."""
        self._resident[key].pins += 1

    def pin_if_resident(self, key: TileKey) -> bool:
        """Fused ``key in cache`` + :meth:`pin`: one lookup, pins on a hit.

        The launch path pins every resident input; the separate
        membership probe per access was a measurable slice of large runs.
        """
        entry = self._resident.get(key)
        if entry is None:
            return False
        entry.pins += 1
        return True

    def unpin(self, key: TileKey) -> None:
        entry = self._resident[key]
        if entry.pins <= 0:
            raise CoherenceError(f"{key}: unbalanced unpin on device {self.device}")
        entry.pins -= 1

    def unpin_if_resident(self, key: TileKey) -> None:
        """:meth:`unpin` unless the tile was dropped meanwhile (transfer
        completions unpin their source, which may have been evicted)."""
        entry = self._resident.get(key)
        if entry is not None:
            if entry.pins <= 0:
                raise CoherenceError(
                    f"{key}: unbalanced unpin on device {self.device}"
                )
            entry.pins -= 1

    def unpin_many(self, keys) -> None:
        """:meth:`unpin` for a batch — one call per task completion instead of
        one per pinned input."""
        resident = self._resident
        for key in keys:
            entry = resident[key]
            if entry.pins <= 0:
                raise CoherenceError(
                    f"{key}: unbalanced unpin on device {self.device}"
                )
            entry.pins -= 1

    def pin_count(self, key: TileKey) -> int:
        """Number of outstanding pins on ``key`` (0 when not resident).

        The public form of the pin bookkeeping: the runtime consults this to
        decide whether a replica can be dropped without reaching into the
        cache's internal residency records.
        """
        entry = self._resident.get(key)
        return entry.pins if entry is not None else 0

    def mark_dirty(self, key: TileKey, dirty: bool = True) -> None:
        entry = self._resident[key]
        if entry.dirty != dirty:
            entry.dirty = dirty
            # A dirty-bit change can *lower* the entry's rank (write-back
            # completion: dirty -> clean moves it to the front of the victim
            # order for dirty-aware policies).  Lazy stamps only stay sound
            # for rank increases, so re-stamp eagerly.
            if self._vrank is not None and self._vpolicy.rank_uses_dirty:  # type: ignore[union-attr]
                self._stamp(entry)

    def note_write(self, key: TileKey, now: float) -> None:
        """Fused :meth:`mark_dirty` + :meth:`touch` for the kernel write path:
        one resident lookup sets the dirty bit and bumps recency."""
        entry = self._resident[key]
        entry.dirty = True
        if now > entry.last_use:
            entry.last_use = now

    def mark_shared_elsewhere(self, key: TileKey, flag: bool = True) -> None:
        entry = self._resident.get(key)
        if entry is not None and entry.shared_elsewhere != flag:
            entry.shared_elsewhere = flag
            # Clearing the shared hint lowers the entry's rank for the BLASX
            # two-level order; see mark_dirty for why decreases re-stamp.
            if self._vrank is not None and self._vpolicy.rank_uses_shared:  # type: ignore[union-attr]
                self._stamp(entry)

    def is_dirty(self, key: TileKey) -> bool:
        return self._resident[key].dirty

    # --------------------------------------------------------------- lookups

    def record_access(self, key: TileKey) -> bool:
        """Hit/miss accounting; returns True on hit."""
        if key in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def access_hit(self, key: TileKey, now: float) -> bool:
        """Fused :meth:`record_access` + :meth:`touch`: one lookup decides
        hit/miss and bumps recency on a hit.  The residency fast path of
        ``ensure_resident`` runs once per task input, so the saved dict probes
        add up."""
        entry = self._resident.get(key)
        if entry is None:
            self.misses += 1
            return False
        self.hits += 1
        if now > entry.last_use:
            entry.last_use = now
        return True

    def access_hit_pin(self, key: TileKey, now: float) -> bool:
        """Fused :meth:`access_hit` + :meth:`pin_if_resident` for the launch
        fast path: the executor pins every resident input it just touched, so
        one resident lookup serves the hit/miss accounting, the recency bump
        and the pin.  Returns True when the tile was resident (and pinned)."""
        entry = self._resident.get(key)
        if entry is None:
            self.misses += 1
            return False
        self.hits += 1
        if now > entry.last_use:
            entry.last_use = now
        entry.pins += 1
        return True

    def evictable(self) -> list[_Resident]:
        return [e for e in self._resident.values() if e.pins == 0]

    # ---------------------------------------------------------- victim index
    #
    # ``choose_victims`` used to rebuild, filter, and sort the full resident
    # list on every make-room call — O(resident * log resident) per
    # transfer-path miss, which dominated large-N runs once caches filled.
    # The index below keeps victim candidates in a lazy-deletion min-heap of
    # ``(rank, gen, key)`` stamps, where ``rank`` is the installed policy's
    # sort key for the entry at stamp time and ``gen`` identifies the single
    # live stamp per entry (bumped on insertion and on every eager re-stamp).
    #
    # Rank *increases* (recency touches, clean -> dirty) are handled lazily:
    # a stale stamp is a lower bound, so the entry can only surface too
    # early, at which point the pop loop re-pushes it at its current rank.
    # Rank *decreases* (dirty -> clean on write-back completion, shared-hint
    # clearing) must re-stamp eagerly — mark_dirty / mark_shared_elsewhere do.
    # Ranks are unique (they end in the tile key), so heap pop order equals
    # the reference ``sorted(candidates, key=rank)`` order bit-for-bit.

    def set_eviction_policy(self, policy: EvictionPolicy) -> None:
        """Install ``policy``'s incremental victim index on this cache.

        After this, ``policy.choose_victims(self, ...)`` selects victims by
        popping the index instead of scanning the resident set.  Policies
        without an ``entry_rank`` keep the scan-and-sort reference path.
        """
        rank = policy.entry_rank
        if rank is None:
            self._vpolicy = None
            self._vrank = None
            self._vheap = []
            return
        self._vpolicy = policy
        self._vrank = rank
        gen = self._vgen
        heap = []
        for entry in self._resident.values():
            gen += 1
            entry.gen = gen
            heap.append((rank(entry), gen, entry.key))
        self._vgen = gen
        heapq.heapify(heap)
        self._vheap = heap

    def _stamp(self, entry: _Resident) -> None:
        """(Re-)stamp ``entry`` in the victim heap at its current rank.

        Bumps the entry's generation so any older stamp still in the heap is
        dead and gets discarded when it surfaces.
        """
        self._vgen = gen = self._vgen + 1
        entry.gen = gen
        heapq.heappush(self._vheap, (self._vrank(entry), gen, entry.key))  # type: ignore[misc]

    def _indexed_victims(
        self, needed: int, deficit: int, protect: Iterable[TileKey]
    ) -> list[TileKey]:
        """Pop victims from the index until ``deficit`` bytes are covered.

        Observably stateless: every live stamp popped (victims as well as
        pinned/protected entries that were set aside) is pushed back before
        returning, so a caller that does not actually evict sees the same
        answers on the next call — matching the reference scan.  Victims the
        caller *does* evict leave dead stamps behind, discarded on a later
        pop via the residency/generation check.
        """
        if len(self._vheap) > 2 * len(self._resident) + 64:
            # Compact: dead stamps (evictions, eager re-stamps) accumulate
            # until popped; rebuild keeps the heap O(resident).  Ranks are
            # unique, so rebuilding cannot change pop order.
            self.set_eviction_policy(self._vpolicy)  # type: ignore[arg-type]
        heap = self._vheap
        resident = self._resident
        rank = self._vrank
        push = heapq.heappush
        pop = heapq.heappop
        protected = frozenset(protect)
        victims: list[TileKey] = []
        restore: list[tuple[tuple, int, TileKey]] = []
        freed = 0
        while heap:
            item = pop(heap)
            entry = resident.get(item[2])
            if entry is None or entry.gen != item[1]:
                continue  # dead stamp: evicted / re-inserted / re-stamped
            cur = rank(entry)  # type: ignore[misc]
            if cur != item[0]:
                # Stale lower-bound stamp (lazy recency/dirty increase):
                # re-file at the current rank and keep popping.
                push(heap, (cur, item[1], item[2]))
                continue
            restore.append(item)
            if entry.pins or item[2] in protected:
                continue
            victims.append(item[2])
            freed += entry.nbytes
            if freed >= deficit:
                break
        for item in restore:
            push(heap, item)
        if freed >= deficit:
            return victims
        raise DeviceOutOfMemoryError(
            f"device {self.device}: need {needed} B, free {self.free} B, "
            f"only {freed} B evictable"
        )

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": self.evictions,
            "used_bytes": self._used,
            "resident_tiles": len(self._resident),
        }


class EvictionPolicy(abc.ABC):
    """Chooses which resident tiles to evict to fit a new allocation."""

    name = "abstract"
    #: True when :meth:`victim_order` reads ``_Resident.shared_elsewhere`` —
    #: the runtime only maintains that hint (a directory walk per write and
    #: per transfer landing) for policies that declare they consume it.
    uses_shared_hint = False
    #: Per-entry sort key, identical to the key :meth:`victim_order` sorts
    #: by.  When set, :meth:`DeviceCache.set_eviction_policy` builds an
    #: incremental victim index over it; ``None`` keeps the scan path.
    entry_rank: Callable[[_Resident], tuple] | None = None
    #: Which mutable entry fields participate in ``entry_rank`` — the cache
    #: re-stamps eagerly only on changes the rank can actually observe.
    rank_uses_dirty = False
    rank_uses_shared = False

    @abc.abstractmethod
    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        """Sort evictable residents, best victim first."""

    def choose_victims(
        self,
        cache: DeviceCache,
        needed: int,
        protect: Iterable[TileKey] = (),
    ) -> list[TileKey]:
        """Pick victims freeing at least ``needed`` bytes beyond current free.

        Raises :class:`DeviceOutOfMemoryError` when even evicting everything
        unpinned cannot satisfy the request.
        """
        deficit = needed - cache.free
        if deficit <= 0:
            return []
        if cache._vpolicy is self:
            return cache._indexed_victims(needed, deficit, protect)
        # Scan-and-sort reference path: caches without an installed index
        # (direct policy use in tests, cross-checks against the index).
        protected = set(protect)
        candidates = [e for e in cache.evictable() if e.key not in protected]
        victims: list[TileKey] = []
        freed = 0
        for entry in self.victim_order(candidates):
            victims.append(entry.key)
            freed += entry.nbytes
            if freed >= deficit:
                return victims
        raise DeviceOutOfMemoryError(
            f"device {cache.device}: need {needed} B, free {cache.free} B, "
            f"only {freed} B evictable"
        )


class LruPolicy(EvictionPolicy):
    """Evict least-recently-used first, regardless of dirtiness."""

    name = "lru"

    @staticmethod
    def entry_rank(e: _Resident) -> tuple:
        return (e.last_use, e.key.matrix_id, e.key.i, e.key.j)

    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        return sorted(candidates, key=self.entry_rank)


class ReadOnlyFirstPolicy(EvictionPolicy):
    """XKaapi: clean replicas first (free to drop), then dirty, LRU inside."""

    name = "read-only-first"
    rank_uses_dirty = True

    @staticmethod
    def entry_rank(e: _Resident) -> tuple:
        return (e.dirty, e.last_use, e.key.matrix_id, e.key.i, e.key.j)

    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        return sorted(candidates, key=self.entry_rank)


class Blasx2LevelPolicy(EvictionPolicy):
    """BLASX-like: keep tiles replicated on other devices longer.

    BLASX organizes its software cache in two levels so that replicas that can
    serve GPU-to-GPU transfers stay resident.  We model that preference by
    evicting, in order: clean tiles *not* shared elsewhere (useless as P2P
    sources once gone), then clean shared ones, then dirty ones — LRU within
    each class.
    """

    name = "blasx-2level"
    uses_shared_hint = True
    rank_uses_dirty = True
    rank_uses_shared = True

    @staticmethod
    def entry_rank(e: _Resident) -> tuple:
        return (
            e.dirty,
            e.shared_elsewhere,
            e.last_use,
            e.key.matrix_id,
            e.key.i,
            e.key.j,
        )

    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        return sorted(candidates, key=self.entry_rank)


POLICIES: dict[str, Callable[[], EvictionPolicy]] = {
    LruPolicy.name: LruPolicy,
    ReadOnlyFirstPolicy.name: ReadOnlyFirstPolicy,
    Blasx2LevelPolicy.name: Blasx2LevelPolicy,
}
