"""Per-device software caches and eviction policies.

Each simulated GPU owns a :class:`DeviceCache` accounting for the tiles
resident in its memory.  When an allocation does not fit, an
:class:`EvictionPolicy` chooses victims among the unpinned resident tiles:

* :class:`ReadOnlyFirstPolicy` — XKaapi's policy ("the eviction strategy
  prioritizes read-only data first", paper §II-C/§III-A): clean (SHARED)
  replicas are evicted before dirty (MODIFIED) ones, LRU within each class.
  Evicting a clean replica is free; a dirty one costs a write-back.
* :class:`LruPolicy` — plain least-recently-used, the ablation baseline.
* :class:`Blasx2LevelPolicy` — an approximation of BLASX's two-level cache
  (§II-C): tiles that other devices also hold (or held) are demoted last, so
  replicas useful as GPU-to-GPU sources survive longer.

The cache itself never touches coherence state: it *selects* victims; the
runtime performs write-backs and directory updates, keeping the two substrates
independently testable.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Iterable

from repro.errors import CoherenceError, DeviceOutOfMemoryError
from repro.memory.tile import TileKey


@dataclasses.dataclass(slots=True)
class _Resident:
    key: TileKey
    nbytes: int
    last_use: float
    pins: int = 0
    dirty: bool = False
    shared_elsewhere: bool = False


class DeviceCache:
    """Byte-accounted set of tiles resident on one device."""

    def __init__(self, device: int, capacity: int) -> None:
        if capacity <= 0:
            raise CoherenceError(f"device {device}: cache capacity must be positive")
        self.device = device
        self.capacity = capacity
        self._resident: dict[TileKey, _Resident] = {}
        self._used = 0
        self._clock = 0.0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- residency

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def contains(self, key: TileKey) -> bool:
        return key in self._resident

    def __contains__(self, key: TileKey) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident_keys(self) -> list[TileKey]:
        return list(self._resident)

    def insert(self, key: TileKey, nbytes: int, now: float = 0.0) -> None:
        """Account for a new resident tile (space must have been ensured)."""
        if key in self._resident:
            raise CoherenceError(f"{key} already resident on device {self.device}")
        if nbytes > self.free:
            raise DeviceOutOfMemoryError(
                f"device {self.device}: inserting {nbytes} B with only "
                f"{self.free} B free (capacity {self.capacity})"
            )
        self._resident[key] = _Resident(key=key, nbytes=nbytes, last_use=now)
        self._used += nbytes

    def insert_pinned(self, key: TileKey, nbytes: int, now: float = 0.0) -> None:
        """Fused :meth:`insert` + :meth:`pin` for the transfer-issue path.

        Every tile the transfer manager inserts is immediately pinned until
        its transfer lands, so one dict store covers both operations.
        """
        if key in self._resident:
            raise CoherenceError(f"{key} already resident on device {self.device}")
        if nbytes > self.free:
            raise DeviceOutOfMemoryError(
                f"device {self.device}: inserting {nbytes} B with only "
                f"{self.free} B free (capacity {self.capacity})"
            )
        self._resident[key] = _Resident(key=key, nbytes=nbytes, last_use=now, pins=1)
        self._used += nbytes

    def remove(self, key: TileKey) -> int:
        """Drop a resident tile; returns its size."""
        entry = self._resident.get(key)
        if entry is None:
            raise CoherenceError(f"{key} not resident on device {self.device}")
        if entry.pins:
            raise CoherenceError(f"{key} is pinned on device {self.device}")
        del self._resident[key]
        self._used -= entry.nbytes
        return entry.nbytes

    # ------------------------------------------------------------ annotations

    def touch(self, key: TileKey, now: float) -> None:
        """Record a use (kernel read/write or transfer source) for recency."""
        entry = self._resident.get(key)
        if entry is None:
            raise CoherenceError(f"{key} not resident on device {self.device}")
        entry.last_use = max(entry.last_use, now)

    def pin(self, key: TileKey) -> None:
        """Protect a tile from eviction (inputs of a scheduled task)."""
        self._resident[key].pins += 1

    def pin_if_resident(self, key: TileKey) -> bool:
        """Fused ``key in cache`` + :meth:`pin`: one lookup, pins on a hit.

        The launch path pins every resident input; the separate
        membership probe per access was a measurable slice of large runs.
        """
        entry = self._resident.get(key)
        if entry is None:
            return False
        entry.pins += 1
        return True

    def unpin(self, key: TileKey) -> None:
        entry = self._resident[key]
        if entry.pins <= 0:
            raise CoherenceError(f"{key}: unbalanced unpin on device {self.device}")
        entry.pins -= 1

    def unpin_if_resident(self, key: TileKey) -> None:
        """:meth:`unpin` unless the tile was dropped meanwhile (transfer
        completions unpin their source, which may have been evicted)."""
        entry = self._resident.get(key)
        if entry is not None:
            if entry.pins <= 0:
                raise CoherenceError(
                    f"{key}: unbalanced unpin on device {self.device}"
                )
            entry.pins -= 1

    def unpin_many(self, keys) -> None:
        """:meth:`unpin` for a batch — one call per task completion instead of
        one per pinned input."""
        resident = self._resident
        for key in keys:
            entry = resident[key]
            if entry.pins <= 0:
                raise CoherenceError(
                    f"{key}: unbalanced unpin on device {self.device}"
                )
            entry.pins -= 1

    def pin_count(self, key: TileKey) -> int:
        """Number of outstanding pins on ``key`` (0 when not resident).

        The public form of the pin bookkeeping: the runtime consults this to
        decide whether a replica can be dropped without reaching into the
        cache's internal residency records.
        """
        entry = self._resident.get(key)
        return entry.pins if entry is not None else 0

    def mark_dirty(self, key: TileKey, dirty: bool = True) -> None:
        self._resident[key].dirty = dirty

    def note_write(self, key: TileKey, now: float) -> None:
        """Fused :meth:`mark_dirty` + :meth:`touch` for the kernel write path:
        one resident lookup sets the dirty bit and bumps recency."""
        entry = self._resident[key]
        entry.dirty = True
        if now > entry.last_use:
            entry.last_use = now

    def mark_shared_elsewhere(self, key: TileKey, flag: bool = True) -> None:
        entry = self._resident.get(key)
        if entry is not None:
            entry.shared_elsewhere = flag

    def is_dirty(self, key: TileKey) -> bool:
        return self._resident[key].dirty

    # --------------------------------------------------------------- lookups

    def record_access(self, key: TileKey) -> bool:
        """Hit/miss accounting; returns True on hit."""
        if key in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def access_hit(self, key: TileKey, now: float) -> bool:
        """Fused :meth:`record_access` + :meth:`touch`: one lookup decides
        hit/miss and bumps recency on a hit.  The residency fast path of
        ``ensure_resident`` runs once per task input, so the saved dict probes
        add up."""
        entry = self._resident.get(key)
        if entry is None:
            self.misses += 1
            return False
        self.hits += 1
        if now > entry.last_use:
            entry.last_use = now
        return True

    def access_hit_pin(self, key: TileKey, now: float) -> bool:
        """Fused :meth:`access_hit` + :meth:`pin_if_resident` for the launch
        fast path: the executor pins every resident input it just touched, so
        one resident lookup serves the hit/miss accounting, the recency bump
        and the pin.  Returns True when the tile was resident (and pinned)."""
        entry = self._resident.get(key)
        if entry is None:
            self.misses += 1
            return False
        self.hits += 1
        if now > entry.last_use:
            entry.last_use = now
        entry.pins += 1
        return True

    def evictable(self) -> list[_Resident]:
        return [e for e in self._resident.values() if e.pins == 0]

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": self.evictions,
            "used_bytes": self._used,
            "resident_tiles": len(self._resident),
        }


class EvictionPolicy(abc.ABC):
    """Chooses which resident tiles to evict to fit a new allocation."""

    name = "abstract"
    #: True when :meth:`victim_order` reads ``_Resident.shared_elsewhere`` —
    #: the runtime only maintains that hint (a directory walk per write and
    #: per transfer landing) for policies that declare they consume it.
    uses_shared_hint = False

    @abc.abstractmethod
    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        """Sort evictable residents, best victim first."""

    def choose_victims(
        self,
        cache: DeviceCache,
        needed: int,
        protect: Iterable[TileKey] = (),
    ) -> list[TileKey]:
        """Pick victims freeing at least ``needed`` bytes beyond current free.

        Raises :class:`DeviceOutOfMemoryError` when even evicting everything
        unpinned cannot satisfy the request.
        """
        deficit = needed - cache.free
        if deficit <= 0:
            return []
        protected = set(protect)
        candidates = [e for e in cache.evictable() if e.key not in protected]
        victims: list[TileKey] = []
        freed = 0
        for entry in self.victim_order(candidates):
            victims.append(entry.key)
            freed += entry.nbytes
            if freed >= deficit:
                return victims
        raise DeviceOutOfMemoryError(
            f"device {cache.device}: need {needed} B, free {cache.free} B, "
            f"only {freed} B evictable"
        )


class LruPolicy(EvictionPolicy):
    """Evict least-recently-used first, regardless of dirtiness."""

    name = "lru"

    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        return sorted(candidates, key=lambda e: (e.last_use, e.key.matrix_id, e.key.i, e.key.j))


class ReadOnlyFirstPolicy(EvictionPolicy):
    """XKaapi: clean replicas first (free to drop), then dirty, LRU inside."""

    name = "read-only-first"

    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        return sorted(
            candidates,
            key=lambda e: (e.dirty, e.last_use, e.key.matrix_id, e.key.i, e.key.j),
        )


class Blasx2LevelPolicy(EvictionPolicy):
    """BLASX-like: keep tiles replicated on other devices longer.

    BLASX organizes its software cache in two levels so that replicas that can
    serve GPU-to-GPU transfers stay resident.  We model that preference by
    evicting, in order: clean tiles *not* shared elsewhere (useless as P2P
    sources once gone), then clean shared ones, then dirty ones — LRU within
    each class.
    """

    name = "blasx-2level"
    uses_shared_hint = True

    def victim_order(self, candidates: list[_Resident]) -> list[_Resident]:
        return sorted(
            candidates,
            key=lambda e: (
                e.dirty,
                e.shared_elsewhere,
                e.last_use,
                e.key.matrix_id,
                e.key.i,
                e.key.j,
            ),
        )


POLICIES: dict[str, Callable[[], EvictionPolicy]] = {
    LruPolicy.name: LruPolicy,
    ReadOnlyFirstPolicy.name: ReadOnlyFirstPolicy,
    Blasx2LevelPolicy.name: Blasx2LevelPolicy,
}
