"""Matrix layouts, tiling and distributions.

Three layout-related facilities:

* :class:`TilePartition` — cut a LAPACK-layout matrix into ``nb × nb`` blocks
  (border blocks may be smaller), producing :class:`~repro.memory.tile.Tile`
  handles whose views share the host allocation (the paper's sub-matrix
  representation, §III).
* :class:`BlockCyclicDistribution` — the ScaLAPACK-style 2D block-cyclic
  mapping used by the data-on-device experiments (§IV-C: a (4,2) GPU grid with
  cyclic block sizes (1,1)).
* :func:`layout_conversion_time` — the host-side cost of converting between
  LAPACK and tile layouts, which is the documented penalty of Chameleon's
  LAPACK interface (§IV-D).
"""

from __future__ import annotations

import dataclasses
import enum
import math

from repro import config
from repro.errors import MemoryViewError
from repro.memory.matrix import Matrix
from repro.memory.tile import Tile, TileKey


class Layout(enum.Enum):
    """Host storage layout of a matrix."""

    LAPACK = "lapack"  # single column-major allocation with ld
    TILE = "tile"  # contiguous nb*nb blocks (PLASMA/Chameleon internal)


class TilePartition:
    """A matrix cut into blocks of at most ``nb × nb`` elements.

    Block ``(i, j)`` covers rows ``[i*nb, min((i+1)*nb, m))`` and the analogous
    column range.  Tiles are created eagerly (the count is ``mt * nt``, small
    compared to the data) and indexed by ``partition[i, j]``.
    """

    def __init__(self, matrix: Matrix, nb: int) -> None:
        if nb <= 0:
            raise MemoryViewError(f"tile size must be positive, got {nb}")
        self.matrix = matrix
        self.nb = nb
        self.mt = math.ceil(matrix.m / nb)  # tile rows
        self.nt = math.ceil(matrix.n / nb)  # tile cols
        self._tiles: dict[tuple[int, int], Tile] = {}
        for i in range(self.mt):
            for j in range(self.nt):
                row, col = i * nb, j * nb
                tm = min(nb, matrix.m - row)
                tn = min(nb, matrix.n - col)
                view = matrix.view.subview(row, col, tm, tn)
                key = TileKey(matrix.id, i, j)
                self._tiles[(i, j)] = Tile(key=key, view=view, matrix=matrix)

    def __getitem__(self, ij: tuple[int, int]) -> Tile:
        try:
            return self._tiles[ij]
        except KeyError:
            raise MemoryViewError(
                f"tile {ij} outside partition {self.mt}x{self.nt}"
            ) from None

    def __iter__(self):
        return iter(self._tiles.values())

    def __len__(self) -> int:
        return self.mt * self.nt

    @property
    def shape(self) -> tuple[int, int]:
        return (self.mt, self.nt)

    def tiles(self) -> list[Tile]:
        return list(self._tiles.values())

    def row(self, i: int) -> list[Tile]:
        return [self._tiles[(i, j)] for j in range(self.nt)]

    def col(self, j: int) -> list[Tile]:
        return [self._tiles[(i, j)] for i in range(self.mt)]

    def lower(self, include_diagonal: bool = True) -> list[Tile]:
        """Tiles of the lower triangle (block-level), for SYRK-family updates."""
        out = []
        for i in range(self.mt):
            stop = i + 1 if include_diagonal else i
            for j in range(min(stop, self.nt)):
                out.append(self._tiles[(i, j)])
        return out


@dataclasses.dataclass(frozen=True, slots=True)
class BlockCyclicDistribution:
    """ScaLAPACK-style 2D block-cyclic tile→device mapping.

    Parameters
    ----------
    grid_p, grid_q:
        Device grid dimensions; the paper's data-on-device experiments use a
        ``(4, 2)`` grid over 8 GPUs.
    block_i, block_j:
        Cyclic block sizes in *tiles*; the paper uses ``(1, 1)`` so adjacent
        tiles land on different GPUs.
    """

    grid_p: int
    grid_q: int
    block_i: int = 1
    block_j: int = 1

    def __post_init__(self) -> None:
        if self.grid_p <= 0 or self.grid_q <= 0:
            raise MemoryViewError("grid dimensions must be positive")
        if self.block_i <= 0 or self.block_j <= 0:
            raise MemoryViewError("cyclic block sizes must be positive")

    @property
    def num_devices(self) -> int:
        return self.grid_p * self.grid_q

    def owner(self, i: int, j: int) -> int:
        """Device id owning tile ``(i, j)``.

        Devices are numbered row-major over the ``(p, q)`` grid.
        """
        p = (i // self.block_i) % self.grid_p
        q = (j // self.block_j) % self.grid_q
        return p * self.grid_q + q

    def tiles_of(self, partition: TilePartition, device: int) -> list[Tile]:
        """All tiles of ``partition`` mapped to ``device``."""
        return [t for t in partition if self.owner(t.i, t.j) == device]

    def load_per_device(self, partition: TilePartition) -> dict[int, int]:
        """Tile count per device — block-cyclic keeps this balanced."""
        counts = {d: 0 for d in range(self.num_devices)}
        for t in partition:
            counts[self.owner(t.i, t.j)] += 1
        return counts


def default_grid(num_devices: int) -> tuple[int, int]:
    """The most-square ``(p, q)`` grid with ``p >= q`` covering all devices.

    For 8 devices this yields the paper's ``(4, 2)`` grid.
    """
    q = int(math.isqrt(num_devices))
    while q > 1 and num_devices % q != 0:
        q -= 1
    return (num_devices // q, q)


def layout_conversion_time(
    nbytes: int, host_bandwidth: float = config.HOST_MEMCPY_BW
) -> float:
    """Host time to convert a matrix between LAPACK and tile layouts.

    Chameleon's LAPACK interface copies every operand to the internal tile
    layout before the computation and copies results back after it; the paper
    identifies this host-side conversion as the cause of Chameleon-LAPACK's
    last-place performance (§IV-D).  The conversion is a strided memcpy over
    the whole matrix, modelled at host copy bandwidth.
    """
    if nbytes < 0:
        raise MemoryViewError(f"negative byte count {nbytes}")
    return nbytes / host_bandwidth
