"""Tile handles.

A :class:`Tile` is the unit of data management: one block of a partitioned
matrix, identified by :class:`TileKey` ``(matrix_id, i, j)``.  The runtime's
coherence directory, caches and transfer manager all speak in tiles.  Tiles
reference a host-side :class:`~repro.memory.view.MemoryView`; their device
copies always use the compacted dense form (paper §III-A).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.memory.view import MemoryView

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.memory.matrix import Matrix


class TileKey(typing.NamedTuple):
    """Identity of a tile: owning matrix and block coordinates.

    A :class:`~typing.NamedTuple` rather than a dataclass: tile keys index
    every directory, cache and datastore map, so they are hashed on each of
    the ~30 dict probes a task induces.  The tuple form keeps hashing and
    equality entirely in C — no Python ``__hash__`` frame per probe — and a
    tuple of ints hashes identically across processes (``PYTHONHASHSEED``
    salts only str/bytes), which preserves the determinism contract that the
    previous hand-written arithmetic hash provided (lint rule L002 concerns
    explicit ``hash()`` calls, not ``__hash__`` implementations).  Note the
    runtime never *iterates* a set of keys, so the changed hash values cannot
    reorder anything observable.
    """

    matrix_id: int
    i: int
    j: int

    def __repr__(self) -> str:
        return f"T({self.matrix_id}:{self.i},{self.j})"


@dataclasses.dataclass(frozen=True, slots=True, eq=False)
class Tile:
    """One block of a partitioned matrix.

    Equality/hash is identity-based (each partition creates its tiles once),
    while :attr:`key` provides the stable value identity used by directories.
    """

    key: TileKey
    view: MemoryView
    matrix: "Matrix"
    #: bytes of a device (compact) copy and element width, precomputed from
    #: the (immutable) view: the transfer manager and cost models consult
    #: these once or more per task, so the property->view chase is paid once
    #: at partition time instead.
    nbytes: int = dataclasses.field(init=False, repr=False)
    wordsize: int = dataclasses.field(init=False, repr=False)
    #: block shape, copied out of the view once — the tiled builders read
    #: ``m``/``n`` per emitted task to derive flops and dims.
    m: int = dataclasses.field(init=False, repr=False)
    n: int = dataclasses.field(init=False, repr=False)
    #: memoized READ/READWRITE/WRITE :class:`~repro.runtime.access.Access`
    #: objects — see :attr:`read_access`.
    _read_access: object = dataclasses.field(init=False, repr=False, default=None)
    _rw_access: object = dataclasses.field(init=False, repr=False, default=None)
    _write_access: object = dataclasses.field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nbytes", self.view.payload_bytes)
        object.__setattr__(self, "wordsize", self.view.wordsize)
        object.__setattr__(self, "m", self.view.m)
        object.__setattr__(self, "n", self.view.n)

    @property
    def read_access(self):
        """The interned read-only :class:`~repro.runtime.access.Access`.

        Tiled builders declare the same tile as a READ input of many tasks
        (one A-panel tile feeds a whole block row of GEMMs); accesses are
        immutable after construction, so every reader can share one object
        instead of allocating per task.  Lazy import avoids a module cycle
        (``runtime.access`` type-hints against ``memory.tile``).
        """
        acc = self._read_access
        if acc is None:
            from repro.runtime.access import Access, AccessMode

            acc = Access(self, AccessMode.READ)
            object.__setattr__(self, "_read_access", acc)
        return acc

    @property
    def rw_access(self):
        """The interned READWRITE access (one per chain of accumulating
        tasks on an output tile — see :attr:`read_access` for the rationale)."""
        acc = self._rw_access
        if acc is None:
            from repro.runtime.access import Access, AccessMode

            acc = Access(self, AccessMode.READWRITE)
            object.__setattr__(self, "_rw_access", acc)
        return acc

    @property
    def write_access(self):
        """The interned WRITE-only access (chain heads under ``beta == 0``)."""
        acc = self._write_access
        if acc is None:
            from repro.runtime.access import Access, AccessMode

            acc = Access(self, AccessMode.WRITE)
            object.__setattr__(self, "_write_access", acc)
        return acc

    @property
    def i(self) -> int:
        return self.key.i

    @property
    def j(self) -> int:
        return self.key.j

    def host_slice(self) -> tuple[slice, slice]:
        """NumPy (row, col) slices of this tile inside the host matrix array."""
        ld = self.view.ld
        row = self.view.offset % ld
        col = self.view.offset // ld
        return (slice(row, row + self.m), slice(col, col + self.n))

    def __repr__(self) -> str:
        return f"Tile({self.key!r}, {self.m}x{self.n})"
