"""Tile coherence directory.

Tracks, for every tile, which locations hold a valid replica — a simplified
MOSI protocol like the XKaapi software cache the paper builds on (§II-C,
§III-A), with one extension that *is* the paper's second contribution: the
metadata also records replicas **under transfer** ("a state indicating that a
data is under transfer to a specific GPU", §III-C), so the transfer manager
can optimistically chain a device-to-device forward onto an in-flight
host-to-device copy instead of issuing a second PCIe transfer.

States per (tile, location):

* ``INVALID`` — no replica (the default; absent from the maps).
* ``SHARED`` — a valid read replica; any number of locations may be SHARED.
* ``MODIFIED`` — the unique up-to-date replica after a write; every other
  location is invalidated.

The host is location :data:`~repro.topology.link.HOST` (-1).

Storage layout
--------------

The directory is *array-backed*: tiles are interned to dense integer ids on
first touch, and per-tile state lives in parallel lists indexed by that id —

* ``_valid[tid]`` — bitmask of locations holding a valid replica, where
  location ``loc`` occupies bit ``loc + 1`` (so the host, ``-1``, is bit 0);
* ``_mod[tid]`` — bitmask of locations whose replica is ``MODIFIED`` (at most
  one bit in any protocol-legal state; kept as a mask rather than a single
  int so the verification suite can still seed the multi-owner states it
  detects);
* ``_gen[tid]`` — the tile generation guarding against ABA on flights;
* ``_flights[tid]`` — ``dst -> InFlight``, insertion-ordered like the dict
  the previous implementation used (source-selection tie-breaks depend on
  that order, so it is part of the contract);
* ``_fmask[tid]`` — bitmask of destinations with a live in-flight transfer
  (same ``loc + 1`` bit layout as ``_valid``).  Redundant with the keys of
  ``_flights[tid]`` by construction; it exists so the transfer hot path can
  answer the overwhelmingly common "no transfer in flight" with one bit test
  instead of a list index plus a dict probe.

Every state transition is therefore O(1) integer arithmetic instead of a
nested ``dict[TileKey, dict[int, ReplicaState]]`` walk — this directory sits
on the hot path of every simulated transfer and kernel completion (BLASX
attributes its multi-GPU win to exactly such an O(1) coherence layer).  The
key-addressed :class:`ReplicaState` API is unchanged, and ``_entries``
remains available as a thin write-through view so the verification suite can
keep seeding illegal states directly.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterator, MutableMapping

from repro.errors import CoherenceError
from repro.memory.tile import TileKey
from repro.topology.link import HOST

#: bit of a location inside the ``_valid``/``_mod`` masks (host ``-1`` -> 0).
_HOST_BIT = 1 << (HOST + 1)


class ReplicaState(enum.Enum):
    SHARED = "S"
    MODIFIED = "M"


@dataclasses.dataclass(slots=True)
class InFlight:
    """An in-flight transfer of one tile to ``dst``.

    ``completes_at`` is the virtual time the replica becomes valid; ``source``
    is where the bytes come from (device id or HOST).  ``generation`` guards
    against ABA: a write invalidates outstanding flights by bumping the tile
    generation.
    """

    dst: int
    completes_at: float
    source: int
    generation: int


class _StatesView(MutableMapping):
    """Write-through ``location -> ReplicaState`` view over the bitmasks.

    Exists for the verification suite, which seeds protocol-illegal states
    (two owners, a valid flight destination...) by assigning into
    ``directory._entries[key].states`` directly; the hot path never builds
    one of these.
    """

    __slots__ = ("_d", "_tid")

    def __init__(self, directory: "CoherenceDirectory", tid: int) -> None:
        self._d = directory
        self._tid = tid

    def __getitem__(self, loc: int) -> ReplicaState:
        d, tid, bit = self._d, self._tid, 1 << (loc + 1)
        if not d._valid[tid] & bit:
            raise KeyError(loc)
        return ReplicaState.MODIFIED if d._mod[tid] & bit else ReplicaState.SHARED

    def __setitem__(self, loc: int, state: ReplicaState) -> None:
        d, tid, bit = self._d, self._tid, 1 << (loc + 1)
        d._valid[tid] |= bit
        if state is ReplicaState.MODIFIED:
            d._mod[tid] |= bit
        else:
            d._mod[tid] &= ~bit

    def __delitem__(self, loc: int) -> None:
        d, tid, bit = self._d, self._tid, 1 << (loc + 1)
        if not d._valid[tid] & bit:
            raise KeyError(loc)
        d._valid[tid] &= ~bit
        d._mod[tid] &= ~bit

    def __iter__(self) -> Iterator[int]:
        m = self._d._valid[self._tid]
        while m:
            low = m & -m
            yield low.bit_length() - 2  # bit index - 1 == location
            m ^= low

    def __len__(self) -> int:
        return self._d._valid[self._tid].bit_count()


class _TileEntryView:
    """Mutable per-tile view mirroring the old ``_TileEntry`` attributes."""

    __slots__ = ("_d", "_tid")

    def __init__(self, directory: "CoherenceDirectory", tid: int) -> None:
        self._d = directory
        self._tid = tid

    @property
    def states(self) -> _StatesView:
        return _StatesView(self._d, self._tid)

    @property
    def in_flight(self) -> dict[int, InFlight]:
        return self._d._flights[self._tid]

    @property
    def generation(self) -> int:
        return self._d._gen[self._tid]

    @generation.setter
    def generation(self, value: int) -> None:
        self._d._gen[self._tid] = value


class _EntriesView:
    """``key -> entry`` accessor kept for tests that tamper on purpose."""

    __slots__ = ("_d",)

    def __init__(self, directory: "CoherenceDirectory") -> None:
        self._d = directory

    def __getitem__(self, key: TileKey) -> _TileEntryView:
        return _TileEntryView(self._d, self._d.lookup(key))

    def __contains__(self, key: TileKey) -> bool:
        return key in self._d._ids

    def __len__(self) -> int:
        return len(self._d._ids)

    def __iter__(self) -> Iterator[TileKey]:
        return iter(self._d._ids)


class CoherenceDirectory:
    """Replica states and in-flight metadata for all tiles of one execution.

    Tiles start host-valid by default (``data-on-host`` scenario).  The
    data-on-device scenario seeds device replicas via :meth:`seed_device`.
    """

    def __init__(self) -> None:
        self._ids: dict[TileKey, int] = {}
        self._tile_keys: list[TileKey] = []
        self._valid: list[int] = []
        self._mod: list[int] = []
        self._gen: list[int] = []
        self._flights: list[dict[int, InFlight]] = []
        self._fmask: list[int] = []
        #: legacy per-key entry accessor (verification tests tamper through it)
        self._entries = _EntriesView(self)

    # ------------------------------------------------------------- interning

    def lookup(self, key: TileKey) -> int:
        """Dense integer id of ``key``, interning it host-valid on first use."""
        tid = self._ids.get(key)
        if tid is None:
            tid = len(self._tile_keys)
            self._ids[key] = tid
            self._tile_keys.append(key)
            self._valid.append(_HOST_BIT)
            self._mod.append(0)
            self._gen.append(0)
            self._flights.append({})
            self._fmask.append(0)
        return tid

    # ----------------------------------------------------------- id fast path
    #
    # Integer-addressed forms of the hottest queries: callers doing several
    # directory operations per event intern the key once and reuse the id.

    def is_valid_id(self, tid: int, location: int) -> bool:
        return bool(self._valid[tid] & (1 << (location + 1)))

    def host_valid_id(self, tid: int) -> bool:
        return bool(self._valid[tid] & _HOST_BIT)

    def device_valid_mask(self, tid: int) -> int:
        """Bitmask with bit ``d`` set iff device ``d`` holds a valid replica."""
        return self._valid[tid] >> 1

    def flights_map(self, tid: int) -> dict[int, InFlight]:
        """Live ``dst -> InFlight`` map of the tile (do not mutate)."""
        return self._flights[tid]

    def flight_mask(self, tid: int) -> int:
        """Bitmask of in-flight destinations (``loc + 1`` bit layout).

        Zero means no transfer of the tile is in flight anywhere — the common
        case the residency fast path tests before touching the flight dict.
        """
        return self._fmask[tid]

    # -------------------------------------------------------------- queries

    def state(self, key: TileKey, location: int) -> ReplicaState | None:
        """State of the replica at ``location`` (None == INVALID)."""
        tid = self.lookup(key)
        bit = 1 << (location + 1)
        if not self._valid[tid] & bit:
            return None
        return ReplicaState.MODIFIED if self._mod[tid] & bit else ReplicaState.SHARED

    def is_valid(self, key: TileKey, location: int) -> bool:
        return bool(self._valid[self.lookup(key)] & (1 << (location + 1)))

    def host_valid(self, key: TileKey) -> bool:
        return bool(self._valid[self.lookup(key)] & _HOST_BIT)

    def valid_devices(self, key: TileKey) -> list[int]:
        """Device ids (host excluded) holding a valid replica, sorted."""
        out = []
        m = self._valid[self.lookup(key)] >> 1  # strip the host bit
        while m:
            low = m & -m
            out.append(low.bit_length() - 1)
            m ^= low
        return out

    def modified_location(self, key: TileKey) -> int | None:
        """Location holding the MODIFIED replica, if any."""
        m = self._mod[self.lookup(key)]
        if not m:
            return None
        return (m & -m).bit_length() - 2

    def replica_count(self, key: TileKey) -> int:
        return self._valid[self.lookup(key)].bit_count()

    def generation(self, key: TileKey) -> int:
        return self._gen[self.lookup(key)]

    def keys(self) -> list[TileKey]:
        """All tiles the directory has an entry for (verification/inspection)."""
        return list(self._tile_keys)

    def replicas(self, key: TileKey) -> dict[int, ReplicaState]:
        """Snapshot of every replica state of the tile (location -> state)."""
        tid = self.lookup(key)
        mod = self._mod[tid]
        out: dict[int, ReplicaState] = {}
        m = self._valid[tid]
        while m:
            low = m & -m
            out[low.bit_length() - 2] = (
                ReplicaState.MODIFIED if mod & low else ReplicaState.SHARED
            )
            m ^= low
        return out

    # ------------------------------------------------------------ in-flight

    def in_flight_to(self, key: TileKey, dst: int) -> InFlight | None:
        return self._flights[self.lookup(key)].get(dst)

    def flights(self, key: TileKey) -> list[InFlight]:
        """All live in-flight transfers of the tile (any destination)."""
        return list(self._flights[self.lookup(key)].values())

    def earliest_flight(self, key: TileKey) -> InFlight | None:
        """The in-flight replica that completes first (optimistic heuristic)."""
        flights = self._flights[self.lookup(key)]
        if not flights:
            return None
        return min(flights.values(), key=lambda f: (f.completes_at, f.dst))

    def begin_transfer(
        self, key: TileKey, dst: int, completes_at: float, source: int
    ) -> InFlight:
        """Record a transfer of ``key`` toward ``dst`` finishing at ``completes_at``.

        The source must currently be valid or itself have an in-flight replica
        that completes no later than the new transfer begins — the transfer
        manager guarantees this by chaining start times.
        """
        return self.begin_transfer_id(self.lookup(key), key, dst, completes_at, source)

    def begin_transfer_id(
        self, tid: int, key: TileKey, dst: int, completes_at: float, source: int
    ) -> InFlight:
        """Id-addressed :meth:`begin_transfer` (``key`` only feeds errors)."""
        if self._valid[tid] & (1 << (dst + 1)):
            raise CoherenceError(f"{key}: destination {dst} already holds a replica")
        flights = self._flights[tid]
        if dst in flights:
            raise CoherenceError(f"{key}: a transfer to {dst} is already in flight")
        flight = InFlight(
            dst=dst,
            completes_at=completes_at,
            source=source,
            generation=self._gen[tid],
        )
        flights[dst] = flight
        self._fmask[tid] |= 1 << (dst + 1)
        return flight

    def complete_transfer(self, key: TileKey, dst: int) -> bool:
        """Finish the in-flight transfer to ``dst``.

        Returns True if the replica became valid, False when a concurrent
        write invalidated the flight (stale generation) — in that case the
        arriving bytes are dropped, as a real runtime would discard an
        invalidated copy.
        """
        return self.complete_transfer_id(self.lookup(key), key, dst)

    def complete_transfer_id(self, tid: int, key: TileKey, dst: int) -> bool:
        """Id-addressed :meth:`complete_transfer` (``key`` only feeds errors)."""
        flight = self._flights[tid].pop(dst, None)
        if flight is None:
            raise CoherenceError(f"{key}: no in-flight transfer to {dst}")
        bit = 1 << (dst + 1)
        self._fmask[tid] &= ~bit
        if flight.generation != self._gen[tid]:
            return False
        self._valid[tid] |= bit
        self._mod[tid] &= ~bit  # landing a copy installs a SHARED replica
        return True

    # --------------------------------------------------------------- writes

    def write(self, key: TileKey, location: int) -> None:
        """A task wrote the tile at ``location``: unique MODIFIED replica.

        All other replicas (host included) and all in-flight transfers are
        invalidated; the tile generation advances.
        """
        self.write_id(self.lookup(key), location)

    def write_id(self, tid: int, location: int) -> None:
        """Id-addressed :meth:`write`."""
        bit = 1 << (location + 1)
        self._gen[tid] += 1
        self._valid[tid] = bit
        self._mod[tid] = bit
        self._flights[tid].clear()
        self._fmask[tid] = 0

    def downgrade(self, key: TileKey, location: int) -> None:
        """MODIFIED -> SHARED after the dirty replica has been copied elsewhere."""
        tid = self.lookup(key)
        bit = 1 << (location + 1)
        if not (self._valid[tid] & bit and self._mod[tid] & bit):
            raise CoherenceError(f"{key}: {location} is not MODIFIED")
        self._mod[tid] &= ~bit

    def add_shared(self, key: TileKey, location: int) -> None:
        """Install a SHARED replica directly (completion of a tracked copy)."""
        tid = self.lookup(key)
        bit = 1 << (location + 1)
        if self._valid[tid] & bit and self._mod[tid] & bit:
            raise CoherenceError(f"{key}: {location} already MODIFIED")
        self._valid[tid] |= bit

    # -------------------------------------------------------------- eviction

    def evict(self, key: TileKey, device: int) -> None:
        """Drop the replica at ``device``.

        Only SHARED replicas are evictable directly; a MODIFIED replica must
        be written back (copied + :meth:`downgrade`) first.  The XKaapi
        eviction policy prioritizing read-only data first makes this the
        common case.
        """
        tid = self.lookup(key)
        bit = 1 << (device + 1)
        valid = self._valid[tid]
        if not valid & bit:
            raise CoherenceError(f"{key}: no replica on {device} to evict")
        if self._mod[tid] & bit:
            raise CoherenceError(f"{key}: cannot evict MODIFIED replica on {device}")
        valid &= ~bit
        self._valid[tid] = valid
        if not valid and not self._flights[tid]:
            raise CoherenceError(f"{key}: eviction would destroy the last replica")

    def discard(self, key: TileKey, device: int) -> None:
        """Drop the replica at ``device`` regardless of its state.

        Used when a dirty replica is evicted *while its write-back is in
        flight*: the data lives "in the wire" (an in-flight transfer records
        it), so the directory may forget the device copy early.  Raises if the
        discard would orphan the tile (no replica anywhere and nothing in
        flight).
        """
        tid = self.lookup(key)
        bit = 1 << (device + 1)
        valid = self._valid[tid]
        if not valid & bit:
            raise CoherenceError(f"{key}: no replica on {device} to discard")
        remaining = valid & ~bit
        if not remaining and not self._flights[tid]:
            raise CoherenceError(f"{key}: discard would orphan the tile")
        self._valid[tid] = remaining
        self._mod[tid] &= ~bit

    # -------------------------------------------------------------- seeding

    def seed_device(self, key: TileKey, device: int, exclusive: bool = True) -> None:
        """Place the initial valid replica on ``device`` (data-on-device).

        With ``exclusive`` the host replica is dropped, modelling matrices
        that live distributed in GPU memory as in §IV-C.
        """
        tid = self.lookup(key)
        bit = 1 << (device + 1)
        if exclusive:
            self._gen[tid] += 1
            self._valid[tid] = bit
            self._mod[tid] = bit
            self._flights[tid].clear()
            self._fmask[tid] = 0
        else:
            self._valid[tid] |= bit
            self._mod[tid] &= ~bit

    def invalidate_device_replicas(self, key: TileKey) -> None:
        """Drop all device replicas, keeping (or restoring) host validity."""
        tid = self.lookup(key)
        self._gen[tid] += 1
        self._valid[tid] = _HOST_BIT
        self._mod[tid] = 0
        self._flights[tid].clear()
        self._fmask[tid] = 0
