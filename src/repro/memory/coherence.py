"""Tile coherence directory.

Tracks, for every tile, which locations hold a valid replica — a simplified
MOSI protocol like the XKaapi software cache the paper builds on (§II-C,
§III-A), with one extension that *is* the paper's second contribution: the
metadata also records replicas **under transfer** ("a state indicating that a
data is under transfer to a specific GPU", §III-C), so the transfer manager
can optimistically chain a device-to-device forward onto an in-flight
host-to-device copy instead of issuing a second PCIe transfer.

States per (tile, location):

* ``INVALID`` — no replica (the default; absent from the maps).
* ``SHARED`` — a valid read replica; any number of locations may be SHARED.
* ``MODIFIED`` — the unique up-to-date replica after a write; every other
  location is invalidated.

The host is location :data:`~repro.topology.link.HOST` (-1).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import CoherenceError
from repro.memory.tile import TileKey
from repro.topology.link import HOST


class ReplicaState(enum.Enum):
    SHARED = "S"
    MODIFIED = "M"


@dataclasses.dataclass(slots=True)
class InFlight:
    """An in-flight transfer of one tile to ``dst``.

    ``completes_at`` is the virtual time the replica becomes valid; ``source``
    is where the bytes come from (device id or HOST).  ``generation`` guards
    against ABA: a write invalidates outstanding flights by bumping the tile
    generation.
    """

    dst: int
    completes_at: float
    source: int
    generation: int


@dataclasses.dataclass(slots=True)
class _TileEntry:
    states: dict[int, ReplicaState] = dataclasses.field(default_factory=dict)
    in_flight: dict[int, InFlight] = dataclasses.field(default_factory=dict)
    generation: int = 0


class CoherenceDirectory:
    """Replica states and in-flight metadata for all tiles of one execution.

    Tiles start host-valid by default (``data-on-host`` scenario).  The
    data-on-device scenario seeds device replicas via :meth:`seed_device`.
    """

    def __init__(self) -> None:
        self._entries: dict[TileKey, _TileEntry] = {}

    def _entry(self, key: TileKey) -> _TileEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = _TileEntry(states={HOST: ReplicaState.SHARED})
            self._entries[key] = entry
        return entry

    # -------------------------------------------------------------- queries

    def state(self, key: TileKey, location: int) -> ReplicaState | None:
        """State of the replica at ``location`` (None == INVALID)."""
        return self._entry(key).states.get(location)

    def is_valid(self, key: TileKey, location: int) -> bool:
        return location in self._entry(key).states

    def host_valid(self, key: TileKey) -> bool:
        return self.is_valid(key, HOST)

    def valid_devices(self, key: TileKey) -> list[int]:
        """Device ids (host excluded) holding a valid replica, sorted."""
        return sorted(d for d in self._entry(key).states if d != HOST)

    def modified_location(self, key: TileKey) -> int | None:
        """Location holding the MODIFIED replica, if any."""
        for loc, st in self._entry(key).states.items():
            if st is ReplicaState.MODIFIED:
                return loc
        return None

    def replica_count(self, key: TileKey) -> int:
        return len(self._entry(key).states)

    def generation(self, key: TileKey) -> int:
        return self._entry(key).generation

    def keys(self) -> list[TileKey]:
        """All tiles the directory has an entry for (verification/inspection)."""
        return list(self._entries)

    def replicas(self, key: TileKey) -> dict[int, ReplicaState]:
        """Snapshot of every replica state of the tile (location -> state)."""
        return dict(self._entry(key).states)

    # ------------------------------------------------------------ in-flight

    def in_flight_to(self, key: TileKey, dst: int) -> InFlight | None:
        return self._entry(key).in_flight.get(dst)

    def flights(self, key: TileKey) -> list[InFlight]:
        """All live in-flight transfers of the tile (any destination)."""
        return list(self._entry(key).in_flight.values())

    def earliest_flight(self, key: TileKey) -> InFlight | None:
        """The in-flight replica that completes first (optimistic heuristic)."""
        flights = self._entry(key).in_flight
        if not flights:
            return None
        return min(flights.values(), key=lambda f: (f.completes_at, f.dst))

    def begin_transfer(
        self, key: TileKey, dst: int, completes_at: float, source: int
    ) -> InFlight:
        """Record a transfer of ``key`` toward ``dst`` finishing at ``completes_at``.

        The source must currently be valid or itself have an in-flight replica
        that completes no later than the new transfer begins — the transfer
        manager guarantees this by chaining start times.
        """
        entry = self._entry(key)
        if dst in entry.states:
            raise CoherenceError(f"{key}: destination {dst} already holds a replica")
        if dst in entry.in_flight:
            raise CoherenceError(f"{key}: a transfer to {dst} is already in flight")
        flight = InFlight(
            dst=dst,
            completes_at=completes_at,
            source=source,
            generation=entry.generation,
        )
        entry.in_flight[dst] = flight
        return flight

    def complete_transfer(self, key: TileKey, dst: int) -> bool:
        """Finish the in-flight transfer to ``dst``.

        Returns True if the replica became valid, False when a concurrent
        write invalidated the flight (stale generation) — in that case the
        arriving bytes are dropped, as a real runtime would discard an
        invalidated copy.
        """
        entry = self._entry(key)
        flight = entry.in_flight.pop(dst, None)
        if flight is None:
            raise CoherenceError(f"{key}: no in-flight transfer to {dst}")
        if flight.generation != entry.generation:
            return False
        entry.states[dst] = ReplicaState.SHARED
        return True

    # --------------------------------------------------------------- writes

    def write(self, key: TileKey, location: int) -> None:
        """A task wrote the tile at ``location``: unique MODIFIED replica.

        All other replicas (host included) and all in-flight transfers are
        invalidated; the tile generation advances.
        """
        entry = self._entry(key)
        entry.generation += 1
        entry.states.clear()
        entry.in_flight.clear()
        entry.states[location] = ReplicaState.MODIFIED

    def downgrade(self, key: TileKey, location: int) -> None:
        """MODIFIED -> SHARED after the dirty replica has been copied elsewhere."""
        entry = self._entry(key)
        if entry.states.get(location) is not ReplicaState.MODIFIED:
            raise CoherenceError(f"{key}: {location} is not MODIFIED")
        entry.states[location] = ReplicaState.SHARED

    def add_shared(self, key: TileKey, location: int) -> None:
        """Install a SHARED replica directly (completion of a tracked copy)."""
        entry = self._entry(key)
        current = entry.states.get(location)
        if current is ReplicaState.MODIFIED:
            raise CoherenceError(f"{key}: {location} already MODIFIED")
        entry.states[location] = ReplicaState.SHARED

    # -------------------------------------------------------------- eviction

    def evict(self, key: TileKey, device: int) -> None:
        """Drop the replica at ``device``.

        Only SHARED replicas are evictable directly; a MODIFIED replica must
        be written back (copied + :meth:`downgrade`) first.  The XKaapi
        eviction policy prioritizing read-only data first makes this the
        common case.
        """
        entry = self._entry(key)
        state = entry.states.get(device)
        if state is None:
            raise CoherenceError(f"{key}: no replica on {device} to evict")
        if state is ReplicaState.MODIFIED:
            raise CoherenceError(f"{key}: cannot evict MODIFIED replica on {device}")
        del entry.states[device]
        if not entry.states and not entry.in_flight:
            raise CoherenceError(f"{key}: eviction would destroy the last replica")

    def discard(self, key: TileKey, device: int) -> None:
        """Drop the replica at ``device`` regardless of its state.

        Used when a dirty replica is evicted *while its write-back is in
        flight*: the data lives "in the wire" (an in-flight transfer records
        it), so the directory may forget the device copy early.  Raises if the
        discard would orphan the tile (no replica anywhere and nothing in
        flight).
        """
        entry = self._entry(key)
        if device not in entry.states:
            raise CoherenceError(f"{key}: no replica on {device} to discard")
        remaining = {loc for loc in entry.states if loc != device}
        if not remaining and not entry.in_flight:
            raise CoherenceError(f"{key}: discard would orphan the tile")
        del entry.states[device]

    # -------------------------------------------------------------- seeding

    def seed_device(self, key: TileKey, device: int, exclusive: bool = True) -> None:
        """Place the initial valid replica on ``device`` (data-on-device).

        With ``exclusive`` the host replica is dropped, modelling matrices
        that live distributed in GPU memory as in §IV-C.
        """
        entry = self._entry(key)
        if exclusive:
            entry.generation += 1
            entry.states.clear()
            entry.in_flight.clear()
            entry.states[device] = ReplicaState.MODIFIED
        else:
            entry.states[device] = ReplicaState.SHARED

    def invalidate_device_replicas(self, key: TileKey) -> None:
        """Drop all device replicas, keeping (or restoring) host validity."""
        entry = self._entry(key)
        entry.generation += 1
        entry.states = {HOST: ReplicaState.SHARED}
        entry.in_flight.clear()
