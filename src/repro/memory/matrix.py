"""Host matrices.

A :class:`Matrix` is a host allocation in LAPACK (column-major) layout with an
optional NumPy backing array.  With an array attached the stack runs in
*numeric mode* (kernels really compute, results are checkable); without one it
runs in *perf mode* (metadata-only, used for paper-scale sweeps where a single
49152² FP64 matrix would need 19 GB).  Both modes flow through identical
runtime code (DESIGN.md §4).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import MemoryViewError
from repro.memory.view import MemoryView

_matrix_ids = itertools.count()


class Matrix:
    """A host matrix in LAPACK layout.

    Parameters
    ----------
    m, n:
        Dimensions.
    wordsize:
        Element width in bytes (8 => FP64, 4 => FP32); ignored when ``data``
        is given (taken from the dtype).
    data:
        Optional backing array; converted to Fortran order if needed, since
        LAPACK layout is column-major.
    name:
        Label used in task/trace rendering ("A", "B", "C"...).
    """

    def __init__(
        self,
        m: int,
        n: int,
        wordsize: int = 8,
        data: np.ndarray | None = None,
        name: str = "",
    ) -> None:
        if m <= 0 or n <= 0:
            raise MemoryViewError(f"matrix dimensions must be positive: ({m}, {n})")
        # Process-global by design: `id` is a debug identity, and every
        # decision path launders it through the run-local
        # DataStore.matrix_index() translation (enforced by lint rule D106).
        self.id = next(_matrix_ids)  # det: laundered via matrix_index
        self.m = m
        self.n = n
        self.name = name or f"M{self.id}"
        if data is not None:
            if data.shape != (m, n):
                raise MemoryViewError(
                    f"data shape {data.shape} does not match matrix ({m}, {n})"
                )
            if not data.flags.f_contiguous or not data.flags.writeable:
                data = np.asfortranarray(data).copy(order="F")
            self.data: np.ndarray | None = data
            self.wordsize = data.dtype.itemsize
        else:
            self.data = None
            self.wordsize = wordsize
        self.view = MemoryView(m=m, n=n, ld=m, wordsize=self.wordsize)

    # ---------------------------------------------------------- constructors

    @classmethod
    def zeros(cls, m: int, n: int, dtype=np.float64, name: str = "") -> "Matrix":
        """A numeric-mode matrix of zeros."""
        return cls(m, n, data=np.zeros((m, n), dtype=dtype, order="F"), name=name)

    @classmethod
    def random(
        cls, m: int, n: int, dtype=np.float64, seed: int | None = None, name: str = ""
    ) -> "Matrix":
        """A numeric-mode matrix of uniform random values in [-1, 1)."""
        rng = np.random.default_rng(seed)
        data = np.asfortranarray((rng.random((m, n)) * 2 - 1).astype(dtype))
        return cls(m, n, data=data, name=name)

    @classmethod
    def meta(cls, m: int, n: int, wordsize: int = 8, name: str = "") -> "Matrix":
        """A perf-mode (metadata-only) matrix."""
        return cls(m, n, wordsize=wordsize, name=name)

    # -------------------------------------------------------------- behavior

    @property
    def numeric(self) -> bool:
        """True when a NumPy array backs this matrix."""
        return self.data is not None

    @property
    def nbytes(self) -> int:
        return self.m * self.n * self.wordsize

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    def to_array(self) -> np.ndarray:
        """The backing array (numeric mode only)."""
        if self.data is None:
            raise MemoryViewError(f"matrix {self.name} is metadata-only (perf mode)")
        return self.data

    def copy(self, name: str = "") -> "Matrix":
        """Deep copy (numeric) or same-shape clone (perf mode)."""
        if self.data is not None:
            return Matrix(self.m, self.n, data=self.data.copy(order="F"), name=name)
        return Matrix.meta(self.m, self.n, self.wordsize, name=name)

    def __repr__(self) -> str:
        mode = "numeric" if self.numeric else "meta"
        return f"Matrix({self.name}, {self.m}x{self.n}, {mode})"
