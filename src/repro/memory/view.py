"""LAPACK memory views.

The paper (§III-A) describes every CPU tile as "a memory region starting at
address A with its description given by the tuple ``(m, n, ld, wordsize)``".
:class:`MemoryView` is that tuple plus an element offset standing in for the
address.  Sub-matrices keep the same representation after decomposition
(column-major with a leading dimension), and once copied to a GPU the view is
compacted to ``(m, n, m, wordsize)`` — a dense tile.
"""

from __future__ import annotations

import dataclasses

from repro.errors import MemoryViewError


@dataclasses.dataclass(frozen=True, slots=True)
class MemoryView:
    """A column-major sub-matrix view: ``(m, n, ld, wordsize)`` at ``offset``.

    Attributes
    ----------
    m, n:
        Row and column counts of the viewed region.
    ld:
        Leading dimension (rows of the underlying allocation); ``ld >= m``.
    wordsize:
        Bytes per element (8 for FP64).
    offset:
        Element offset of the first entry inside the underlying allocation,
        i.e. the ``A + offset*wordsize`` address of the paper's tuple.
    """

    m: int
    n: int
    ld: int
    wordsize: int = 8
    offset: int = 0

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise MemoryViewError(f"negative dimensions ({self.m}, {self.n})")
        if self.ld < max(self.m, 1):
            raise MemoryViewError(f"ld={self.ld} < m={self.m}")
        if self.wordsize <= 0:
            raise MemoryViewError(f"wordsize must be positive, got {self.wordsize}")
        if self.offset < 0:
            raise MemoryViewError(f"negative offset {self.offset}")

    # ------------------------------------------------------------- geometry

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    @property
    def nelems(self) -> int:
        """Number of elements actually viewed (not counting the ld padding)."""
        return self.m * self.n

    @property
    def payload_bytes(self) -> int:
        """Bytes of useful data, i.e. what a 2D memcpy moves."""
        return self.nelems * self.wordsize

    @property
    def span_bytes(self) -> int:
        """Bytes of the contiguous span covering the view, including padding."""
        if self.n == 0 or self.m == 0:
            return 0
        return ((self.n - 1) * self.ld + self.m) * self.wordsize

    @property
    def is_compact(self) -> bool:
        """True when the view is a dense tile (``ld == m``), the GPU form."""
        return self.ld == self.m or self.m == 0

    # ----------------------------------------------------------- operations

    def subview(self, row: int, col: int, m: int, n: int) -> "MemoryView":
        """View the ``m × n`` sub-matrix starting at element ``(row, col)``.

        This is the "sub-matrix representation using LAPACK data layout" the
        paper uses in place of tile copies: the result shares the allocation
        (same ``ld``), only the offset moves.
        """
        if row < 0 or col < 0 or row + m > self.m or col + n > self.n:
            raise MemoryViewError(
                f"subview ({row}+{m}, {col}+{n}) escapes view of shape {self.shape}"
            )
        return MemoryView(
            m=m,
            n=n,
            ld=self.ld,
            wordsize=self.wordsize,
            offset=self.offset + col * self.ld + row,
        )

    def compacted(self) -> "MemoryView":
        """The dense-tile form ``(m, n, m, wordsize)`` used on devices."""
        return MemoryView(m=self.m, n=self.n, ld=max(self.m, 1), wordsize=self.wordsize)

    def element_offset(self, row: int, col: int) -> int:
        """Element offset of entry ``(row, col)`` in the underlying allocation."""
        if not (0 <= row < self.m and 0 <= col < self.n):
            raise MemoryViewError(f"element ({row}, {col}) outside {self.shape}")
        return self.offset + col * self.ld + row

    def overlaps(self, other: "MemoryView") -> bool:
        """Conservative column-range overlap test for views of one allocation.

        Two views overlap if any column-strip intersects; used to validate
        that tiles of a partition are disjoint.
        """
        if self.nelems == 0 or other.nelems == 0:
            return False
        if self.ld != other.ld:
            # Different allocations (or incompatible reshapes): compare spans.
            a0, a1 = self.offset, self.offset + self.span_bytes // self.wordsize
            b0, b1 = other.offset, other.offset + other.span_bytes // other.wordsize
            return a0 < b1 and b0 < a1
        ld = self.ld
        arow, acol = self.offset % ld, self.offset // ld
        brow, bcol = other.offset % ld, other.offset // ld
        rows_meet = arow < brow + other.m and brow < arow + self.m
        cols_meet = acol < bcol + other.n and bcol < acol + self.n
        return rows_meet and cols_meet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryView(m={self.m}, n={self.n}, ld={self.ld}, "
            f"ws={self.wordsize}, off={self.offset})"
        )
