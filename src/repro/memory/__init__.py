"""Data management substrate.

Implements the paper's §III-A data model: LAPACK memory views
``(m, n, ld, wordsize)``, matrices partitioned into sub-matrix tiles, the
2D-block-cyclic distribution used by the data-on-device experiments, the
per-device software cache with MOSI-ish coherence states extended with the
*under transfer* metadata of the optimistic heuristic, and eviction policies
(XKaapi's read-only-first, plain LRU, BLASX's two-level).
"""

from repro.memory.coherence import CoherenceDirectory, InFlight, ReplicaState
from repro.memory.cache import (
    Blasx2LevelPolicy,
    DeviceCache,
    EvictionPolicy,
    LruPolicy,
    ReadOnlyFirstPolicy,
)
from repro.memory.layout import (
    BlockCyclicDistribution,
    Layout,
    TilePartition,
    layout_conversion_time,
)
from repro.memory.matrix import Matrix
from repro.memory.tile import Tile, TileKey
from repro.memory.view import MemoryView

__all__ = [
    "Blasx2LevelPolicy",
    "BlockCyclicDistribution",
    "CoherenceDirectory",
    "DeviceCache",
    "EvictionPolicy",
    "InFlight",
    "Layout",
    "LruPolicy",
    "Matrix",
    "MemoryView",
    "ReadOnlyFirstPolicy",
    "ReplicaState",
    "Tile",
    "TileKey",
    "TilePartition",
    "layout_conversion_time",
]
