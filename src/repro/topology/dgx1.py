"""NVIDIA DGX-1 topology factory.

Reconstructs the hybrid cube-mesh of the paper's Fig. 1 with the measured
bandwidths of Fig. 2.  Each V100 exposes 6 NVLink-2 lanes; on the DGX-1 they
are bonded as:

* **double links** (2 lanes, ~96 GB/s): 0-3, 0-4, 1-2, 1-5, 2-3, 4-7, 5-6, 6-7
* **single links** (1 lane, ~48 GB/s): 0-1, 0-2, 1-3, 2-6, 3-7, 4-5, 4-6, 5-7
* all remaining pairs route over the PCIe fabric (~17 GB/s),

which gives every GPU exactly 2 double + 2 single links (6 lanes).  GPUs
``(0,1)``, ``(2,3)``, ``(4,5)``, ``(6,7)`` share one x16 PCIe Gen3 switch each
for host traffic (Fig. 1), the contention point the optimistic heuristic
relieves.
"""

from __future__ import annotations

from repro import config
from repro.topology.device import CpuSpec, GpuSpec
from repro.topology.link import Link, LinkKind
from repro.topology.platform import Platform

#: Undirected double-NVLink pairs of the DGX-1 cube-mesh.
DGX1_DOUBLE_PAIRS: tuple[tuple[int, int], ...] = (
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 5),
    (2, 3),
    (4, 7),
    (5, 6),
    (6, 7),
)

#: Undirected single-NVLink pairs.
DGX1_SINGLE_PAIRS: tuple[tuple[int, int], ...] = (
    (0, 1),
    (0, 2),
    (1, 3),
    (2, 6),
    (3, 7),
    (4, 5),
    (4, 6),
    (5, 7),
)

#: GPUs sharing one host PCIe switch (Fig. 1: two GPUs per switch).
DGX1_PCIE_SWITCH_GROUPS: tuple[tuple[int, int], ...] = (
    (0, 1),
    (2, 3),
    (4, 5),
    (6, 7),
)

#: Measured GPU-to-GPU bandwidth matrix of the paper's Fig. 2, in GB/s.
#: Row = source device, column = destination device.
DGX1_MEASURED_BANDWIDTH_GBPS: tuple[tuple[float, ...], ...] = (
    (744.05, 48.37, 48.39, 96.49, 96.45, 17.11, 17.74, 17.97),
    (48.38, 750.48, 96.50, 48.38, 16.98, 96.44, 17.32, 16.97),
    (48.34, 96.28, 750.48, 96.47, 17.62, 16.93, 48.39, 17.75),
    (96.26, 48.34, 96.28, 750.48, 17.58, 17.22, 17.60, 48.39),
    (96.46, 16.98, 17.65, 17.53, 746.89, 48.30, 48.40, 96.49),
    (16.94, 96.42, 16.88, 17.21, 48.39, 745.47, 96.51, 48.40),
    (17.65, 16.90, 48.40, 17.51, 48.34, 96.47, 750.48, 96.47),
    (17.80, 16.91, 17.77, 48.39, 96.28, 48.38, 96.28, 747.61),
)


def _pair_kind(i: int, j: int) -> LinkKind:
    key = (min(i, j), max(i, j))
    if key in DGX1_DOUBLE_PAIRS:
        return LinkKind.NVLINK_DOUBLE
    if key in DGX1_SINGLE_PAIRS:
        return LinkKind.NVLINK_SINGLE
    return LinkKind.PCIE_PEER


def make_dgx1(
    num_gpus: int = 8,
    use_measured_bandwidths: bool = True,
    gpu: GpuSpec | None = None,
) -> Platform:
    """Build the DGX-1 platform of Table I ("Gemini").

    Parameters
    ----------
    num_gpus:
        Number of GPUs exposed (1..8); smaller counts keep the wiring of the
        first ``num_gpus`` devices, matching ``CUDA_VISIBLE_DEVICES`` pruning.
    use_measured_bandwidths:
        When true, per-pair bandwidths come from the paper's measured Fig. 2
        matrix; otherwise the nominal class bandwidths are used.
    gpu:
        Override the GPU spec (default: V100-SXM2 32 GB).
    """
    if not 1 <= num_gpus <= 8:
        raise ValueError(f"DGX-1 has 1..8 GPUs, requested {num_gpus}")
    spec = gpu if gpu is not None else GpuSpec()
    links: list[Link] = []
    for i in range(num_gpus):
        for j in range(num_gpus):
            if i == j:
                continue
            kind = _pair_kind(i, j)
            bw = (
                DGX1_MEASURED_BANDWIDTH_GBPS[i][j] * config.GB
                if use_measured_bandwidths
                else kind.default_bandwidth
            )
            links.append(Link(i, j, kind, bandwidth=bw))
    groups = tuple(
        tuple(d for d in group if d < num_gpus)
        for group in DGX1_PCIE_SWITCH_GROUPS
    )
    groups = tuple(g for g in groups if g)
    return Platform(
        name="Gemini (NVIDIA DGX-1)",
        gpus=[spec] * num_gpus,
        cpus=[CpuSpec(), CpuSpec()],
        links=links,
        pcie_switch_groups=list(groups),
        host_link_kind=LinkKind.PCIE_HOST,
        host_bandwidth=config.PCIE_HOST_BW,
    )
