"""Platform topology models.

Describes the multi-GPU machine: device specifications, interconnect links
ranked by performance class (2×NVLink > 1×NVLink > PCIe, paper §III-B), the
DGX-1 hybrid cube-mesh factory with the paper's Fig. 2 bandwidth matrix, a
Summit-like node for the §III-C prediction, and a DGX-2-like uniform NVSwitch
node for the §V portability discussion.
"""

from repro.topology.device import CpuSpec, GpuSpec
from repro.topology.dgx1 import make_dgx1
from repro.topology.link import Link, LinkKind
from repro.topology.nvswitch import make_nvswitch_node
from repro.topology.platform import Platform
from repro.topology.summit import make_summit_node

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "Link",
    "LinkKind",
    "Platform",
    "make_dgx1",
    "make_nvswitch_node",
    "make_summit_node",
]
