"""Device specifications.

Compute/memory characteristics of the simulated processors.  The GEMM
efficiency curve in :meth:`GpuSpec.kernel_time` is the heart of the perf-mode
compute model: it converts a kernel's flop count and tile size into a duration,
calibrated so a V100 reaches ~90% of FP64 peak on 2048-wide GEMM tiles (the
paper measures 91.2% of the 8-GPU aggregate peak at best).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro import config
from repro.errors import TopologyError


@dataclasses.dataclass(frozen=True, slots=True)
class GpuSpec:
    """A GPU model: peak rate, memory capacity and kernel-efficiency curve.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"V100-SXM2-32GB"``.
    fp64_peak:
        Peak FP64 rate in flop/s.
    memory_bytes:
        Device memory capacity.
    launch_latency:
        Fixed overhead charged per kernel launch, seconds.
    half_efficiency_dim:
        Tile dimension at which a GEMM-like kernel reaches half of its
        asymptotic efficiency; smaller tiles are launch/occupancy bound.
    max_efficiency:
        Asymptotic fraction of peak achieved by large, regular kernels.
    """

    name: str = "V100-SXM2-32GB"
    fp64_peak: float = config.V100_FP64_PEAK
    fp32_peak: float = config.V100_FP32_PEAK
    memory_bytes: int = config.V100_MEMORY_BYTES
    launch_latency: float = config.KERNEL_LAUNCH_LATENCY
    # Calibrated so DGEMM reaches ~90% of peak at 2048-wide tiles and ~92.5%
    # at 4096 — the paper measures 91.2% of aggregate peak at best (§IV-D).
    half_efficiency_dim: int = 114
    max_efficiency: float = 0.95
    kernel_streams: int = config.DEFAULT_KERNEL_STREAMS
    #: Aggregate NVLink injection/ejection bandwidth of the device (all
    #: bricks combined).  The fabric sizes its per-device NVLink engines from
    #: this, so heterogeneous platforms can mix devices with different NVLink
    #: generations/brick counts.
    nvlink_aggregate_bw: float = config.NVLINK_AGGREGATE_BW

    def __post_init__(self) -> None:
        if self.fp64_peak <= 0 or self.fp32_peak <= 0:
            raise TopologyError("GPU peak rates must be positive")
        if self.nvlink_aggregate_bw <= 0:
            raise TopologyError("NVLink aggregate bandwidth must be positive")
        if self.memory_bytes <= 0:
            raise TopologyError("GPU memory must be positive")
        if not 0 < self.max_efficiency <= 1:
            raise TopologyError("max_efficiency must be in (0, 1]")

    def peak(self, wordsize: int) -> float:
        """Peak flop rate for the given element width (8 => FP64, 4 => FP32)."""
        return self.fp64_peak if wordsize >= 8 else self.fp32_peak

    def efficiency(self, dim: int, regularity: float = 1.0) -> float:
        """Fraction of peak achieved by a kernel of characteristic size ``dim``.

        A saturating curve ``eff = max_eff * d / (d + d_half)`` — small tiles
        are dominated by launch overhead and poor occupancy, large tiles
        approach the asymptote.  ``regularity`` scales the asymptote for
        kernels that map less well to tensor hardware (TRSM's triangular
        solves reach a lower fraction of peak than GEMM).
        """
        if dim <= 0:
            return 0.0
        sat = dim / (dim + self.half_efficiency_dim)
        return self.max_efficiency * regularity * sat

    def kernel_time(
        self,
        flops: float,
        dim: int,
        wordsize: int = 8,
        regularity: float = 1.0,
    ) -> float:
        """Duration of a kernel performing ``flops`` with characteristic ``dim``."""
        if flops < 0:
            raise TopologyError(f"negative flop count: {flops}")
        if flops == 0:
            return self.launch_latency
        eff = self.efficiency(dim, regularity)
        if eff <= 0:
            # Degenerate 1-element kernels: pure launch latency.
            return self.launch_latency
        return self.launch_latency + flops / (self.peak(wordsize) * eff)

    def kernel_time_batch(
        self,
        flops: Sequence[float],
        dims: Sequence[int],
        wordsizes: Sequence[int],
        regularities: Sequence[float],
    ) -> np.ndarray:
        """Vectorized :meth:`kernel_time` over parallel argument sequences.

        One float64 numpy pass replacing N scalar calls; every arithmetic
        operation mirrors the scalar path's order and operand types exactly
        (int operands convert to float64, which is what Python's float
        arithmetic does too), so each element is **bit-identical** to the
        corresponding ``kernel_time`` result — the executor fills its
        kernel-time cache from here for whole ready batches without
        perturbing any virtual-time number.
        """
        f = np.asarray(flops, dtype=np.float64)
        if np.any(f < 0):
            raise TopologyError("negative flop count in batch")
        d = np.asarray(dims, dtype=np.float64)
        w = np.asarray(wordsizes)
        r = np.asarray(regularities, dtype=np.float64)
        # efficiency(): sat = dim / (dim + d_half); eff = (max_eff * reg) * sat.
        # Non-positive dims are degenerate lanes (scalar path returns eff 0.0
        # before dividing); clamp them so the vector division cannot hit 0/0.
        d_safe = np.where(d <= 0, 1.0, d)
        sat = d_safe / (d_safe + float(self.half_efficiency_dim))
        eff = (self.max_efficiency * r) * sat
        peak = np.where(w >= 8, self.fp64_peak, self.fp32_peak)
        # Guard the degenerate lanes (flops == 0 or eff <= 0) before dividing;
        # the guarded lanes' quotients are discarded by the where() below.
        degenerate = (f == 0) | (eff <= 0) | (d <= 0)
        safe_eff = np.where(degenerate, 1.0, eff)
        times = self.launch_latency + f / (peak * safe_eff)
        return np.where(degenerate, self.launch_latency, times)

    def fits(self, nbytes: int) -> bool:
        """Whether a working set of ``nbytes`` fits in device memory."""
        return nbytes <= self.memory_bytes


@dataclasses.dataclass(frozen=True, slots=True)
class CpuSpec:
    """A host CPU socket (Table I: 2× Xeon E5-2698 v4, 20 cores each)."""

    name: str = "Xeon E5-2698 v4"
    cores: int = 20
    fp64_peak_per_core: float = 35.2e9  # 2.2 GHz * 16 flops/cycle AVX2 FMA
    memory_bytes: int = config.HOST_MEMORY_BYTES // 2

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise TopologyError("CPU must have at least one core")

    @property
    def fp64_peak(self) -> float:
        return self.cores * self.fp64_peak_per_core


def characteristic_dim(m: int, n: int, k: int | None = None) -> int:
    """Geometric-mean dimension of a kernel, used for the efficiency curve."""
    dims = [d for d in (m, n, k) if d is not None]
    if not dims or any(d <= 0 for d in dims):
        return 0
    prod = 1.0
    for d in dims:
        prod *= float(d)
    return max(1, int(round(prod ** (1.0 / len(dims)))))


def gemm_dim(m: int, n: int, k: int) -> int:
    """Characteristic dimension of an (m, n, k) GEMM tile kernel."""
    return characteristic_dim(m, n, k)


def occupancy_tiles(memory_bytes: int, tile_dim: int, wordsize: int = 8) -> int:
    """How many ``tile_dim``² tiles fit in ``memory_bytes`` (cache sizing)."""
    tile_bytes = tile_dim * tile_dim * wordsize
    if tile_bytes <= 0:
        raise TopologyError("tile size must be positive")
    return int(math.floor(memory_bytes / tile_bytes))
