"""DGX-2-like NVSwitch platform.

The paper closes with "the portability of our performance results on other
architectures is the next step" (§V).  The interesting counterpoint to the
DGX-1's hybrid cube-mesh is the NVSwitch generation (DGX-2 and later): every
GPU pair talks through a switch at the same ~150 GB/s, so the *topology-aware
ranking has nothing to rank* — all peers share one performance class — while
the *optimistic* device-to-device heuristic keeps paying (host links remain
PCIe and shared).  ``benchmarks/test_ablation_nvswitch.py`` verifies exactly
that prediction on this model.
"""

from __future__ import annotations

import itertools

from repro import config
from repro.topology.device import CpuSpec, GpuSpec
from repro.topology.link import Link, LinkKind
from repro.topology.platform import Platform

#: Per-pair bandwidth through the NVSwitch fabric (GB/s).
NVSWITCH_PAIR_BW = 150.0 * config.GB


def make_nvswitch_node(num_gpus: int = 16, gpu: GpuSpec | None = None) -> Platform:
    """Build a DGX-2-like node: uniform all-to-all NVLink via NVSwitch.

    Every GPU pair gets the same link class and bandwidth; host links stay
    x16 PCIe Gen3 shared two-GPUs-per-switch as on the DGX-1.
    """
    if not 1 <= num_gpus <= 16:
        raise ValueError(f"NVSwitch node supports 1..16 GPUs, requested {num_gpus}")
    spec = gpu if gpu is not None else GpuSpec()
    links = [
        Link(i, j, LinkKind.NVLINK_DOUBLE, bandwidth=NVSWITCH_PAIR_BW)
        for i, j in itertools.permutations(range(num_gpus), 2)
    ]
    groups = [
        tuple(d for d in (2 * s, 2 * s + 1) if d < num_gpus)
        for s in range((num_gpus + 1) // 2)
    ]
    return Platform(
        name=f"NVSwitch node ({num_gpus} GPUs)",
        gpus=[spec] * num_gpus,
        cpus=[CpuSpec(), CpuSpec()],
        links=links,
        pcie_switch_groups=[g for g in groups if g],
        host_link_kind=LinkKind.PCIE_HOST,
        host_bandwidth=config.PCIE_HOST_BW,
    )
