"""Interconnect links and their performance ranking.

The paper groups GPU-pair links of the DGX-1 into three classes (§III-B):
two bonded NVLinks (~96 GB/s), a single NVLink (~48 GB/s) and PCIe routes
(~17 GB/s).  The topology-aware heuristic consumes only the *relative* rank of
these classes — exactly what CUDA's ``cuDeviceGetP2PAttribute`` with
``CU_DEVICE_P2P_ATTRIBUTE_PERFORMANCE_RANK`` returns — so :class:`LinkKind`
carries both a rank and a default bandwidth.
"""

from __future__ import annotations

import dataclasses
import enum

from repro import config
from repro.errors import TopologyError


class LinkKind(enum.Enum):
    """Physical class of a link, ordered by performance.

    ``perf_rank`` follows the CUDA convention: **lower is faster** (rank 0 is
    the best link class).  The heuristics only ever compare ranks.
    """

    NVLINK_DOUBLE = ("nvlink2x", 0, config.NVLINK2_DOUBLE_BW)
    NVLINK_SINGLE = ("nvlink1x", 1, config.NVLINK2_SINGLE_BW)
    NVLINK_HOST = ("nvlink-host", 1, 50.0e9)  # Summit-style CPU<->GPU NVLink
    PCIE_PEER = ("pcie-peer", 2, config.PCIE_PEER_BW)
    PCIE_HOST = ("pcie-host", 3, config.PCIE_HOST_BW)
    LOCAL = ("local", -1, config.LOCAL_COPY_BW)

    def __init__(self, label: str, perf_rank: int, default_bandwidth: float) -> None:
        self.label = label
        self.perf_rank = perf_rank
        self.default_bandwidth = default_bandwidth

    @property
    def is_nvlink(self) -> bool:
        return self in (
            LinkKind.NVLINK_DOUBLE,
            LinkKind.NVLINK_SINGLE,
            LinkKind.NVLINK_HOST,
        )

    @property
    def is_peer(self) -> bool:
        """True for direct device-to-device classes (P2P capable)."""
        return self in (
            LinkKind.NVLINK_DOUBLE,
            LinkKind.NVLINK_SINGLE,
            LinkKind.PCIE_PEER,
        )


@dataclasses.dataclass(frozen=True, slots=True)
class Link:
    """A directed link between two endpoints of the platform.

    Endpoints are device ids (``>= 0``) or :data:`HOST` (``-1``).  Bandwidth
    defaults to the link class's nominal figure but can be overridden with the
    measured values of the paper's Fig. 2 matrix.
    """

    src: int
    dst: int
    kind: LinkKind
    bandwidth: float = 0.0
    latency: float = config.LINK_LATENCY

    def __post_init__(self) -> None:
        if self.src == self.dst and self.kind is not LinkKind.LOCAL:
            raise TopologyError(f"self-link {self.src} must be LOCAL, got {self.kind}")
        if self.bandwidth < 0:
            raise TopologyError("bandwidth must be >= 0 (0 selects the class default)")
        if self.bandwidth == 0.0:
            object.__setattr__(self, "bandwidth", self.kind.default_bandwidth)

    @property
    def perf_rank(self) -> int:
        """CUDA-style performance rank (lower is faster)."""
        return self.kind.perf_rank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.src}->{self.dst}, {self.kind.label}, "
            f"{self.bandwidth / 1e9:.1f} GB/s)"
        )


HOST = -1
"""Endpoint id of the host (CPU + main memory) in link descriptions."""
